//! Quickstart: enrol one user on a simulated smart speaker and
//! authenticate genuine attempts against a spoofer.
//!
//! Run with `cargo run --release --example quickstart`.

use echoimage::core::auth::{AuthConfig, Authenticator};
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn main() {
    // A quiet laboratory with a ReSpeaker-like 6-microphone smart speaker.
    let scene = Scene::new(SceneConfig::laboratory_quiet(7));
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());

    // Alice registers: she stands 0.7 m in front of the device while it
    // probes her with a few 2–3 kHz beeps.
    let alice = BodyModel::from_seed(1);
    let placement = Placement::standing_front(0.7);
    println!("enrolling alice (simulated body, seed 1)…");
    // Two short registration visits, run through the production
    // enrolment recipe (plane diversity + §V-F augmentation).
    use echoimage::core::enrollment::{enrollment_features, EnrollmentConfig};
    let visits: Vec<_> = (0..2u32)
        .map(|v| scene.capture_train(&alice, &placement, v, 6, v as u64 * 1_000))
        .collect();
    let features = enrollment_features(&pipeline, &visits, &EnrollmentConfig::default())
        .expect("enrolment failed");
    println!(
        "  captured {} beeps over {} visits → {} enrolment features of length {}",
        visits.iter().map(Vec::len).sum::<usize>(),
        visits.len(),
        features.len(),
        features[0].len()
    );
    let auth =
        Authenticator::enroll(&[(1, features)], &AuthConfig::default()).expect("enrolment failed");

    // Later: Alice walks up again (fresh noise, fresh posture).
    println!("\nalice returns and asks the speaker to transfer money…");
    let attempt = scene.capture_train(&alice, &placement, 0, 4, 500);
    let estimate = pipeline
        .estimate_distance(&attempt)
        .expect("ranging failed");
    println!(
        "  distance estimate: {:.2} m (true 0.70 m)",
        estimate.horizontal_distance
    );
    let probes = pipeline
        .features_from_train(&attempt)
        .expect("capture failed");
    let accepted = probes
        .iter()
        .filter(|f| auth.authenticate(f).is_accepted())
        .count();
    println!(
        "  {accepted}/{} probe beeps accepted → access granted",
        probes.len()
    );

    // A burglar tries the same command.
    println!("\na stranger tries the same command…");
    let mallory = BodyModel::from_seed(666);
    let attack = scene.capture_train(&mallory, &placement, 0, 4, 900);
    let probes = pipeline
        .features_from_train(&attack)
        .expect("capture failed");
    let accepted = probes
        .iter()
        .filter(|f| auth.authenticate(f).is_accepted())
        .count();
    println!(
        "  {accepted}/{} probe beeps accepted → {}",
        probes.len(),
        if accepted == 0 {
            "attack rejected"
        } else {
            "attack partially succeeded"
        }
    );
}
