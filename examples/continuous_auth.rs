//! Continuous authentication: the speaker probes every 0.5 s while the
//! user interacts, and a quorum-over-window fusion policy keeps a live
//! verdict — including the moment an impostor takes the user's place.
//!
//! Run with `cargo run --release --example continuous_auth`.

use echoimage::core::auth::{AuthConfig, Authenticator};
use echoimage::core::enrollment::{enrollment_features, EnrollmentConfig};
use echoimage::core::fusion::{AuthStream, FusedDecision, FusionPolicy};
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn main() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(4));
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let placement = Placement::standing_front(0.7);

    // Enrolment.
    let alice = BodyModel::from_seed(12);
    let visits: Vec<_> = (0..3u32)
        .map(|v| scene.capture_train(&alice, &placement, v, 6, v as u64 * 1_000))
        .collect();
    let features = enrollment_features(&pipeline, &visits, &EnrollmentConfig::default())
        .expect("enrolment failed");
    let auth =
        Authenticator::enroll(&[(1, features)], &AuthConfig::default()).expect("enrol failed");
    println!("alice enrolled; starting continuous probing (3-of-5 fusion)…\n");

    // A session: alice speaks for 8 beeps, then mallory shoves her aside.
    let mallory = BodyModel::from_seed(1200);
    let mut stream = AuthStream::new(FusionPolicy::default_3_of_5());
    for beep in 0..16u64 {
        let (who, body): (&str, &BodyModel) = if beep < 8 {
            ("alice", &alice)
        } else {
            ("mallory", &mallory)
        };
        let cap = scene.capture_beep(body, &placement, 9, 70_000 + beep);
        let decision = match pipeline.features_from_train(std::slice::from_ref(&cap)) {
            Ok(feats) => auth.authenticate(&feats[0]),
            Err(_) => echoimage::core::AuthDecision::Rejected,
        };
        let fused = stream.push(decision);
        let verdict = match fused {
            FusedDecision::Accepted { user_id, votes } => {
                format!("ACCEPTED user {user_id} ({votes}/5 votes)")
            }
            FusedDecision::Undecided => "undecided (warming up)".to_string(),
            FusedDecision::Rejected => "REJECTED".to_string(),
        };
        println!(
            "t = {:>4.1} s  [{who:<7} at the mic]  fused: {verdict}",
            beep as f64 * 0.5
        );
    }
    println!("\nthe fused verdict flips to REJECTED a few beeps after the swap —");
    println!("the window must drain alice's votes before mallory is exposed.");
}
