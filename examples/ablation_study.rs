//! Quality-side ablations of EchoImage's design choices (the runtime
//! side lives in `crates/bench/benches/ablations.rs`):
//!
//! * beamformed MVDR ranging vs a single microphone,
//! * MVDR vs delay-and-sum imaging — does the image stay as
//!   user-discriminative?
//! * frozen-CNN features vs raw downsampled pixels,
//! * ranging error vs the number of averaged beeps L (Eq. 10).
//!
//! Run with `cargo run --release --example ablation_study`.

use echoimage::core::config::{BeamformerKind, ImagingConfig};
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::dsp::stats::cosine_similarity;
use echoimage::ml::GrayImage;
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn centred(i: &GrayImage) -> Vec<f64> {
    let m = i.mean();
    i.pixels().iter().map(|p| p - m).collect()
}

fn dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

fn main() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(42));
    let placement = Placement::standing_front(0.7);
    let alice = BodyModel::from_seed(1);
    let bella = BodyModel::from_seed(2);

    // ── Ablation 1: ranging error vs beep count L ────────────────────
    println!("ablation 1 — ranging error vs averaged beeps L (Eq. 10):");
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    for l in [1usize, 2, 4, 8, 16] {
        let mut errs = Vec::new();
        for trial in 0..4 {
            let caps = scene.capture_train(&alice, &placement, trial, l, trial as u64 * 7_000);
            if let Ok(est) = pipeline.estimate_distance(&caps) {
                errs.push((est.horizontal_distance - 0.7).abs());
            }
        }
        let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let worst = errs.iter().cloned().fold(0.0f64, f64::max);
        println!("  L = {l:>2}: mean |error| {mean:.3} m, worst {worst:.3} m");
    }

    // ── Ablation 2: MVDR vs delay-and-sum imaging ────────────────────
    println!("\nablation 2 — imaging beamformer (same/cross-user image contrast):");
    for kind in [BeamformerKind::Mvdr, BeamformerKind::DelayAndSum] {
        let cfg = PipelineConfig {
            imaging: ImagingConfig {
                beamformer: kind,
                ..ImagingConfig::default()
            },
            ..PipelineConfig::default()
        };
        let p = EchoImagePipeline::new(cfg);
        let img = |body: &BodyModel, beep: u64| {
            let cap = scene.capture_beep(body, &placement, 0, beep);
            p.acoustic_image(&cap, 0.7).expect("imaging failed")
        };
        let a0 = img(&alice, 0);
        let a1 = img(&alice, 1);
        let b0 = img(&bella, 7);
        let same = cosine_similarity(&centred(&a0), &centred(&a1));
        let cross = cosine_similarity(&centred(&a0), &centred(&b0));
        println!(
            "  {kind:?}: same-user {same:.4}, cross-user {cross:.4}, contrast {:.4}",
            same - cross
        );
    }

    // ── Ablation 3: CNN features vs raw pixels ───────────────────────
    println!("\nablation 3 — feature extractor (intra/inter distance ratio, lower is better):");
    let p = EchoImagePipeline::new(PipelineConfig::default());
    let fx = p.feature_extractor();
    let img = |body: &BodyModel, beep: u64| {
        let cap = scene.capture_beep(body, &placement, 0, beep);
        p.acoustic_image(&cap, 0.7).expect("imaging failed")
    };
    let (a0, a1, b0) = (img(&alice, 0), img(&alice, 1), img(&bella, 7));
    type Extractor<'a> = Box<dyn Fn(&GrayImage) -> Vec<f64> + 'a>;
    let extractors: Vec<(&str, Extractor)> = vec![
        ("frozen CNN", Box::new(|i: &GrayImage| fx.extract(i))),
        ("raw pixels", Box::new(|i: &GrayImage| fx.raw_pixels(i))),
    ];
    for (label, f) in &extractors {
        let intra = dist(&f(&a0), &f(&a1));
        let inter = dist(&f(&a0), &f(&b0));
        println!(
            "  {label:<11}: intra {intra:.3}, inter {inter:.3}, ratio {:.3}",
            intra / inter
        );
    }

    // ── Ablation 4: beamformed vs single-microphone ranging ─────────
    println!("\nablation 4 — ranging front-end (error across 4 visits):");
    {
        // Beamformed (the paper's design) vs using channel 0 alone via a
        // pipeline with a single-mic \"array\" is not geometrically
        // comparable, so compare MVDR vs identity-covariance (DAS).
        use echoimage::core::config::CovarianceMode;
        for (label, mode) in [
            ("MVDR (isotropic ρ)", CovarianceMode::Isotropic),
            ("delay-and-sum", CovarianceMode::Identity),
        ] {
            let cfg = PipelineConfig {
                covariance: mode,
                ..PipelineConfig::default()
            };
            let p = EchoImagePipeline::new(cfg);
            let mut errs = Vec::new();
            for trial in 0..4 {
                let caps = scene.capture_train(&alice, &placement, trial, 8, trial as u64 * 7_000);
                if let Ok(est) = p.estimate_distance(&caps) {
                    errs.push((est.horizontal_distance - 0.7).abs());
                }
            }
            let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
            println!(
                "  {label:<20}: mean |error| {mean:.3} m over {} successful runs",
                errs.len()
            );
        }
    }
}
