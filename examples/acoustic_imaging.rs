//! Watch the pipeline work: distance estimation from the correlation
//! envelope, then an ASCII rendering of the acoustic image (the paper's
//! Figs. 5–8 as a live demo).
//!
//! Run with `cargo run --release --example acoustic_imaging`.

use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn main() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(21));
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let user = BodyModel::from_seed(5);
    let true_distance = 0.7;
    let captures = scene.capture_train(&user, &Placement::standing_front(true_distance), 0, 8, 0);

    // Stage 1 — distance estimation (paper §V-B).
    let est = pipeline
        .estimate_distance(&captures)
        .expect("ranging failed");
    println!("distance estimation (L = {} beeps):", captures.len());
    println!("  slant D_f      = {:.3} m", est.slant_distance);
    println!(
        "  horizontal D_p = {:.3} m (ground truth {true_distance} m)",
        est.horizontal_distance
    );
    println!(
        "  direct peak τ₁ at sample {}, body echo at sample {}",
        est.direct_peak, est.echo_peak
    );

    // The accumulated envelope E(t) around the interesting region.
    println!("\ncorrelation envelope E(t) (log scale, direct peak → echo period):");
    let lo = est.direct_peak.saturating_sub(24);
    let hi = (est.echo_peak + 240).min(est.envelope.len());
    let max = est.envelope[lo..hi]
        .iter()
        .cloned()
        .fold(f64::MIN_POSITIVE, f64::max);
    let cols = 64usize;
    let step = ((hi - lo) / cols).max(1);
    let bar: String = (lo..hi)
        .step_by(step)
        .map(|i| {
            let v = (est.envelope[i] / max).max(1e-8);
            let level = ((v.log10() + 8.0) / 8.0 * 7.0) as usize;
            [' ', '.', ':', '-', '=', '+', '#', '@'][level.min(7)]
        })
        .collect();
    println!("  |{bar}|");
    println!(
        "   ^τ₁{}^echo",
        " ".repeat(((est.echo_peak - lo) / step).saturating_sub(4))
    );

    // Stage 2 — acoustic image (paper §V-C).
    let image = pipeline
        .acoustic_image(&captures[0], est.horizontal_distance)
        .expect("imaging failed");
    let mut shown = image.clone();
    shown.normalize();
    println!(
        "\nacoustic image AI₁ ({}×{} grid, {:.0} cm cells):",
        image.width(),
        image.height(),
        pipeline.config().imaging.grid_spacing * 100.0
    );
    let ramp: &[u8] = b" .:-=+*#%@";
    for row in 0..shown.height() {
        let line: String = (0..shown.width())
            .map(|col| ramp[((shown.get(col, row) * 9.0) as usize).min(9)] as char)
            .collect();
        println!("  {line}");
    }

    // Stage 3 — features.
    let features = pipeline.features(&image);
    let energy: f64 = features.iter().map(|f| f * f).sum::<f64>().sqrt();
    println!(
        "\nfrozen-CNN embedding: {} dims, ‖f‖ = {:.2}",
        features.len(),
        energy
    );
}
