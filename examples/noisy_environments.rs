//! Environment robustness demo: the same small household authenticates
//! in a laboratory, a conference hall and outdoors while music, chatter
//! or traffic noise plays (the paper's Fig. 12 scenario as a
//! walkthrough), using the evaluation harness's production enrolment
//! protocol.
//!
//! Run with `cargo run --release --example noisy_environments`.

use echoimage::eval::experiments::protocol::{enroll, evaluate, ProtocolConfig};
use echoimage::eval::harness::{CaptureSpec, Harness};
use echoimage::sim::{EnvironmentKind, NoiseKind, Population};

fn main() {
    let population = Population::generate(4, 3, 21);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();
    let proto = ProtocolConfig {
        train_beeps: 24,
        test_beeps: 4,
        test_sessions: vec![0],
        ..ProtocolConfig::default()
    };

    for env in EnvironmentKind::all() {
        println!("— {} —", env.label());
        let harness = Harness::new(21 ^ (env as u64 + 1) << 8);

        // Enrol quietly in this environment (the paper's protocol), then
        // authenticate under every ambient-noise condition.
        let train_spec = CaptureSpec {
            environment: env,
            noise: NoiseKind::Quiet,
            ..CaptureSpec::default_lab(0)
        };
        let auth = enroll(&harness, &registered, &train_spec, &proto).expect("enrolment failed");

        for noise in NoiseKind::all() {
            let test_spec = CaptureSpec {
                environment: env,
                noise,
                ..CaptureSpec::default_lab(0)
            };
            let cm = evaluate(&harness, &auth, &registered, &spoofers, &test_spec, &proto);
            let m = cm.metrics();
            println!(
                "  {:<8} genuine recall {:.2}, spoofer detection {:.2}, accuracy {:.2}",
                noise.label(),
                m.recall,
                cm.spoofer_detection_rate(),
                m.accuracy
            );
        }
        println!();
    }
}
