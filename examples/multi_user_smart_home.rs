//! A smart-home household: several registered family members, the
//! two-stage SVDD → n-class SVM cascade attributing commands to people,
//! and visitors being turned away (the paper's Fig. 10 flow).
//!
//! Run with `cargo run --release --example multi_user_smart_home`.

use echoimage::core::auth::{AuthConfig, AuthDecision, Authenticator};
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn main() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(99));
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let placement = Placement::standing_front(0.7);

    let family = [
        (1usize, "alice", 11u64),
        (2, "bob", 22),
        (3, "carol", 33),
        (4, "dave", 44),
    ];

    // Registration: every family member enrolls over three short visits.
    println!("registering household members…");
    use echoimage::core::enrollment::{enrollment_features, EnrollmentConfig};
    let mut enrolment = Vec::new();
    for &(id, name, seed) in &family {
        let body = BodyModel::from_seed(seed);
        let visits: Vec<_> = (0..3u32)
            .map(|v| scene.capture_train(&body, &placement, v, 6, v as u64 * 1_000))
            .collect();
        let features = enrollment_features(&pipeline, &visits, &EnrollmentConfig::default())
            .expect("enrolment failed");
        println!("  {name:<6} enrolled with {} features", features.len());
        enrolment.push((id, features));
    }
    let auth = Authenticator::enroll(&enrolment, &AuthConfig::default()).expect("enrol failed");

    // A day of commands: each person (and one visitor) walks up and
    // issues a voice command; the speaker probes and decides.
    println!("\nauthentication attempts (fresh visit, 3 beeps each, majority vote):");
    let visitors = [(0usize, "visitor", 777u64)];
    for &(id, name, seed) in family.iter().chain(visitors.iter()) {
        let body = BodyModel::from_seed(seed);
        let caps = scene.capture_train(&body, &placement, 5, 3, 9_000 + seed);
        let feats = pipeline.features_from_train(&caps).expect("capture failed");
        let mut votes = std::collections::HashMap::new();
        for f in &feats {
            *votes.entry(auth.authenticate(f)).or_insert(0usize) += 1;
        }
        let (decision, count) = votes
            .into_iter()
            .max_by_key(|&(_, c)| c)
            .expect("non-empty");
        let verdict = match decision {
            AuthDecision::Accepted { user_id } => {
                let who = family
                    .iter()
                    .find(|(fid, ..)| *fid == user_id)
                    .map(|(_, n, _)| *n)
                    .unwrap_or("???");
                format!("accepted as {who} ({count}/{} beeps)", feats.len())
            }
            AuthDecision::Rejected => format!("rejected ({count}/{} beeps)", feats.len()),
        };
        let expected = if id == 0 {
            "should be rejected"
        } else {
            "should be accepted"
        };
        println!("  {name:<8} → {verdict:<34} [{expected}]");
    }
}
