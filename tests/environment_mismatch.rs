//! Model-mismatch robustness: the pipeline assumes 20 °C sound speed
//! (343 m/s); the real room may be warmer or colder. Sound speed scales
//! ≈ 331.3·√(1 + T/273.15), i.e. ±0.6 m/s per °C.

use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn speed_at_celsius(t: f64) -> f64 {
    331.3 * (1.0 + t / 273.15).sqrt()
}

#[test]
fn ranging_tolerates_room_temperature_range() {
    // 10 °C to 30 °C: ±2 % sound-speed error against the assumed 343.
    let body = BodyModel::from_seed(25);
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    for t in [10.0, 20.0, 30.0] {
        let mut cfg = SceneConfig::laboratory_quiet(91);
        cfg.speed_of_sound = speed_at_celsius(t);
        let scene = Scene::new(cfg);
        let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 6, 0);
        let est = pipeline.estimate_distance(&caps).expect("ranging failed");
        // A 2 % speed error maps to ~2 cm at 0.7 m — well inside the
        // estimator's own tolerance.
        assert!(
            (est.horizontal_distance - 0.7).abs() < 0.12,
            "{t} °C: estimated {}",
            est.horizontal_distance
        );
    }
}

#[test]
fn authentication_survives_temperature_drift_between_sessions() {
    // Enrol at 18 °C, authenticate at 26 °C: the echo timing shift is a
    // fraction of the time gate and must not break recognition.
    use echoimage::core::auth::{AuthConfig, Authenticator};
    use echoimage::core::config::ImagingConfig;
    use echoimage::core::enrollment::{enrollment_features, EnrollmentConfig};

    let pipe_cfg = PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        ..PipelineConfig::default()
    };
    let pipeline = EchoImagePipeline::new(pipe_cfg);
    let body = BodyModel::from_seed(26);
    let placement = Placement::standing_front(0.7);

    let scene_at = |celsius: f64| {
        let mut cfg = SceneConfig::laboratory_quiet(93);
        cfg.speed_of_sound = speed_at_celsius(celsius);
        Scene::new(cfg)
    };

    let cold = scene_at(18.0);
    let visits: Vec<_> = (0..3u32)
        .map(|v| cold.capture_train(&body, &placement, v, 4, v as u64 * 1_000))
        .collect();
    let features = enrollment_features(&pipeline, &visits, &EnrollmentConfig::default())
        .expect("enrolment failed");
    let auth =
        Authenticator::enroll(&[(1, features)], &AuthConfig::default()).expect("enrol failed");

    let warm = scene_at(26.0);
    let probes = warm.capture_train(&body, &placement, 8, 3, 60_000);
    let feats = pipeline.features_from_train(&probes).expect("probe failed");
    let accepted = feats
        .iter()
        .filter(|f| auth.authenticate(f).is_accepted())
        .count();
    assert!(
        accepted > 0,
        "temperature drift locked the user out ({accepted}/{})",
        feats.len()
    );
}
