//! Extension: physical presentation attacks beyond other humans.
//!
//! The paper's motivation is that voice can be replayed through a
//! loudspeaker; EchoImage defends because a loudspeaker does not *look*
//! (acoustically) like the enrolled person's body. These tests present
//! non-body reflectors — a flat panel (a loudspeaker cabinet), a bare
//! point reflector, and an empty room — and require the gate to reject
//! them all.

use echo_array::Vec3;
use echoimage::core::auth::{AuthConfig, Authenticator};
use echoimage::core::config::ImagingConfig;
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scatterer, Scene, SceneConfig};

fn small_pipeline() -> EchoImagePipeline {
    let cfg = PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        ..PipelineConfig::default()
    };
    EchoImagePipeline::new(cfg)
}

/// A flat rigid panel (e.g. a loudspeaker box) facing the array.
fn panel(distance: f64, width: f64, height: f64, reflectivity: f64) -> Vec<Scatterer> {
    let mut out = Vec::new();
    let (nx, nz) = (9, 9);
    for i in 0..nx {
        for j in 0..nz {
            let x = (i as f64 / (nx - 1) as f64 - 0.5) * width;
            let z = (j as f64 / (nz - 1) as f64 - 0.5) * height;
            out.push(Scatterer {
                position: Vec3::new(x, distance, z),
                reflectivity: reflectivity / (nx * nz) as f64,
            });
        }
    }
    out
}

fn enrol(scene: &Scene, pipeline: &EchoImagePipeline, body: &BodyModel) -> Authenticator {
    let placement = Placement::standing_front(0.7);
    let mut feats = Vec::new();
    for v in 0..3u32 {
        let caps = scene.capture_train(body, &placement, v, 4, v as u64 * 1_000);
        let (images, _) = pipeline
            .images_from_train_multi_plane(&caps, &[-0.03, 0.03])
            .expect("enrolment failed");
        feats.extend(images.iter().map(|i| pipeline.features(i)));
    }
    Authenticator::enroll(&[(1, feats)], &AuthConfig::default()).expect("enrol failed")
}

#[test]
fn loudspeaker_panel_is_rejected() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(61));
    let pipeline = small_pipeline();
    let user = BodyModel::from_seed(20);
    let auth = enrol(&scene, &pipeline, &user);

    // Replay rig: a 0.4 × 0.5 m panel at the user's spot.
    let rig = panel(0.7, 0.4, 0.5, 1.0);
    let caps: Vec<_> = (0..3)
        .map(|b| scene.capture_beep_from(&rig, 9, 40_000 + b))
        .collect();
    match pipeline.features_from_train(&caps) {
        Ok(feats) => {
            let accepted = feats
                .iter()
                .filter(|f| auth.authenticate(f).is_accepted())
                .count();
            assert_eq!(
                accepted,
                0,
                "panel accepted {accepted}/{} times",
                feats.len()
            );
        }
        Err(_) => { /* no usable echo — also a rejection */ }
    }
}

#[test]
fn bare_point_reflector_is_rejected() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(67));
    let pipeline = small_pipeline();
    let user = BodyModel::from_seed(21);
    let auth = enrol(&scene, &pipeline, &user);

    let point = vec![Scatterer {
        position: Vec3::new(0.0, 0.7, 0.1),
        reflectivity: 1.0,
    }];
    let caps: Vec<_> = (0..3)
        .map(|b| scene.capture_beep_from(&point, 9, 50_000 + b))
        .collect();
    if let Ok(feats) = pipeline.features_from_train(&caps) {
        let accepted = feats
            .iter()
            .filter(|f| auth.authenticate(f).is_accepted())
            .count();
        assert_eq!(accepted, 0, "point reflector accepted");
    }
}

#[test]
fn empty_room_replay_is_rejected() {
    // A remote attacker replays voice with no one standing there at all.
    let scene = Scene::new(SceneConfig::laboratory_quiet(71));
    let pipeline = small_pipeline();
    let user = BodyModel::from_seed(22);
    let auth = enrol(&scene, &pipeline, &user);

    let caps: Vec<_> = (0..3).map(|b| scene.capture_empty(9, 60_000 + b)).collect();
    if let Ok(feats) = pipeline.features_from_train(&caps) {
        let accepted = feats
            .iter()
            .filter(|f| auth.authenticate(f).is_accepted())
            .count();
        assert_eq!(accepted, 0, "empty room accepted");
    }
}
