//! Failure injection: the pipeline must degrade gracefully, not panic,
//! when captures are saturated, silent, empty-scene or mis-steered.

use echoimage::core::config::ImagingConfig;
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::core::EchoImageError;
use echoimage::sim::{BeepCapture, BodyModel, Placement, Scene, SceneConfig};

fn small_pipeline() -> EchoImagePipeline {
    let cfg = PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 12,
            grid_spacing: 0.12,
            ..ImagingConfig::default()
        },
        ..PipelineConfig::default()
    };
    EchoImagePipeline::new(cfg)
}

#[test]
fn saturated_microphones_still_range() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(41));
    let body = BodyModel::from_seed(14);
    let caps: Vec<BeepCapture> = scene
        .capture_train(&body, &Placement::standing_front(0.7), 0, 4, 0)
        .iter()
        .map(|c| c.clipped(0.3))
        .collect();
    let p = small_pipeline();
    // Hard clipping distorts but must neither panic nor produce NaN.
    match p.estimate_distance(&caps) {
        Ok(est) => {
            assert!(est.horizontal_distance.is_finite());
            assert!(est.horizontal_distance > 0.0);
        }
        Err(e) => {
            // A graceful error is acceptable under heavy distortion.
            assert!(matches!(
                e,
                EchoImageError::EchoNotFound | EchoImageError::DirectPathNotFound
            ));
        }
    }
}

#[test]
fn empty_room_reports_no_echo_or_far_junk() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(43));
    let caps: Vec<BeepCapture> = (0..4).map(|b| scene.capture_empty(0, b)).collect();
    let p = small_pipeline();
    match p.estimate_distance(&caps) {
        // Either no echo is found…
        Err(e) => assert!(matches!(e, EchoImageError::EchoNotFound)),
        // …or an environment reflector is ranged — which must then be
        // far from where a user would stand.
        Ok(est) => assert!(
            est.horizontal_distance > 1.0,
            "empty room produced a user-like distance {}",
            est.horizontal_distance
        ),
    }
}

#[test]
fn silent_captures_error_cleanly() {
    let silent: Vec<BeepCapture> = (0..2)
        .map(|_| BeepCapture::new(vec![vec![0.0; 3_360]; 6], 48_000.0, 480))
        .collect();
    let p = small_pipeline();
    assert!(matches!(
        p.estimate_distance(&silent),
        Err(EchoImageError::DirectPathNotFound)
    ));
}

#[test]
fn imaging_with_wildly_wrong_distance_still_yields_finite_image() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(47));
    let body = BodyModel::from_seed(15);
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    let p = small_pipeline();
    for wrong in [0.25, 3.0] {
        let img = p.acoustic_image(&cap, wrong).expect("imaging failed");
        assert!(img.pixels().iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}

#[test]
fn dropped_beeps_in_a_train_are_tolerated() {
    // A train of one beep is the degenerate minimum: everything must
    // still run (the paper uses L = 20 for ranging, but the pipeline
    // cannot assume it).
    let scene = Scene::new(SceneConfig::laboratory_quiet(53));
    let body = BodyModel::from_seed(16);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 1, 0);
    let p = small_pipeline();
    let (images, est) = p
        .images_from_train(&caps)
        .expect("single-beep train failed");
    assert_eq!(images.len(), 1);
    assert!((est.horizontal_distance - 0.7).abs() < 0.3);
}

#[test]
fn extreme_noise_degrades_but_does_not_panic() {
    use echoimage::sim::noise::NoiseGenerator;
    use echoimage::sim::{EnvironmentKind, NoiseKind};
    // Crank chatter up to 75 dB — far beyond the paper's 50 dB.
    let mut cfg =
        SceneConfig::with_environment(EnvironmentKind::Laboratory, NoiseKind::Chatter, 59);
    cfg.noise = NoiseGenerator::new(NoiseKind::Chatter, 75.0, 48_000.0);
    let scene = Scene::new(cfg);
    let body = BodyModel::from_seed(17);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 4, 0);
    let p = small_pipeline();
    match p.images_from_train(&caps) {
        Ok((images, _)) => {
            assert!(images
                .iter()
                .all(|i| i.pixels().iter().all(|v| v.is_finite())));
        }
        Err(e) => {
            assert!(matches!(
                e,
                EchoImageError::EchoNotFound | EchoImageError::DirectPathNotFound
            ));
        }
    }
}

#[test]
fn bystander_walking_past_does_not_break_the_pipeline() {
    use echoimage::sim::{BodyModel as BM, Bystander};
    let scene = Scene::new(SceneConfig::laboratory_quiet(83));
    let user = BM::from_seed(30);
    let walker = Bystander::walking_past(BM::from_seed(31));
    let placement = Placement::standing_front(0.7);
    let caps: Vec<BeepCapture> = (0..4)
        .map(|b| scene.capture_beep_with_bystander(&user, &placement, 0, b, &walker))
        .collect();
    let p = small_pipeline();
    // The user is much closer than the walker: ranging must still find
    // the user, and imaging must stay finite.
    let (images, est) = p.images_from_train(&caps).expect("pipeline failed");
    assert!(
        (est.horizontal_distance - 0.7).abs() < 0.25,
        "estimate {} with a bystander",
        est.horizontal_distance
    );
    assert!(images
        .iter()
        .all(|i| i.pixels().iter().all(|v| v.is_finite())));
}
