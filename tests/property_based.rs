//! Property-based tests over cross-crate invariants.

use echo_dsp::chirp::LfmChirp;
use echo_dsp::correlate::matched_filter;
use echo_dsp::fft::{fft, ifft};
use echo_dsp::Complex;
use echoimage::array::{Direction, MicArray};
use echoimage::core::augment::augment_to_distance;
use echoimage::core::config::ImagingConfig;
use echoimage::ml::GrayImage;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT round-trips any signal of any length.
    #[test]
    fn fft_round_trip(values in prop::collection::vec(-1000.0f64..1000.0, 1..200)) {
        let orig: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        let scale = values.iter().fold(1.0f64, |a, v| a.max(v.abs()));
        for (a, b) in x.iter().zip(orig.iter()) {
            prop_assert!((*a - *b).abs() < 1e-8 * scale);
        }
    }

    /// Parseval: energy is conserved by the transform.
    #[test]
    fn fft_preserves_energy(values in prop::collection::vec(-100.0f64..100.0, 2..128)) {
        let mut x: Vec<Complex> = values.iter().map(|&v| Complex::from_real(v)).collect();
        let time_energy: f64 = values.iter().map(|v| v * v).sum();
        fft(&mut x);
        let freq_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum::<f64>() / values.len() as f64;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-6 * time_energy.max(1.0));
    }

    /// The matched filter peaks exactly at any injected chirp delay.
    #[test]
    fn matched_filter_finds_any_delay(delay in 0usize..1_000, amp in 0.1f64..10.0) {
        let chirp = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0);
        let s = chirp.samples();
        let mut rx = vec![0.0; 1_200];
        for (i, &v) in s.iter().enumerate() {
            rx[delay + i] += amp * v;
        }
        let c = matched_filter(&rx, &s);
        let best = c
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        prop_assert_eq!(best, delay);
    }

    /// Steering phasors stay unit-modulus for every direction/frequency.
    #[test]
    fn steering_vectors_are_unit_modulus(
        azimuth in -3.1f64..3.1,
        elevation in 0.01f64..3.13,
        f0 in 500.0f64..3_400.0,
    ) {
        let array = MicArray::respeaker_6();
        let sv = array.steering_vector(Direction::new(azimuth, elevation), f0);
        for w in sv {
            prop_assert!((w.abs() - 1.0).abs() < 1e-12);
        }
    }

    /// A plane wave from the steered direction is coherently combined:
    /// |aᴴa| = M exactly, and no other direction exceeds it.
    #[test]
    fn steering_self_alignment_is_maximal(
        azimuth in -3.0f64..3.0,
        elevation in 0.2f64..2.9,
        other_az in -3.0f64..3.0,
    ) {
        let array = MicArray::respeaker_6();
        let f0 = 2_500.0;
        let dir = Direction::new(azimuth, elevation);
        let a = array.steering_vector(dir, f0);
        let self_gain: Complex = a.iter().map(|w| w.conj() * *w).sum();
        prop_assert!((self_gain.re - 6.0).abs() < 1e-9);
        let b = array.steering_vector(Direction::new(other_az, elevation), f0);
        let cross: Complex = b.iter().zip(a.iter()).map(|(w, x)| w.conj() * *x).sum();
        prop_assert!(cross.abs() <= 6.0 + 1e-9);
    }

    /// Inverse-square augmentation round-trips through any distance pair.
    #[test]
    fn augmentation_round_trip(
        d_from in 0.3f64..2.0,
        d_to in 0.3f64..2.0,
        seed in 0u64..1_000,
    ) {
        let cfg = ImagingConfig { grid_n: 8, grid_spacing: 0.2, ..ImagingConfig::default() };
        let img = GrayImage::from_fn(8, 8, |x, y| {
            1.0 + ((x as u64 * 31 + y as u64 * 17 + seed) % 97) as f64
        });
        let there = augment_to_distance(&img, &cfg, d_from, d_to).unwrap();
        let back = augment_to_distance(&there, &cfg, d_to, d_from).unwrap();
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0));
        }
    }

    /// Augmentation scales monotonically: moving the plane farther away
    /// never brightens any pixel.
    #[test]
    fn augmentation_darkens_with_distance(
        d_from in 0.3f64..1.5,
        delta in 0.01f64..1.0,
    ) {
        let cfg = ImagingConfig { grid_n: 8, grid_spacing: 0.2, ..ImagingConfig::default() };
        let img = GrayImage::from_fn(8, 8, |x, y| 1.0 + (x + y) as f64);
        let farther = augment_to_distance(&img, &cfg, d_from, d_from + delta).unwrap();
        for (orig, far) in img.pixels().iter().zip(farther.pixels()) {
            prop_assert!(far <= orig);
        }
    }

    /// Bilinear resize preserves the value range (no over/undershoot).
    #[test]
    fn resize_respects_value_bounds(
        w in 2usize..24, h in 2usize..24,
        nw in 1usize..32, nh in 1usize..32,
        seed in 0u64..1_000,
    ) {
        let img = GrayImage::from_fn(w, h, |x, y| {
            ((x as u64 * 131 + y as u64 * 7 + seed) % 100) as f64
        });
        let (lo, hi) = img.pixels().iter().fold(
            (f64::INFINITY, f64::NEG_INFINITY),
            |(l, u), &v| (l.min(v), u.max(v)),
        );
        let r = img.resize(nw, nh);
        for &v in r.pixels() {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Butterworth band-pass designs stay stable for any valid band.
    #[test]
    fn bandpass_designs_are_stable(
        f_lo in 500.0f64..8_000.0,
        width in 100.0f64..4_000.0,
        order in 1usize..6,
    ) {
        use echo_dsp::filter::SosFilter;
        let fs = 48_000.0;
        let f_hi = (f_lo + width).min(fs / 2.0 - 100.0);
        prop_assume!(f_hi > f_lo + 50.0);
        let f = SosFilter::butterworth_bandpass(order, f_lo, f_hi, fs);
        prop_assert!(f.is_stable());
        // Centre gain near unity; far-out-of-band strongly attenuated.
        let centre = (f_lo * f_hi).sqrt();
        prop_assert!(f.gain_at(centre, fs) > 0.7, "centre gain {}", f.gain_at(centre, fs));
    }

    /// Bodies of any seed place their scatterers in a sane volume.
    #[test]
    fn bodies_are_geometrically_sane(seed in 0u64..500, distance in 0.4f64..2.0) {
        use echoimage::sim::{BodyModel, Placement};
        let body = BodyModel::from_seed(seed);
        let placed = body.scatterers(&Placement::standing_front(distance), 0, 0);
        prop_assert!(placed.len() > 100);
        for s in &placed {
            prop_assert!(s.reflectivity > 0.0);
            prop_assert!(s.position.y > distance - 0.35 && s.position.y < distance + 0.05);
            prop_assert!(s.position.x.abs() < 0.5);
            prop_assert!(s.position.z > -1.0 && s.position.z < 1.5);
        }
    }
}
