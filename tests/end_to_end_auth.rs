//! End-to-end integration: simulate users → capture beeps → range →
//! image → features → enrol → authenticate, across crates.
//!
//! Sizes are kept small (tiny imaging grid, few beeps) so the suite
//! stays fast in debug builds; the full-scale versions are the
//! `echo-bench` figure binaries.

use echoimage::core::auth::{AuthConfig, Authenticator};
use echoimage::core::config::ImagingConfig;
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn small_pipeline() -> EchoImagePipeline {
    let cfg = PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        ..PipelineConfig::default()
    };
    EchoImagePipeline::new(cfg)
}

/// Multi-visit enrolment using the production recipe
/// (`echoimage_core::enrollment`).
fn enrol_features(
    scene: &Scene,
    pipeline: &EchoImagePipeline,
    body: &BodyModel,
    visits: u32,
    beeps: usize,
) -> Vec<Vec<f64>> {
    use echoimage::core::enrollment::{enrollment_features, EnrollmentConfig};
    let placement = Placement::standing_front(0.7);
    let trains: Vec<_> = (0..visits)
        .map(|v| scene.capture_train(body, &placement, v, beeps, v as u64 * 1_000))
        .collect();
    enrollment_features(pipeline, &trains, &EnrollmentConfig::default()).expect("enrolment failed")
}

#[test]
fn two_user_enrolment_and_authentication() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(5));
    let pipeline = small_pipeline();
    let alice = BodyModel::from_seed(1);
    let bob = BodyModel::from_seed(2);
    let eve = BodyModel::from_seed(99);

    let auth = Authenticator::enroll(
        &[
            (1, enrol_features(&scene, &pipeline, &alice, 2, 4)),
            (2, enrol_features(&scene, &pipeline, &bob, 2, 4)),
        ],
        &AuthConfig::default(),
    )
    .expect("enrolment failed");

    let placement = Placement::standing_front(0.7);
    let probe = |body: &BodyModel, salt: u64| {
        let caps = scene.capture_train(body, &placement, 9, 3, 50_000 + salt);
        pipeline.features_from_train(&caps).expect("probe failed")
    };

    // Genuine users: the majority of probe beeps must authenticate as
    // themselves.
    for (body, id) in [(&alice, 1usize), (&bob, 2)] {
        let feats = probe(body, id as u64 * 777);
        let correct = feats
            .iter()
            .filter(|f| auth.authenticate(f).user_id() == Some(id))
            .count();
        let wrong_user = feats
            .iter()
            .filter(|f| auth.authenticate(f).user_id().is_some_and(|u| u != id))
            .count();
        assert!(
            correct * 2 >= feats.len(),
            "user {id}: only {correct}/{} probes accepted as self",
            feats.len()
        );
        assert_eq!(wrong_user, 0, "user {id} misattributed");
    }

    // The spoofer: the majority of probes must be rejected.
    let feats = probe(&eve, 31_337);
    let rejected = feats
        .iter()
        .filter(|f| !auth.authenticate(f).is_accepted())
        .count();
    assert!(
        rejected * 2 >= feats.len(),
        "spoofer accepted too often: {}/{} rejected",
        rejected,
        feats.len()
    );
}

#[test]
fn single_user_scenario_round_trip() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(8));
    let pipeline = small_pipeline();
    let user = BodyModel::from_seed(4);
    let auth = Authenticator::enroll(
        &[(42, enrol_features(&scene, &pipeline, &user, 4, 4))],
        &AuthConfig::default(),
    )
    .expect("enrolment failed");
    assert_eq!(auth.user_ids(), vec![42]);

    let caps = scene.capture_train(&user, &Placement::standing_front(0.7), 7, 3, 90_000);
    let feats = pipeline.features_from_train(&caps).expect("probe failed");
    let accepted = feats
        .iter()
        .filter(|f| auth.authenticate(f).is_accepted())
        .count();
    assert!(accepted > 0, "{accepted}/{} accepted", feats.len());

    // And a different body stays out.
    let stranger = BodyModel::from_seed(500);
    let caps = scene.capture_train(&stranger, &Placement::standing_front(0.7), 7, 3, 91_000);
    let feats = pipeline.features_from_train(&caps).expect("probe failed");
    let accepted = feats
        .iter()
        .filter(|f| auth.authenticate(f).is_accepted())
        .count();
    assert!(
        accepted <= 1,
        "stranger accepted {accepted}/{} times",
        feats.len()
    );
}

#[test]
fn features_are_deterministic_across_pipeline_instances() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(3));
    let body = BodyModel::from_seed(6);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 2, 0);
    let a = small_pipeline().features_from_train(&caps).unwrap();
    let b = small_pipeline().features_from_train(&caps).unwrap();
    assert_eq!(a, b);
}
