//! Integration tests for the ranging front-end across crates.

use echo_array::MicArray;
use echoimage::core::distance::estimate_distance;
use echoimage::core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage::sim::{BodyModel, Placement, Scene, SceneConfig};

fn pipeline() -> EchoImagePipeline {
    EchoImagePipeline::new(PipelineConfig::default())
}

#[test]
fn estimates_are_accurate_over_the_paper_range() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(17));
    let body = BodyModel::from_seed(9);
    let p = pipeline();
    for d in [0.6, 0.9, 1.2, 1.5] {
        let caps = scene.capture_train(&body, &Placement::standing_front(d), 0, 6, 0);
        let est = p.estimate_distance(&caps).expect("ranging failed");
        // Body echoes weaken quadratically with distance, so ranging
        // degrades beyond ~1 m — the very effect behind the paper's
        // Fig. 13 drop. Tight accuracy is required only in close range.
        let tolerance = if d <= 1.0 { 0.15 } else { 0.35 };
        assert!(
            (est.horizontal_distance - d).abs() < tolerance,
            "true {d}: estimated {}",
            est.horizontal_distance
        );
    }
}

#[test]
fn estimates_are_stable_across_visits() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(19));
    let body = BodyModel::from_seed(10);
    let p = pipeline();
    let mut estimates = Vec::new();
    for visit in 0..4u32 {
        let caps = scene.capture_train(
            &body,
            &Placement::standing_front(0.7),
            visit,
            6,
            visit as u64 * 10_000,
        );
        estimates.push(
            p.estimate_distance(&caps)
                .expect("ranging failed")
                .horizontal_distance,
        );
    }
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    for e in &estimates {
        assert!(
            (e - mean).abs() < 0.06,
            "visit estimate {e} deviates from mean {mean}: {estimates:?}"
        );
    }
}

#[test]
fn different_users_give_similar_distance_estimates() {
    // Ranging measures geometry, not identity: all users at 0.7 m should
    // estimate near 0.7 m.
    let scene = Scene::new(SceneConfig::laboratory_quiet(23));
    let p = pipeline();
    for seed in [1u64, 2, 3, 4] {
        let body = BodyModel::from_seed(seed);
        let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 6, 0);
        let est = p.estimate_distance(&caps).expect("ranging failed");
        assert!(
            (est.horizontal_distance - 0.7).abs() < 0.15,
            "seed {seed}: {}",
            est.horizontal_distance
        );
    }
}

#[test]
fn estimate_is_deterministic() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(29));
    let body = BodyModel::from_seed(11);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.8), 0, 4, 0);
    let p = pipeline();
    let filtered: Vec<_> = caps.iter().map(|c| p.preprocess(c)).collect();
    let a = estimate_distance(&filtered, &MicArray::respeaker_6(), p.config()).unwrap();
    let b = estimate_distance(&filtered, &MicArray::respeaker_6(), p.config()).unwrap();
    assert_eq!(a, b);
}

#[test]
fn envelope_contains_direct_then_echo_structure() {
    let scene = Scene::new(SceneConfig::laboratory_quiet(31));
    let body = BodyModel::from_seed(12);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 4, 0);
    let p = pipeline();
    let est = p.estimate_distance(&caps).expect("ranging failed");
    // Direct peak near the beep emission (preroll = 480 samples ± a few).
    assert!(
        (est.direct_peak as i64 - 480).unsigned_abs() < 60,
        "direct at {}",
        est.direct_peak
    );
    // The echo follows after at least the chirp period.
    assert!(est.echo_peak >= est.direct_peak + 96);
    // And within the 10 ms echo period.
    assert!(est.echo_peak <= est.direct_peak + 96 + 480);
}
