//! End-to-end tests of the `echoimage` binary.

use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_echoimage")
}

fn run(args: &[&str]) -> (bool, String) {
    let out = Command::new(bin())
        .args(args)
        .output()
        .expect("failed to spawn echoimage");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn help_prints_usage() {
    let (ok, text) = run(&["help"]);
    assert!(ok);
    assert!(text.contains("USAGE"));
    assert!(text.contains("simulate"));
}

#[test]
fn unknown_command_fails_cleanly() {
    let (ok, text) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(text.contains("unknown command"));
}

#[test]
fn missing_wav_path_is_an_error() {
    let (ok, text) = run(&["range"]);
    assert!(!ok);
    assert!(text.contains("WAV path"));
}

#[test]
fn simulate_then_range_round_trip() {
    let wav = std::env::temp_dir().join("echoimage_cli_test.wav");
    let wav_str = wav.to_str().unwrap();

    let (ok, text) = run(&[
        "simulate",
        "--seed",
        "7",
        "--user",
        "1",
        "--distance",
        "0.7",
        "--beeps",
        "3",
        "--out",
        wav_str,
    ]);
    assert!(ok, "simulate failed: {text}");
    assert!(text.contains("wrote"));
    assert!(wav.exists());

    let (ok, text) = run(&["range", wav_str]);
    assert!(ok, "range failed: {text}");
    // The printed horizontal distance should be near 0.7 m.
    let d: f64 = text
        .lines()
        .find(|l| l.contains("horizontal D_p"))
        .and_then(|l| l.split(':').nth(1))
        .and_then(|v| v.trim().trim_end_matches(" m").parse().ok())
        .expect("distance line");
    assert!((d - 0.7).abs() < 0.2, "estimated {d}");

    let (ok, text) = run(&["image", wav_str]);
    assert!(ok, "image failed: {text}");
    assert!(text.contains("estimated plane distance"));

    std::fs::remove_file(&wav).ok();
}

#[test]
fn range_rejects_garbage_files() {
    let path = std::env::temp_dir().join("echoimage_cli_garbage.wav");
    std::fs::write(&path, b"not audio").unwrap();
    let (ok, text) = run(&["range", path.to_str().unwrap()]);
    assert!(!ok);
    assert!(text.contains("error"));
    std::fs::remove_file(&path).ok();
}
