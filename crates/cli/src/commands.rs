//! Subcommand implementations.

use echo_sim::wav::{read_wav, write_wav};
use echo_sim::{BeepCapture, BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::auth::{AuthConfig, Authenticator};
use echoimage_core::enrollment::{enrollment_features, EnrollmentConfig};
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};

/// Parses `--key value` style options from `args`; positional arguments
/// collect separately.
struct Options {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{key}"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Options { positional, flags })
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.iter().find(|(k, _)| k == key) {
            Some((_, v)) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
            None => Ok(default),
        }
    }

    fn get_string(&self, key: &str, default: &str) -> String {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| default.to_string())
    }
}

/// `echoimage simulate` — render a capture to WAV.
pub fn simulate(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args)?;
    let seed: u64 = opts.get("seed", 7)?;
    let user: u64 = opts.get("user", 1)?;
    let distance: f64 = opts.get("distance", 0.7)?;
    let beeps: usize = opts.get("beeps", 1)?;
    let out = opts.get_string("out", "capture.wav");

    let scene = Scene::new(SceneConfig::laboratory_quiet(seed));
    let captures: Vec<BeepCapture> = if user == 0 {
        (0..beeps as u64)
            .map(|b| scene.capture_empty(0, b))
            .collect()
    } else {
        scene.capture_train(
            &BodyModel::from_seed(user),
            &Placement::standing_front(distance),
            0,
            beeps,
            0,
        )
    };
    // Concatenate beep windows into one multichannel recording.
    let m = captures[0].num_channels();
    let mut channels: Vec<Vec<f64>> = vec![Vec::new(); m];
    for cap in &captures {
        for (ch, buf) in channels.iter_mut().enumerate() {
            buf.extend_from_slice(cap.channel(ch));
        }
    }
    let fs = captures[0].sample_rate();
    let preroll = captures[0].preroll();
    let merged = BeepCapture::new(channels, fs, preroll);
    write_wav(&out, &merged, 0.25).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} channels × {} samples ({} beeps of {} samples, preroll {})",
        merged.num_channels(),
        merged.len(),
        beeps,
        captures[0].len(),
        preroll
    );
    Ok(())
}

/// Splits a concatenated WAV back into per-beep windows.
fn split_windows(merged: &BeepCapture, window: usize) -> Vec<BeepCapture> {
    let total = merged.len();
    let count = (total / window).max(1);
    (0..count)
        .map(|i| {
            let lo = i * window;
            let hi = ((i + 1) * window).min(total);
            BeepCapture::new(
                (0..merged.num_channels())
                    .map(|ch| merged.channel(ch)[lo..hi].to_vec())
                    .collect(),
                merged.sample_rate(),
                merged.preroll().min(hi - lo),
            )
        })
        .collect()
}

fn load_captures(path: &str, preroll: usize) -> Result<Vec<BeepCapture>, String> {
    let merged = read_wav(path, preroll).map_err(|e| format!("reading {path}: {e}"))?;
    // The simulator's standard window: preroll (10 ms) + 60 ms at 48 kHz.
    let window = ((0.070 * merged.sample_rate()).round() as usize).min(merged.len());
    Ok(split_windows(&merged, window))
}

/// `echoimage range` — distance estimation on a WAV.
pub fn range(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args)?;
    let path = opts
        .positional
        .first()
        .ok_or("range needs a WAV path")?
        .clone();
    let preroll: usize = opts.get("preroll", 480)?;
    let captures = load_captures(&path, preroll)?;
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let est = pipeline
        .estimate_distance(&captures)
        .map_err(|e| format!("ranging failed: {e}"))?;
    println!("beeps analysed      : {}", captures.len());
    println!("slant distance D_f  : {:.3} m", est.slant_distance);
    println!("horizontal D_p      : {:.3} m", est.horizontal_distance);
    println!(
        "direct peak τ₁      : sample {} ({:.4} s)",
        est.direct_peak,
        est.direct_peak as f64 / captures[0].sample_rate()
    );
    println!(
        "body echo           : sample {} ({:.4} s)",
        est.echo_peak,
        est.echo_peak as f64 / captures[0].sample_rate()
    );
    Ok(())
}

/// `echoimage image` — acoustic image from a WAV, printed as ASCII.
pub fn image(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args)?;
    let path = opts
        .positional
        .first()
        .ok_or("image needs a WAV path")?
        .clone();
    let preroll: usize = opts.get("preroll", 480)?;
    let mut distance: f64 = opts.get("distance", 0.0)?;
    let captures = load_captures(&path, preroll)?;
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    if distance <= 0.0 {
        distance = pipeline
            .estimate_distance(&captures)
            .map_err(|e| format!("ranging failed: {e}"))?
            .horizontal_distance;
        println!("estimated plane distance: {distance:.3} m");
    }
    let mut img = pipeline
        .acoustic_image(&captures[0], distance)
        .map_err(|e| format!("imaging failed: {e}"))?;
    img.normalize();
    let ramp: &[u8] = b" .:-=+*#%@";
    for row in 0..img.height() {
        let line: String = (0..img.width())
            .map(|col| ramp[((img.get(col, row) * 9.0) as usize).min(9)] as char)
            .collect();
        println!("{line}");
    }
    Ok(())
}

/// `echoimage demo` — end-to-end enrol/authenticate demonstration.
pub fn demo(args: &[String]) -> Result<(), String> {
    let opts = Options::parse(args)?;
    let seed: u64 = opts.get("seed", 7)?;
    let scene = Scene::new(SceneConfig::laboratory_quiet(seed));
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let placement = Placement::standing_front(0.7);

    let user = BodyModel::from_seed(seed.wrapping_add(1));
    println!("enrolling simulated user (4 visits × 6 beeps)…");
    let visits: Vec<_> = (0..4u32)
        .map(|v| scene.capture_train(&user, &placement, v, 6, v as u64 * 1_000))
        .collect();
    let features = enrollment_features(&pipeline, &visits, &EnrollmentConfig::default())
        .map_err(|e| format!("enrolment failed: {e}"))?;
    let auth = Authenticator::enroll(&[(1, features)], &AuthConfig::default())
        .map_err(|e| format!("enrolment failed: {e}"))?;

    let genuine = scene.capture_train(&user, &placement, 9, 3, 50_000);
    let g = pipeline
        .features_from_train(&genuine)
        .map_err(|e| format!("probe failed: {e}"))?;
    let accepted = g
        .iter()
        .filter(|f| auth.authenticate(f).is_accepted())
        .count();
    println!("genuine user : {accepted}/{} beeps accepted", g.len());

    let intruder = BodyModel::from_seed(seed.wrapping_add(1_000));
    let attack = scene.capture_train(&intruder, &placement, 9, 3, 60_000);
    let a = pipeline
        .features_from_train(&attack)
        .map_err(|e| format!("probe failed: {e}"))?;
    let accepted = a
        .iter()
        .filter(|f| auth.authenticate(f).is_accepted())
        .count();
    println!("intruder     : {accepted}/{} beeps accepted", a.len());
    Ok(())
}
