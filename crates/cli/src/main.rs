//! `echoimage` — command-line interface for the EchoImage reproduction.
//!
//! ```text
//! echoimage simulate --seed 7 --user 1 --distance 0.7 --beeps 4 --out capture.wav
//! echoimage range capture.wav
//! echoimage image capture.wav --distance 0.72
//! echoimage demo
//! ```

use std::process::ExitCode;

mod commands;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_out = take_flag_value(&mut args, "--metrics-out");
    let trace_out = take_flag_value(&mut args, "--trace-out");
    if trace_out.is_some() {
        echo_obs::set_trace_enabled(true);
    }
    let Some((command, rest)) = args.split_first() else {
        print_usage();
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "simulate" => commands::simulate(rest),
        "range" => commands::range(rest),
        "image" => commands::image(rest),
        "demo" => commands::demo(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    // Emit observability artefacts on *every* exit path: a failed run
    // is exactly the one whose partial metrics and trace matter for
    // diagnosis, and the old success-only emission silently dropped
    // them.
    if let Some(path) = metrics_out {
        write_metrics(&path);
    }
    if let Some(path) = trace_out {
        write_trace(&path);
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `echoimage help` for usage");
            ExitCode::FAILURE
        }
    }
}

/// Strips a global `--flag <value>` pair (valid in any position and for
/// every command) before dispatch, returning the value.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("warning: {flag} needs a path; ignoring");
        args.remove(pos);
        return None;
    }
    let path = args.remove(pos + 1);
    args.remove(pos);
    Some(path)
}

/// Writes the observability snapshot collected during the command.
///
/// Atomic + durable (temp file, fsync, rename): the snapshot either
/// lands whole or not at all, even when the command itself failed and
/// the process is about to exit.
fn write_metrics(path: &str) {
    match echo_obs::export::write_atomic(path, echo_obs::snapshot().to_json().as_bytes()) {
        Ok(()) => println!("metrics: {path}"),
        Err(e) => eprintln!("could not write metrics to {path}: {e}"),
    }
}

/// Writes the flight-recorder trace (spans + audit records) as JSONL,
/// with the same atomic-and-durable discipline as [`write_metrics`].
fn write_trace(path: &str) {
    let spans = echo_obs::take_spans();
    let audits = echo_obs::take_audits();
    let jsonl = echo_obs::export::trace_jsonl(&spans, &audits);
    match echo_obs::export::write_atomic(path, jsonl.as_bytes()) {
        Ok(()) => println!(
            "trace: {path} ({} spans, {} audits)",
            spans.len(),
            audits.len()
        ),
        Err(e) => eprintln!("could not write trace to {path}: {e}"),
    }
}

fn print_usage() {
    println!(
        "echoimage — user authentication on smart speakers using acoustic signals

USAGE:
    echoimage <COMMAND> [OPTIONS]

COMMANDS:
    simulate   render a simulated multichannel beep capture to a WAV file
                 --seed <u64>       scene seed              [default: 7]
                 --user <u64>       body seed; 0 = empty    [default: 1]
                 --distance <m>     user distance           [default: 0.7]
                 --beeps <n>        beeps to concatenate    [default: 1]
                 --out <path>       output WAV              [default: capture.wav]
    range      estimate the user distance from a capture WAV
                 <path>             input WAV (one beep per 70 ms window)
                 --preroll <n>      noise-only samples per window [default: 480]
    image      construct and print an acoustic image from a capture WAV
                 <path>             input WAV
                 --distance <m>     imaging-plane distance; 0 = estimate [default: 0]
                 --preroll <n>      noise-only samples      [default: 480]
    demo       run an end-to-end enrol/authenticate demonstration
                 --seed <u64>       scenario seed           [default: 7]
    help       show this message

GLOBAL OPTIONS:
    --metrics-out <path>   write a JSON observability snapshot (stage
                           latencies, cache hit rates, pipeline counters)
                           when the command exits, even on failure
    --trace-out <path>     record a flight-recorder trace (hierarchical
                           stage spans + authentication audit records)
                           and write it as JSONL when the command exits,
                           even on failure; convert for Perfetto with
                           `cargo xtask trace-report <path> --chrome out.json`"
    );
}
