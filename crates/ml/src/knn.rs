//! k-nearest-neighbour classification — the simplest credible baseline
//! against the paper's SVM stage for ablations.

/// A k-NN classifier over Euclidean distance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KnnClassifier {
    samples: Vec<Vec<f64>>,
    labels: Vec<usize>,
    k: usize,
}

impl KnnClassifier {
    /// Stores the training set.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty/inconsistent or `k == 0`.
    pub fn fit(samples: &[Vec<f64>], labels: &[usize], k: usize) -> Self {
        assert!(!samples.is_empty(), "training set is empty");
        assert_eq!(samples.len(), labels.len(), "sample/label count mismatch");
        assert!(k > 0, "k must be positive");
        KnnClassifier {
            samples: samples.to_vec(),
            labels: labels.to_vec(),
            k: k.min(samples.len()),
        }
    }

    /// Majority vote among the `k` nearest neighbours (ties broken by
    /// summed inverse distance).
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match the training data.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut dists: Vec<(f64, usize)> = self
            .samples
            .iter()
            .zip(&self.labels)
            .map(|(s, &l)| {
                assert_eq!(s.len(), x.len(), "dimension mismatch");
                let d2: f64 = s.iter().zip(x).map(|(a, b)| (a - b) * (a - b)).sum();
                (d2, l)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let neighbours = &dists[..self.k];

        let mut votes: std::collections::BTreeMap<usize, (usize, f64)> =
            std::collections::BTreeMap::new();
        for &(d2, l) in neighbours {
            let e = votes.entry(l).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += 1.0 / (d2.sqrt() + 1e-12);
        }
        votes
            .into_iter()
            .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(a.1 .1.total_cmp(&b.1 .1)))
            .map(|(l, _)| l)
            .expect("non-empty neighbours")
    }

    /// The distance to the nearest training sample — usable as a naive
    /// open-set rejection score (small = familiar).
    pub fn nearest_distance(&self, x: &[f64]) -> f64 {
        self.samples
            .iter()
            .map(|s| {
                s.iter()
                    .zip(x)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt()
            })
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..30 {
            let j = (i * 31) % 13;
            xs.push(vec![0.0 + j as f64 * 0.02, 0.0 - j as f64 * 0.015]);
            ys.push(0);
            xs.push(vec![3.0 - j as f64 * 0.02, 3.0 + j as f64 * 0.01]);
            ys.push(1);
        }
        (xs, ys)
    }

    #[test]
    fn classifies_separable_blobs() {
        let (xs, ys) = blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 5);
        assert_eq!(knn.predict(&[0.1, 0.0]), 0);
        assert_eq!(knn.predict(&[2.9, 3.1]), 1);
    }

    #[test]
    fn k_one_memorises_training_data() {
        let (xs, ys) = blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 1);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(knn.predict(x), y);
        }
    }

    #[test]
    fn nearest_distance_grows_away_from_data() {
        let (xs, ys) = blobs();
        let knn = KnnClassifier::fit(&xs, &ys, 3);
        assert!(knn.nearest_distance(&[0.0, 0.0]) < 0.1);
        assert!(knn.nearest_distance(&[10.0, -10.0]) > 10.0);
    }

    #[test]
    fn k_larger_than_training_set_is_clamped() {
        let xs = vec![vec![0.0], vec![1.0]];
        let knn = KnnClassifier::fit(&xs, &[0, 1], 99);
        // Tie between the two classes → inverse-distance tiebreak wins
        // for the closer sample.
        assert_eq!(knn.predict(&[0.1]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_panics() {
        let _ = KnnClassifier::fit(&[], &[], 1);
    }
}
