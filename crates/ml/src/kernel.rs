//! SVM kernels.

/// A positive-definite kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Kernel {
    /// Linear kernel `⟨x, y⟩`.
    Linear,
    /// Gaussian RBF kernel `exp(−γ‖x − y‖²)`.
    Rbf {
        /// Kernel width parameter γ.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "kernel operand length mismatch");
        match *self {
            Kernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }

    /// A reasonable default RBF width for `dim`-dimensional standardised
    /// features: `γ = 1/dim` (the common "scale" heuristic).
    pub fn rbf_for_dim(dim: usize) -> Kernel {
        Kernel::Rbf {
            gamma: 1.0 / dim.max(1) as f64,
        }
    }

    /// The median heuristic: `γ = 1/median(‖xᵢ − xⱼ‖²)` over sample
    /// pairs, so typical kernel values land mid-range instead of
    /// saturating at 0 or 1. Pairs are subsampled deterministically for
    /// large sets.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two samples are given.
    pub fn rbf_median(xs: &[Vec<f64>]) -> Kernel {
        assert!(xs.len() >= 2, "median heuristic needs at least two samples");
        let n = xs.len();
        let mut d2: Vec<f64> = Vec::new();
        // Deterministic pair subsample: stride the upper triangle.
        let max_pairs = 2_000usize;
        let total_pairs = n * (n - 1) / 2;
        let stride = (total_pairs / max_pairs).max(1);
        let mut count = 0usize;
        'outer: for i in 0..n {
            for j in i + 1..n {
                if count.is_multiple_of(stride) {
                    let d: f64 = xs[i]
                        .iter()
                        .zip(&xs[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    d2.push(d);
                    if d2.len() >= max_pairs {
                        break 'outer;
                    }
                }
                count += 1;
            }
        }
        d2.sort_by(f64::total_cmp);
        let median = d2[d2.len() / 2];
        Kernel::Rbf {
            gamma: if median > 1e-12 { 1.0 / median } else { 1.0 },
        }
    }

    /// Computes the full Gram matrix `K[i][j] = k(x_i, x_j)`.
    pub fn gram(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let n = xs.len();
        let mut k = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let v = self.eval(&xs[i], &xs[j]);
                k[i][j] = v;
                k[j][i] = v;
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot_product() {
        let k = Kernel::Linear;
        assert_eq!(k.eval(&[1.0, 2.0], &[3.0, -1.0]), 1.0);
    }

    #[test]
    fn rbf_is_one_at_zero_distance_and_decays() {
        let k = Kernel::Rbf { gamma: 0.5 };
        assert_eq!(k.eval(&[1.0, 2.0], &[1.0, 2.0]), 1.0);
        let near = k.eval(&[0.0, 0.0], &[0.1, 0.0]);
        let far = k.eval(&[0.0, 0.0], &[2.0, 0.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal_for_rbf() {
        let xs = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![2.0, 2.0]];
        let g = Kernel::Rbf { gamma: 1.0 }.gram(&xs);
        for (i, row) in g.iter().enumerate() {
            assert_eq!(row[i], 1.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, g[j][i]);
            }
        }
    }

    #[test]
    fn rbf_for_dim_heuristic() {
        match Kernel::rbf_for_dim(512) {
            Kernel::Rbf { gamma } => assert!((gamma - 1.0 / 512.0).abs() < 1e-15),
            _ => panic!("expected RBF"),
        }
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        let _ = Kernel::Linear.eval(&[1.0], &[1.0, 2.0]);
    }
}
