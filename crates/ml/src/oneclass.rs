//! One-class ν-SVM — the spoofer gate.
//!
//! The paper trains a Support Vector Domain Description (SVDD) on the
//! legitimate users' features alone and uses it to reject spoofers
//! (§V-E). We implement the Schölkopf one-class ν-SVM, which is the
//! standard practical realisation of SVDD (for the RBF kernel the two
//! formulations are equivalent): minimise `½ Σᵢⱼ αᵢαⱼK(xᵢ,xⱼ)` subject to
//! `0 ≤ αᵢ ≤ 1/(νn)`, `Σαᵢ = 1`, solved with pairwise coordinate updates
//! on the maximal violating pair.

use crate::kernel::Kernel;

const TOL: f64 = 1e-4;
const MAX_ITER_FACTOR: usize = 2_000;

/// A trained one-class SVM.
///
/// The decision function is `f(x) = Σ αᵢ k(xᵢ, x) − ρ`; `f(x) ≥ 0` means
/// `x` belongs to the training distribution (a legitimate user),
/// `f(x) < 0` flags an outlier (a spoofer).
///
/// # Example
///
/// ```
/// use echo_ml::oneclass::OneClassSvm;
/// use echo_ml::kernel::Kernel;
///
/// // Enrol a tight cluster near the origin.
/// let train: Vec<Vec<f64>> = (0..40)
///     .map(|i| vec![(i % 7) as f64 * 0.03, (i % 5) as f64 * 0.03])
///     .collect();
/// let svdd = OneClassSvm::train(&train, Kernel::Rbf { gamma: 1.0 }, 0.1);
/// assert!(svdd.is_inlier(&[0.1, 0.06]));
/// assert!(!svdd.is_inlier(&[5.0, 5.0]));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OneClassSvm {
    support_vectors: Vec<Vec<f64>>,
    coefficients: Vec<f64>,
    rho: f64,
    kernel: Kernel,
}

impl OneClassSvm {
    /// Trains on one-class samples with outlier-fraction parameter
    /// `nu ∈ (0, 1]`: at most a fraction ν of the training data will fall
    /// outside the learned boundary.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or `nu` is outside `(0, 1]`.
    pub fn train(xs: &[Vec<f64>], kernel: Kernel, nu: f64) -> Self {
        assert!(!xs.is_empty(), "training set is empty");
        assert!(nu > 0.0 && nu <= 1.0, "nu must lie in (0, 1]");

        let n = xs.len();
        let upper = 1.0 / (nu * n as f64);
        let k = kernel.gram(xs);

        // Feasible start: α = 1/n (≤ upper since ν ≤ 1).
        let mut alpha = vec![1.0 / n as f64; n];
        // g_i = Σ_j α_j K_ij — the dual gradient.
        let mut g: Vec<f64> = (0..n)
            .map(|i| k[i].iter().sum::<f64>() / n as f64)
            .collect();

        let max_iter = MAX_ITER_FACTOR * n.max(100);
        for _ in 0..max_iter {
            // Maximal violating pair: raise α where g is smallest (α < U),
            // lower it where g is largest (α > 0).
            let mut i_best: Option<(usize, f64)> = None;
            let mut j_best: Option<(usize, f64)> = None;
            for t in 0..n {
                if alpha[t] < upper - 1e-15 && i_best.is_none_or(|(_, v)| g[t] < v) {
                    i_best = Some((t, g[t]));
                }
                if alpha[t] > 1e-15 && j_best.is_none_or(|(_, v)| g[t] > v) {
                    j_best = Some((t, g[t]));
                }
            }
            let ((i, gi), (j, gj)) = match (i_best, j_best) {
                (Some(a), Some(b)) => (a, b),
                _ => break,
            };
            if gj - gi < TOL || i == j {
                break;
            }
            let eta = k[i][i] + k[j][j] - 2.0 * k[i][j];
            if eta <= 1e-12 {
                break;
            }
            // Move δ from α_j to α_i (keeps Σα = 1).
            let delta = ((gj - gi) / eta).min(upper - alpha[i]).min(alpha[j]);
            if delta <= 1e-16 {
                break;
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            for t in 0..n {
                g[t] += delta * (k[i][t] - k[j][t]);
            }
        }

        // ρ: the common value of g on free support vectors.
        let mut rho_sum = 0.0;
        let mut rho_count = 0usize;
        for t in 0..n {
            if alpha[t] > 1e-9 && alpha[t] < upper - 1e-9 {
                rho_sum += g[t];
                rho_count += 1;
            }
        }
        let rho = if rho_count > 0 {
            rho_sum / rho_count as f64
        } else {
            // All α at bounds: take the midpoint of the KKT interval.
            let hi = g
                .iter()
                .zip(&alpha)
                .filter(|(_, &a)| a > 1e-9)
                .map(|(&v, _)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            let lo = g
                .iter()
                .zip(&alpha)
                .filter(|(_, &a)| a < upper - 1e-9)
                .map(|(&v, _)| v)
                .fold(f64::INFINITY, f64::min);
            if hi.is_finite() && lo.is_finite() {
                (hi + lo) / 2.0
            } else if hi.is_finite() {
                hi
            } else {
                lo
            }
        };

        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for t in 0..n {
            if alpha[t] > 1e-9 {
                support_vectors.push(xs[t].clone());
                coefficients.push(alpha[t]);
            }
        }
        OneClassSvm {
            support_vectors,
            coefficients,
            rho,
            kernel,
        }
    }

    /// The decision value `f(x) = Σ αᵢ k(xᵢ, x) − ρ`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(self.coefficients.iter())
            .map(|(sv, &c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            - self.rho
    }

    /// `true` when `x` is accepted as belonging to the training class.
    pub fn is_inlier(&self, x: &[f64]) -> bool {
        self.decision(x) >= 0.0
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The retained support vectors, in training order.
    pub fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// The dual coefficients αᵢ, aligned with
    /// [`OneClassSvm::support_vectors`].
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The decision offset ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// The kernel the model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Reassembles a model from its components (the inverse of the
    /// accessors above) — the template store's deserialization hook.
    /// `decision` on the result is bit-identical to the original model's
    /// when the parts are preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if `support_vectors` and `coefficients` disagree in
    /// length.
    pub fn from_parts(
        support_vectors: Vec<Vec<f64>>,
        coefficients: Vec<f64>,
        rho: f64,
        kernel: Kernel,
    ) -> Self {
        assert_eq!(
            support_vectors.len(),
            coefficients.len(),
            "support vectors and coefficients disagree in length"
        );
        OneClassSvm {
            support_vectors,
            coefficients,
            rho,
            kernel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(cx: f64, cy: f64, n: usize, spread: f64, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt);
                let a = ((h & 0xFFFF) as f64 / 65536.0 - 0.5) * 2.0 * spread;
                let b = (((h >> 16) & 0xFFFF) as f64 / 65536.0 - 0.5) * 2.0 * spread;
                vec![cx + a, cy + b]
            })
            .collect()
    }

    #[test]
    fn accepts_training_region_rejects_far_points() {
        let train = cluster(0.0, 0.0, 60, 0.5, 1);
        let oc = OneClassSvm::train(&train, Kernel::Rbf { gamma: 1.0 }, 0.05);
        assert!(oc.is_inlier(&[0.0, 0.0]));
        assert!(oc.is_inlier(&[0.2, -0.2]));
        assert!(!oc.is_inlier(&[4.0, 4.0]));
        assert!(!oc.is_inlier(&[-3.0, 2.5]));
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        let train = cluster(0.0, 0.0, 100, 1.0, 2);
        for nu in [0.05, 0.2, 0.5] {
            let oc = OneClassSvm::train(&train, Kernel::Rbf { gamma: 0.5 }, nu);
            let rejected = train.iter().filter(|x| !oc.is_inlier(x)).count();
            let frac = rejected as f64 / train.len() as f64;
            // ν is an upper bound on training rejections (allow slack for
            // boundary ties).
            assert!(frac <= nu + 0.08, "nu={nu}: rejected {frac}");
        }
    }

    #[test]
    fn decision_decreases_with_distance_from_cluster() {
        let train = cluster(0.0, 0.0, 50, 0.4, 3);
        let oc = OneClassSvm::train(&train, Kernel::Rbf { gamma: 1.0 }, 0.1);
        let d0 = oc.decision(&[0.0, 0.0]);
        let d1 = oc.decision(&[1.0, 0.0]);
        let d2 = oc.decision(&[2.5, 0.0]);
        assert!(d0 > d1, "{d0} vs {d1}");
        assert!(d1 > d2, "{d1} vs {d2}");
    }

    #[test]
    fn two_enrolled_clusters_are_both_accepted() {
        // The multi-user SVDD gate trains on *all* legitimate users'
        // data; both clusters must be inliers.
        let mut train = cluster(-2.0, 0.0, 40, 0.4, 4);
        train.extend(cluster(2.0, 0.0, 40, 0.4, 5));
        let oc = OneClassSvm::train(&train, Kernel::Rbf { gamma: 1.5 }, 0.08);
        assert!(oc.is_inlier(&[-2.0, 0.1]));
        assert!(oc.is_inlier(&[2.1, 0.0]));
        // The midpoint between the clusters is outside the support.
        assert!(!oc.is_inlier(&[0.0, 0.0]));
        assert!(!oc.is_inlier(&[0.0, 4.0]));
    }

    #[test]
    fn training_is_deterministic() {
        let train = cluster(1.0, -1.0, 30, 0.3, 6);
        let a = OneClassSvm::train(&train, Kernel::Rbf { gamma: 1.0 }, 0.1);
        let b = OneClassSvm::train(&train, Kernel::Rbf { gamma: 1.0 }, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn single_sample_trains() {
        let oc = OneClassSvm::train(&[vec![1.0, 1.0]], Kernel::Rbf { gamma: 1.0 }, 0.5);
        assert!(oc.is_inlier(&[1.0, 1.0]));
        assert!(!oc.is_inlier(&[9.0, 9.0]));
    }

    #[test]
    #[should_panic(expected = "nu must lie")]
    fn invalid_nu_rejected() {
        let _ = OneClassSvm::train(&[vec![0.0]], Kernel::Linear, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_rejected() {
        let _ = OneClassSvm::train(&[], Kernel::Linear, 0.5);
    }
}
