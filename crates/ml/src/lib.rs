//! Learning substrate for the EchoImage reproduction.
//!
//! The paper extracts features from acoustic images with a *frozen*
//! pre-trained VGGish network (transfer learning, §V-D) and classifies
//! them with SVM/SVDD (§V-E). This crate implements both stages from
//! scratch:
//!
//! * [`image`] — grayscale images with bilinear resizing (the paper
//!   resizes acoustic images to the CNN input size),
//! * [`cnn`] — a VGG-style convolutional feature extractor whose weights
//!   are **fixed and deterministically seeded**. The paper never trains
//!   its VGGish layers — it only needs a frozen generic image→embedding
//!   map — and fixed random convolutional features are an established
//!   substitute when the pre-trained weights are unavailable (see
//!   DESIGN.md §1),
//! * [`svm`] — a binary soft-margin SVM trained with SMO, plus a
//!   one-vs-one multiclass wrapper (the paper's n-class user classifier),
//! * [`oneclass`] — a ν one-class SVM, the practical equivalent of the
//!   paper's Support Vector Domain Description spoofer gate,
//! * [`kernel`] — linear and RBF kernels,
//! * [`scaler`] — per-feature standardisation.
//!
//! # Example
//!
//! ```
//! use echo_ml::svm::SvmMulticlass;
//! use echo_ml::kernel::Kernel;
//!
//! // Two tiny point clouds.
//! let xs = vec![
//!     vec![0.0, 0.0], vec![0.2, 0.1], vec![0.1, 0.2],
//!     vec![1.0, 1.0], vec![0.9, 1.1], vec![1.1, 0.8],
//! ];
//! let ys = vec![0, 0, 0, 1, 1, 1];
//! let svm = SvmMulticlass::train(&xs, &ys, Kernel::Rbf { gamma: 1.0 }, 10.0);
//! assert_eq!(svm.predict(&[0.05, 0.05]), 0);
//! assert_eq!(svm.predict(&[1.05, 0.95]), 1);
//! ```

pub mod cnn;
pub mod image;
pub mod kernel;
pub mod knn;
pub mod oneclass;
pub mod pca;
pub mod platt;
pub mod scaler;
pub mod svm;

pub use cnn::{ConvScratch, FeatureExtractor};
pub use image::GrayImage;
pub use kernel::Kernel;
pub use knn::KnnClassifier;
pub use oneclass::OneClassSvm;
pub use pca::Pca;
pub use platt::PlattScaler;
pub use scaler::StandardScaler;
pub use svm::{SvmBinary, SvmMulticlass};
