//! A VGG-style convolutional feature extractor with fixed, seeded weights.
//!
//! The paper feeds acoustic images through a *frozen* pre-trained VGGish
//! network and taps the 5th pooling layer as a 25 088-dimensional
//! embedding (§V-D). The pre-trained weights are not available to a pure
//! Rust reproduction, so this extractor keeps the paper's structure —
//! stacked 3×3 convolutions + ReLU + 2×2 max-pooling, frozen weights,
//! embedding tapped after the last pool — but draws the weights once from
//! a seeded RNG with He scaling. Fixed random convolutional features are
//! a long-established substitute for pre-trained frozen features: the
//! trained part of the paper's classifier (the SVMs) sits entirely
//! downstream of this map.
//!
//! # Forward-pass engine
//!
//! The production forward pass lowers each 3×3 convolution to im2col +
//! GEMM over contiguous channel-major (CHW) buffers: the nine shifted
//! copies of every input plane are materialised as rows of a column
//! matrix with one row-copy per image row, and the convolution becomes a
//! `[out_ch × K]·[K × pixels]` matrix product evaluated as in-order
//! rank-1 updates. All intermediates live in a caller-reusable
//! [`ConvScratch`] arena — no per-layer allocation. Because the column
//! rows are ordered `(ky, kx, in_channel)`, exactly the naive loop's
//! accumulation order, and zero-padded terms add exact `±0.0`, the GEMM
//! path is **bit-identical** to the naive reference
//! ([`FeatureExtractor::extract_reference`]), which stays as the test
//! oracle and the benchmark baseline.

use crate::image::GrayImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A 3-D feature map: `height × width × channels`, row-major with channel
/// innermost.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    height: usize,
    width: usize,
    channels: usize,
    data: Vec<f64>,
}

impl FeatureMap {
    /// An all-zero map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(height: usize, width: usize, channels: usize) -> Self {
        assert!(
            height > 0 && width > 0 && channels > 0,
            "feature-map dimensions must be positive"
        );
        FeatureMap {
            height,
            width,
            channels,
            data: vec![0.0; height * width * channels],
        }
    }

    /// Height in rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width in columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Value at `(y, x, c)`.
    #[inline]
    pub fn get(&self, y: usize, x: usize, c: usize) -> f64 {
        debug_assert!(y < self.height && x < self.width && c < self.channels);
        self.data[(y * self.width + x) * self.channels + c]
    }

    /// Sets value at `(y, x, c)`.
    #[inline]
    pub fn set(&mut self, y: usize, x: usize, c: usize, v: f64) {
        debug_assert!(y < self.height && x < self.width && c < self.channels);
        self.data[(y * self.width + x) * self.channels + c] = v;
    }

    /// Flattens to a feature vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    fn from_image(img: &GrayImage) -> FeatureMap {
        let mut m = FeatureMap::zeros(img.height(), img.width(), 1);
        for y in 0..img.height() {
            for x in 0..img.width() {
                m.set(y, x, 0, img.get(x, y));
            }
        }
        m
    }
}

/// One 3×3 convolution layer (stride 1, zero padding 1) with ReLU.
#[derive(Debug, Clone, PartialEq)]
struct ConvLayer {
    in_channels: usize,
    out_channels: usize,
    /// `[out][in][ky][kx]` flattened (seeding order; naive path).
    weights: Vec<f64>,
    /// `[out][ky][kx][in]` flattened — the GEMM layout, matching the
    /// `(ky, kx, in)` row order of the im2col matrix so the planned
    /// product accumulates in exactly the naive loop's term order.
    weights_gemm: Vec<f64>,
    bias: Vec<f64>,
}

impl ConvLayer {
    fn seeded(in_channels: usize, out_channels: usize, rng: &mut ChaCha8Rng) -> Self {
        // He initialisation for ReLU nets: sd = sqrt(2 / fan_in).
        let fan_in = (in_channels * 9) as f64;
        let sd = (2.0 / fan_in).sqrt();
        let n = out_channels * in_channels * 9;
        let weights: Vec<f64> = (0..n).map(|_| sd * randn(rng)).collect();
        let bias = vec![0.0; out_channels];
        let mut layer = ConvLayer {
            in_channels,
            out_channels,
            weights,
            weights_gemm: Vec::new(),
            bias,
        };
        layer.weights_gemm = layer.repack_gemm();
        layer
    }

    /// Repacks `[out][in][ky][kx]` weights into the `[out][ky][kx][in]`
    /// GEMM layout.
    fn repack_gemm(&self) -> Vec<f64> {
        let k = self.in_channels * 9;
        let mut packed = vec![0.0; self.out_channels * k];
        for o in 0..self.out_channels {
            for ky in 0..3 {
                for kx in 0..3 {
                    for i in 0..self.in_channels {
                        packed[o * k + (ky * 3 + kx) * self.in_channels + i] = self.w(o, i, ky, kx);
                    }
                }
            }
        }
        packed
    }

    #[inline]
    fn w(&self, o: usize, i: usize, ky: usize, kx: usize) -> f64 {
        self.weights[((o * self.in_channels + i) * 3 + ky) * 3 + kx]
    }

    fn forward(&self, input: &FeatureMap) -> FeatureMap {
        assert_eq!(input.channels(), self.in_channels, "channel mismatch");
        let (h, w) = (input.height(), input.width());
        let mut out = FeatureMap::zeros(h, w, self.out_channels);
        for y in 0..h {
            for x in 0..w {
                for o in 0..self.out_channels {
                    let mut acc = self.bias[o];
                    for ky in 0..3 {
                        let iy = y as isize + ky as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..3 {
                            let ix = x as isize + kx as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            for i in 0..self.in_channels {
                                acc +=
                                    self.w(o, i, ky, kx) * input.get(iy as usize, ix as usize, i);
                            }
                        }
                    }
                    // ReLU fused into the layer.
                    out.set(y, x, o, acc.max(0.0));
                }
            }
        }
        out
    }

    /// im2col + GEMM forward over channel-major (CHW) planes.
    ///
    /// `input` holds `in_channels` contiguous `h × w` planes; the output
    /// (`out_channels` planes of the same size) is written into
    /// `scratch.out`. Bit-identical to [`ConvLayer::forward`]: the
    /// column rows are ordered `(ky, kx, in)` — the naive loop's term
    /// order — and the zero-padded border terms contribute exact `±0.0`,
    /// which leaves every partial sum's bits unchanged.
    fn forward_gemm(&self, input: &[f64], h: usize, w: usize, scratch: &mut ConvScratch) {
        debug_assert_eq!(input.len(), self.in_channels * h * w);
        let p = h * w;
        let k_rows = self.in_channels * 9;
        im2col_3x3(input, self.in_channels, h, w, &mut scratch.col);
        let col = &scratch.col;

        scratch.out.resize(self.out_channels * p, 0.0);
        let out = &mut scratch.out[..self.out_channels * p];

        // Register-tiled GEMM: a tile of XB output pixels lives in
        // registers while the whole k loop streams past, so each output
        // value touches memory once (the final store) instead of once
        // per k. The pixel tile is the *outer* loop: a tile's slice of
        // the column matrix (`k_rows × XB` ≈ a few KB) stays resident in
        // L1 while every output channel consumes it, instead of each
        // channel re-streaming the whole matrix from L2. Every
        // accumulator starts at the bias and adds its terms in ascending
        // k — the naive loop's exact order — and the fused ReLU at the
        // store matches the naive layer, so results are bit-identical;
        // tiling changes locality, never results.
        const XB: usize = 8;
        // SIMD path resolved once per forward pass. The GEMM tile
        // kernels run the whole k loop internally (the accumulator tile
        // stays in registers across it) and keep the naive loop's
        // per-element mul/add order — no FMA — so the `to_bits` oracle
        // against `forward` holds on both paths.
        let path = echo_dsp::simd::active();
        let mut x = 0;
        while x + XB <= p {
            // Pairs of output channels share each column-tile load,
            // cutting loads per multiply-add by a third.
            let mut o = 0;
            while o + 2 <= self.out_channels {
                let w0 = &self.weights_gemm[o * k_rows..(o + 1) * k_rows];
                let w1 = &self.weights_gemm[(o + 1) * k_rows..(o + 2) * k_rows];
                let mut acc0 = [self.bias[o]; XB];
                let mut acc1 = [self.bias[o + 1]; XB];
                echo_dsp::simd::gemm_tile2_with(path, &mut acc0, &mut acc1, w0, w1, col, p, x);
                for (d, a) in out[o * p + x..o * p + x + XB].iter_mut().zip(acc0) {
                    *d = a.max(0.0);
                }
                for (d, a) in out[(o + 1) * p + x..(o + 1) * p + x + XB]
                    .iter_mut()
                    .zip(acc1)
                {
                    *d = a.max(0.0);
                }
                o += 2;
            }
            if o < self.out_channels {
                let w_row = &self.weights_gemm[o * k_rows..(o + 1) * k_rows];
                let mut acc = [self.bias[o]; XB];
                echo_dsp::simd::gemm_tile_with(path, &mut acc, w_row, col, p, x);
                for (d, a) in out[o * p + x..o * p + x + XB].iter_mut().zip(acc) {
                    *d = a.max(0.0);
                }
            }
            x += XB;
        }
        // Tail pixels (p not a multiple of XB): same order, scalar.
        for x in x..p {
            for o in 0..self.out_channels {
                let w_row = &self.weights_gemm[o * k_rows..(o + 1) * k_rows];
                let mut a = self.bias[o];
                for (k, &wk) in w_row.iter().enumerate() {
                    a += wk * col[k * p + x];
                }
                out[o * p + x] = a.max(0.0);
            }
        }
    }
}

/// Materialises the 3×3 im2col matrix of a CHW input: row `(ky·3+kx)·C +
/// i` holds input plane `i` shifted by `(ky−1, kx−1)` with zero padding,
/// flattened over the `h × w` output pixels. Rows are built from whole
/// row copies (plus explicit border zeros), so construction is a series
/// of `memcpy`s rather than per-element gathers.
fn im2col_3x3(input: &[f64], channels: usize, h: usize, w: usize, col: &mut Vec<f64>) {
    let p = h * w;
    // Every element below is written unconditionally (copies or explicit
    // border zeros), so a reused buffer only needs the right length —
    // re-zeroing it first would be a wasted pass.
    col.resize(channels * 9 * p, 0.0);
    for ky in 0..3 {
        for kx in 0..3 {
            for i in 0..channels {
                let row = &mut col[((ky * 3 + kx) * channels + i) * p..][..p];
                let plane = &input[i * p..(i + 1) * p];
                // In flattened index space the whole shifted plane is
                // contiguous: row y of the shift reads plane row
                // y + (ky−1), i.e. `row[j] = plane[j + (ky−1)·w + (kx−1)]`
                // wherever that is in bounds. So build each row with ONE
                // bulk copy over the valid range, then repair the border:
                // the first/last row for ky ≠ 1, and the wrapped-around
                // first/last column for kx ≠ 1.
                let dy = ky as isize - 1;
                let dx = kx as isize - 1;
                // Valid flattened destination range for the row shift.
                let (y_start, y_end) = if dy < 0 {
                    (1, h)
                } else if dy > 0 {
                    (0, h - 1)
                } else {
                    (0, h)
                };
                let shift = dy * w as isize + dx;
                let dst_lo = (y_start * w) as isize;
                let dst_hi = (y_end * w) as isize;
                // Clip so the source indices stay inside the plane.
                let lo = dst_lo.max(-shift) as usize;
                let hi = dst_hi.min(p as isize - shift) as usize;
                if lo < hi {
                    let src_lo = (lo as isize + shift) as usize;
                    row[lo..hi].copy_from_slice(&plane[src_lo..src_lo + (hi - lo)]);
                }
                // Border rows outside the vertical range are all zero.
                if dy < 0 {
                    row[..w].fill(0.0);
                } else if dy > 0 {
                    row[(h - 1) * w..].fill(0.0);
                }
                // The bulk copy wrapped horizontally at row boundaries;
                // overwrite the out-of-bounds column with zeros.
                if dx < 0 {
                    for y in y_start..y_end {
                        row[y * w] = 0.0;
                    }
                } else if dx > 0 {
                    for y in y_start..y_end {
                        row[y * w + w - 1] = 0.0;
                    }
                }
                // lo/hi clipping may leave the very first/last element
                // of the valid range uncopied when w == 1; zero-fill any
                // remainder explicitly.
                if lo > dst_lo as usize {
                    row[dst_lo as usize..lo].fill(0.0);
                }
                if hi < dst_hi as usize {
                    row[hi..dst_hi as usize].fill(0.0);
                }
            }
        }
    }
}

/// 2×2 max-pool with stride 2 over CHW planes, replicating
/// [`max_pool_2x2`]'s edge clamping and `f64::max` evaluation order so
/// the two paths agree bit-for-bit. Returns the pooled `(h, w)`.
fn max_pool_2x2_chw(
    input: &[f64],
    channels: usize,
    h: usize,
    w: usize,
    out: &mut Vec<f64>,
) -> (usize, usize) {
    let ph = (h / 2).max(1);
    let pw = (w / 2).max(1);
    out.clear();
    out.reserve(channels * ph * pw);
    let even = h.is_multiple_of(2) && w.is_multiple_of(2);
    for c in 0..channels {
        let plane = &input[c * h * w..(c + 1) * h * w];
        if even {
            // No edge clamping needed: every 2×2 window is in bounds.
            // Same left-fold `max` order as the clamped loop below.
            for y in 0..ph {
                let row0 = &plane[y * 2 * w..(y * 2 + 1) * w];
                let row1 = &plane[(y * 2 + 1) * w..(y * 2 + 2) * w];
                for x in 0..pw {
                    let best = f64::NEG_INFINITY
                        .max(row0[x * 2])
                        .max(row0[x * 2 + 1])
                        .max(row1[x * 2])
                        .max(row1[x * 2 + 1]);
                    out.push(best);
                }
            }
            continue;
        }
        for y in 0..ph {
            for x in 0..pw {
                let mut best = f64::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = (y * 2 + dy).min(h - 1);
                        let ix = (x * 2 + dx).min(w - 1);
                        best = best.max(plane[iy * w + ix]);
                    }
                }
                out.push(best);
            }
        }
    }
    (ph, pw)
}

/// Reusable scratch arena for the im2col + GEMM forward pass.
///
/// Holds the column matrix and the ping/pong CHW activation buffers so a
/// whole forward pass — and, when reused across
/// [`FeatureExtractor::extract_batch`] items, a whole beep train —
/// performs no per-layer allocation. Scratch contents never leak between
/// images: every buffer is fully rewritten before it is read.
#[derive(Debug, Default, Clone)]
pub struct ConvScratch {
    col: Vec<f64>,
    ping: Vec<f64>,
    out: Vec<f64>,
    /// Log-compressed source pixels awaiting resize.
    pre: Vec<f64>,
    /// Bilinear column taps for the resize.
    taps: Vec<(usize, usize, f64)>,
}

impl ConvScratch {
    /// An empty arena; buffers grow to the working-set size on first use
    /// and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }
}

/// 2×2 max-pool with stride 2 (odd trailing rows/columns are dropped,
/// VGG-style).
fn max_pool_2x2(input: &FeatureMap) -> FeatureMap {
    let h = (input.height() / 2).max(1);
    let w = (input.width() / 2).max(1);
    let c = input.channels();
    let mut out = FeatureMap::zeros(h, w, c);
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                let mut best = f64::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = (y * 2 + dy).min(input.height() - 1);
                        let ix = (x * 2 + dx).min(input.width() - 1);
                        best = best.max(input.get(iy, ix, ch));
                    }
                }
                out.set(y, x, ch, best);
            }
        }
    }
    out
}

/// The frozen feature extractor: `(conv3×3 + ReLU + pool2×2) × stages`,
/// embedding tapped after the final pool (the paper taps VGGish's 5th
/// pool).
///
/// # Example
///
/// ```
/// use echo_ml::{FeatureExtractor, GrayImage};
///
/// let fx = FeatureExtractor::paper_default();
/// let img = GrayImage::from_fn(48, 48, |x, y| ((x * y) % 7) as f64);
/// let f = fx.extract(&img);
/// assert_eq!(f.len(), fx.feature_len());
/// // Frozen weights: extraction is deterministic.
/// assert_eq!(f, fx.extract(&img));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureExtractor {
    input_size: usize,
    layers: Vec<ConvLayer>,
    feature_len: usize,
}

impl FeatureExtractor {
    /// Builds an extractor with the given input resolution and channel
    /// progression, weights drawn deterministically from `seed`.
    ///
    /// `channels` lists the output channels of each conv stage; each
    /// stage halves the spatial resolution via max-pooling.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or the input is too small for the
    /// number of pooling stages.
    pub fn new(input_size: usize, channels: &[usize], seed: u64) -> Self {
        assert!(!channels.is_empty(), "need at least one conv stage");
        assert!(
            input_size >> channels.len() >= 1,
            "input too small for {} pooling stages",
            channels.len()
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC04E_F00D_0000_0000);
        let mut layers = Vec::with_capacity(channels.len());
        let mut in_ch = 1;
        for &out_ch in channels {
            layers.push(ConvLayer::seeded(in_ch, out_ch, &mut rng));
            in_ch = out_ch;
        }
        let final_side = input_size >> channels.len();
        let feature_len = final_side * final_side * in_ch;
        FeatureExtractor {
            input_size,
            layers,
            feature_len,
        }
    }

    /// The default used throughout the reproduction: 32×32 input, three
    /// conv stages (8, 16, 32 channels) → 4×4×32 = 512-dimensional
    /// embedding. A scaled-down VGGish: same topology, sized for the
    /// simulation's acoustic images.
    pub fn paper_default() -> Self {
        Self::new(32, &[8, 16, 32], 0x5EED_F00D)
    }

    /// Input resolution (images are resized to `input_size × input_size`).
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Length of the extracted feature vector.
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// Extracts the embedding for an image.
    ///
    /// Pixels are log-compressed against a *fixed* reference level,
    /// `ln(1 + p/p₀)`, then resized to the input resolution. Echo
    /// energies span orders of magnitude, so compression is needed — but
    /// the reference is fixed (not per-image), keeping the embedding
    /// sensitive to absolute echo strength. That sensitivity is what
    /// the paper's inverse-square augmentation (§V-F) manipulates; a
    /// per-image normalisation would silently make features
    /// distance-invariant and the augmentation a no-op.
    pub fn extract(&self, image: &GrayImage) -> Vec<f64> {
        thread_local! {
            // One arena per thread: repeated single-image calls pay no
            // per-call allocation. Harmless to correctness — every
            // scratch buffer is fully rewritten before it is read.
            static SCRATCH: std::cell::RefCell<ConvScratch> =
                std::cell::RefCell::new(ConvScratch::new());
        }
        SCRATCH.with(|s| self.extract_with_scratch(image, &mut s.borrow_mut()))
    }

    /// [`FeatureExtractor::extract`] reusing a caller-provided scratch
    /// arena, so repeated extractions allocate nothing per layer.
    pub fn extract_with_scratch(&self, image: &GrayImage, scratch: &mut ConvScratch) -> Vec<f64> {
        // Fused preprocess: log-compress into the arena, resize straight
        // into the layer-0 input plane (`ping`). Same values and order
        // as [`FeatureExtractor::preprocess`] — it builds two throwaway
        // images plus a taps vector per call; this path reuses the
        // arena's buffers instead, which is what makes batch extraction
        // allocation-free per image.
        scratch.pre.clear();
        scratch.pre.extend(
            image
                .pixels()
                .iter()
                .map(|&p| (1.0 + p.max(0.0) / PIXEL_REFERENCE).ln()),
        );
        // Layer 0 input: one CHW plane == the row-major resized pixels.
        crate::image::resize_into(
            &scratch.pre,
            image.width(),
            image.height(),
            self.input_size,
            self.input_size,
            &mut scratch.taps,
            &mut scratch.ping,
        );
        let (mut h, mut w) = (self.input_size, self.input_size);
        for layer in &self.layers {
            // Detach the input buffer so the arena can lend its other
            // buffers mutably; capacities survive the round trip.
            let input = std::mem::take(&mut scratch.ping);
            layer.forward_gemm(&input, h, w, scratch);
            scratch.ping = input;
            (h, w) = max_pool_2x2_chw(&scratch.out, layer.out_channels, h, w, &mut scratch.ping);
        }
        // Emit in the naive path's HWC order (channel innermost).
        let c = self.layers.last().map_or(1, |l| l.out_channels);
        let mut features = Vec::with_capacity(self.feature_len);
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    features.push(scratch.ping[(ch * h + y) * w + x]);
                }
            }
        }
        debug_assert_eq!(features.len(), self.feature_len);
        features
    }

    /// Extracts embeddings for a batch of images through one reused
    /// scratch arena. Identical (to the bit) to mapping
    /// [`FeatureExtractor::extract`] over the slice.
    pub fn extract_batch(&self, images: &[GrayImage]) -> Vec<Vec<f64>> {
        let mut scratch = ConvScratch::new();
        images
            .iter()
            .map(|img| self.extract_with_scratch(img, &mut scratch))
            .collect()
    }

    /// The naive six-deep-loop forward pass the GEMM engine replaced.
    ///
    /// Kept compiled (not just under `#[cfg(test)]`) because it serves
    /// two roles: the reference oracle the property tests pin
    /// [`FeatureExtractor::extract`] against bit-for-bit, and the
    /// pre-optimisation baseline `feature_bench` prices the speedup
    /// over.
    pub fn extract_reference(&self, image: &GrayImage) -> Vec<f64> {
        let resized = self.preprocess(image);
        let mut m = FeatureMap::from_image(&resized);
        for layer in &self.layers {
            m = layer.forward(&m);
            m = max_pool_2x2(&m);
        }
        debug_assert_eq!(m.data.len(), self.feature_len);
        m.into_vec()
    }

    /// Reference preprocessing: log compression against the fixed
    /// reference level, then bilinear resize to the network input.
    /// [`FeatureExtractor::extract_reference`] keeps this allocating
    /// form as the oracle; the production path fuses the same values
    /// into the [`ConvScratch`] arena inside
    /// [`FeatureExtractor::extract_with_scratch`].
    fn preprocess(&self, image: &GrayImage) -> GrayImage {
        // Row-major map over the raw pixels: same values and order as a
        // per-pixel `from_fn`, without the bounds checks.
        let data = image
            .pixels()
            .iter()
            .map(|&p| (1.0 + p.max(0.0) / PIXEL_REFERENCE).ln())
            .collect();
        GrayImage::from_data(image.width(), image.height(), data)
            .resize(self.input_size, self.input_size)
    }
}

/// Fixed pixel reference level for log compression (in acoustic-image
/// pixel units — roughly the noise-floor pixel energy of the simulated
/// scenes).
pub const PIXEL_REFERENCE: f64 = 0.05;

fn randn(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extractor_is_deterministic() {
        let a = FeatureExtractor::paper_default();
        let b = FeatureExtractor::paper_default();
        let img = GrayImage::from_fn(40, 40, |x, y| (x as f64 - y as f64).sin());
        assert_eq!(a.extract(&img), b.extract(&img));
    }

    #[test]
    fn different_seeds_give_different_features() {
        let a = FeatureExtractor::new(32, &[8, 16], 1);
        let b = FeatureExtractor::new(32, &[8, 16], 2);
        let img = GrayImage::from_fn(32, 32, |x, y| (x * y) as f64);
        assert_ne!(a.extract(&img), b.extract(&img));
    }

    #[test]
    fn feature_length_matches_architecture() {
        let fx = FeatureExtractor::new(32, &[8, 16, 32], 0);
        assert_eq!(fx.feature_len(), 4 * 4 * 32);
        let f = fx.extract(&GrayImage::zeros(32, 32));
        assert_eq!(f.len(), 512);
        let fx2 = FeatureExtractor::new(64, &[4], 0);
        assert_eq!(fx2.feature_len(), 32 * 32 * 4);
    }

    #[test]
    fn relu_makes_features_nonnegative() {
        let fx = FeatureExtractor::paper_default();
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 13 + y * 7) % 11) as f64 - 5.0);
        let f = fx.extract(&img);
        assert!(f.iter().all(|&v| v >= 0.0));
        assert!(f.iter().any(|&v| v > 0.0), "all-dead features");
    }

    #[test]
    fn similar_images_have_similar_features() {
        let fx = FeatureExtractor::paper_default();
        let base = GrayImage::from_fn(32, 32, |x, y| ((x + y) % 9) as f64);
        let mut close = base.clone();
        close.set(5, 5, close.get(5, 5) + 0.01);
        let far = GrayImage::from_fn(32, 32, |x, y| ((x * y) % 5) as f64);

        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let fb = fx.extract(&base);
        let fc = fx.extract(&close);
        let ff = fx.extract(&far);
        assert!(d(&fb, &fc) < d(&fb, &ff) * 0.2);
    }

    #[test]
    fn features_are_amplitude_sensitive() {
        // The §V-F augmentation manipulates absolute pixel energy, so
        // the embedding must NOT be scale-invariant.
        let fx = FeatureExtractor::paper_default();
        let img = GrayImage::from_fn(32, 32, |x, y| 0.2 + ((x + y) % 7) as f64 * 0.1);
        let brighter = GrayImage::from_fn(32, 32, |x, y| 4.0 * (0.2 + ((x + y) % 7) as f64 * 0.1));
        let fa = fx.extract(&img);
        let fb = fx.extract(&brighter);
        let diff: f64 = fa.iter().zip(&fb).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            diff > 1.0,
            "embedding ignored a 4x amplitude change: {diff}"
        );
    }

    #[test]
    fn images_are_resized_to_input() {
        let fx = FeatureExtractor::paper_default();
        let small = GrayImage::from_fn(10, 10, |x, _| x as f64);
        let large = GrayImage::from_fn(100, 100, |x, _| x as f64 / 10.0);
        assert_eq!(fx.extract(&small).len(), fx.feature_len());
        assert_eq!(fx.extract(&large).len(), fx.feature_len());
    }

    #[test]
    fn conv_layer_detects_structure() {
        // A conv stage must respond differently to flat vs textured input.
        let fx = FeatureExtractor::new(16, &[8], 3);
        let flat = GrayImage::from_fn(16, 16, |_, _| 1.0);
        let tex = GrayImage::from_fn(16, 16, |x, y| ((x ^ y) & 1) as f64);
        let ff = fx.extract(&flat);
        let ft = fx.extract(&tex);
        assert_ne!(ff, ft);
    }

    #[test]
    fn max_pool_halves_and_takes_maxima() {
        let mut m = FeatureMap::zeros(4, 4, 1);
        m.set(0, 0, 0, 5.0);
        m.set(3, 3, 0, 7.0);
        let p = max_pool_2x2(&m);
        assert_eq!(p.height(), 2);
        assert_eq!(p.width(), 2);
        assert_eq!(p.get(0, 0, 0), 5.0);
        assert_eq!(p.get(1, 1, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_many_pools_rejected() {
        let _ = FeatureExtractor::new(8, &[4, 4, 4, 4], 0);
    }

    #[test]
    fn gemm_path_is_bit_identical_to_reference() {
        let fx = FeatureExtractor::paper_default();
        let img = GrayImage::from_fn(40, 40, |x, y| ((x * 7 + y * 3) % 13) as f64 * 0.1 - 0.2);
        let gemm = fx.extract(&img);
        let naive = fx.extract_reference(&img);
        assert_eq!(gemm.len(), naive.len());
        for (a, b) in gemm.iter().zip(naive.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "GEMM path diverged from oracle");
        }
    }

    #[test]
    fn fused_preprocess_is_bit_identical_to_reference_across_sizes() {
        // One scratch across images of different shapes — including the
        // identity-size case that skips the resize arithmetic — must
        // reproduce the allocating reference path bit for bit.
        let fx = FeatureExtractor::paper_default();
        let mut scratch = ConvScratch::new();
        let shapes = [(48usize, 48usize), (32, 32), (17, 53), (64, 9)];
        for (i, &(w, h)) in shapes.iter().enumerate() {
            let img =
                GrayImage::from_fn(w, h, |x, y| ((x * 5 + y * 11 + i) % 13) as f64 * 0.3 - 0.4);
            let fused = fx.extract_with_scratch(&img, &mut scratch);
            let oracle = fx.extract_reference(&img);
            assert_eq!(fused.len(), oracle.len());
            for (a, b) in fused.iter().zip(&oracle) {
                assert_eq!(a.to_bits(), b.to_bits(), "fused preprocess diverged");
            }
        }
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_images() {
        let fx = FeatureExtractor::paper_default();
        let a = GrayImage::from_fn(32, 32, |x, _| x as f64);
        let b = GrayImage::from_fn(32, 32, |_, y| (y as f64).sin() + 1.0);
        let mut scratch = ConvScratch::new();
        // Warm the scratch with a different image first.
        let _ = fx.extract_with_scratch(&a, &mut scratch);
        let warm = fx.extract_with_scratch(&b, &mut scratch);
        assert_eq!(warm, fx.extract(&b));
        let batch = fx.extract_batch(&[a.clone(), b.clone()]);
        assert_eq!(batch[0], fx.extract(&a));
        assert_eq!(batch[1], fx.extract(&b));
    }
}
