//! A VGG-style convolutional feature extractor with fixed, seeded weights.
//!
//! The paper feeds acoustic images through a *frozen* pre-trained VGGish
//! network and taps the 5th pooling layer as a 25 088-dimensional
//! embedding (§V-D). The pre-trained weights are not available to a pure
//! Rust reproduction, so this extractor keeps the paper's structure —
//! stacked 3×3 convolutions + ReLU + 2×2 max-pooling, frozen weights,
//! embedding tapped after the last pool — but draws the weights once from
//! a seeded RNG with He scaling. Fixed random convolutional features are
//! a long-established substitute for pre-trained frozen features: the
//! trained part of the paper's classifier (the SVMs) sits entirely
//! downstream of this map.

use crate::image::GrayImage;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A 3-D feature map: `height × width × channels`, row-major with channel
/// innermost.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    height: usize,
    width: usize,
    channels: usize,
    data: Vec<f64>,
}

impl FeatureMap {
    /// An all-zero map.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn zeros(height: usize, width: usize, channels: usize) -> Self {
        assert!(
            height > 0 && width > 0 && channels > 0,
            "feature-map dimensions must be positive"
        );
        FeatureMap {
            height,
            width,
            channels,
            data: vec![0.0; height * width * channels],
        }
    }

    /// Height in rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width in columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Value at `(y, x, c)`.
    #[inline]
    pub fn get(&self, y: usize, x: usize, c: usize) -> f64 {
        debug_assert!(y < self.height && x < self.width && c < self.channels);
        self.data[(y * self.width + x) * self.channels + c]
    }

    /// Sets value at `(y, x, c)`.
    #[inline]
    pub fn set(&mut self, y: usize, x: usize, c: usize, v: f64) {
        debug_assert!(y < self.height && x < self.width && c < self.channels);
        self.data[(y * self.width + x) * self.channels + c] = v;
    }

    /// Flattens to a feature vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    fn from_image(img: &GrayImage) -> FeatureMap {
        let mut m = FeatureMap::zeros(img.height(), img.width(), 1);
        for y in 0..img.height() {
            for x in 0..img.width() {
                m.set(y, x, 0, img.get(x, y));
            }
        }
        m
    }
}

/// One 3×3 convolution layer (stride 1, zero padding 1) with ReLU.
#[derive(Debug, Clone, PartialEq)]
struct ConvLayer {
    in_channels: usize,
    out_channels: usize,
    /// `[out][in][ky][kx]` flattened.
    weights: Vec<f64>,
    bias: Vec<f64>,
}

impl ConvLayer {
    fn seeded(in_channels: usize, out_channels: usize, rng: &mut ChaCha8Rng) -> Self {
        // He initialisation for ReLU nets: sd = sqrt(2 / fan_in).
        let fan_in = (in_channels * 9) as f64;
        let sd = (2.0 / fan_in).sqrt();
        let n = out_channels * in_channels * 9;
        let weights = (0..n).map(|_| sd * randn(rng)).collect();
        let bias = vec![0.0; out_channels];
        ConvLayer {
            in_channels,
            out_channels,
            weights,
            bias,
        }
    }

    #[inline]
    fn w(&self, o: usize, i: usize, ky: usize, kx: usize) -> f64 {
        self.weights[((o * self.in_channels + i) * 3 + ky) * 3 + kx]
    }

    fn forward(&self, input: &FeatureMap) -> FeatureMap {
        assert_eq!(input.channels(), self.in_channels, "channel mismatch");
        let (h, w) = (input.height(), input.width());
        let mut out = FeatureMap::zeros(h, w, self.out_channels);
        for y in 0..h {
            for x in 0..w {
                for o in 0..self.out_channels {
                    let mut acc = self.bias[o];
                    for ky in 0..3 {
                        let iy = y as isize + ky as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..3 {
                            let ix = x as isize + kx as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            for i in 0..self.in_channels {
                                acc +=
                                    self.w(o, i, ky, kx) * input.get(iy as usize, ix as usize, i);
                            }
                        }
                    }
                    // ReLU fused into the layer.
                    out.set(y, x, o, acc.max(0.0));
                }
            }
        }
        out
    }
}

/// 2×2 max-pool with stride 2 (odd trailing rows/columns are dropped,
/// VGG-style).
fn max_pool_2x2(input: &FeatureMap) -> FeatureMap {
    let h = (input.height() / 2).max(1);
    let w = (input.width() / 2).max(1);
    let c = input.channels();
    let mut out = FeatureMap::zeros(h, w, c);
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                let mut best = f64::NEG_INFINITY;
                for dy in 0..2 {
                    for dx in 0..2 {
                        let iy = (y * 2 + dy).min(input.height() - 1);
                        let ix = (x * 2 + dx).min(input.width() - 1);
                        best = best.max(input.get(iy, ix, ch));
                    }
                }
                out.set(y, x, ch, best);
            }
        }
    }
    out
}

/// The frozen feature extractor: `(conv3×3 + ReLU + pool2×2) × stages`,
/// embedding tapped after the final pool (the paper taps VGGish's 5th
/// pool).
///
/// # Example
///
/// ```
/// use echo_ml::{FeatureExtractor, GrayImage};
///
/// let fx = FeatureExtractor::paper_default();
/// let img = GrayImage::from_fn(48, 48, |x, y| ((x * y) % 7) as f64);
/// let f = fx.extract(&img);
/// assert_eq!(f.len(), fx.feature_len());
/// // Frozen weights: extraction is deterministic.
/// assert_eq!(f, fx.extract(&img));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureExtractor {
    input_size: usize,
    layers: Vec<ConvLayer>,
    feature_len: usize,
}

impl FeatureExtractor {
    /// Builds an extractor with the given input resolution and channel
    /// progression, weights drawn deterministically from `seed`.
    ///
    /// `channels` lists the output channels of each conv stage; each
    /// stage halves the spatial resolution via max-pooling.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is empty or the input is too small for the
    /// number of pooling stages.
    pub fn new(input_size: usize, channels: &[usize], seed: u64) -> Self {
        assert!(!channels.is_empty(), "need at least one conv stage");
        assert!(
            input_size >> channels.len() >= 1,
            "input too small for {} pooling stages",
            channels.len()
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC04E_F00D_0000_0000);
        let mut layers = Vec::with_capacity(channels.len());
        let mut in_ch = 1;
        for &out_ch in channels {
            layers.push(ConvLayer::seeded(in_ch, out_ch, &mut rng));
            in_ch = out_ch;
        }
        let final_side = input_size >> channels.len();
        let feature_len = final_side * final_side * in_ch;
        FeatureExtractor {
            input_size,
            layers,
            feature_len,
        }
    }

    /// The default used throughout the reproduction: 32×32 input, three
    /// conv stages (8, 16, 32 channels) → 4×4×32 = 512-dimensional
    /// embedding. A scaled-down VGGish: same topology, sized for the
    /// simulation's acoustic images.
    pub fn paper_default() -> Self {
        Self::new(32, &[8, 16, 32], 0x5EED_F00D)
    }

    /// Input resolution (images are resized to `input_size × input_size`).
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Length of the extracted feature vector.
    pub fn feature_len(&self) -> usize {
        self.feature_len
    }

    /// Extracts the embedding for an image.
    ///
    /// Pixels are log-compressed against a *fixed* reference level,
    /// `ln(1 + p/p₀)`, then resized to the input resolution. Echo
    /// energies span orders of magnitude, so compression is needed — but
    /// the reference is fixed (not per-image), keeping the embedding
    /// sensitive to absolute echo strength. That sensitivity is what
    /// the paper's inverse-square augmentation (§V-F) manipulates; a
    /// per-image normalisation would silently make features
    /// distance-invariant and the augmentation a no-op.
    pub fn extract(&self, image: &GrayImage) -> Vec<f64> {
        let compressed = GrayImage::from_fn(image.width(), image.height(), |x, y| {
            (1.0 + image.get(x, y).max(0.0) / PIXEL_REFERENCE).ln()
        });
        let resized = compressed.resize(self.input_size, self.input_size);
        let mut m = FeatureMap::from_image(&resized);
        for layer in &self.layers {
            m = layer.forward(&m);
            m = max_pool_2x2(&m);
        }
        debug_assert_eq!(m.data.len(), self.feature_len);
        m.into_vec()
    }
}

/// Fixed pixel reference level for log compression (in acoustic-image
/// pixel units — roughly the noise-floor pixel energy of the simulated
/// scenes).
pub const PIXEL_REFERENCE: f64 = 0.05;

fn randn(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extractor_is_deterministic() {
        let a = FeatureExtractor::paper_default();
        let b = FeatureExtractor::paper_default();
        let img = GrayImage::from_fn(40, 40, |x, y| (x as f64 - y as f64).sin());
        assert_eq!(a.extract(&img), b.extract(&img));
    }

    #[test]
    fn different_seeds_give_different_features() {
        let a = FeatureExtractor::new(32, &[8, 16], 1);
        let b = FeatureExtractor::new(32, &[8, 16], 2);
        let img = GrayImage::from_fn(32, 32, |x, y| (x * y) as f64);
        assert_ne!(a.extract(&img), b.extract(&img));
    }

    #[test]
    fn feature_length_matches_architecture() {
        let fx = FeatureExtractor::new(32, &[8, 16, 32], 0);
        assert_eq!(fx.feature_len(), 4 * 4 * 32);
        let f = fx.extract(&GrayImage::zeros(32, 32));
        assert_eq!(f.len(), 512);
        let fx2 = FeatureExtractor::new(64, &[4], 0);
        assert_eq!(fx2.feature_len(), 32 * 32 * 4);
    }

    #[test]
    fn relu_makes_features_nonnegative() {
        let fx = FeatureExtractor::paper_default();
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 13 + y * 7) % 11) as f64 - 5.0);
        let f = fx.extract(&img);
        assert!(f.iter().all(|&v| v >= 0.0));
        assert!(f.iter().any(|&v| v > 0.0), "all-dead features");
    }

    #[test]
    fn similar_images_have_similar_features() {
        let fx = FeatureExtractor::paper_default();
        let base = GrayImage::from_fn(32, 32, |x, y| ((x + y) % 9) as f64);
        let mut close = base.clone();
        close.set(5, 5, close.get(5, 5) + 0.01);
        let far = GrayImage::from_fn(32, 32, |x, y| ((x * y) % 5) as f64);

        let d = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let fb = fx.extract(&base);
        let fc = fx.extract(&close);
        let ff = fx.extract(&far);
        assert!(d(&fb, &fc) < d(&fb, &ff) * 0.2);
    }

    #[test]
    fn features_are_amplitude_sensitive() {
        // The §V-F augmentation manipulates absolute pixel energy, so
        // the embedding must NOT be scale-invariant.
        let fx = FeatureExtractor::paper_default();
        let img = GrayImage::from_fn(32, 32, |x, y| 0.2 + ((x + y) % 7) as f64 * 0.1);
        let brighter = GrayImage::from_fn(32, 32, |x, y| 4.0 * (0.2 + ((x + y) % 7) as f64 * 0.1));
        let fa = fx.extract(&img);
        let fb = fx.extract(&brighter);
        let diff: f64 = fa.iter().zip(&fb).map(|(a, b)| (a - b).abs()).sum();
        assert!(
            diff > 1.0,
            "embedding ignored a 4x amplitude change: {diff}"
        );
    }

    #[test]
    fn images_are_resized_to_input() {
        let fx = FeatureExtractor::paper_default();
        let small = GrayImage::from_fn(10, 10, |x, _| x as f64);
        let large = GrayImage::from_fn(100, 100, |x, _| x as f64 / 10.0);
        assert_eq!(fx.extract(&small).len(), fx.feature_len());
        assert_eq!(fx.extract(&large).len(), fx.feature_len());
    }

    #[test]
    fn conv_layer_detects_structure() {
        // A conv stage must respond differently to flat vs textured input.
        let fx = FeatureExtractor::new(16, &[8], 3);
        let flat = GrayImage::from_fn(16, 16, |_, _| 1.0);
        let tex = GrayImage::from_fn(16, 16, |x, y| ((x ^ y) & 1) as f64);
        let ff = fx.extract(&flat);
        let ft = fx.extract(&tex);
        assert_ne!(ff, ft);
    }

    #[test]
    fn max_pool_halves_and_takes_maxima() {
        let mut m = FeatureMap::zeros(4, 4, 1);
        m.set(0, 0, 0, 5.0);
        m.set(3, 3, 0, 7.0);
        let p = max_pool_2x2(&m);
        assert_eq!(p.height(), 2);
        assert_eq!(p.width(), 2);
        assert_eq!(p.get(0, 0, 0), 5.0);
        assert_eq!(p.get(1, 1, 0), 7.0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn too_many_pools_rejected() {
        let _ = FeatureExtractor::new(8, &[4, 4, 4, 4], 0);
    }
}
