//! Platt scaling: calibrating SVM decision values into probabilities.
//!
//! Fits `P(y=+1 | f) = 1 / (1 + exp(A·f + B))` to held-out decision
//! values by regularised maximum likelihood (Platt 1999, with the
//! Lin–Weng–Keerthi target smoothing), so downstream policy can reason
//! about authentication *confidence* instead of a hard sign.

/// A fitted sigmoid calibration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PlattScaler {
    /// Sigmoid slope (negative for well-oriented decision values).
    pub a: f64,
    /// Sigmoid offset.
    pub b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid on `(decision_value, is_positive)` pairs with
    /// Newton iterations.
    ///
    /// # Panics
    ///
    /// Panics if no samples are given or a class is missing.
    pub fn fit(scores: &[f64], labels: &[bool]) -> Self {
        assert_eq!(scores.len(), labels.len(), "score/label count mismatch");
        assert!(!scores.is_empty(), "need calibration samples");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        assert!(n_pos > 0 && n_neg > 0, "need both classes for calibration");

        // Smoothed targets (avoid log(0)).
        let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let t_neg = 1.0 / (n_neg as f64 + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|&l| if l { t_pos } else { t_neg })
            .collect();

        // Newton's method on (A, B).
        let mut a = 0.0f64;
        let mut b = ((n_neg as f64 + 1.0) / (n_pos as f64 + 1.0)).ln();
        for _ in 0..100 {
            let (mut g_a, mut g_b) = (0.0f64, 0.0f64);
            let (mut h_aa, mut h_ab, mut h_bb) = (1e-12f64, 0.0f64, 1e-12f64);
            for (&f, &t) in scores.iter().zip(targets.iter()) {
                let z = a * f + b;
                // p = 1/(1+e^z); stable both tails.
                let p = if z >= 0.0 {
                    let e = (-z).exp();
                    e / (1.0 + e)
                } else {
                    1.0 / (1.0 + z.exp())
                };
                let d = t - p; // ∂ℓ/∂z of the negative log-likelihood
                g_a += f * d;
                g_b += d;
                let w = p * (1.0 - p);
                h_aa += f * f * w;
                h_ab += f * w;
                h_bb += w;
            }
            // Solve the 2×2 Newton system.
            let det = h_aa * h_bb - h_ab * h_ab;
            if det.abs() < 1e-300 {
                break;
            }
            let da = (h_bb * g_a - h_ab * g_b) / det;
            let db = (h_aa * g_b - h_ab * g_a) / det;
            a -= da;
            b -= db;
            if da.abs() < 1e-10 && db.abs() < 1e-10 {
                break;
            }
        }
        PlattScaler { a, b }
    }

    /// The calibrated probability that a sample with decision value `f`
    /// is positive.
    pub fn probability(&self, f: f64) -> f64 {
        let z = self.a * f + self.b;
        if z >= 0.0 {
            let e = (-z).exp();
            e / (1.0 + e)
        } else {
            1.0 / (1.0 + z.exp())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<f64>, Vec<bool>) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..40 {
            let jitter = (i % 7) as f64 * 0.05;
            scores.push(1.0 + jitter);
            labels.push(true);
            scores.push(-1.0 - jitter);
            labels.push(false);
        }
        (scores, labels)
    }

    #[test]
    fn probabilities_are_oriented_and_bounded() {
        let (s, l) = separable();
        let p = PlattScaler::fit(&s, &l);
        assert!(p.probability(2.0) > 0.9);
        assert!(p.probability(-2.0) < 0.1);
        for f in [-5.0, -1.0, 0.0, 1.0, 5.0] {
            let pr = p.probability(f);
            assert!((0.0..=1.0).contains(&pr));
        }
    }

    #[test]
    fn probability_is_monotone_in_score() {
        let (s, l) = separable();
        let p = PlattScaler::fit(&s, &l);
        let mut last = 0.0;
        for i in -10..=10 {
            let pr = p.probability(i as f64 * 0.5);
            assert!(pr >= last - 1e-12, "non-monotone at {i}");
            last = pr;
        }
    }

    #[test]
    fn decision_boundary_probability_is_near_half() {
        let (s, l) = separable();
        let p = PlattScaler::fit(&s, &l);
        let pr = p.probability(0.0);
        assert!((pr - 0.5).abs() < 0.1, "p(0) = {pr}");
    }

    #[test]
    fn overlapping_classes_yield_soft_probabilities() {
        // Heavy overlap: probabilities must stay away from 0/1 in the
        // overlap region.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            let x = (i as f64 / 50.0 - 0.5) * 4.0;
            scores.push(x + 0.3);
            labels.push(true);
            scores.push(x - 0.3);
            labels.push(false);
        }
        let p = PlattScaler::fit(&scores, &labels);
        let mid = p.probability(0.0);
        assert!(mid > 0.25 && mid < 0.75, "overlap p(0) = {mid}");
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let _ = PlattScaler::fit(&[1.0, 2.0], &[true, true]);
    }
}
