//! Per-feature standardisation.
//!
//! SVMs with RBF kernels need comparably scaled features; the scaler is
//! fit on enrolment data and applied to every authentication query.

/// A fitted per-feature standardiser: `x → (x − μ) / σ`.
///
/// Features with zero variance pass through centred (σ treated as 1).
///
/// # Example
///
/// ```
/// use echo_ml::StandardScaler;
///
/// let data = vec![vec![1.0, 10.0], vec![3.0, 10.0]];
/// let scaler = StandardScaler::fit(&data);
/// let t = scaler.transform(&[2.0, 10.0]);
/// assert!(t[0].abs() < 1e-12);   // the mean maps to zero
/// assert!(t[1].abs() < 1e-12);   // constant feature: centred, not scaled
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Centers per feature but scales by one *global* standard deviation
    /// (the RMS of the per-feature deviations).
    ///
    /// Per-feature scaling equalises every dimension's variance — which
    /// inflates noise-only dimensions and destroys the distance contrast
    /// a kernel method relies on. Global scaling preserves the relative
    /// information content of each dimension while still normalising the
    /// overall feature magnitude.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have unequal lengths.
    pub fn fit_global(data: &[Vec<f64>]) -> Self {
        let mut s = Self::fit(data);
        let mean_var = s.stds.iter().map(|v| v * v).sum::<f64>() / s.stds.len().max(1) as f64;
        let global = mean_var.sqrt().max(1e-12);
        for v in &mut s.stds {
            *v = global;
        }
        s
    }

    /// Fits means and standard deviations on `data` (rows = samples).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows have unequal lengths.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        assert!(!data.is_empty(), "cannot fit a scaler on no data");
        let d = data[0].len();
        assert!(
            data.iter().all(|r| r.len() == d),
            "rows must have equal lengths"
        );
        let n = data.len() as f64;
        let mut means = vec![0.0; d];
        for row in data {
            for (m, &x) in means.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in data {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Per-feature means subtracted by [`StandardScaler::transform`].
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-feature divisors applied by [`StandardScaler::transform`]
    /// (all equal after [`StandardScaler::fit_global`]).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Reassembles a scaler from its components — the template store's
    /// deserialization hook. `transform` on the result is bit-identical
    /// to the original scaler's when the parts are preserved exactly.
    ///
    /// # Panics
    ///
    /// Panics if `means` and `stds` disagree in length or are empty.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Self {
        assert_eq!(means.len(), stds.len(), "means/stds length mismatch");
        assert!(!means.is_empty(), "scaler needs at least one feature");
        StandardScaler { means, stds }
    }

    /// Standardises one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "feature length mismatch");
        x.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Standardises a batch of samples.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformed_data_has_zero_mean_unit_variance() {
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 100.0 - 2.0 * i as f64])
            .collect();
        let scaler = StandardScaler::fit(&data);
        let t = scaler.transform_batch(&data);
        for j in 0..2 {
            let mean: f64 = t.iter().map(|r| r[j]).sum::<f64>() / 50.0;
            let var: f64 = t.iter().map(|r| (r[j] - mean).powi(2)).sum::<f64>() / 50.0;
            assert!(mean.abs() < 1e-9, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "var {var}");
        }
    }

    #[test]
    fn constant_features_are_centred_not_scaled() {
        let data = vec![vec![5.0], vec![5.0], vec![5.0]];
        let scaler = StandardScaler::fit(&data);
        assert_eq!(scaler.transform(&[5.0]), vec![0.0]);
        assert_eq!(scaler.transform(&[6.0]), vec![1.0]);
    }

    #[test]
    fn transform_is_affine() {
        let data = vec![vec![0.0], vec![10.0]];
        let scaler = StandardScaler::fit(&data);
        let a = scaler.transform(&[2.0])[0];
        let b = scaler.transform(&[4.0])[0];
        let c = scaler.transform(&[6.0])[0];
        assert!((c - b - (b - a)).abs() < 1e-12, "equal spacing preserved");
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_fit_panics() {
        let _ = StandardScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_dim_transform_panics() {
        let scaler = StandardScaler::fit(&[vec![1.0, 2.0]]);
        let _ = scaler.transform(&[1.0]);
    }
}
