//! Soft-margin SVM trained with Sequential Minimal Optimization.
//!
//! The paper's multi-user stage is an n-class SVM over CNN features
//! (§V-E). We implement the binary C-SVC dual with an SMO solver using
//! maximal-violating-pair working-set selection (the LIBSVM strategy) and
//! compose classes one-vs-one with majority voting.

use crate::kernel::Kernel;

/// Convergence tolerance for the KKT gap.
const TOL: f64 = 1e-3;
/// Hard cap on SMO iterations (defensive; typical problems converge in
/// a few times `n` iterations).
const MAX_ITER_FACTOR: usize = 2_000;

/// A trained binary soft-margin SVM.
///
/// # Example
///
/// ```
/// use echo_ml::svm::SvmBinary;
/// use echo_ml::kernel::Kernel;
///
/// let xs = vec![vec![-1.0], vec![-0.8], vec![0.8], vec![1.0]];
/// let ys = vec![-1.0, -1.0, 1.0, 1.0];
/// let svm = SvmBinary::train(&xs, &ys, Kernel::Linear, 1.0);
/// assert_eq!(svm.predict(&[-0.9]), -1.0);
/// assert_eq!(svm.predict(&[0.9]), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SvmBinary {
    support_vectors: Vec<Vec<f64>>,
    /// `α_i · y_i` for each support vector.
    coefficients: Vec<f64>,
    bias: f64,
    kernel: Kernel,
}

impl SvmBinary {
    /// Trains on samples `xs` with labels `ys ∈ {−1, +1}` and
    /// regularisation parameter `C`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or inconsistent, labels are not ±1,
    /// only one class is present, or `C` is not positive.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], kernel: Kernel, c: f64) -> Self {
        assert!(!xs.is_empty(), "training set is empty");
        assert_eq!(xs.len(), ys.len(), "sample/label count mismatch");
        assert!(c > 0.0, "C must be positive");
        assert!(
            ys.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be ±1"
        );
        assert!(
            ys.contains(&1.0) && ys.contains(&-1.0),
            "need samples from both classes"
        );

        let n = xs.len();
        let k = kernel.gram(xs);
        let mut alpha = vec![0.0f64; n];
        // g_i = Σ_j α_j y_j K_ij (decision value without bias).
        let mut g = vec![0.0f64; n];

        let max_iter = MAX_ITER_FACTOR * n.max(100);
        for _ in 0..max_iter {
            // Maximal violating pair over
            //   I_up  = {α<C, y=+1} ∪ {α>0, y=−1}
            //   I_low = {α<C, y=−1} ∪ {α>0, y=+1}
            // using scores s_i = −y_i ∇_i = y_i − g_i (−E_i):
            // maximise on I_up, minimise on I_low.
            let mut i_up: Option<(usize, f64)> = None;
            let mut i_low: Option<(usize, f64)> = None;
            for t in 0..n {
                let s = ys[t] - g[t];
                let in_up = (ys[t] > 0.0 && alpha[t] < c) || (ys[t] < 0.0 && alpha[t] > 0.0);
                let in_low = (ys[t] < 0.0 && alpha[t] < c) || (ys[t] > 0.0 && alpha[t] > 0.0);
                if in_up && i_up.is_none_or(|(_, best)| s > best) {
                    i_up = Some((t, s));
                }
                if in_low && i_low.is_none_or(|(_, best)| s < best) {
                    i_low = Some((t, s));
                }
            }
            let (i, m_up) = match i_up {
                Some(v) => v,
                None => break,
            };
            let (j, m_low) = match i_low {
                Some(v) => v,
                None => break,
            };
            if m_up - m_low < TOL {
                break;
            }

            // Two-variable analytic update (Platt).
            let (yi, yj) = (ys[i], ys[j]);
            let (ei, ej) = (g[i] - yi, g[j] - yj);
            let eta = k[i][i] + k[j][j] - 2.0 * k[i][j];
            if eta <= 1e-12 {
                // Degenerate pair; nudge via a tiny step to avoid cycling.
                break;
            }
            let (lo, hi) = if (yi - yj).abs() > 1e-12 {
                (
                    (alpha[j] - alpha[i]).max(0.0),
                    (c + alpha[j] - alpha[i]).min(c),
                )
            } else {
                (
                    (alpha[i] + alpha[j] - c).max(0.0),
                    (alpha[i] + alpha[j]).min(c),
                )
            };
            if hi - lo < 1e-12 {
                continue;
            }
            let aj_old = alpha[j];
            let ai_old = alpha[i];
            let aj_new = (aj_old + yj * (ei - ej) / eta).clamp(lo, hi);
            let ai_new = ai_old + yi * yj * (aj_old - aj_new);
            if (aj_new - aj_old).abs() < 1e-14 {
                continue;
            }
            alpha[i] = ai_new;
            alpha[j] = aj_new;
            let di = yi * (ai_new - ai_old);
            let dj = yj * (aj_new - aj_old);
            for t in 0..n {
                g[t] += di * k[i][t] + dj * k[j][t];
            }
        }

        // Bias from free support vectors (0 < α < C), falling back to the
        // midpoint of the KKT interval.
        let mut bias_sum = 0.0;
        let mut bias_count = 0usize;
        for t in 0..n {
            if alpha[t] > 1e-9 && alpha[t] < c - 1e-9 {
                bias_sum += ys[t] - g[t];
                bias_count += 1;
            }
        }
        let bias = if bias_count > 0 {
            bias_sum / bias_count as f64
        } else {
            // Midpoint between the class boundaries.
            let mut up = f64::INFINITY;
            let mut low = f64::NEG_INFINITY;
            for t in 0..n {
                let v = ys[t] - g[t];
                if ys[t] > 0.0 {
                    up = up.min(v);
                } else {
                    low = low.max(v);
                }
            }
            (up + low) / 2.0
        };

        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for t in 0..n {
            if alpha[t] > 1e-9 {
                support_vectors.push(xs[t].clone());
                coefficients.push(alpha[t] * ys[t]);
            }
        }
        SvmBinary {
            support_vectors,
            coefficients,
            bias,
            kernel,
        }
    }

    /// Signed decision value `f(x) = Σ αᵢyᵢ k(xᵢ, x) + b`.
    pub fn decision(&self, x: &[f64]) -> f64 {
        self.support_vectors
            .iter()
            .zip(self.coefficients.iter())
            .map(|(sv, &c)| c * self.kernel.eval(sv, x))
            .sum::<f64>()
            + self.bias
    }

    /// Predicted label, +1 or −1.
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.decision(x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }

    /// Number of support vectors retained.
    pub fn num_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }
}

/// A one-vs-one multiclass SVM (the paper's n-class user classifier).
///
/// Trains `k(k−1)/2` binary machines and predicts by majority vote, with
/// ties broken by the summed decision margins.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SvmMulticlass {
    classes: Vec<usize>,
    /// `(class_a, class_b, machine)` with `a < b`; +1 ⇔ `class_a`.
    machines: Vec<(usize, usize, SvmBinary)>,
}

impl SvmMulticlass {
    /// Trains on samples `xs` with class labels `ys` (arbitrary `usize`
    /// ids, at least two distinct).
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty/inconsistent or fewer than two classes
    /// are present.
    pub fn train(xs: &[Vec<f64>], ys: &[usize], kernel: Kernel, c: f64) -> Self {
        assert!(!xs.is_empty(), "training set is empty");
        assert_eq!(xs.len(), ys.len(), "sample/label count mismatch");
        let mut classes: Vec<usize> = ys.to_vec();
        classes.sort_unstable();
        classes.dedup();
        assert!(classes.len() >= 2, "need at least two classes");

        let mut machines = Vec::new();
        for (ai, &a) in classes.iter().enumerate() {
            for &b in &classes[ai + 1..] {
                let mut sub_x = Vec::new();
                let mut sub_y = Vec::new();
                for (x, &y) in xs.iter().zip(ys.iter()) {
                    if y == a {
                        sub_x.push(x.clone());
                        sub_y.push(1.0);
                    } else if y == b {
                        sub_x.push(x.clone());
                        sub_y.push(-1.0);
                    }
                }
                machines.push((a, b, SvmBinary::train(&sub_x, &sub_y, kernel, c)));
            }
        }
        SvmMulticlass { classes, machines }
    }

    /// The distinct class labels seen at training time.
    pub fn classes(&self) -> &[usize] {
        &self.classes
    }

    /// Predicts the class of `x` by one-vs-one voting.
    pub fn predict(&self, x: &[f64]) -> usize {
        let mut votes: Vec<usize> = vec![0; self.classes.len()];
        let mut margins: Vec<f64> = vec![0.0; self.classes.len()];
        for (a, b, m) in &self.machines {
            let d = m.decision(x);
            let (winner, margin) = if d >= 0.0 { (*a, d) } else { (*b, -d) };
            let idx = self
                .classes
                .iter()
                .position(|&c| c == winner)
                .expect("known class");
            votes[idx] += 1;
            margins[idx] += margin;
        }
        let best = (0..self.classes.len())
            .max_by(|&i, &j| {
                votes[i]
                    .cmp(&votes[j])
                    .then(margins[i].total_cmp(&margins[j]))
            })
            .expect("at least two classes");
        self.classes[best]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt);
                let a = ((h & 0xFFFF) as f64 / 65536.0 - 0.5) * 2.0 * spread;
                let b = (((h >> 16) & 0xFFFF) as f64 / 65536.0 - 0.5) * 2.0 * spread;
                vec![cx + a, cy + b]
            })
            .collect()
    }

    #[test]
    fn separates_linearly_separable_blobs() {
        let mut xs = blob(-2.0, 0.0, 30, 0.5, 1);
        xs.extend(blob(2.0, 0.0, 30, 0.5, 2));
        let ys: Vec<f64> = (0..60).map(|i| if i < 30 { -1.0 } else { 1.0 }).collect();
        let svm = SvmBinary::train(&xs, &ys, Kernel::Linear, 1.0);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y);
        }
        // Sparse solution: far fewer SVs than samples.
        assert!(
            svm.num_support_vectors() < 20,
            "{} SVs",
            svm.num_support_vectors()
        );
    }

    #[test]
    fn rbf_solves_xor() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let ys = vec![1.0, 1.0, -1.0, -1.0];
        let svm = SvmBinary::train(&xs, &ys, Kernel::Rbf { gamma: 2.0 }, 100.0);
        for (x, &y) in xs.iter().zip(&ys) {
            assert_eq!(svm.predict(x), y, "at {x:?}");
        }
    }

    #[test]
    fn decision_margin_grows_away_from_boundary() {
        let xs = vec![vec![-1.0], vec![1.0]];
        let ys = vec![-1.0, 1.0];
        let svm = SvmBinary::train(&xs, &ys, Kernel::Linear, 10.0);
        assert!(svm.decision(&[3.0]) > svm.decision(&[0.5]));
        assert!(svm.decision(&[0.0]).abs() < 0.3);
    }

    #[test]
    fn soft_margin_tolerates_label_noise() {
        let mut xs = blob(-2.0, 0.0, 25, 0.5, 3);
        xs.extend(blob(2.0, 0.0, 25, 0.5, 4));
        let mut ys: Vec<f64> = (0..50).map(|i| if i < 25 { -1.0 } else { 1.0 }).collect();
        // Flip two labels.
        ys[0] = 1.0;
        ys[30] = -1.0;
        let svm = SvmBinary::train(&xs, &ys, Kernel::Linear, 0.5);
        // The clean points should still classify correctly.
        let correct = xs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 0 && *i != 30)
            .filter(|(i, x)| svm.predict(x) == if *i < 25 { -1.0 } else { 1.0 })
            .count();
        assert!(correct >= 46, "only {correct}/48 clean points correct");
    }

    #[test]
    fn multiclass_three_blobs() {
        let mut xs = blob(0.0, 0.0, 20, 0.4, 5);
        xs.extend(blob(4.0, 0.0, 20, 0.4, 6));
        xs.extend(blob(2.0, 3.0, 20, 0.4, 7));
        let ys: Vec<usize> = (0..60).map(|i| i / 20).collect();
        let svm = SvmMulticlass::train(&xs, &ys, Kernel::Rbf { gamma: 0.5 }, 10.0);
        assert_eq!(svm.classes(), &[0, 1, 2]);
        let acc = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| svm.predict(x) == y)
            .count();
        assert_eq!(acc, 60);
        assert_eq!(svm.predict(&[0.1, -0.1]), 0);
        assert_eq!(svm.predict(&[3.9, 0.2]), 1);
        assert_eq!(svm.predict(&[2.0, 2.8]), 2);
    }

    #[test]
    fn multiclass_accepts_sparse_label_ids() {
        let mut xs = blob(-2.0, 0.0, 10, 0.3, 8);
        xs.extend(blob(2.0, 0.0, 10, 0.3, 9));
        let ys: Vec<usize> = (0..20).map(|i| if i < 10 { 7 } else { 42 }).collect();
        let svm = SvmMulticlass::train(&xs, &ys, Kernel::Linear, 1.0);
        assert_eq!(svm.predict(&[-2.0, 0.0]), 7);
        assert_eq!(svm.predict(&[2.0, 0.0]), 42);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_rejected() {
        let xs = vec![vec![0.0], vec![1.0]];
        let _ = SvmBinary::train(&xs, &[1.0, 1.0], Kernel::Linear, 1.0);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn non_pm1_labels_rejected() {
        let xs = vec![vec![0.0], vec![1.0]];
        let _ = SvmBinary::train(&xs, &[0.0, 1.0], Kernel::Linear, 1.0);
    }

    #[test]
    #[should_panic(expected = "C must be positive")]
    fn non_positive_c_rejected() {
        let xs = vec![vec![0.0], vec![1.0]];
        let _ = SvmBinary::train(&xs, &[-1.0, 1.0], Kernel::Linear, 0.0);
    }
}
