//! Principal component analysis.
//!
//! An ablation tool: projecting the CNN embeddings onto their leading
//! principal components before the SVM measures how much of the
//! biometric lives in a low-dimensional subspace (and speeds kernel
//! evaluations up).

/// A fitted PCA projection.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pca {
    mean: Vec<f64>,
    /// `components[k]` is the k-th principal axis (unit norm).
    components: Vec<Vec<f64>>,
    /// Variance captured by each component, descending.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits `num_components` principal axes to `data` (rows = samples).
    ///
    /// Uses cyclic Jacobi on the covariance matrix — exact and plenty
    /// fast for feature dimensions in the hundreds.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty, ragged, or `num_components` is zero or
    /// exceeds the feature dimension.
    #[allow(clippy::needless_range_loop)] // symmetric-matrix index pairs read as maths
    pub fn fit(data: &[Vec<f64>], num_components: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit PCA on no data");
        let d = data[0].len();
        assert!(data.iter().all(|r| r.len() == d), "ragged data");
        assert!(
            num_components > 0 && num_components <= d,
            "component count must lie in 1..=dim"
        );

        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in data {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        mean.iter_mut().for_each(|m| *m /= n);

        // Covariance (symmetric d×d).
        let mut cov = vec![vec![0.0f64; d]; d];
        for row in data {
            let centred: Vec<f64> = row.iter().zip(&mean).map(|(x, m)| x - m).collect();
            for i in 0..d {
                if centred[i] == 0.0 {
                    continue;
                }
                for j in i..d {
                    cov[i][j] += centred[i] * centred[j];
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                cov[i][j] /= n;
                cov[j][i] = cov[i][j];
            }
        }

        let (values, vectors) = jacobi_symmetric(&mut cov);
        // Sort descending by eigenvalue.
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));

        let components: Vec<Vec<f64>> = order[..num_components]
            .iter()
            .map(|&k| (0..d).map(|i| vectors[i][k]).collect())
            .collect();
        let explained_variance = order[..num_components]
            .iter()
            .map(|&k| values[k].max(0.0))
            .collect();
        Pca {
            mean,
            components,
            explained_variance,
        }
    }

    /// Number of components retained.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Projects one sample onto the retained components.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        let centred: Vec<f64> = x.iter().zip(&self.mean).map(|(v, m)| v - m).collect();
        self.components
            .iter()
            .map(|c| c.iter().zip(&centred).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Projects a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }
}

/// Cyclic Jacobi eigendecomposition of a real symmetric matrix
/// (destroys `a`); returns `(eigenvalues, eigenvector-columns)`.
#[allow(clippy::needless_range_loop)] // Jacobi rotations index row/col pairs symmetrically
fn jacobi_symmetric(a: &mut [Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let d = a.len();
    let mut v = vec![vec![0.0f64; d]; d];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    let scale = a
        .iter()
        .flat_map(|r| r.iter().map(|x| x.abs()))
        .fold(0.0f64, f64::max)
        .max(1e-300);

    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..d {
            for j in i + 1..d {
                off += a[i][j] * a[i][j];
            }
        }
        if off.sqrt() < 1e-12 * scale {
            break;
        }
        for p in 0..d {
            for q in p + 1..d {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = 0.5 * f64::atan2(-2.0 * a[p][q], a[p][p] - a[q][q]);
                let (c, s) = (theta.cos(), theta.sin());
                for r in 0..d {
                    let (arp, arq) = (a[r][p], a[r][q]);
                    a[r][p] = c * arp - s * arq;
                    a[r][q] = s * arp + c * arq;
                }
                for r in 0..d {
                    let (apr, aqr) = (a[p][r], a[q][r]);
                    a[p][r] = c * apr - s * aqr;
                    a[q][r] = s * apr + c * aqr;
                }
                for r in 0..d {
                    let (vrp, vrq) = (v[r][p], v[r][q]);
                    v[r][p] = c * vrp - s * vrq;
                    v[r][q] = s * vrp + c * vrq;
                }
            }
        }
    }
    let values: Vec<f64> = (0..d).map(|i| a[i][i]).collect();
    (values, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2-D data stretched along a known axis.
    fn stretched_cloud() -> Vec<Vec<f64>> {
        (0..200)
            .map(|i| {
                let t = (i as f64 / 200.0 - 0.5) * 10.0;
                let jitter = ((i * 37) % 17) as f64 / 17.0 - 0.5;
                // Main axis (3, 4)/5, small noise along (−4, 3)/5.
                vec![
                    3.0 / 5.0 * t - 4.0 / 5.0 * 0.2 * jitter + 1.0,
                    4.0 / 5.0 * t + 3.0 / 5.0 * 0.2 * jitter - 2.0,
                ]
            })
            .collect()
    }

    #[test]
    fn first_component_follows_the_stretch() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        let c0 = &pca.components[0];
        // Up to sign, c0 ≈ (0.6, 0.8).
        let dot = (c0[0] * 0.6 + c0[1] * 0.8).abs();
        assert!(dot > 0.999, "first axis {c0:?}");
        assert!(pca.explained_variance()[0] > 50.0 * pca.explained_variance()[1]);
    }

    #[test]
    fn projection_preserves_pairwise_distances_in_full_rank() {
        let data = stretched_cloud();
        let pca = Pca::fit(&data, 2);
        let t = pca.transform_batch(&data);
        let d_orig = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        for i in (0..data.len()).step_by(41) {
            for j in (0..data.len()).step_by(53) {
                assert!(
                    (d_orig(&data[i], &data[j]) - d_orig(&t[i], &t[j])).abs() < 1e-9,
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn one_component_projection_keeps_most_variance() {
        let data = stretched_cloud();
        let pca = Pca::fit(&data, 1);
        let t = pca.transform_batch(&data);
        let var_t: f64 = {
            let m = t.iter().map(|r| r[0]).sum::<f64>() / t.len() as f64;
            t.iter().map(|r| (r[0] - m) * (r[0] - m)).sum::<f64>() / t.len() as f64
        };
        // Total variance of the cloud.
        let total: f64 = {
            let mut acc = 0.0;
            for dim in 0..2 {
                let m = data.iter().map(|r| r[dim]).sum::<f64>() / data.len() as f64;
                acc += data
                    .iter()
                    .map(|r| (r[dim] - m) * (r[dim] - m))
                    .sum::<f64>()
                    / data.len() as f64;
            }
            acc
        };
        assert!(var_t / total > 0.99, "captured {}", var_t / total);
    }

    #[test]
    fn transform_of_mean_is_origin() {
        let data = stretched_cloud();
        let pca = Pca::fit(&data, 2);
        let mut mean = vec![0.0; 2];
        for r in &data {
            mean[0] += r[0];
            mean[1] += r[1];
        }
        mean.iter_mut().for_each(|m| *m /= data.len() as f64);
        let t = pca.transform(&mean);
        assert!(t.iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn components_are_orthonormal() {
        let pca = Pca::fit(&stretched_cloud(), 2);
        let c = &pca.components;
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        assert!((dot(&c[0], &c[0]) - 1.0).abs() < 1e-9);
        assert!((dot(&c[1], &c[1]) - 1.0).abs() < 1e-9);
        assert!(dot(&c[0], &c[1]).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "component count")]
    fn too_many_components_panics() {
        let _ = Pca::fit(&stretched_cloud(), 3);
    }
}
