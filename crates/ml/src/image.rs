//! Grayscale images and resizing.
//!
//! Acoustic images (one intensity per imaging-plane grid cell) are
//! resized to the CNN's input resolution before feature extraction, just
//! as the paper resizes its images to match VGGish's input (§V-D).

/// A row-major grayscale image of `f64` intensities.
///
/// # Example
///
/// ```
/// use echo_ml::GrayImage;
///
/// let img = GrayImage::from_fn(4, 3, |x, y| (x + y) as f64);
/// assert_eq!(img.get(3, 2), 5.0);
/// let up = img.resize(8, 6);
/// assert_eq!(up.width(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl GrayImage {
    /// An all-zero image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        GrayImage {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Builds an image from a function of `(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut img = GrayImage::zeros(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, f(x, y));
            }
        }
        img
    }

    /// Wraps row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height` or a dimension is zero.
    pub fn from_data(width: usize, height: usize, data: Vec<f64>) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        assert_eq!(data.len(), width * height, "pixel count mismatch");
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// Raw row-major pixels.
    pub fn pixels(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw pixels.
    pub fn pixels_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Bilinear resize to `new_width × new_height`.
    ///
    /// # Panics
    ///
    /// Panics if either target dimension is zero.
    pub fn resize(&self, new_width: usize, new_height: usize) -> GrayImage {
        let mut taps = Vec::new();
        let mut data = Vec::new();
        resize_into(
            &self.data,
            self.width,
            self.height,
            new_width,
            new_height,
            &mut taps,
            &mut data,
        );
        GrayImage {
            width: new_width,
            height: new_height,
            data,
        }
    }

    /// Min–max normalises pixel values to `[0, 1]` in place; a constant
    /// image becomes all zeros.
    pub fn normalize(&mut self) {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let span = hi - lo;
        if span <= 0.0 || !span.is_finite() {
            self.data.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        self.data.iter_mut().for_each(|v| *v = (*v - lo) / span);
    }

    /// Mean pixel intensity.
    pub fn mean(&self) -> f64 {
        self.data.iter().sum::<f64>() / self.data.len() as f64
    }

    /// Box blur with the given radius (window `2r+1`); edges use the
    /// available window. Radius 0 returns a copy.
    pub fn box_blur(&self, radius: usize) -> GrayImage {
        if radius == 0 {
            return self.clone();
        }
        let r = radius as isize;
        GrayImage::from_fn(self.width, self.height, |x, y| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for dy in -r..=r {
                for dx in -r..=r {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    if nx >= 0
                        && ny >= 0
                        && (nx as usize) < self.width
                        && (ny as usize) < self.height
                    {
                        sum += self.get(nx as usize, ny as usize);
                        count += 1;
                    }
                }
            }
            sum / count as f64
        })
    }
}

/// Bilinear-resize kernel over raw row-major pixels, writing into
/// caller-reused buffers.
///
/// This is the allocation-free engine behind [`GrayImage::resize`]:
/// `taps` caches the per-column interpolation weights and `out`
/// receives the resized pixels; both are cleared and refilled, so a
/// caller looping over many images (the CNN preprocessing path) pays
/// no per-image allocation once the buffers have grown. Values and
/// evaluation order are exactly the per-pixel loop's, and the
/// identity-size case is a plain copy — so results are bit-identical
/// to `resize` by construction (they share this code).
///
/// # Panics
///
/// Panics if a dimension is zero or `src.len() != width * height`.
pub fn resize_into(
    src: &[f64],
    width: usize,
    height: usize,
    new_width: usize,
    new_height: usize,
    taps: &mut Vec<(usize, usize, f64)>,
    out: &mut Vec<f64>,
) {
    assert!(width > 0 && height > 0, "image dimensions must be positive");
    assert!(
        new_width > 0 && new_height > 0,
        "image dimensions must be positive"
    );
    assert_eq!(src.len(), width * height, "pixel count mismatch");
    out.clear();
    if new_width == width && new_height == height {
        out.extend_from_slice(src);
        return;
    }
    let sx = width as f64 / new_width as f64;
    let sy = height as f64 / new_height as f64;
    // Horizontal taps depend only on x: compute them once per image
    // instead of once per row.
    taps.clear();
    taps.extend((0..new_width).map(|x| {
        // Sample at pixel centres.
        let fx = ((x as f64 + 0.5) * sx - 0.5).clamp(0.0, (width - 1) as f64);
        let x0 = fx.floor() as usize;
        let x1 = (x0 + 1).min(width - 1);
        (x0, x1, fx - x0 as f64)
    }));
    out.reserve(new_width * new_height);
    for y in 0..new_height {
        let fy = ((y as f64 + 0.5) * sy - 0.5).clamp(0.0, (height - 1) as f64);
        let y0 = fy.floor() as usize;
        let y1 = (y0 + 1).min(height - 1);
        let wy = fy - y0 as f64;
        let omy = 1.0 - wy;
        let r0 = &src[y0 * width..(y0 + 1) * width];
        let r1 = &src[y1 * width..(y1 + 1) * width];
        for &(x0, x1, wx) in taps.iter() {
            let omx = 1.0 - wx;
            out.push(r0[x0] * omx * omy + r0[x1] * wx * omy + r1[x0] * omx * wy + r1[x1] * wx * wy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut img = GrayImage::zeros(3, 2);
        img.set(2, 1, 5.0);
        assert_eq!(img.get(2, 1), 5.0);
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.pixels().len(), 6);
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 10 + x) as f64);
        assert_eq!(img.pixels(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn resize_identity_is_noop() {
        let img = GrayImage::from_fn(4, 4, |x, y| (x * y) as f64);
        assert_eq!(img.resize(4, 4), img);
    }

    #[test]
    fn resize_constant_image_stays_constant() {
        let img = GrayImage::from_fn(5, 5, |_, _| 3.0);
        let r = img.resize(9, 7);
        assert!(r.pixels().iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn downsample_averages_gradient() {
        // A horizontal ramp keeps its mean under resizing.
        let img = GrayImage::from_fn(16, 16, |x, _| x as f64);
        let small = img.resize(4, 4);
        assert!((small.mean() - img.mean()).abs() < 0.6);
        // Monotone along x.
        for y in 0..4 {
            for x in 1..4 {
                assert!(small.get(x, y) > small.get(x - 1, y));
            }
        }
    }

    #[test]
    fn upsample_interpolates_between_pixels() {
        let img = GrayImage::from_data(2, 1, vec![0.0, 10.0]);
        let up = img.resize(4, 1);
        assert!(up.get(0, 0) < up.get(1, 0));
        assert!(up.get(1, 0) < up.get(2, 0));
        assert!(up.get(2, 0) < up.get(3, 0));
    }

    #[test]
    fn normalize_maps_to_unit_range() {
        let mut img = GrayImage::from_data(2, 2, vec![2.0, 4.0, 6.0, 10.0]);
        img.normalize();
        assert_eq!(img.get(0, 0), 0.0);
        assert_eq!(img.get(1, 1), 1.0);
        let mut flat = GrayImage::from_fn(2, 2, |_, _| 7.0);
        flat.normalize();
        assert!(flat.pixels().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let img = GrayImage::zeros(2, 2);
        let _ = img.get(2, 0);
    }

    #[test]
    #[should_panic(expected = "pixel count")]
    fn bad_data_length_panics() {
        let _ = GrayImage::from_data(2, 2, vec![0.0; 3]);
    }

    #[test]
    fn resize_into_reused_buffers_match_resize_bitwise() {
        let mut taps = Vec::new();
        let mut out = Vec::new();
        // Mixed shapes (up, down, identity, single-column) through the
        // SAME buffers: stale taps/pixels from the previous image must
        // never leak into the next result.
        let shapes = [(7usize, 5usize), (32, 32), (1, 9), (40, 3)];
        for (i, &(w, h)) in shapes.iter().enumerate() {
            let img = GrayImage::from_fn(w, h, |x, y| ((x * 13 + y * 7 + i) % 11) as f64 - 3.0);
            for &(nw, nh) in &[(32usize, 32usize), (w, h), (3, 8)] {
                resize_into(img.pixels(), w, h, nw, nh, &mut taps, &mut out);
                let fresh = img.resize(nw, nh);
                assert_eq!(out.len(), nw * nh);
                for (a, b) in out.iter().zip(fresh.pixels()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }
}
