//! Property tests pinning the im2col+GEMM CNN forward pass to the
//! naive reference oracle.
//!
//! The GEMM path is constructed to be *bit-identical* to the naive
//! 6-deep loop (same summation order per output pixel; zero-padded
//! taps contribute exact `+0.0` terms), so these properties assert
//! `to_bits` equality — not a tolerance — over random architectures,
//! odd image sizes, and odd channel counts.

use echo_ml::cnn::ConvScratch;
use echo_ml::{FeatureExtractor, GrayImage};
use proptest::prelude::*;

fn image_from(seed: u64, w: usize, h: usize) -> GrayImage {
    // Cheap deterministic pixel pattern with plenty of sign/scale
    // variation; the extractor log-compresses, so keep values >= 0.
    GrayImage::from_fn(w, h, move |x, y| {
        let v = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((x * 31 + y * 17) as u64);
        (v % 1024) as f64 / 8.0
    })
}

fn assert_bits_eq(a: &[f64], b: &[f64]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        prop_assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "feature {} differs: {} vs {}",
            i,
            x,
            y
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn gemm_matches_reference_on_odd_geometries(
        input_size in 5usize..24,
        c1 in 1usize..5,
        c2 in 1usize..4,
        seed in 0u64..1_000,
        img_w in 3usize..40,
        img_h in 3usize..40,
    ) {
        let fx = FeatureExtractor::new(input_size, &[c1, c2], seed);
        let img = image_from(seed, img_w, img_h);
        let fast = fx.extract(&img);
        let naive = fx.extract_reference(&img);
        assert_bits_eq(&fast, &naive)?;
    }

    fn gemm_matches_reference_single_layer(
        input_size in 3usize..30,
        channels in 1usize..7,
        seed in 0u64..1_000,
    ) {
        let fx = FeatureExtractor::new(input_size, &[channels], seed);
        let img = image_from(seed ^ 0x9e37, input_size, input_size);
        assert_bits_eq(&fx.extract(&img), &fx.extract_reference(&img))?;
    }

    fn scratch_reuse_never_contaminates(
        input_size in 5usize..20,
        seed in 0u64..500,
    ) {
        let fx = FeatureExtractor::new(input_size, &[3, 2], seed);
        let a = image_from(seed, 25, 19);
        let b = image_from(seed.wrapping_add(1), 11, 33);
        let mut scratch = ConvScratch::new();
        // Dirty the scratch with image a, then extract b through it.
        let _ = fx.extract_with_scratch(&a, &mut scratch);
        let through_dirty = fx.extract_with_scratch(&b, &mut scratch);
        assert_bits_eq(&through_dirty, &fx.extract_reference(&b))?;
    }
}
