//! Local-maxima search used for echo detection (paper §V-B).
//!
//! The paper builds a `MaxSet` of points `{τ_w, E(τ_w)}` where `E(τ_w)` is
//! (a) strictly greater than every neighbour within ±d samples and (b)
//! above a threshold `th`. [`find_peaks`] implements exactly that.
//!
//! Inputs are assumed NaN-free (envelopes and magnitudes are by
//! construction): the neighbourhood dominance checks run on the SIMD
//! max kernel, whose NaN behaviour differs from a scalar comparison
//! chain (see `crate::simd`).

use crate::simd;

/// A detected local maximum.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Peak {
    /// Sample index of the maximum (the paper's τ_w).
    pub index: usize,
    /// Value at the maximum (the paper's E(τ_w)).
    pub value: f64,
}

/// Finds all local maxima of `signal` that dominate a ±`min_distance`
/// neighbourhood and exceed `threshold`, in increasing index order.
///
/// Plateau handling: only the first sample of a flat run can qualify, and
/// only if the run is strictly above both neighbourhoods — this keeps the
/// result deterministic on quantised data.
///
/// # Example
///
/// ```
/// use echo_dsp::peaks::find_peaks;
///
/// let x = [0.0, 1.0, 0.2, 0.3, 2.0, 0.1, 0.0];
/// let peaks = find_peaks(&x, 1, 0.5);
/// let idx: Vec<usize> = peaks.iter().map(|p| p.index).collect();
/// assert_eq!(idx, vec![1, 4]);
/// ```
pub fn find_peaks(signal: &[f64], min_distance: usize, threshold: f64) -> Vec<Peak> {
    let n = signal.len();
    let d = min_distance.max(1);
    let path = simd::active();
    let mut peaks = Vec::new();
    for i in 0..n {
        let v = signal[i];
        if v <= threshold {
            continue;
        }
        let lo = i.saturating_sub(d);
        let hi = (i + d + 1).min(n);
        // Strictly dominate earlier samples ties included; later samples
        // must be strictly smaller-or-equal (first-of-plateau rule).
        // Both checks reduce to window maxima (empty windows give −∞),
        // equivalent to the element-wise scan for NaN-free input.
        if simd::max_f64_with(path, &signal[lo..i]) < v
            && simd::max_f64_with(path, &signal[i + 1..hi]) <= v
        {
            peaks.push(Peak { index: i, value: v });
        }
    }
    peaks
}

/// Returns the highest peak within the half-open index range
/// `[start, end)`, if any.
///
/// This is the paper's "local maximum point with the largest value in the
/// echo period" selection.
pub fn strongest_peak_in(peaks: &[Peak], start: usize, end: usize) -> Option<Peak> {
    peaks
        .iter()
        .filter(|p| p.index >= start && p.index < end)
        .copied()
        .max_by(|a, b| a.value.total_cmp(&b.value))
}

/// The first (earliest-index) peak at or after `start`.
pub fn first_peak_at_or_after(peaks: &[Peak], start: usize) -> Option<Peak> {
    peaks.iter().find(|p| p.index >= start).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_isolated_peaks() {
        let x = [0.0, 3.0, 0.0, 0.0, 5.0, 0.0, 1.0];
        let p = find_peaks(&x, 1, 0.5);
        assert_eq!(p.len(), 3);
        assert_eq!(
            p[0],
            Peak {
                index: 1,
                value: 3.0
            }
        );
        assert_eq!(
            p[1],
            Peak {
                index: 4,
                value: 5.0
            }
        );
        assert_eq!(
            p[2],
            Peak {
                index: 6,
                value: 1.0
            }
        );
    }

    #[test]
    fn threshold_filters_small_peaks() {
        let x = [0.0, 3.0, 0.0, 0.4, 0.0];
        let p = find_peaks(&x, 1, 0.5);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 1);
    }

    #[test]
    fn min_distance_suppresses_close_rivals() {
        // Index 3 (value 2) is within distance 3 of index 5 (value 4).
        let x = [0.0, 0.0, 0.0, 2.0, 0.0, 4.0, 0.0, 0.0];
        let p = find_peaks(&x, 3, 0.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 5);
    }

    #[test]
    fn plateau_takes_first_sample_only() {
        let x = [0.0, 2.0, 2.0, 2.0, 0.0];
        let p = find_peaks(&x, 1, 0.0);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].index, 1);
    }

    #[test]
    fn boundary_peaks_are_detected() {
        let x = [5.0, 1.0, 0.0, 0.0, 4.0];
        let p = find_peaks(&x, 2, 0.0);
        let idx: Vec<usize> = p.iter().map(|q| q.index).collect();
        assert_eq!(idx, vec![0, 4]);
    }

    #[test]
    fn empty_and_flat_signals_have_no_peaks() {
        assert!(find_peaks(&[], 3, 0.0).is_empty());
        assert!(find_peaks(&[1.0; 16], 3, 0.0).len() <= 1);
        assert!(find_peaks(&[0.0; 16], 3, 0.5).is_empty());
    }

    #[test]
    fn strongest_peak_in_range() {
        let peaks = vec![
            Peak {
                index: 2,
                value: 1.0,
            },
            Peak {
                index: 10,
                value: 5.0,
            },
            Peak {
                index: 20,
                value: 3.0,
            },
        ];
        let best = strongest_peak_in(&peaks, 5, 25).unwrap();
        assert_eq!(best.index, 10);
        assert!(strongest_peak_in(&peaks, 30, 40).is_none());
        // End bound is exclusive.
        assert_eq!(
            strongest_peak_in(&peaks, 5, 10),
            None.or(strongest_peak_in(&peaks, 5, 10))
        );
        assert!(strongest_peak_in(&peaks, 5, 10).is_none());
    }

    #[test]
    fn first_peak_lookup() {
        let peaks = vec![
            Peak {
                index: 2,
                value: 1.0,
            },
            Peak {
                index: 10,
                value: 5.0,
            },
        ];
        assert_eq!(first_peak_at_or_after(&peaks, 0).unwrap().index, 2);
        assert_eq!(first_peak_at_or_after(&peaks, 3).unwrap().index, 10);
        assert!(first_peak_at_or_after(&peaks, 11).is_none());
    }
}
