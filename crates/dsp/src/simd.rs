//! Runtime-dispatched SIMD microkernels for the distance/FFT hot path.
//!
//! Every kernel here exists in two implementations — a portable scalar
//! loop and an AVX2 (`f64x4`) variant — selected **once per process**
//! by [`active`] from the `ECHOIMAGE_SIMD` environment knob (mirroring
//! `ECHOIMAGE_THREADS`):
//!
//! * `auto` (default / unset): AVX2 when the CPU reports it, else scalar;
//! * `scalar`: force the portable path;
//! * `avx2`: request AVX2; silently falls back to scalar when the CPU
//!   lacks it (the scalar fallback is mandatory, never an error).
//!
//! # Exactness contract
//!
//! The AVX2 kernels are deliberately written to preserve the scalar
//! per-element operation order bit-for-bit: they vectorise *across*
//! elements, never reassociate *within* one, and use no FMA (separate
//! `mul`/`add` intrinsics round exactly like the scalar `*` and `+`).
//! The only algebraic licences taken are addition commutativity
//! (`a*d + b*c` vs `b*c + a*d` in the complex product) and
//! `x − (−y) ≡ x + y`, both of which are IEEE-754 rounding-exact.
//! Consequently scalar and AVX2 runs of the full pipeline produce
//! bit-identical features, audits and traces, and the oracle tests can
//! keep asserting `to_bits` equality. The ULP-bounded property suite
//! (`simd_kernel_properties`) pins each kernel's bound at **0 ULP**
//! today and is the harness that would absorb a future kernel that
//! genuinely reassociates.
//!
//! # NaN caveat
//!
//! [`max_f64`] (and the peak-picking rewritten on top of it) assumes
//! NaN-free input: `_mm256_max_pd` propagates operands differently from
//! `f64::max` when NaNs are present. Every caller in this workspace
//! feeds it envelopes/magnitudes, which are finite by construction.
//! Ties between `+0.0` and `−0.0` may resolve to either sign.
//!
//! # Safety
//!
//! All `unsafe` in this crate lives in this module's `avx2` submodule.
//! The boundary is narrow: each AVX2 kernel is an `unsafe fn` gated by
//! `#[target_feature(enable = "avx2")]`, reachable only through the
//! safe dispatch wrappers below, which call it strictly after
//! [`avx2_supported`] has confirmed the feature at runtime. Loads and
//! stores are unaligned (`loadu`/`storeu`) on pointers derived from
//! live slices, with all tail elements handled by the scalar kernel —
//! no out-of-bounds access, no alignment assumptions. `Complex` is
//! `#[repr(C)]` so viewing `&[Complex]` as interleaved `re,im` `f64`
//! pairs is layout-sound.

use crate::complex::Complex;
use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable selecting the SIMD path: `auto`, `scalar` or
/// `avx2` (case-insensitive; unknown values behave like `auto`).
pub const SIMD_ENV: &str = "ECHOIMAGE_SIMD";

/// Name of the observability gauge recording the resolved path
/// (value = [`SimdPath::gauge_value`]).
pub const DISPATCH_GAUGE: &str = "simd.dispatch";

/// The instruction-set path a kernel executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// Portable scalar loops — always available.
    Scalar,
    /// AVX2 `f64x4` kernels (x86-64 only, runtime-detected).
    Avx2,
}

impl SimdPath {
    /// Stable numeric encoding used by the `simd.dispatch` gauge:
    /// scalar = 1, avx2 = 2 (0 means "not yet recorded").
    #[inline]
    pub fn gauge_value(self) -> i64 {
        match self {
            SimdPath::Scalar => 1,
            SimdPath::Avx2 => 2,
        }
    }

    /// Lower-case human-readable name (`scalar` / `avx2`).
    pub fn name(self) -> &'static str {
        match self {
            SimdPath::Scalar => "scalar",
            SimdPath::Avx2 => "avx2",
        }
    }
}

const PATH_UNRESOLVED: u8 = 0;
const PATH_SCALAR: u8 = 1;
const PATH_AVX2: u8 = 2;

/// Resolved dispatch decision, cached for the life of the process so
/// the hot loops pay one relaxed load, not an env-var parse.
static ACTIVE: AtomicU8 = AtomicU8::new(PATH_UNRESOLVED);

/// Whether this CPU can run the AVX2 kernels.
///
/// Always `false` off x86-64 and under Miri (Miri interprets portable
/// Rust only, which conveniently makes every dispatched kernel
/// Miri-checkable through its scalar path).
pub fn avx2_supported() -> bool {
    #[cfg(miri)]
    {
        false
    }
    #[cfg(all(not(miri), target_arch = "x86_64"))]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(all(not(miri), not(target_arch = "x86_64")))]
    {
        false
    }
}

/// What the environment asked for, before capability clamping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Request {
    Auto,
    Scalar,
    Avx2,
}

fn parse_request(raw: &str) -> Request {
    match raw.trim().to_ascii_lowercase().as_str() {
        "scalar" => Request::Scalar,
        "avx2" => Request::Avx2,
        // `auto`, empty and anything unrecognised all mean "pick for me";
        // an env typo must never disable the mandatory scalar fallback
        // or crash the pipeline.
        _ => Request::Auto,
    }
}

fn resolve() -> SimdPath {
    let request = std::env::var(SIMD_ENV)
        .map(|v| parse_request(&v))
        .unwrap_or(Request::Auto);
    let path = match request {
        Request::Scalar => SimdPath::Scalar,
        Request::Auto | Request::Avx2 => {
            if avx2_supported() {
                SimdPath::Avx2
            } else {
                SimdPath::Scalar
            }
        }
    };
    let encoded = match path {
        SimdPath::Scalar => PATH_SCALAR,
        SimdPath::Avx2 => PATH_AVX2,
    };
    ACTIVE.store(encoded, Ordering::Relaxed);
    record_dispatch_for(path);
    path
}

/// The SIMD path every dispatched kernel in this process uses.
///
/// Resolved from [`SIMD_ENV`] + CPU detection on first call, then
/// cached; the knob is read once, like `ECHOIMAGE_THREADS`.
#[inline]
pub fn active() -> SimdPath {
    match ACTIVE.load(Ordering::Relaxed) {
        PATH_SCALAR => SimdPath::Scalar,
        PATH_AVX2 => SimdPath::Avx2,
        _ => resolve(),
    }
}

/// (Re-)records the resolved dispatch path on the `simd.dispatch`
/// gauge.
///
/// The gauge is part of the metrics registry and therefore cleared by
/// `echo_obs::reset()`; hot entry points call this so any snapshot
/// taken after real work reports which path ran. Deliberately *not*
/// recorded on trace spans or audits — those are bit-identical across
/// SIMD modes by contract, and the mode is an execution detail, not a
/// decision.
#[inline]
pub fn record_dispatch() {
    record_dispatch_for(active());
}

fn record_dispatch_for(path: SimdPath) {
    echo_obs::gauge!(DISPATCH_GAUGE).set(path.gauge_value());
}

// ─────────────────────────── dispatch wrappers ───────────────────────────
//
// Each kernel is exported twice: `foo` dispatches on the process-wide
// [`active`] path; `foo_with` takes the path explicitly so tests (and
// the property suite) can pin scalar vs AVX2 side by side in one
// process. All wrappers clamp to the shortest operand so their
// semantics match the `Iterator::zip` loops they replace.

macro_rules! dispatch {
    ($path:expr, $scalar:expr, $avx2:expr) => {
        match $path {
            SimdPath::Scalar => $scalar,
            #[cfg(target_arch = "x86_64")]
            SimdPath::Avx2 => {
                debug_assert!(avx2_supported(), "AVX2 path dispatched without CPU support");
                // SAFETY: `SimdPath::Avx2` is only ever produced by
                // `resolve()` after `avx2_supported()` returned true, or
                // passed explicitly by tests that perform the same check.
                unsafe { $avx2 }
            }
            #[cfg(not(target_arch = "x86_64"))]
            SimdPath::Avx2 => $scalar,
        }
    };
}

/// One radix-2 butterfly pass: `lo[i], hi[i] ← lo[i] + hi[i]·tw[i],
/// lo[i] − hi[i]·tw[i]`.
#[inline]
pub fn butterfly_pass(lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex]) {
    butterfly_pass_with(active(), lo, hi, tw);
}

/// [`butterfly_pass`] on an explicit path.
#[inline]
pub fn butterfly_pass_with(path: SimdPath, lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex]) {
    dispatch!(
        path,
        scalar::butterfly_pass(lo, hi, tw),
        avx2::butterfly_pass(lo, hi, tw)
    );
}

/// Pointwise complex product `a[i] *= b[i]`.
#[inline]
pub fn cmul_in_place(a: &mut [Complex], b: &[Complex]) {
    cmul_in_place_with(active(), a, b);
}

/// [`cmul_in_place`] on an explicit path.
#[inline]
pub fn cmul_in_place_with(path: SimdPath, a: &mut [Complex], b: &[Complex]) {
    dispatch!(path, scalar::cmul_in_place(a, b), avx2::cmul_in_place(a, b));
}

/// Pointwise conjugated product `a[i] *= conj(b[i])` — the matched
/// filter's cross-correlation multiply.
#[inline]
pub fn cmul_conj_in_place(a: &mut [Complex], b: &[Complex]) {
    cmul_conj_in_place_with(active(), a, b);
}

/// [`cmul_conj_in_place`] on an explicit path.
#[inline]
pub fn cmul_conj_in_place_with(path: SimdPath, a: &mut [Complex], b: &[Complex]) {
    dispatch!(
        path,
        scalar::cmul_conj_in_place(a, b),
        avx2::cmul_conj_in_place(a, b)
    );
}

/// Pointwise product into a separate output: `out[i] = a[i]·b[i]`.
#[inline]
pub fn cmul_into(out: &mut [Complex], a: &[Complex], b: &[Complex]) {
    cmul_into_with(active(), out, a, b);
}

/// [`cmul_into`] on an explicit path.
#[inline]
pub fn cmul_into_with(path: SimdPath, out: &mut [Complex], a: &[Complex], b: &[Complex]) {
    dispatch!(
        path,
        scalar::cmul_into(out, a, b),
        avx2::cmul_into(out, a, b)
    );
}

/// Scaled pointwise product: `out[i] = (a[i]·b[i])·scale` with the
/// scalar's rounding order (complex product first, then the real
/// scale applied to each component).
#[inline]
pub fn cmul_scale_into(out: &mut [Complex], a: &[Complex], b: &[Complex], scale: f64) {
    cmul_scale_into_with(active(), out, a, b, scale);
}

/// [`cmul_scale_into`] on an explicit path.
#[inline]
pub fn cmul_scale_into_with(
    path: SimdPath,
    out: &mut [Complex],
    a: &[Complex],
    b: &[Complex],
    scale: f64,
) {
    dispatch!(
        path,
        scalar::cmul_scale_into(out, a, b, scale),
        avx2::cmul_scale_into(out, a, b, scale)
    );
}

/// Scales every element by a real factor: `a[i] *= k`.
#[inline]
pub fn scale_in_place(a: &mut [Complex], k: f64) {
    scale_in_place_with(active(), a, k);
}

/// [`scale_in_place`] on an explicit path.
#[inline]
pub fn scale_in_place_with(path: SimdPath, a: &mut [Complex], k: f64) {
    dispatch!(
        path,
        scalar::scale_in_place(a, k),
        avx2::scale_in_place(a, k)
    );
}

/// `acc[i] += k·src[i]` — the GEMM inner tile's row update.
#[inline]
pub fn axpy(acc: &mut [f64], k: f64, src: &[f64]) {
    axpy_with(active(), acc, k, src);
}

/// [`axpy`] on an explicit path.
#[inline]
pub fn axpy_with(path: SimdPath, acc: &mut [f64], k: f64, src: &[f64]) {
    dispatch!(path, scalar::axpy(acc, k, src), avx2::axpy(acc, k, src));
}

/// Paired-row AXPY sharing one `src` load: `acc0[i] += k0·src[i]`,
/// `acc1[i] += k1·src[i]` — the register-tiled GEMM's two-output-channel
/// inner loop.
#[inline]
pub fn axpy2(acc0: &mut [f64], acc1: &mut [f64], k0: f64, k1: f64, src: &[f64]) {
    axpy2_with(active(), acc0, acc1, k0, k1, src);
}

/// [`axpy2`] on an explicit path.
#[inline]
pub fn axpy2_with(
    path: SimdPath,
    acc0: &mut [f64],
    acc1: &mut [f64],
    k0: f64,
    k1: f64,
    src: &[f64],
) {
    dispatch!(
        path,
        scalar::axpy2(acc0, acc1, k0, k1, src),
        avx2::axpy2(acc0, acc1, k0, k1, src)
    );
}

/// Register-tiled GEMM inner tile, one output channel: for every `k`,
/// `acc[i] += w[k] · col[k·stride + offset + i]`.
///
/// The whole `k` loop runs inside the kernel so the accumulator tile
/// stays in registers across it — calling [`axpy`] per `k` would spill
/// and reload the tile on every step, which costs more than the
/// multiply-adds themselves.
///
/// # Panics
///
/// Panics if `col` is shorter than
/// `(w.len() − 1)·stride + offset + acc.len()`.
#[inline]
pub fn gemm_tile(acc: &mut [f64], w: &[f64], col: &[f64], stride: usize, offset: usize) {
    gemm_tile_with(active(), acc, w, col, stride, offset);
}

/// [`gemm_tile`] on an explicit path.
#[inline]
pub fn gemm_tile_with(
    path: SimdPath,
    acc: &mut [f64],
    w: &[f64],
    col: &[f64],
    stride: usize,
    offset: usize,
) {
    dispatch!(
        path,
        scalar::gemm_tile(acc, w, col, stride, offset),
        avx2::gemm_tile(acc, w, col, stride, offset)
    );
}

/// [`gemm_tile`] over two output channels sharing every column-tile
/// load: for every `k`, `acc0[i] += w0[k]·col[k·stride + offset + i]`
/// and `acc1[i] += w1[k]·col[k·stride + offset + i]` (the shorter of
/// `w0`/`w1` and of `acc0`/`acc1` bounds the loops).
///
/// # Panics
///
/// Panics if `col` is shorter than the last row the tile reads (see
/// [`gemm_tile`]).
#[inline]
pub fn gemm_tile2(
    acc0: &mut [f64],
    acc1: &mut [f64],
    w0: &[f64],
    w1: &[f64],
    col: &[f64],
    stride: usize,
    offset: usize,
) {
    gemm_tile2_with(active(), acc0, acc1, w0, w1, col, stride, offset);
}

/// [`gemm_tile2`] on an explicit path.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn gemm_tile2_with(
    path: SimdPath,
    acc0: &mut [f64],
    acc1: &mut [f64],
    w0: &[f64],
    w1: &[f64],
    col: &[f64],
    stride: usize,
    offset: usize,
) {
    dispatch!(
        path,
        scalar::gemm_tile2(acc0, acc1, w0, w1, col, stride, offset),
        avx2::gemm_tile2(acc0, acc1, w0, w1, col, stride, offset)
    );
}

/// Envelope accumulation `acc[i] += |z[i]|²`.
#[inline]
pub fn accum_norm_sqr(acc: &mut [f64], z: &[Complex]) {
    accum_norm_sqr_with(active(), acc, z);
}

/// [`accum_norm_sqr`] on an explicit path.
#[inline]
pub fn accum_norm_sqr_with(path: SimdPath, acc: &mut [f64], z: &[Complex]) {
    dispatch!(
        path,
        scalar::accum_norm_sqr(acc, z),
        avx2::accum_norm_sqr(acc, z)
    );
}

/// Maximum of a NaN-free slice (`−∞` when empty).
#[inline]
pub fn max_f64(xs: &[f64]) -> f64 {
    max_f64_with(active(), xs)
}

/// [`max_f64`] on an explicit path.
#[inline]
pub fn max_f64_with(path: SimdPath, xs: &[f64]) -> f64 {
    dispatch!(path, scalar::max_f64(xs), avx2::max_f64(xs))
}

/// Squared Euclidean distance `Σ (a[i] − b[i])²` over `f32` operands —
/// the template store's centroid-prefilter primitive.
///
/// Unlike the kernels above, this one *defines* its own summation
/// order rather than matching a pre-existing scalar loop: 8
/// lane-strided partial sums over the vectorisable head, combined in a
/// fixed binary tree, then the tail accumulated sequentially. The
/// scalar implementation mirrors that exact order, so scalar and AVX2
/// agree bit-for-bit (the property suite pins the bound at 0 ULP).
#[inline]
pub fn sqdist_f32(a: &[f32], b: &[f32]) -> f32 {
    sqdist_f32_with(active(), a, b)
}

/// [`sqdist_f32`] on an explicit path.
#[inline]
pub fn sqdist_f32_with(path: SimdPath, a: &[f32], b: &[f32]) -> f32 {
    dispatch!(path, scalar::sqdist_f32(a, b), avx2::sqdist_f32(a, b))
}

/// Squared Euclidean distance `Σ (a[i] − b[i])²` over `f64` operands,
/// with the same lane-strided-then-tree summation contract as
/// [`sqdist_f32`] (4 lanes for `f64`).
#[inline]
pub fn sqdist_f64(a: &[f64], b: &[f64]) -> f64 {
    sqdist_f64_with(active(), a, b)
}

/// [`sqdist_f64`] on an explicit path.
#[inline]
pub fn sqdist_f64_with(path: SimdPath, a: &[f64], b: &[f64]) -> f64 {
    dispatch!(path, scalar::sqdist_f64(a, b), avx2::sqdist_f64(a, b))
}

// ─────────────────────────── scalar kernels ───────────────────────────

mod scalar {
    use super::Complex;

    #[inline]
    pub fn butterfly_pass(lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex]) {
        for ((a, b), &w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw.iter()) {
            let u = *a;
            let v = *b * w;
            *a = u + v;
            *b = u - v;
        }
    }

    #[inline]
    pub fn cmul_in_place(a: &mut [Complex], b: &[Complex]) {
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x *= y;
        }
    }

    #[inline]
    pub fn cmul_conj_in_place(a: &mut [Complex], b: &[Complex]) {
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x *= y.conj();
        }
    }

    #[inline]
    pub fn cmul_into(out: &mut [Complex], a: &[Complex], b: &[Complex]) {
        for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o = x * y;
        }
    }

    #[inline]
    pub fn cmul_scale_into(out: &mut [Complex], a: &[Complex], b: &[Complex], scale: f64) {
        for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
            *o = x * y * scale;
        }
    }

    #[inline]
    pub fn scale_in_place(a: &mut [Complex], k: f64) {
        for x in a.iter_mut() {
            *x *= k;
        }
    }

    #[inline]
    pub fn axpy(acc: &mut [f64], k: f64, src: &[f64]) {
        for (a, &s) in acc.iter_mut().zip(src.iter()) {
            *a += k * s;
        }
    }

    #[inline]
    pub fn axpy2(acc0: &mut [f64], acc1: &mut [f64], k0: f64, k1: f64, src: &[f64]) {
        let n = acc0.len().min(acc1.len()).min(src.len());
        for i in 0..n {
            acc0[i] += k0 * src[i];
            acc1[i] += k1 * src[i];
        }
    }

    #[inline]
    pub fn gemm_tile(acc: &mut [f64], w: &[f64], col: &[f64], stride: usize, offset: usize) {
        let xb = acc.len();
        for (k, &wk) in w.iter().enumerate() {
            let row = &col[k * stride + offset..k * stride + offset + xb];
            for (a, &s) in acc.iter_mut().zip(row.iter()) {
                *a += wk * s;
            }
        }
    }

    #[inline]
    pub fn gemm_tile2(
        acc0: &mut [f64],
        acc1: &mut [f64],
        w0: &[f64],
        w1: &[f64],
        col: &[f64],
        stride: usize,
        offset: usize,
    ) {
        let xb = acc0.len().min(acc1.len());
        let k_rows = w0.len().min(w1.len());
        for k in 0..k_rows {
            let row = &col[k * stride + offset..k * stride + offset + xb];
            for (i, &s) in row.iter().enumerate() {
                acc0[i] += w0[k] * s;
                acc1[i] += w1[k] * s;
            }
        }
    }

    #[inline]
    pub fn accum_norm_sqr(acc: &mut [f64], z: &[Complex]) {
        for (a, c) in acc.iter_mut().zip(z.iter()) {
            *a += c.norm_sqr();
        }
    }

    #[inline]
    pub fn max_f64(xs: &[f64]) -> f64 {
        xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Lane-strided squared distance; mirrors the AVX2 reduction order
    /// exactly (8 lanes, low+high halves, pairwise tree, sequential
    /// tail) so the two paths agree bit-for-bit.
    #[inline]
    pub fn sqdist_f32(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let head = n - n % 8;
        let mut s = [0.0f32; 8];
        let mut i = 0;
        while i < head {
            for (j, sj) in s.iter_mut().enumerate() {
                let d = a[i + j] - b[i + j];
                *sj += d * d;
            }
            i += 8;
        }
        // vaddps of the 128-bit halves, then the SSE pairwise tree.
        let t0 = s[0] + s[4];
        let t1 = s[1] + s[5];
        let t2 = s[2] + s[6];
        let t3 = s[3] + s[7];
        let mut acc = (t0 + t2) + (t1 + t3);
        for k in head..n {
            let d = a[k] - b[k];
            acc += d * d;
        }
        acc
    }

    /// 4-lane `f64` variant of [`sqdist_f32`], same ordering contract.
    #[inline]
    pub fn sqdist_f64(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let head = n - n % 4;
        let mut s = [0.0f64; 4];
        let mut i = 0;
        while i < head {
            for (j, sj) in s.iter_mut().enumerate() {
                let d = a[i + j] - b[i + j];
                *sj += d * d;
            }
            i += 4;
        }
        let mut acc = (s[0] + s[2]) + (s[1] + s[3]);
        for k in head..n {
            let d = a[k] - b[k];
            acc += d * d;
        }
        acc
    }
}

// ─────────────────────────── AVX2 kernels ───────────────────────────

/// AVX2 `f64x4` kernels. Every function is `unsafe` + gated on
/// `#[target_feature(enable = "avx2")]`; the only callers are the
/// dispatch wrappers above, strictly after a runtime CPU check.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{scalar, Complex};
    use std::arch::x86_64::*;

    /// Two `Complex` values per 256-bit vector.
    const CPL: usize = 2;
    /// Four `f64` values per 256-bit vector.
    const FPL: usize = 4;

    /// Complex product matching the scalar `Complex::mul` rounding
    /// exactly (see module docs): even lanes `a.re·b.re − a.im·b.im`,
    /// odd lanes `a.im·b.re + a.re·b.im`.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmul_pd(a: __m256d, b: __m256d) -> __m256d {
        let b_re = _mm256_movedup_pd(b); // [b0.re, b0.re, b1.re, b1.re]
        let b_im = _mm256_permute_pd(b, 0b1111); // [b0.im, b0.im, b1.im, b1.im]
        let a_swap = _mm256_permute_pd(a, 0b0101); // [a0.im, a0.re, a1.im, a1.re]
        let t1 = _mm256_mul_pd(a, b_re); // [a.re·b.re, a.im·b.re]
        let t2 = _mm256_mul_pd(a_swap, b_im); // [a.im·b.im, a.re·b.im]
        _mm256_addsub_pd(t1, t2) // [t1 − t2, t1 + t2]
    }

    /// Conjugated complex product `a · conj(b)` matching the scalar
    /// `*x * y.conj()` rounding exactly: negating `t2` is sign-flip
    /// exact, and `addsub(t1, −t2)` yields even `t1 + t2`
    /// (= `a.re·b.re + a.im·b.im`, the scalar's
    /// `a.re·b.re − a.im·(−b.im)`) and odd `t1 − t2`
    /// (= `a.im·b.re − a.re·b.im`).
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn cmul_conj_pd(a: __m256d, b: __m256d) -> __m256d {
        let b_re = _mm256_movedup_pd(b);
        let b_im = _mm256_permute_pd(b, 0b1111);
        let a_swap = _mm256_permute_pd(a, 0b0101);
        let t1 = _mm256_mul_pd(a, b_re);
        let t2 = _mm256_mul_pd(a_swap, b_im);
        let neg_t2 = _mm256_xor_pd(t2, _mm256_set1_pd(-0.0));
        _mm256_addsub_pd(t1, neg_t2)
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn butterfly_pass(lo: &mut [Complex], hi: &mut [Complex], tw: &[Complex]) {
        let n = lo.len().min(hi.len()).min(tw.len());
        let head = n - n % CPL;
        let lp = lo.as_mut_ptr().cast::<f64>();
        let hp = hi.as_mut_ptr().cast::<f64>();
        let tp = tw.as_ptr().cast::<f64>();
        let mut i = 0;
        while i < 2 * head {
            // SAFETY: `i + 3 < 2·head ≤ 2·n` f64s are in bounds for all
            // three slices; loads/stores are unaligned.
            unsafe {
                let u = _mm256_loadu_pd(lp.add(i));
                let h = _mm256_loadu_pd(hp.add(i));
                let w = _mm256_loadu_pd(tp.add(i));
                let v = cmul_pd(h, w);
                _mm256_storeu_pd(lp.add(i), _mm256_add_pd(u, v));
                _mm256_storeu_pd(hp.add(i), _mm256_sub_pd(u, v));
            }
            i += 2 * CPL;
        }
        scalar::butterfly_pass(&mut lo[head..n], &mut hi[head..n], &tw[head..n]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_in_place(a: &mut [Complex], b: &[Complex]) {
        let n = a.len().min(b.len());
        let head = n - n % CPL;
        let ap = a.as_mut_ptr().cast::<f64>();
        let bp = b.as_ptr().cast::<f64>();
        let mut i = 0;
        while i < 2 * head {
            // SAFETY: in bounds as in `butterfly_pass`.
            unsafe {
                let x = _mm256_loadu_pd(ap.add(i));
                let y = _mm256_loadu_pd(bp.add(i));
                _mm256_storeu_pd(ap.add(i), cmul_pd(x, y));
            }
            i += 2 * CPL;
        }
        scalar::cmul_in_place(&mut a[head..n], &b[head..n]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_conj_in_place(a: &mut [Complex], b: &[Complex]) {
        let n = a.len().min(b.len());
        let head = n - n % CPL;
        let ap = a.as_mut_ptr().cast::<f64>();
        let bp = b.as_ptr().cast::<f64>();
        let mut i = 0;
        while i < 2 * head {
            // SAFETY: in bounds as in `butterfly_pass`.
            unsafe {
                let x = _mm256_loadu_pd(ap.add(i));
                let y = _mm256_loadu_pd(bp.add(i));
                _mm256_storeu_pd(ap.add(i), cmul_conj_pd(x, y));
            }
            i += 2 * CPL;
        }
        scalar::cmul_conj_in_place(&mut a[head..n], &b[head..n]);
    }

    /// # Safety
    ///
    /// Requires AVX2. `out` must not alias `a` or `b` (guaranteed by
    /// the wrapper's `&mut`/`&` borrows).
    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_into(out: &mut [Complex], a: &[Complex], b: &[Complex]) {
        let n = out.len().min(a.len()).min(b.len());
        let head = n - n % CPL;
        let op = out.as_mut_ptr().cast::<f64>();
        let ap = a.as_ptr().cast::<f64>();
        let bp = b.as_ptr().cast::<f64>();
        let mut i = 0;
        while i < 2 * head {
            // SAFETY: in bounds as in `butterfly_pass`.
            unsafe {
                let x = _mm256_loadu_pd(ap.add(i));
                let y = _mm256_loadu_pd(bp.add(i));
                _mm256_storeu_pd(op.add(i), cmul_pd(x, y));
            }
            i += 2 * CPL;
        }
        scalar::cmul_into(&mut out[head..n], &a[head..n], &b[head..n]);
    }

    /// # Safety
    ///
    /// Requires AVX2. `out` must not alias `a` or `b`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul_scale_into(out: &mut [Complex], a: &[Complex], b: &[Complex], scale: f64) {
        let n = out.len().min(a.len()).min(b.len());
        let head = n - n % CPL;
        let op = out.as_mut_ptr().cast::<f64>();
        let ap = a.as_ptr().cast::<f64>();
        let bp = b.as_ptr().cast::<f64>();
        let k = _mm256_set1_pd(scale);
        let mut i = 0;
        while i < 2 * head {
            // SAFETY: in bounds as in `butterfly_pass`.
            unsafe {
                let x = _mm256_loadu_pd(ap.add(i));
                let y = _mm256_loadu_pd(bp.add(i));
                _mm256_storeu_pd(op.add(i), _mm256_mul_pd(cmul_pd(x, y), k));
            }
            i += 2 * CPL;
        }
        scalar::cmul_scale_into(&mut out[head..n], &a[head..n], &b[head..n], scale);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scale_in_place(a: &mut [Complex], k: f64) {
        let n = a.len();
        let head = n - n % CPL;
        let ap = a.as_mut_ptr().cast::<f64>();
        let kv = _mm256_set1_pd(k);
        let mut i = 0;
        while i < 2 * head {
            // SAFETY: in bounds as in `butterfly_pass`.
            unsafe {
                let x = _mm256_loadu_pd(ap.add(i));
                _mm256_storeu_pd(ap.add(i), _mm256_mul_pd(x, kv));
            }
            i += 2 * CPL;
        }
        scalar::scale_in_place(&mut a[head..n], k);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(acc: &mut [f64], k: f64, src: &[f64]) {
        let n = acc.len().min(src.len());
        let head = n - n % FPL;
        let kv = _mm256_set1_pd(k);
        let mut i = 0;
        while i < head {
            // SAFETY: `i + 3 < head ≤ n` stays in bounds for both slices.
            unsafe {
                let a = _mm256_loadu_pd(acc.as_ptr().add(i));
                let s = _mm256_loadu_pd(src.as_ptr().add(i));
                let prod = _mm256_mul_pd(kv, s);
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(a, prod));
            }
            i += FPL;
        }
        scalar::axpy(&mut acc[head..n], k, &src[head..n]);
    }

    /// # Safety
    ///
    /// Requires AVX2. `acc0` and `acc1` must not alias (guaranteed by
    /// the wrapper's two `&mut` borrows).
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy2(acc0: &mut [f64], acc1: &mut [f64], k0: f64, k1: f64, src: &[f64]) {
        let n = acc0.len().min(acc1.len()).min(src.len());
        let head = n - n % FPL;
        let k0v = _mm256_set1_pd(k0);
        let k1v = _mm256_set1_pd(k1);
        let mut i = 0;
        while i < head {
            // SAFETY: in bounds as in `axpy`.
            unsafe {
                let s = _mm256_loadu_pd(src.as_ptr().add(i));
                let a0 = _mm256_loadu_pd(acc0.as_ptr().add(i));
                let a1 = _mm256_loadu_pd(acc1.as_ptr().add(i));
                let p0 = _mm256_mul_pd(k0v, s);
                let p1 = _mm256_mul_pd(k1v, s);
                _mm256_storeu_pd(acc0.as_mut_ptr().add(i), _mm256_add_pd(a0, p0));
                _mm256_storeu_pd(acc1.as_mut_ptr().add(i), _mm256_add_pd(a1, p1));
            }
            i += FPL;
        }
        scalar::axpy2(
            &mut acc0[head..n],
            &mut acc1[head..n],
            k0,
            k1,
            &src[head..n],
        );
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemm_tile(acc: &mut [f64], w: &[f64], col: &[f64], stride: usize, offset: usize) {
        let xb = acc.len();
        let k_rows = w.len();
        if k_rows == 0 || xb == 0 {
            return;
        }
        // One up-front bounds proof for every row the k loop will read;
        // the scalar kernel's per-row slicing would check the same thing
        // k_rows times.
        assert!(
            col.len() >= (k_rows - 1) * stride + offset + xb,
            "column matrix too short for the tile"
        );
        let cp = col.as_ptr();
        let mut j = 0;
        // 8-wide column blocks: 2 ymm accumulators live across the whole
        // k loop (the point of the kernel — see the wrapper docs).
        while j + 2 * FPL <= xb {
            // SAFETY: `j + 7 < xb ≤ acc.len()` and every
            // `k·stride + offset + j + 7` is inside `col` by the assert.
            unsafe {
                let ap = acc.as_mut_ptr().add(j);
                let mut a0 = _mm256_loadu_pd(ap);
                let mut a1 = _mm256_loadu_pd(ap.add(FPL));
                for (k, &wk) in w.iter().enumerate() {
                    let kv = _mm256_set1_pd(wk);
                    let base = cp.add(k * stride + offset + j);
                    let s0 = _mm256_loadu_pd(base);
                    let s1 = _mm256_loadu_pd(base.add(FPL));
                    a0 = _mm256_add_pd(a0, _mm256_mul_pd(kv, s0));
                    a1 = _mm256_add_pd(a1, _mm256_mul_pd(kv, s1));
                }
                _mm256_storeu_pd(ap, a0);
                _mm256_storeu_pd(ap.add(FPL), a1);
            }
            j += 2 * FPL;
        }
        // Column tail (< 8): scalar, same per-element order.
        if j < xb {
            for (k, &wk) in w.iter().enumerate() {
                let row = k * stride + offset;
                for i in j..xb {
                    acc[i] += wk * col[row + i];
                }
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2. `acc0` and `acc1` must not alias (guaranteed by
    /// the wrapper's two `&mut` borrows).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn gemm_tile2(
        acc0: &mut [f64],
        acc1: &mut [f64],
        w0: &[f64],
        w1: &[f64],
        col: &[f64],
        stride: usize,
        offset: usize,
    ) {
        let xb = acc0.len().min(acc1.len());
        let k_rows = w0.len().min(w1.len());
        if k_rows == 0 || xb == 0 {
            return;
        }
        assert!(
            col.len() >= (k_rows - 1) * stride + offset + xb,
            "column matrix too short for the tile"
        );
        let cp = col.as_ptr();
        let mut j = 0;
        // 8-wide column blocks with both output channels in flight:
        // 4 ymm accumulators across the k loop, each source load shared.
        while j + 2 * FPL <= xb {
            // SAFETY: bounds as in `gemm_tile`; `acc0`/`acc1` are
            // distinct slices by the two `&mut` borrows.
            unsafe {
                let a0p = acc0.as_mut_ptr().add(j);
                let a1p = acc1.as_mut_ptr().add(j);
                let mut a00 = _mm256_loadu_pd(a0p);
                let mut a01 = _mm256_loadu_pd(a0p.add(FPL));
                let mut a10 = _mm256_loadu_pd(a1p);
                let mut a11 = _mm256_loadu_pd(a1p.add(FPL));
                for k in 0..k_rows {
                    let k0v = _mm256_set1_pd(w0[k]);
                    let k1v = _mm256_set1_pd(w1[k]);
                    let base = cp.add(k * stride + offset + j);
                    let s0 = _mm256_loadu_pd(base);
                    let s1 = _mm256_loadu_pd(base.add(FPL));
                    a00 = _mm256_add_pd(a00, _mm256_mul_pd(k0v, s0));
                    a01 = _mm256_add_pd(a01, _mm256_mul_pd(k0v, s1));
                    a10 = _mm256_add_pd(a10, _mm256_mul_pd(k1v, s0));
                    a11 = _mm256_add_pd(a11, _mm256_mul_pd(k1v, s1));
                }
                _mm256_storeu_pd(a0p, a00);
                _mm256_storeu_pd(a0p.add(FPL), a01);
                _mm256_storeu_pd(a1p, a10);
                _mm256_storeu_pd(a1p.add(FPL), a11);
            }
            j += 2 * FPL;
        }
        if j < xb {
            for k in 0..k_rows {
                let row = k * stride + offset;
                for i in j..xb {
                    acc0[i] += w0[k] * col[row + i];
                    acc1[i] += w1[k] * col[row + i];
                }
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn accum_norm_sqr(acc: &mut [f64], z: &[Complex]) {
        let n = acc.len().min(z.len());
        let head = n - n % FPL;
        let zp = z.as_ptr().cast::<f64>();
        let mut i = 0;
        while i < head {
            // SAFETY: `acc[i..i+4]` and `z[i..i+4]` (8 f64) are in
            // bounds because `i + 3 < head ≤ n`.
            unsafe {
                let z0 = _mm256_loadu_pd(zp.add(2 * i)); // z[i],   z[i+1]
                let z1 = _mm256_loadu_pd(zp.add(2 * i + 4)); // z[i+2], z[i+3]
                let s0 = _mm256_mul_pd(z0, z0);
                let s1 = _mm256_mul_pd(z1, z1);
                // hadd: [n_i, n_{i+2}, n_{i+1}, n_{i+3}]; re-order the
                // middle pair back to ascending index. Each lane's
                // re² + im² matches the scalar `norm_sqr` ordering.
                let h = _mm256_hadd_pd(s0, s1);
                let norms = _mm256_permute4x64_pd(h, 0b11011000);
                let a = _mm256_loadu_pd(acc.as_ptr().add(i));
                _mm256_storeu_pd(acc.as_mut_ptr().add(i), _mm256_add_pd(a, norms));
            }
            i += FPL;
        }
        scalar::accum_norm_sqr(&mut acc[head..n], &z[head..n]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sqdist_f32(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len().min(b.len());
        let head = n - n % 8;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < head {
            // SAFETY: `i + 7 < head ≤ n` stays in bounds for both slices.
            unsafe {
                let x = _mm256_loadu_ps(a.as_ptr().add(i));
                let y = _mm256_loadu_ps(b.as_ptr().add(i));
                let d = _mm256_sub_ps(x, y);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
            }
            i += 8;
        }
        // Reduction tree mirrored by `scalar::sqdist_f32`: halves, then
        // the SSE pairwise adds.
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps(acc, 1);
        let t = _mm_add_ps(lo, hi); // [t0, t1, t2, t3]
        let u = _mm_add_ps(t, _mm_movehl_ps(t, t)); // [t0+t2, t1+t3, …]
        let mut sum = _mm_cvtss_f32(_mm_add_ss(u, _mm_movehdup_ps(u)));
        for k in head..n {
            let d = a[k] - b[k];
            sum += d * d;
        }
        sum
    }

    /// # Safety
    ///
    /// Requires AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sqdist_f64(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let head = n - n % FPL;
        let mut acc = _mm256_setzero_pd();
        let mut i = 0;
        while i < head {
            // SAFETY: `i + 3 < head ≤ n` stays in bounds for both slices.
            unsafe {
                let x = _mm256_loadu_pd(a.as_ptr().add(i));
                let y = _mm256_loadu_pd(b.as_ptr().add(i));
                let d = _mm256_sub_pd(x, y);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
            }
            i += FPL;
        }
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd(acc, 1);
        let t = _mm_add_pd(lo, hi); // [s0+s2, s1+s3]
        let mut sum = _mm_cvtsd_f64(_mm_add_sd(t, _mm_unpackhi_pd(t, t)));
        for k in head..n {
            let d = a[k] - b[k];
            sum += d * d;
        }
        sum
    }

    /// # Safety
    ///
    /// Requires AVX2. Input must be NaN-free (see module docs).
    #[target_feature(enable = "avx2")]
    pub unsafe fn max_f64(xs: &[f64]) -> f64 {
        let n = xs.len();
        let head = n - n % FPL;
        let mut m = _mm256_set1_pd(f64::NEG_INFINITY);
        let mut i = 0;
        while i < head {
            // SAFETY: `i + 3 < head ≤ n` stays in bounds.
            unsafe {
                m = _mm256_max_pd(m, _mm256_loadu_pd(xs.as_ptr().add(i)));
            }
            i += FPL;
        }
        let lo = _mm256_castpd256_pd128(m);
        let hi = _mm256_extractf128_pd(m, 1);
        let pair = _mm_max_pd(lo, hi);
        let swapped = _mm_unpackhi_pd(pair, pair);
        let best = _mm_cvtsd_f64(_mm_max_sd(pair, swapped));
        best.max(scalar::max_f64(&xs[head..n]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    /// Deterministic pseudo-random operand streams (no `rand` needed
    /// here; the proptest suite does the heavy fuzzing).
    fn lcg_f64(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
    }

    fn cvec(n: usize, seed: u64) -> Vec<Complex> {
        let mut s = seed.max(1);
        (0..n)
            .map(|_| cx(lcg_f64(&mut s), lcg_f64(&mut s)))
            .collect()
    }

    fn fvec(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.max(1);
        (0..n).map(|_| lcg_f64(&mut s)).collect()
    }

    fn paths() -> Vec<SimdPath> {
        let mut p = vec![SimdPath::Scalar];
        if avx2_supported() {
            p.push(SimdPath::Avx2);
        }
        p
    }

    // ── scalar-reference unit tests (Miri-safe on every host: the
    //    AVX2 variants only join in when the CPU supports them, and
    //    `avx2_supported()` is hardwired false under Miri). ──

    #[test]
    fn scalar_butterfly_matches_hand_computation() {
        for path in paths() {
            let mut lo = vec![cx(1.0, 2.0), cx(-0.5, 0.25), cx(3.0, -1.0)];
            let mut hi = vec![cx(0.5, -1.5), cx(2.0, 1.0), cx(-1.0, 0.125)];
            let tw = vec![cx(1.0, 0.0), cx(0.0, -1.0), cx(0.5, 0.5)];
            butterfly_pass_with(path, &mut lo, &mut hi, &tw);
            // v = hi·tw; lo' = u + v, hi' = u − v.
            assert_eq!(lo[0], cx(1.5, 0.5));
            assert_eq!(hi[0], cx(0.5, 3.5));
            assert_eq!(lo[1], cx(0.5, -1.75)); // v = (1, −2)
            assert_eq!(hi[1], cx(-1.5, 2.25));
            assert_eq!(lo[2], cx(2.4375, -1.4375)); // v = (−0.5625, −0.4375)
            assert_eq!(hi[2], cx(3.5625, -0.5625));
        }
    }

    #[test]
    fn scalar_cmul_kernels_match_complex_ops() {
        for path in paths() {
            for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31] {
                let a = cvec(n, 11);
                let b = cvec(n, 23);
                let mut ip = a.clone();
                cmul_in_place_with(path, &mut ip, &b);
                let mut conj = a.clone();
                cmul_conj_in_place_with(path, &mut conj, &b);
                let mut into = vec![Complex::ZERO; n];
                cmul_into_with(path, &mut into, &a, &b);
                let mut scaled = vec![Complex::ZERO; n];
                cmul_scale_into_with(path, &mut scaled, &a, &b, 0.125);
                for i in 0..n {
                    assert_eq!(ip[i], a[i] * b[i], "cmul_in_place[{i}] on {path:?}");
                    assert_eq!(conj[i], a[i] * b[i].conj(), "cmul_conj[{i}] on {path:?}");
                    assert_eq!(into[i], a[i] * b[i], "cmul_into[{i}] on {path:?}");
                    assert_eq!(
                        scaled[i],
                        a[i] * b[i] * 0.125,
                        "cmul_scale[{i}] on {path:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn scalar_scale_axpy_and_norms() {
        for path in paths() {
            for n in [0usize, 1, 3, 4, 6, 8, 13] {
                let mut a = cvec(n, 5);
                let orig = a.clone();
                scale_in_place_with(path, &mut a, -1.5);
                for i in 0..n {
                    assert_eq!(a[i], orig[i] * -1.5);
                }

                let src = fvec(n, 7);
                let mut acc = fvec(n, 9);
                let base = acc.clone();
                axpy_with(path, &mut acc, 0.75, &src);
                for i in 0..n {
                    assert_eq!(acc[i], base[i] + 0.75 * src[i]);
                }

                let mut r0 = fvec(n, 13);
                let mut r1 = fvec(n, 17);
                let (b0, b1) = (r0.clone(), r1.clone());
                axpy2_with(path, &mut r0, &mut r1, 2.0, -0.25, &src);
                for i in 0..n {
                    assert_eq!(r0[i], b0[i] + 2.0 * src[i]);
                    assert_eq!(r1[i], b1[i] + -0.25 * src[i]);
                }

                let z = cvec(n, 19);
                let mut env = fvec(n, 21);
                let envb = env.clone();
                accum_norm_sqr_with(path, &mut env, &z);
                for i in 0..n {
                    assert_eq!(env[i], envb[i] + z[i].norm_sqr());
                }
            }
        }
    }

    #[test]
    fn gemm_tile_kernels_match_naive_loop() {
        for path in paths() {
            // Tile widths straddling the 8-wide vector block, strides
            // larger than the tile, nonzero offsets.
            for (xb, k_rows, stride, offset) in [
                (8, 9, 11, 0),
                (8, 5, 8, 3),
                (5, 4, 7, 1),
                (16, 3, 20, 2),
                (1, 2, 3, 0),
            ] {
                let col = fvec((k_rows - 1) * stride + offset + xb, 41);
                let w0 = fvec(k_rows, 43);
                let w1 = fvec(k_rows, 47);

                let mut acc = fvec(xb, 53);
                let mut want = acc.clone();
                gemm_tile_with(path, &mut acc, &w0, &col, stride, offset);
                for (k, &wk) in w0.iter().enumerate() {
                    for i in 0..xb {
                        want[i] += wk * col[k * stride + offset + i];
                    }
                }
                assert_eq!(acc, want, "gemm_tile xb={xb} k={k_rows} on {path:?}");

                let mut a0 = fvec(xb, 59);
                let mut a1 = fvec(xb, 61);
                let (mut w0_want, mut w1_want) = (a0.clone(), a1.clone());
                gemm_tile2_with(path, &mut a0, &mut a1, &w0, &w1, &col, stride, offset);
                for k in 0..k_rows {
                    for i in 0..xb {
                        w0_want[i] += w0[k] * col[k * stride + offset + i];
                        w1_want[i] += w1[k] * col[k * stride + offset + i];
                    }
                }
                assert_eq!(a0, w0_want, "gemm_tile2 ch0 xb={xb} on {path:?}");
                assert_eq!(a1, w1_want, "gemm_tile2 ch1 xb={xb} on {path:?}");
            }
            // Empty weights and empty tiles are no-ops.
            let mut acc = fvec(4, 67);
            let before = acc.clone();
            gemm_tile_with(path, &mut acc, &[], &[], 5, 0);
            assert_eq!(acc, before);
            gemm_tile_with(path, &mut [], &[1.0], &[2.0], 1, 0);
        }
    }

    #[test]
    fn sqdist_matches_reference_and_paths_agree() {
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 32, 63] {
            let a64 = fvec(n, 71);
            let b64 = fvec(n, 73);
            let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
            let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
            // Paths agree bit-for-bit.
            let s64 = sqdist_f64_with(SimdPath::Scalar, &a64, &b64);
            let s32 = sqdist_f32_with(SimdPath::Scalar, &a32, &b32);
            for path in paths() {
                assert_eq!(
                    sqdist_f64_with(path, &a64, &b64).to_bits(),
                    s64.to_bits(),
                    "sqdist_f64 n={n} on {path:?}"
                );
                assert_eq!(
                    sqdist_f32_with(path, &a32, &b32).to_bits(),
                    s32.to_bits(),
                    "sqdist_f32 n={n} on {path:?}"
                );
            }
            // And the value is the squared distance (up to the tree's
            // reassociation, which a loose tolerance absorbs).
            let naive: f64 = a64.iter().zip(&b64).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((s64 - naive).abs() <= 1e-12 * naive.max(1.0), "n={n}");
        }
        // Identical operands give exactly zero.
        let xs = fvec(21, 79);
        assert_eq!(sqdist_f64(&xs, &xs), 0.0);
    }

    #[test]
    fn sqdist_clamps_to_shortest_operand() {
        let a = fvec(9, 81);
        let b = fvec(5, 83);
        assert_eq!(
            sqdist_f64(&a, &b).to_bits(),
            sqdist_f64(&a[..5], &b).to_bits()
        );
        let a32: Vec<f32> = a.iter().map(|&v| v as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&v| v as f32).collect();
        assert_eq!(
            sqdist_f32(&a32, &b32).to_bits(),
            sqdist_f32(&a32[..5], &b32).to_bits()
        );
    }

    #[test]
    fn scalar_max_matches_fold() {
        for path in paths() {
            assert_eq!(max_f64_with(path, &[]), f64::NEG_INFINITY);
            for n in [1usize, 2, 3, 4, 5, 8, 11, 64] {
                let xs = fvec(n, 3 + n as u64);
                let want = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                assert_eq!(max_f64_with(path, &xs), want, "n={n} on {path:?}");
            }
        }
    }

    #[test]
    fn scalar_kernels_clamp_to_shortest_operand() {
        let mut a = cvec(4, 31);
        let b = cvec(2, 37);
        let tail = a[2..].to_vec();
        cmul_in_place(&mut a, &b);
        assert_eq!(&a[2..], &tail[..], "elements past min length untouched");

        let mut acc = fvec(5, 41);
        let keep = acc[3..].to_vec();
        axpy(&mut acc, 1.0, &fvec(3, 43));
        assert_eq!(&acc[3..], &keep[..]);
    }

    // ── dispatch machinery ──

    #[test]
    fn env_parsing_is_permissive() {
        assert_eq!(parse_request("scalar"), Request::Scalar);
        assert_eq!(parse_request(" SCALAR "), Request::Scalar);
        assert_eq!(parse_request("avx2"), Request::Avx2);
        assert_eq!(parse_request("AVX2"), Request::Avx2);
        assert_eq!(parse_request("auto"), Request::Auto);
        assert_eq!(parse_request(""), Request::Auto);
        assert_eq!(parse_request("sse9-typo"), Request::Auto);
    }

    #[test]
    fn active_is_cached_and_consistent_with_env() {
        let first = active();
        // A second call must hit the cache and agree.
        assert_eq!(active(), first);
        let requested = std::env::var(SIMD_ENV)
            .map(|v| parse_request(&v))
            .unwrap_or(Request::Auto);
        let expect = match requested {
            Request::Scalar => SimdPath::Scalar,
            Request::Auto | Request::Avx2 => {
                if avx2_supported() {
                    SimdPath::Avx2
                } else {
                    SimdPath::Scalar
                }
            }
        };
        assert_eq!(first, expect);
    }

    #[test]
    fn dispatch_gauge_reports_active_path() {
        echo_obs::set_enabled(true);
        record_dispatch();
        let snap = echo_obs::snapshot();
        let (_, value) = snap
            .gauges
            .iter()
            .find(|(name, _)| name == DISPATCH_GAUGE)
            .expect("simd.dispatch gauge registered");
        assert_eq!(*value, active().gauge_value());
    }

    #[test]
    fn gauge_values_are_stable() {
        assert_eq!(SimdPath::Scalar.gauge_value(), 1);
        assert_eq!(SimdPath::Avx2.gauge_value(), 2);
        assert_eq!(SimdPath::Scalar.name(), "scalar");
        assert_eq!(SimdPath::Avx2.name(), "avx2");
    }
}
