//! Fast Fourier transforms of arbitrary length.
//!
//! Power-of-two lengths use an iterative radix-2 Cooley–Tukey transform;
//! every other length is handled exactly via Bluestein's chirp-z algorithm,
//! so callers never need to pad or truncate.

use crate::complex::Complex;
use std::f64::consts::PI;

/// Returns the smallest power of two `>= n` (and `>= 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place radix-2 FFT. `data.len()` must be a power of two.
fn fft_radix2(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            data.swap(i, j);
        }
    }

    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let (lo, hi) = chunk.split_at_mut(len / 2);
            for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                let u = *a;
                let v = *b * w;
                *a = u + v;
                *b = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Arbitrary-length FFT via Bluestein's algorithm.
fn fft_bluestein(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w_k = e^{sign * i * π k² / n}. Compute k² mod 2n to avoid
    // catastrophic phase error for large k.
    let m2 = 2 * n as u64;
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k = k as u64;
            let q = (k * k) % m2;
            Complex::cis(sign * PI * q as f64 / n as f64)
        })
        .collect();

    let conv_len = next_pow2(2 * n - 1);
    let mut a = vec![Complex::ZERO; conv_len];
    let mut b = vec![Complex::ZERO; conv_len];
    for k in 0..n {
        a[k] = data[k] * chirp[k];
    }
    b[0] = chirp[0].conj();
    for k in 1..n {
        let c = chirp[k].conj();
        b[k] = c;
        b[conv_len - k] = c;
    }

    fft_radix2(&mut a, false);
    fft_radix2(&mut b, false);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= *y;
    }
    fft_radix2(&mut a, true);
    let scale = 1.0 / conv_len as f64;
    for k in 0..n {
        data[k] = a[k] * chirp[k] * scale;
    }
}

/// In-place forward FFT of any length.
///
/// Uses radix-2 when the length is a power of two and Bluestein otherwise.
/// The transform is unnormalised: `ifft(fft(x)) == x`.
///
/// # Example
///
/// ```
/// use echo_dsp::Complex;
/// use echo_dsp::fft::{fft, ifft};
///
/// let mut x = vec![Complex::from_real(1.0), Complex::from_real(2.0), Complex::from_real(3.0)];
/// let orig = x.clone();
/// fft(&mut x);
/// ifft(&mut x);
/// for (a, b) in x.iter().zip(orig.iter()) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub fn fft(data: &mut [Complex]) {
    if data.len() <= 1 {
        return;
    }
    if data.len().is_power_of_two() {
        fft_radix2(data, false);
    } else {
        fft_bluestein(data, false);
    }
}

/// In-place inverse FFT of any length, normalised by `1/n`.
pub fn ifft(data: &mut [Complex]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n.is_power_of_two() {
        fft_radix2(data, true);
    } else {
        fft_bluestein(data, true);
    }
    let scale = 1.0 / n as f64;
    for x in data.iter_mut() {
        *x *= scale;
    }
}

/// Forward FFT of a real signal, returning the full complex spectrum.
pub fn fft_real(signal: &[f64]) -> Vec<Complex> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    fft(&mut buf);
    buf
}

/// Magnitude spectrum of a real signal (bin k ↔ frequency `k·fs/n`).
pub fn magnitude_spectrum(signal: &[f64]) -> Vec<f64> {
    fft_real(signal).into_iter().map(Complex::abs).collect()
}

/// Frequency (Hz) of spectrum bin `k` for an `n`-point transform at `fs`.
#[inline]
pub fn bin_frequency(k: usize, n: usize, fs: f64) -> f64 {
    k as f64 * fs / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((*x - *y).abs() < tol, "index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x);
        for v in &x {
            assert!((*v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let mut x = vec![Complex::ONE; 16];
        fft(&mut x);
        assert!((x[0] - Complex::from_real(16.0)).abs() < 1e-9);
        for v in &x[1..] {
            assert!(v.abs() < 1e-9);
        }
    }

    #[test]
    fn sine_lands_in_expected_bin() {
        let n = 64;
        let k = 5;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).sin())
            .collect();
        let spec = magnitude_spectrum(&x);
        let peak = spec
            .iter()
            .enumerate()
            .take(n / 2)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, k);
        assert!((spec[k] - n as f64 / 2.0).abs() < 1e-9);
    }

    #[test]
    fn round_trip_pow2() {
        let orig: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x);
        ifft(&mut x);
        assert_close(&x, &orig, 1e-10);
    }

    #[test]
    fn round_trip_arbitrary_lengths() {
        for n in [3usize, 5, 7, 12, 25, 97, 100, 243] {
            let orig: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 1.3).sin(), (i as f64 * 0.31).cos()))
                .collect();
            let mut x = orig.clone();
            fft(&mut x);
            ifft(&mut x);
            assert_close(&x, &orig, 1e-9);
        }
    }

    #[test]
    fn bluestein_matches_radix2_after_padding_free_dft() {
        // Direct O(n²) DFT as ground truth for a non-pow2 length.
        let n = 12;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).cos(), (i as f64 * 0.5).sin()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast);
        for (k, fk) in fast.iter().enumerate() {
            let mut acc = Complex::ZERO;
            for (j, v) in x.iter().enumerate() {
                acc += *v * Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64);
            }
            assert!((*fk - acc).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parseval_holds() {
        let x: Vec<f64> = (0..50).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let time_energy: f64 = x.iter().map(|v| v * v).sum();
        let spec = fft_real(&x);
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy.max(1.0));
    }

    #[test]
    fn linearity() {
        let n = 40;
        let a: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).sin()))
            .collect();
        let b: Vec<Complex> = (0..n)
            .map(|i| Complex::from_real((i as f64).cos()))
            .collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft(&mut fa);
        fft(&mut fb);
        let mut sum: Vec<Complex> = a.iter().zip(b.iter()).map(|(x, y)| *x + *y * 2.0).collect();
        fft(&mut sum);
        let expect: Vec<Complex> = fa
            .iter()
            .zip(fb.iter())
            .map(|(x, y)| *x + *y * 2.0)
            .collect();
        assert_close(&sum, &expect, 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        let mut e: Vec<Complex> = vec![];
        fft(&mut e);
        ifft(&mut e);
        let mut one = vec![Complex::new(3.0, -1.0)];
        fft(&mut one);
        assert_eq!(one[0], Complex::new(3.0, -1.0));
    }

    #[test]
    fn next_pow2_bounds() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(1025), 2048);
    }

    #[test]
    fn bin_frequency_maps_linearly() {
        assert_eq!(bin_frequency(0, 128, 48_000.0), 0.0);
        assert_eq!(bin_frequency(64, 128, 48_000.0), 24_000.0);
    }

    use std::f64::consts::PI;
}
