//! Analytic signals and envelope detection.
//!
//! The paper tracks "the overall trend changes" of the matched-filter
//! output by taking its envelope (§V-B, `E_l(t)`). We compute envelopes as
//! the magnitude of the analytic signal obtained with a Hilbert transform,
//! optionally smoothed with a short moving average.

use crate::complex::Complex;
use crate::plan::{fft_plan, FftScratch};
use crate::simd;

/// Computes the analytic signal `x + i·H{x}` of a real signal.
///
/// Implemented in the frequency domain: positive frequencies are doubled,
/// negative frequencies zeroed. Works for any length thanks to the
/// Bluestein FFT.
///
/// # Example
///
/// ```
/// use echo_dsp::hilbert::analytic_signal;
///
/// // The analytic signal of cos(wt) is e^{iwt}: unit magnitude.
/// let n = 256;
/// let x: Vec<f64> = (0..n)
///     .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / n as f64).cos())
///     .collect();
/// let a = analytic_signal(&x);
/// for v in &a[10..n - 10] {
///     assert!((v.abs() - 1.0).abs() < 1e-6);
/// }
/// ```
pub fn analytic_signal(signal: &[f64]) -> Vec<Complex> {
    analytic_signal_with(signal, &mut FftScratch::new())
}

/// [`analytic_signal`] reusing caller scratch across calls.
///
/// Callers transforming many same-length channels (beamforming fans the
/// Hilbert transform across every steering direction) avoid
/// re-allocating the Bluestein convolution buffer. Output is identical
/// to [`analytic_signal`]; the transforms go through the process-wide
/// plan cache either way.
pub fn analytic_signal_with(signal: &[f64], scratch: &mut FftScratch) -> Vec<Complex> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let plan = fft_plan(n);
    let mut spec: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    plan.fft_with(&mut spec, scratch);
    // Single-sided spectrum weighting: DC (and Nyquist for even n) stay
    // unscaled, positive frequencies double, negative frequencies zero.
    // Expressed as two contiguous ranges so the scale runs on the SIMD
    // kernel; bit-identical to the per-bin branch it replaces.
    let half = n / 2;
    let dbl_end = if n.is_multiple_of(2) { half } else { half + 1 };
    simd::scale_in_place(&mut spec[1..dbl_end], 2.0);
    spec[half + 1..].fill(Complex::ZERO);
    plan.ifft_with(&mut spec, scratch);
    spec
}

/// Analytic signal of the zero-padded input: `signal` is padded to the
/// next power of two, transformed on the radix-2 path, and the result
/// truncated back to the input length.
///
/// For power-of-two lengths this is bit-identical to
/// [`analytic_signal_with`] (the padding is a no-op). For any other
/// length it computes the analytic signal *of the padded signal* — away
/// from the last few samples this tracks the unpadded transform
/// closely, while skipping Bluestein's two extra double-length
/// convolution transforms (~5× the work of a direct radix-2 pair).
/// The distance estimator accumulates squared envelopes over many beeps
/// and reads peaks well inside the capture, so it uses this variant.
pub fn analytic_signal_padded_with(signal: &[f64], scratch: &mut FftScratch) -> Vec<Complex> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let size = crate::fft::next_pow2(n);
    let plan = fft_plan(size);
    let mut spec: Vec<Complex> = Vec::with_capacity(size);
    spec.extend(signal.iter().map(|&x| Complex::from_real(x)));
    spec.resize(size, Complex::ZERO);
    plan.fft_with(&mut spec, scratch);
    let half = size / 2;
    simd::scale_in_place(&mut spec[1..half], 2.0);
    spec[half + 1..].fill(Complex::ZERO);
    plan.ifft_with(&mut spec, scratch);
    spec.truncate(n);
    spec
}

/// [`analytic_signal_padded_with`] with one-shot scratch.
pub fn analytic_signal_padded(signal: &[f64]) -> Vec<Complex> {
    analytic_signal_padded_with(signal, &mut FftScratch::new())
}

/// Envelope of a real signal: `|analytic(x)|`.
pub fn envelope(signal: &[f64]) -> Vec<f64> {
    analytic_signal(signal)
        .into_iter()
        .map(Complex::abs)
        .collect()
}

/// Envelope smoothed by a centred moving average of width `window`
/// (clamped to odd and at least 1).
pub fn smoothed_envelope(signal: &[f64], window: usize) -> Vec<f64> {
    moving_average(&envelope(signal), window)
}

/// Centred moving average. Edges use the available (shorter) window.
pub fn moving_average(signal: &[f64], window: usize) -> Vec<f64> {
    let w = window.max(1);
    let half = w / 2;
    let n = signal.len();
    let mut prefix = Vec::with_capacity(n + 1);
    prefix.push(0.0);
    for &x in signal {
        prefix.push(prefix.last().unwrap() + x);
    }
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(n);
            (prefix[hi] - prefix[lo]) / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn analytic_signal_of_cosine_is_phasor() {
        let n = 512;
        let k = 20.0;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k * i as f64 / n as f64).cos())
            .collect();
        let a = analytic_signal(&x);
        for (i, v) in a.iter().enumerate() {
            assert!(
                (v.abs() - 1.0).abs() < 1e-9,
                "sample {i}: |a| = {}",
                v.abs()
            );
            let expected_phase = 2.0 * PI * k * i as f64 / n as f64;
            let diff = (v.arg() - expected_phase).rem_euclid(2.0 * PI);
            assert!(!(1e-6..=2.0 * PI - 1e-6).contains(&diff), "phase at {i}");
        }
    }

    #[test]
    fn real_part_is_preserved() {
        let x: Vec<f64> = (0..100).map(|i| ((i * 3) as f64 * 0.07).sin()).collect();
        let a = analytic_signal(&x);
        for (v, &orig) in a.iter().zip(x.iter()) {
            assert!((v.re - orig).abs() < 1e-9);
        }
    }

    #[test]
    fn envelope_recovers_amplitude_modulation() {
        // x(t) = (1 + 0.5 sin(w_m t)) cos(w_c t): envelope is the AM term.
        let n = 2_048;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (1.0 + 0.5 * (2.0 * PI * 4.0 * t).sin()) * (2.0 * PI * 200.0 * t).cos()
            })
            .collect();
        let e = envelope(&x);
        for i in (100..n - 100).step_by(37) {
            let t = i as f64 / n as f64;
            let expect = 1.0 + 0.5 * (2.0 * PI * 4.0 * t).sin();
            assert!(
                (e[i] - expect).abs() < 0.02,
                "sample {i}: {} vs {expect}",
                e[i]
            );
        }
    }

    #[test]
    fn envelope_works_for_odd_lengths() {
        let n = 501;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 25.0 * i as f64 / n as f64).cos())
            .collect();
        let e = envelope(&x);
        for v in &e[20..n - 20] {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn envelope_is_nonnegative_upper_bound() {
        let x: Vec<f64> = (0..300)
            .map(|i| ((i as f64) * 0.3).sin() * ((i as f64) * 0.01).cos())
            .collect();
        let e = envelope(&x);
        for (ev, xv) in e.iter().zip(x.iter()) {
            assert!(*ev >= 0.0);
            assert!(*ev + 1e-9 >= xv.abs());
        }
    }

    #[test]
    fn moving_average_of_constant_is_constant() {
        let x = vec![3.0; 40];
        let y = moving_average(&x, 7);
        assert!(y.iter().all(|&v| (v - 3.0).abs() < 1e-12));
    }

    #[test]
    fn moving_average_smooths_impulse() {
        let mut x = vec![0.0; 21];
        x[10] = 10.0;
        let y = moving_average(&x, 5);
        assert!((y[10] - 2.0).abs() < 1e-12);
        assert!((y[8] - 2.0).abs() < 1e-12);
        assert!(y[7].abs() < 1e-12);
    }

    #[test]
    fn padded_variant_is_bit_identical_for_pow2_lengths() {
        let n = 256;
        let x: Vec<f64> = (0..n).map(|i| ((i * 7) as f64 * 0.031).sin()).collect();
        let exact = analytic_signal(&x);
        let padded = analytic_signal_padded(&x);
        assert_eq!(exact.len(), padded.len());
        for (a, b) in exact.iter().zip(padded.iter()) {
            assert_eq!(a.re.to_bits(), b.re.to_bits());
            assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    #[test]
    fn padded_variant_tracks_exact_envelope_away_from_edges() {
        // A windowed tone burst (zero at both ends, like a band-passed
        // beep capture): padding adds no discontinuity, so the padded
        // envelope tracks the Bluestein one everywhere that matters.
        let n = 3_360;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let win = (PI * t).sin().powi(2);
                win * (2.0 * PI * 300.0 * t).cos()
            })
            .collect();
        let exact = analytic_signal(&x);
        let padded = analytic_signal_padded(&x);
        assert_eq!(padded.len(), n);
        for i in (n / 10)..(9 * n / 10) {
            assert!(
                (exact[i].abs() - padded[i].abs()).abs() < 1e-3,
                "sample {i}: exact {} vs padded {}",
                exact[i].abs(),
                padded[i].abs()
            );
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(analytic_signal(&[]).is_empty());
        assert!(analytic_signal_padded(&[]).is_empty());
        assert!(envelope(&[]).is_empty());
        assert!(moving_average(&[], 5).is_empty());
    }
}
