//! Linear-frequency-modulated (LFM) chirp synthesis — the paper's probing
//! "beep" signal (paper Eq. 2).
//!
//! EchoImage probes the scene with a short LFM chirp sweeping 2→3 kHz over
//! 2 ms, repeated every 0.5 s. [`LfmChirp`] captures those parameters and
//! synthesises the samples; [`BeepTrain`] lays repeated chirps out on a
//! recording timeline.

use std::f64::consts::PI;

/// A linear-frequency-modulated chirp `s(t) = A·cos 2π(f₀t + (B/2T)t²)`.
///
/// Constructed from its band edges for convenience; the paper's form with
/// centre frequency `f₀` and bandwidth `B` is recovered by
/// [`LfmChirp::center_frequency`] and [`LfmChirp::bandwidth`].
///
/// # Example
///
/// ```
/// use echo_dsp::chirp::LfmChirp;
///
/// let beep = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0);
/// assert_eq!(beep.len(), 96);
/// assert_eq!(beep.center_frequency(), 2_500.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LfmChirp {
    f_start: f64,
    f_end: f64,
    duration: f64,
    sample_rate: f64,
    amplitude: f64,
}

impl LfmChirp {
    /// Creates a chirp sweeping `f_start → f_end` Hz over `duration` seconds,
    /// sampled at `sample_rate` Hz, with unit amplitude.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive or non-finite, or if the band
    /// edges exceed the Nyquist frequency.
    pub fn new(f_start: f64, f_end: f64, duration: f64, sample_rate: f64) -> Self {
        Self::with_amplitude(f_start, f_end, duration, sample_rate, 1.0)
    }

    /// Like [`LfmChirp::new`] with an explicit amplitude `A`.
    ///
    /// # Panics
    ///
    /// See [`LfmChirp::new`]; additionally panics if `amplitude` is not a
    /// positive finite value.
    pub fn with_amplitude(
        f_start: f64,
        f_end: f64,
        duration: f64,
        sample_rate: f64,
        amplitude: f64,
    ) -> Self {
        assert!(
            f_start.is_finite() && f_start > 0.0,
            "start frequency must be positive"
        );
        assert!(
            f_end.is_finite() && f_end > 0.0,
            "end frequency must be positive"
        );
        assert!(
            duration.is_finite() && duration > 0.0,
            "duration must be positive"
        );
        assert!(
            sample_rate.is_finite() && sample_rate > 0.0,
            "sample rate must be positive"
        );
        assert!(
            f_start.max(f_end) <= sample_rate / 2.0,
            "band edge exceeds Nyquist frequency"
        );
        assert!(
            amplitude.is_finite() && amplitude > 0.0,
            "amplitude must be positive"
        );
        LfmChirp {
            f_start,
            f_end,
            duration,
            sample_rate,
            amplitude,
        }
    }

    /// Start frequency in Hz.
    pub fn f_start(&self) -> f64 {
        self.f_start
    }

    /// End frequency in Hz.
    pub fn f_end(&self) -> f64 {
        self.f_end
    }

    /// Sweep duration `T` in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Peak amplitude `A`.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Centre frequency `f₀ = (f_start + f_end)/2`.
    pub fn center_frequency(&self) -> f64 {
        (self.f_start + self.f_end) / 2.0
    }

    /// Swept bandwidth `B = |f_end − f_start|`.
    pub fn bandwidth(&self) -> f64 {
        (self.f_end - self.f_start).abs()
    }

    /// Number of samples in one chirp.
    pub fn len(&self) -> usize {
        (self.duration * self.sample_rate).round() as usize
    }

    /// Returns `true` if the chirp rounds to zero samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Instantaneous value at time `t ∈ [0, T)` seconds.
    ///
    /// Phase follows `A·cos 2π(f_start·t + (k/2)t²)` with sweep rate
    /// `k = (f_end − f_start)/T`, which matches the paper's Eq. 2 with the
    /// time origin shifted to the chirp start.
    pub fn value_at(&self, t: f64) -> f64 {
        let k = (self.f_end - self.f_start) / self.duration;
        self.amplitude * (2.0 * PI * (self.f_start * t + 0.5 * k * t * t)).cos()
    }

    /// Synthesises the chirp samples.
    pub fn samples(&self) -> Vec<f64> {
        let n = self.len();
        (0..n)
            .map(|i| self.value_at(i as f64 / self.sample_rate))
            .collect()
    }

    /// Instantaneous frequency at time `t ∈ [0, T)` in Hz.
    pub fn instantaneous_frequency(&self, t: f64) -> f64 {
        let k = (self.f_end - self.f_start) / self.duration;
        self.f_start + k * t
    }
}

/// A periodic train of beeps on a recording timeline.
///
/// The paper probes with one chirp every `interval` seconds (§V-A uses
/// 0.5 s) so that echoes from one beep die out before the next.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeepTrain {
    chirp: LfmChirp,
    interval: f64,
    count: usize,
}

impl BeepTrain {
    /// Creates a train of `count` chirps spaced `interval` seconds apart.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is shorter than the chirp itself or `count == 0`.
    pub fn new(chirp: LfmChirp, interval: f64, count: usize) -> Self {
        assert!(
            interval >= chirp.duration(),
            "beep interval shorter than the chirp"
        );
        assert!(count > 0, "a beep train needs at least one beep");
        BeepTrain {
            chirp,
            interval,
            count,
        }
    }

    /// The underlying chirp.
    pub fn chirp(&self) -> &LfmChirp {
        &self.chirp
    }

    /// Seconds between consecutive beep onsets.
    pub fn interval(&self) -> f64 {
        self.interval
    }

    /// Number of beeps.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Onset time of beep `l` (0-based) in seconds.
    pub fn onset(&self, l: usize) -> f64 {
        l as f64 * self.interval
    }

    /// Total timeline duration in seconds (one full interval per beep).
    pub fn total_duration(&self) -> f64 {
        self.count as f64 * self.interval
    }

    /// Number of samples in the full timeline.
    pub fn total_samples(&self) -> usize {
        (self.total_duration() * self.chirp.sample_rate()).round() as usize
    }

    /// Number of samples in one beep interval.
    pub fn samples_per_interval(&self) -> usize {
        (self.interval * self.chirp.sample_rate()).round() as usize
    }

    /// Renders the transmitted waveform for the whole train.
    pub fn transmit_waveform(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.total_samples()];
        let chirp = self.chirp.samples();
        let stride = self.samples_per_interval();
        for l in 0..self.count {
            let start = l * stride;
            for (i, &v) in chirp.iter().enumerate() {
                if start + i < out.len() {
                    out[start + i] = v;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{bin_frequency, magnitude_spectrum};

    fn paper_beep() -> LfmChirp {
        LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0)
    }

    #[test]
    fn sample_count_matches_duration() {
        assert_eq!(paper_beep().len(), 96);
        assert!(!paper_beep().is_empty());
    }

    #[test]
    fn amplitude_bounds_hold() {
        let s = paper_beep().samples();
        assert!(s.iter().all(|v| v.abs() <= 1.0 + 1e-12));
        assert!(s.iter().any(|v| v.abs() > 0.9), "should reach near peak");
    }

    #[test]
    fn starts_at_peak_phase() {
        // cos(0) = 1 at t = 0.
        let s = paper_beep().samples();
        assert!((s[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn instantaneous_frequency_sweeps_linearly() {
        let c = paper_beep();
        assert_eq!(c.instantaneous_frequency(0.0), 2_000.0);
        assert_eq!(c.instantaneous_frequency(0.002), 3_000.0);
        assert_eq!(c.instantaneous_frequency(0.001), 2_500.0);
    }

    #[test]
    fn energy_is_band_limited() {
        // Use a longer chirp for tighter spectral concentration.
        let c = LfmChirp::new(2_000.0, 3_000.0, 0.05, 48_000.0);
        let s = c.samples();
        let spec = magnitude_spectrum(&s);
        let n = s.len();
        let total: f64 = spec[..n / 2].iter().map(|v| v * v).sum();
        let in_band: f64 = spec[..n / 2]
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = bin_frequency(*k, n, 48_000.0);
                (1_800.0..=3_200.0).contains(&f)
            })
            .map(|(_, v)| v * v)
            .sum();
        assert!(
            in_band / total > 0.95,
            "only {:.3} of energy in band",
            in_band / total
        );
    }

    #[test]
    fn downward_sweep_supported() {
        let c = LfmChirp::new(3_000.0, 2_000.0, 0.002, 48_000.0);
        assert_eq!(c.bandwidth(), 1_000.0);
        assert_eq!(c.instantaneous_frequency(0.002), 2_000.0);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn rejects_band_above_nyquist() {
        let _ = LfmChirp::new(2_000.0, 30_000.0, 0.002, 48_000.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_duration() {
        let _ = LfmChirp::new(2_000.0, 3_000.0, 0.0, 48_000.0);
    }

    #[test]
    fn beep_train_layout() {
        let train = BeepTrain::new(paper_beep(), 0.5, 4);
        assert_eq!(train.count(), 4);
        assert_eq!(train.onset(2), 1.0);
        assert_eq!(train.total_samples(), 96_000);
        assert_eq!(train.samples_per_interval(), 24_000);
    }

    #[test]
    fn beep_train_waveform_has_chirps_at_onsets() {
        let train = BeepTrain::new(paper_beep(), 0.01, 3);
        let w = train.transmit_waveform();
        let stride = train.samples_per_interval();
        for l in 0..3 {
            assert!((w[l * stride] - 1.0).abs() < 1e-12, "beep {l} onset");
            // Quiet zone between chirp end and next onset.
            let quiet = &w[l * stride + 96..(l + 1) * stride];
            assert!(quiet.iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn beep_train_rejects_overlapping_interval() {
        let _ = BeepTrain::new(paper_beep(), 0.001, 2);
    }
}
