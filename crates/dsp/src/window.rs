//! Window functions used for spectral shaping and tapering.

use std::f64::consts::PI;

/// The window functions supported by [`window`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WindowKind {
    /// All-ones window (no tapering).
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

/// Generates an `n`-point window of the requested kind.
///
/// Windows are symmetric (`w[i] == w[n-1-i]`), matching the usual filter
/// design convention.
///
/// # Example
///
/// ```
/// use echo_dsp::window::{window, WindowKind};
///
/// let w = window(WindowKind::Hann, 5);
/// assert!((w[2] - 1.0).abs() < 1e-12); // peak at the centre
/// assert!(w[0].abs() < 1e-12);
/// ```
pub fn window(kind: WindowKind, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![1.0];
    }
    let denom = (n - 1) as f64;
    (0..n)
        .map(|i| {
            let x = i as f64 / denom;
            match kind {
                WindowKind::Rectangular => 1.0,
                WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
                WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
                WindowKind::Blackman => {
                    0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
                }
            }
        })
        .collect()
}

/// Multiplies `signal` by the window in place.
///
/// # Panics
///
/// Panics if `signal` and `win` have different lengths.
pub fn apply_window(signal: &mut [f64], win: &[f64]) {
    assert_eq!(signal.len(), win.len(), "window length mismatch");
    for (s, w) in signal.iter_mut().zip(win.iter()) {
        *s *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            let w = window(kind, 33);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{kind:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let w = window(WindowKind::Hann, 17);
        assert!(w[0].abs() < 1e-12);
        assert!(w[16].abs() < 1e-12);
        assert!((w[8] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_are_nonzero() {
        let w = window(WindowKind::Hamming, 17);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(window(WindowKind::Hann, 0).is_empty());
        assert_eq!(window(WindowKind::Blackman, 1), vec![1.0]);
    }

    #[test]
    fn apply_window_multiplies() {
        let mut s = vec![2.0; 5];
        let w = window(WindowKind::Rectangular, 5);
        apply_window(&mut s, &w);
        assert_eq!(s, vec![2.0; 5]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn apply_window_length_mismatch_panics() {
        let mut s = vec![1.0; 4];
        apply_window(&mut s, &[1.0; 5]);
    }
}
