//! Sample-rate conversion.
//!
//! The paper's prototype records at 48 kHz, but deployed devices use
//! 44.1 kHz or 16 kHz front ends; this windowed-sinc resampler converts
//! captures to the pipeline's rate.

use crate::interp::sample_sinc;

/// Resamples `signal` from `from_hz` to `to_hz` with windowed-sinc
/// interpolation (half-width `taps`; 8 is a good default).
///
/// When downsampling, the signal must already be band-limited below the
/// target Nyquist (use a low-pass first) — this function interpolates,
/// it does not decimate-filter.
///
/// # Panics
///
/// Panics if either rate is non-positive or `taps == 0`.
///
/// # Example
///
/// ```
/// use echo_dsp::resample::resample;
///
/// let tone: Vec<f64> = (0..480)
///     .map(|i| (2.0 * std::f64::consts::PI * 1_000.0 * i as f64 / 48_000.0).sin())
///     .collect();
/// let down = resample(&tone, 48_000.0, 16_000.0, 8);
/// assert_eq!(down.len(), 160);
/// ```
pub fn resample(signal: &[f64], from_hz: f64, to_hz: f64, taps: usize) -> Vec<f64> {
    assert!(from_hz > 0.0 && to_hz > 0.0, "rates must be positive");
    assert!(taps > 0, "need at least one tap");
    if signal.is_empty() {
        return Vec::new();
    }
    let ratio = from_hz / to_hz;
    let out_len = ((signal.len() as f64) / ratio).floor() as usize;
    (0..out_len)
        .map(|i| sample_sinc(signal, i as f64 * ratio, taps))
        .collect()
}

/// Upsamples by an integer factor (exact length `n·factor`).
///
/// # Panics
///
/// Panics if `factor == 0`.
pub fn upsample(signal: &[f64], factor: usize, taps: usize) -> Vec<f64> {
    assert!(factor > 0, "factor must be positive");
    resample(signal, 1.0, factor as f64, taps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    fn tone(f: f64, fs: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (TAU * f * i as f64 / fs).sin()).collect()
    }

    #[test]
    fn output_length_follows_ratio() {
        let x = tone(440.0, 48_000.0, 4_800);
        assert_eq!(resample(&x, 48_000.0, 16_000.0, 8).len(), 1_600);
        assert_eq!(resample(&x, 48_000.0, 96_000.0, 8).len(), 9_600);
    }

    #[test]
    fn tone_survives_downsampling() {
        let fs_in = 48_000.0;
        let fs_out = 16_000.0;
        let f = 1_000.0;
        let x = tone(f, fs_in, 9_600);
        let y = resample(&x, fs_in, fs_out, 8);
        // Compare interior samples to the ideal tone at the new rate.
        for i in (40..y.len() - 40).step_by(97) {
            let truth = (TAU * f * i as f64 / fs_out).sin();
            assert!(
                (y[i] - truth).abs() < 0.01,
                "sample {i}: {} vs {truth}",
                y[i]
            );
        }
    }

    #[test]
    fn tone_survives_441_to_48() {
        let f = 2_500.0;
        let x = tone(f, 44_100.0, 8_820);
        let y = resample(&x, 44_100.0, 48_000.0, 8);
        for i in (50..y.len() - 60).step_by(131) {
            let truth = (TAU * f * i as f64 / 48_000.0).sin();
            assert!((y[i] - truth).abs() < 0.01, "sample {i}");
        }
    }

    #[test]
    fn identity_resampling_is_near_exact() {
        let x = tone(700.0, 8_000.0, 800);
        let y = resample(&x, 8_000.0, 8_000.0, 8);
        assert_eq!(y.len(), x.len());
        for i in 20..x.len() - 20 {
            assert!((y[i] - x[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn upsample_factor() {
        let x = tone(100.0, 8_000.0, 160);
        let y = upsample(&x, 3, 8);
        assert_eq!(y.len(), 480);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(resample(&[], 48_000.0, 16_000.0, 8).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = resample(&[1.0], 0.0, 1.0, 8);
    }
}
