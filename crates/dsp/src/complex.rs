//! A minimal double-precision complex number.
//!
//! The EchoImage pipeline needs complex arithmetic for FFTs, analytic
//! signals, steering vectors and MVDR weights. Rather than pulling in a
//! numerics crate we implement the small amount of arithmetic required.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use echo_dsp::Complex;
///
/// let i = Complex::I;
/// assert_eq!(i * i, Complex::new(-1.0, 0.0));
/// assert!((Complex::from_polar(2.0, std::f64::consts::PI).re - (-2.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(C)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex::new(magnitude * phase.cos(), magnitude * phase.sin())
    }

    /// `e^{iφ}` — a unit phasor with the given phase in radians.
    #[inline]
    pub fn cis(phase: f64) -> Self {
        Complex::from_polar(1.0, phase)
    }

    /// The complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// The squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// The magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// The phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// The multiplicative inverse.
    ///
    /// Returns a non-finite result when `self` is zero, mirroring `1.0/0.0`.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^{self}`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im = ((r - self.re) / 2.0).max(0.0).sqrt();
        Complex::new(re, if self.im < 0.0 { -im } else { im })
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division IS multiply-by-reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert_eq!(a + b, Complex::new(4.0, -2.0));
        assert_eq!(a - b, Complex::new(-2.0, 6.0));
        assert_eq!(a * b, Complex::new(11.0, 2.0));
        assert!(close(a / b * b, a));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.conj(), Complex::new(3.0, -4.0));
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        assert!(close(a * a.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn polar_round_trip() {
        let a = Complex::from_polar(2.5, 1.2);
        assert!((a.abs() - 2.5).abs() < 1e-12);
        assert!((a.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..16 {
            let phi = k as f64 * PI / 8.0;
            assert!((Complex::cis(phi).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_of_i_pi() {
        let e = (Complex::I * PI).exp();
        assert!(close(e, Complex::new(-1.0, 0.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[
            (4.0, 0.0),
            (-4.0, 0.0),
            (1.0, 1.0),
            (-3.0, -7.0),
            (0.0, 2.0),
        ] {
            let z = Complex::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z), "sqrt({z}) = {s}");
            assert!(s.re >= 0.0, "principal branch");
        }
    }

    #[test]
    fn recip_identity() {
        let z = Complex::new(-2.0, 5.0);
        assert!(close(z * z.recip(), Complex::ONE));
    }

    #[test]
    fn sum_folds() {
        let zs = [Complex::new(1.0, 1.0), Complex::new(2.0, -3.0)];
        let s: Complex = zs.iter().copied().sum();
        assert_eq!(s, Complex::new(3.0, -2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
