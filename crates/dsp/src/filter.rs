//! IIR filtering: biquad sections and Butterworth designs.
//!
//! EchoImage band-passes every recording to the 2–3 kHz probing band before
//! any further processing (paper §V-B: "A 2 to 3 kHz Butterworth bandpass
//! filter is then applied to remove environmental noises"). This module
//! implements classic Butterworth low-pass, high-pass and band-pass designs
//! from the analog prototype via the bilinear transform, realised as
//! cascaded second-order sections (SOS) for numerical robustness.

use crate::complex::Complex;

/// One second-order IIR section with normalised `a0 = 1`:
///
/// `y[n] = b0·x[n] + b1·x[n−1] + b2·x[n−2] − a1·y[n−1] − a2·y[n−2]`
///
/// implemented in transposed direct form II.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b0: f64,
    /// Feed-forward coefficient for `x[n−1]`.
    pub b1: f64,
    /// Feed-forward coefficient for `x[n−2]`.
    pub b2: f64,
    /// Feedback coefficient for `y[n−1]`.
    pub a1: f64,
    /// Feedback coefficient for `y[n−2]`.
    pub a2: f64,
}

impl Biquad {
    /// Identity section (passes the input through unchanged).
    pub const IDENTITY: Biquad = Biquad {
        b0: 1.0,
        b1: 0.0,
        b2: 0.0,
        a1: 0.0,
        a2: 0.0,
    };

    /// Frequency response at normalised angular frequency `w` (rad/sample).
    pub fn response(&self, w: f64) -> Complex {
        let z1 = Complex::cis(-w);
        let z2 = Complex::cis(-2.0 * w);
        let num = Complex::from_real(self.b0) + z1 * self.b1 + z2 * self.b2;
        let den = Complex::ONE + z1 * self.a1 + z2 * self.a2;
        num / den
    }

    /// Returns `true` when both poles are strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        // Jury stability criterion for a real second-order polynomial
        // z² + a1 z + a2.
        self.a2 < 1.0 && self.a2 > -1.0 && self.a1.abs() < 1.0 + self.a2
    }
}

/// A cascade of biquad sections with per-instance filter state.
///
/// # Example
///
/// Band-pass the paper's probing band and check the stop-band rejection:
///
/// ```
/// use echo_dsp::filter::SosFilter;
///
/// let bp = SosFilter::butterworth_bandpass(4, 2_000.0, 3_000.0, 48_000.0);
/// let passband = bp.gain_at(2_500.0, 48_000.0);
/// let stopband = bp.gain_at(500.0, 48_000.0);
/// assert!(passband > 0.9);
/// assert!(stopband < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SosFilter {
    sections: Vec<Biquad>,
    #[cfg_attr(feature = "serde", serde(skip))]
    state: Vec<[f64; 2]>,
}

impl SosFilter {
    /// Builds a cascade from explicit sections.
    pub fn from_sections(sections: Vec<Biquad>) -> Self {
        let state = vec![[0.0; 2]; sections.len()];
        SosFilter { sections, state }
    }

    /// Designs an order-`order` Butterworth low-pass with cutoff `fc` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `fc` is not in `(0, fs/2)`.
    pub fn butterworth_lowpass(order: usize, fc: f64, fs: f64) -> Self {
        assert!(order > 0, "filter order must be at least 1");
        check_edge(fc, fs);
        let wc = prewarp(fc, fs);
        let poles: Vec<Complex> = prototype_poles(order).iter().map(|&p| p * wc).collect();
        let zeros = vec![]; // all at infinity → z = −1 after bilinear
        build_digital(poles, zeros, order, fs, 0.0)
    }

    /// Designs an order-`order` Butterworth high-pass with cutoff `fc` Hz.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0` or `fc` is not in `(0, fs/2)`.
    pub fn butterworth_highpass(order: usize, fc: f64, fs: f64) -> Self {
        assert!(order > 0, "filter order must be at least 1");
        check_edge(fc, fs);
        let wc = prewarp(fc, fs);
        let poles: Vec<Complex> = prototype_poles(order)
            .iter()
            .map(|&p| Complex::from_real(wc) / p)
            .collect();
        // n analog zeros at s = 0 → z = +1 after bilinear.
        let zeros = vec![Complex::ONE; order];
        build_digital(poles, zeros, 0, fs, std::f64::consts::PI)
    }

    /// Designs a Butterworth band-pass from an order-`order` low-pass
    /// prototype; the digital filter has `2·order` poles.
    ///
    /// `f_low` and `f_high` are the −3 dB band edges in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `order == 0`, the edges are not ordered, or either edge is
    /// outside `(0, fs/2)`.
    pub fn butterworth_bandpass(order: usize, f_low: f64, f_high: f64, fs: f64) -> Self {
        assert!(order > 0, "filter order must be at least 1");
        assert!(f_low < f_high, "band edges must satisfy f_low < f_high");
        check_edge(f_low, fs);
        check_edge(f_high, fs);
        let w1 = prewarp(f_low, fs);
        let w2 = prewarp(f_high, fs);
        let w0 = (w1 * w2).sqrt();
        let bw = w2 - w1;

        // Each prototype pole p maps to the two roots of s² − (bw·p)s + w0².
        let mut poles = Vec::with_capacity(2 * order);
        for &p in &prototype_poles(order) {
            let bp = p * bw;
            let disc = (bp * bp - Complex::from_real(4.0 * w0 * w0)).sqrt();
            poles.push((bp + disc) * 0.5);
            poles.push((bp - disc) * 0.5);
        }
        // n analog zeros at s = 0 → z = +1; n at infinity → z = −1.
        let zeros = vec![Complex::ONE; order];
        // Reference frequency: the digital image of the analog centre w0.
        let w_ref = 2.0 * (w0 / (2.0 * fs)).atan();
        build_digital(poles, zeros, order, fs, w_ref)
    }

    /// The cascaded sections.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Resets the internal filter state to zero.
    pub fn reset(&mut self) {
        for s in &mut self.state {
            *s = [0.0; 2];
        }
    }

    /// Processes one sample through the cascade, updating state.
    pub fn process(&mut self, x: f64) -> f64 {
        let mut v = x;
        for (sec, st) in self.sections.iter().zip(self.state.iter_mut()) {
            let y = sec.b0 * v + st[0];
            st[0] = sec.b1 * v - sec.a1 * y + st[1];
            st[1] = sec.b2 * v - sec.a2 * y;
            v = y;
        }
        v
    }

    /// Filters a whole signal starting from zero state (the instance state
    /// is left untouched).
    pub fn filter(&self, signal: &[f64]) -> Vec<f64> {
        let mut work = self.clone();
        work.reset();
        signal.iter().map(|&x| work.process(x)).collect()
    }

    /// Zero-phase filtering: forward pass, then a reversed pass, which
    /// squares the magnitude response and cancels the phase delay.
    pub fn filtfilt(&self, signal: &[f64]) -> Vec<f64> {
        let mut y = self.filter(signal);
        y.reverse();
        let mut z = self.filter(&y);
        z.reverse();
        z
    }

    /// Complex frequency response at `f` Hz for sample rate `fs`.
    pub fn response_at(&self, f: f64, fs: f64) -> Complex {
        let w = 2.0 * std::f64::consts::PI * f / fs;
        self.sections
            .iter()
            .fold(Complex::ONE, |acc, s| acc * s.response(w))
    }

    /// Magnitude response at `f` Hz.
    pub fn gain_at(&self, f: f64, fs: f64) -> f64 {
        self.response_at(f, fs).abs()
    }

    /// Returns `true` when every section is stable.
    pub fn is_stable(&self) -> bool {
        self.sections.iter().all(Biquad::is_stable)
    }
}

/// Butterworth analog prototype poles (unit cutoff), all in the left
/// half-plane.
fn prototype_poles(order: usize) -> Vec<Complex> {
    (1..=order)
        .map(|k| {
            let theta =
                std::f64::consts::PI * (2.0 * k as f64 + order as f64 - 1.0) / (2.0 * order as f64);
            Complex::cis(theta)
        })
        .collect()
}

/// Bilinear-transform frequency pre-warping: analog rad/s matching digital
/// `fc` Hz exactly after the transform.
fn prewarp(fc: f64, fs: f64) -> f64 {
    2.0 * fs * (std::f64::consts::PI * fc / fs).tan()
}

fn check_edge(fc: f64, fs: f64) {
    assert!(
        fc.is_finite() && fc > 0.0 && fc < fs / 2.0,
        "cutoff must lie strictly between 0 and Nyquist"
    );
}

/// Maps analog poles/zeros to the z-plane, pads zeros at z = −1 up to the
/// pole count (`extra_minus_one` analog zeros at infinity), pairs
/// conjugates into sections, and normalises unit gain at `w_ref`.
fn build_digital(
    analog_poles: Vec<Complex>,
    analog_zeros: Vec<Complex>,
    extra_minus_one: usize,
    fs: f64,
    w_ref: f64,
) -> SosFilter {
    let bilinear = |s: Complex| {
        let k = Complex::from_real(2.0 * fs);
        (k + s) / (k - s)
    };
    let zpoles: Vec<Complex> = analog_poles.into_iter().map(bilinear).collect();
    let mut zzeros: Vec<Complex> = analog_zeros.into_iter().map(bilinear).collect();
    zzeros.extend(std::iter::repeat_n(
        Complex::new(-1.0, 0.0),
        extra_minus_one,
    ));
    // Low-pass case: all zeros at infinity.
    while zzeros.len() < zpoles.len() {
        zzeros.push(Complex::new(-1.0, 0.0));
    }

    let pole_pairs = pair_conjugates(zpoles);
    let zero_pairs = pair_zeros_for(&pole_pairs, zzeros);

    let mut sections = Vec::with_capacity(pole_pairs.len());
    for (pp, zp) in pole_pairs.iter().zip(zero_pairs.iter()) {
        let (a1, a2) = quad_coeffs(*pp);
        let (b1, b2) = match zp {
            Some(pair) => quad_coeffs(*pair),
            None => (0.0, 0.0),
        };
        let mut sec = Biquad {
            b0: 1.0,
            b1,
            b2,
            a1,
            a2,
        };
        if zp.is_none() {
            // Single pole leftover from an odd order: first-order section.
            sec.b2 = 0.0;
        }
        // Per-section unit gain at the reference frequency.
        let g = sec.response(w_ref).abs();
        assert!(g.is_finite() && g > 0.0, "degenerate section gain");
        sec.b0 /= g;
        sec.b1 /= g;
        sec.b2 /= g;
        sections.push(sec);
    }
    SosFilter::from_sections(sections)
}

/// Groups roots into conjugate (or real) pairs; a trailing unpaired real
/// root becomes a half-pair `(r, None)` encoded as `(r, r·0)`.
fn pair_conjugates(mut roots: Vec<Complex>) -> Vec<(Complex, Option<Complex>)> {
    // Sort so conjugates are adjacent: by real part, then |imag|.
    roots.sort_by(|a, b| {
        a.re.total_cmp(&b.re)
            .then(a.im.abs().total_cmp(&b.im.abs()))
            .then(a.im.total_cmp(&b.im))
    });
    let mut out = Vec::new();
    let mut complexes: Vec<Complex> = Vec::new();
    let mut reals: Vec<Complex> = Vec::new();
    for r in roots {
        if r.im.abs() < 1e-10 {
            reals.push(Complex::from_real(r.re));
        } else {
            complexes.push(r);
        }
    }
    // Conjugates are adjacent after the sort (same re, ±im).
    let mut it = complexes.into_iter().peekable();
    while let Some(a) = it.next() {
        match it.peek() {
            Some(b) if (b.re - a.re).abs() < 1e-8 && (b.im + a.im).abs() < 1e-8 => {
                let b = it.next().expect("peeked");
                out.push((a, Some(b)));
            }
            _ => {
                // Numerical asymmetry: force-pair with the explicit conjugate.
                out.push((a, Some(a.conj())));
            }
        }
    }
    let mut rit = reals.into_iter();
    while let Some(a) = rit.next() {
        match rit.next() {
            Some(b) => out.push((a, Some(b))),
            None => out.push((a, None)),
        }
    }
    out
}

/// Assigns zeros to pole pairs. For Butterworth designs the zeros are all
/// at ±1, so any grouping is valid; we deal them out round-robin mixing +1
/// and −1 zeros per section (the band-pass case), which keeps per-section
/// gains moderate.
fn pair_zeros_for(
    pole_pairs: &[(Complex, Option<Complex>)],
    zeros: Vec<Complex>,
) -> Vec<Option<(Complex, Option<Complex>)>> {
    let mut plus: Vec<Complex> = zeros.iter().copied().filter(|z| z.re > 0.0).collect();
    let mut minus: Vec<Complex> = zeros.iter().copied().filter(|z| z.re <= 0.0).collect();
    let mut out = Vec::with_capacity(pole_pairs.len());
    for (_, partner) in pole_pairs {
        let want = if partner.is_some() { 2 } else { 1 };
        let mut picked: Vec<Complex> = Vec::with_capacity(2);
        for _ in 0..want {
            if plus.len() >= minus.len() {
                if let Some(z) = plus.pop() {
                    picked.push(z);
                    continue;
                }
            }
            if let Some(z) = minus.pop() {
                picked.push(z);
            } else if let Some(z) = plus.pop() {
                picked.push(z);
            }
        }
        out.push(match picked.len() {
            0 => None,
            1 => Some((picked[0], None)),
            _ => Some((picked[0], Some(picked[1]))),
        });
    }
    out
}

/// Coefficients `(c1, c2)` of `z² + c1·z + c2` with the given roots.
fn quad_coeffs(pair: (Complex, Option<Complex>)) -> (f64, f64) {
    match pair {
        (a, Some(b)) => {
            let sum = a + b;
            let prod = a * b;
            (-sum.re, prod.re)
        }
        (a, None) => (-a.re, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 48_000.0;

    fn db(g: f64) -> f64 {
        20.0 * g.log10()
    }

    #[test]
    fn lowpass_dc_gain_is_unity() {
        for order in 1..=6 {
            let f = SosFilter::butterworth_lowpass(order, 1_000.0, FS);
            assert!((f.gain_at(1e-6, FS) - 1.0).abs() < 1e-6, "order {order}");
            assert!(f.is_stable(), "order {order} unstable");
        }
    }

    #[test]
    fn lowpass_minus_3db_at_cutoff() {
        for order in [2usize, 4, 5] {
            let f = SosFilter::butterworth_lowpass(order, 2_000.0, FS);
            let g = db(f.gain_at(2_000.0, FS));
            assert!((g + 3.0103).abs() < 0.2, "order {order}: {g} dB at cutoff");
        }
    }

    #[test]
    fn lowpass_rolloff_rate() {
        // Order-n Butterworth falls ~6n dB per octave past cutoff.
        let f = SosFilter::butterworth_lowpass(4, 1_000.0, FS);
        let g2k = db(f.gain_at(2_000.0, FS));
        let g4k = db(f.gain_at(4_000.0, FS));
        assert!(g2k < -20.0);
        assert!(g4k - g2k < -20.0, "octave drop was {}", g4k - g2k);
    }

    #[test]
    fn highpass_nyquist_gain_is_unity() {
        for order in 1..=6 {
            let f = SosFilter::butterworth_highpass(order, 2_000.0, FS);
            assert!(
                (f.gain_at(FS / 2.0 * 0.999, FS) - 1.0).abs() < 1e-3,
                "order {order}"
            );
            // An order-n Butterworth HP attenuates 100 Hz by ~(100/2000)^n.
            let bound = 1.2 * (100.0f64 / 2_000.0).powi(order as i32);
            assert!(f.gain_at(100.0, FS) < bound, "order {order} leaks DC");
            assert!(f.is_stable());
        }
    }

    #[test]
    fn bandpass_passes_band_and_rejects_stopbands() {
        let f = SosFilter::butterworth_bandpass(4, 2_000.0, 3_000.0, FS);
        assert!(f.is_stable());
        assert!(f.gain_at(2_500.0, FS) > 0.95, "centre gain");
        // −3 dB (±tolerance) at the band edges.
        assert!((db(f.gain_at(2_000.0, FS)) + 3.0).abs() < 1.0);
        assert!((db(f.gain_at(3_000.0, FS)) + 3.0).abs() < 1.0);
        // Strong rejection away from the band.
        assert!(db(f.gain_at(500.0, FS)) < -60.0);
        assert!(db(f.gain_at(1_000.0, FS)) < -40.0);
        assert!(db(f.gain_at(6_000.0, FS)) < -40.0);
        assert!(db(f.gain_at(10_000.0, FS)) < -60.0);
    }

    #[test]
    fn bandpass_odd_prototype_order() {
        let f = SosFilter::butterworth_bandpass(3, 2_000.0, 3_000.0, FS);
        assert!(f.is_stable());
        assert!(f.gain_at(2_450.0, FS) > 0.9);
        assert!(f.gain_at(800.0, FS) < 1e-2);
    }

    #[test]
    fn filtering_sine_matches_frequency_response() {
        let f = SosFilter::butterworth_bandpass(4, 2_000.0, 3_000.0, FS);
        for freq in [500.0, 2_500.0, 8_000.0] {
            let n = 9_600; // 0.2 s
            let x: Vec<f64> = (0..n)
                .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / FS).sin())
                .collect();
            let y = f.filter(&x);
            // Measure steady-state RMS on the back half (transient settled).
            let rms = |s: &[f64]| (s.iter().map(|v| v * v).sum::<f64>() / s.len() as f64).sqrt();
            let measured = rms(&y[n / 2..]) / rms(&x[n / 2..]);
            let expected = f.gain_at(freq, FS);
            assert!(
                (measured - expected).abs() < 0.02 + 0.05 * expected,
                "{freq} Hz: measured {measured}, expected {expected}"
            );
        }
    }

    #[test]
    fn impulse_response_decays() {
        let f = SosFilter::butterworth_bandpass(4, 2_000.0, 3_000.0, FS);
        let mut impulse = vec![0.0; 4_800];
        impulse[0] = 1.0;
        let h = f.filter(&impulse);
        let head: f64 = h[..480].iter().map(|v| v.abs()).sum();
        let tail: f64 = h[4_320..].iter().map(|v| v.abs()).sum();
        assert!(tail < head * 1e-6, "impulse response does not decay");
    }

    #[test]
    fn filtfilt_has_zero_phase() {
        // A band-centre sine should come back essentially unshifted.
        let f = SosFilter::butterworth_bandpass(2, 2_000.0, 3_000.0, FS);
        let freq = 2_450.0;
        let n = 9_600;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / FS).sin())
            .collect();
        let y = f.filtfilt(&x);
        // Compare mid-signal correlation at zero lag vs ±2 samples.
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
        let mid = n / 2;
        let span = 2_000;
        let c0 = dot(&x[mid..mid + span], &y[mid..mid + span]);
        let cp = dot(&x[mid..mid + span], &y[mid + 2..mid + 2 + span]);
        let cm = dot(&x[mid..mid + span], &y[mid - 2..mid - 2 + span]);
        assert!(c0 > cp && c0 > cm, "phase not cancelled: {c0} {cp} {cm}");
    }

    #[test]
    fn process_is_stateful_and_reset_clears() {
        let mut f = SosFilter::butterworth_lowpass(2, 1_000.0, FS);
        let y1 = f.process(1.0);
        let y2 = f.process(0.0);
        assert_ne!(y2, 0.0, "state should carry over");
        f.reset();
        let y1b = f.process(1.0);
        assert_eq!(y1, y1b, "reset must restore initial state");
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn rejects_cutoff_above_nyquist() {
        let _ = SosFilter::butterworth_lowpass(4, 30_000.0, FS);
    }

    #[test]
    #[should_panic(expected = "f_low < f_high")]
    fn rejects_inverted_band() {
        let _ = SosFilter::butterworth_bandpass(4, 3_000.0, 2_000.0, FS);
    }

    #[test]
    fn biquad_stability_check() {
        assert!(Biquad::IDENTITY.is_stable());
        let unstable = Biquad {
            b0: 1.0,
            b1: 0.0,
            b2: 0.0,
            a1: -2.1,
            a2: 1.05,
        };
        assert!(!unstable.is_stable());
    }
}
