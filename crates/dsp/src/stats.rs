//! Small numeric helpers shared across the EchoImage crates.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; 0 for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Root-mean-square value; 0 for an empty slice.
pub fn rms(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Euclidean (L2) norm. This is the paper's pixel value operator applied
/// to an echo segment (§V-C).
pub fn l2_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Total signal energy `Σ x²`.
pub fn energy(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum()
}

/// Converts a linear amplitude ratio to decibels (`20·log10`).
pub fn amplitude_to_db(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels to a linear amplitude ratio.
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Signal-to-noise ratio in dB given signal and noise RMS amplitudes.
///
/// Returns `f64::INFINITY` when the noise is silent.
pub fn snr_db(signal_rms: f64, noise_rms: f64) -> f64 {
    if noise_rms == 0.0 {
        return f64::INFINITY;
    }
    amplitude_to_db(signal_rms / noise_rms)
}

/// Cosine similarity between two equal-length vectors; 0 if either is zero.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = l2_norm(a);
    let nb = l2_norm(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Index of the maximum element (first occurrence); `None` when empty or
/// all-NaN.
pub fn argmax(xs: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in xs.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bv)) if x <= bv => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Min-max normalises a slice in place to `[0, 1]`; constant slices map to 0.
pub fn normalize_min_max(xs: &mut [f64]) {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in xs.iter() {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let span = hi - lo;
    if span <= 0.0 || !span.is_finite() {
        for x in xs.iter_mut() {
            *x = 0.0;
        }
        return;
    }
    for x in xs.iter_mut() {
        *x = (*x - lo) / span;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance(&xs), 4.0);
        assert_eq!(std_dev(&xs), 2.0);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn rms_and_energy() {
        let xs = [3.0, 4.0];
        assert!((rms(&xs) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(energy(&xs), 25.0);
        assert_eq!(l2_norm(&xs), 5.0);
    }

    #[test]
    fn db_round_trip() {
        for db in [-40.0, -6.0206, 0.0, 20.0] {
            assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-9);
        }
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn snr_of_silence_is_infinite() {
        assert_eq!(snr_db(1.0, 0.0), f64::INFINITY);
        assert!((snr_db(10.0, 1.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_similarity_cases() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn argmax_finds_first_max_and_skips_nan() {
        assert_eq!(argmax(&[1.0, 5.0, 5.0, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 2.0, 1.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn min_max_normalisation() {
        let mut xs = [2.0, 4.0, 6.0];
        normalize_min_max(&mut xs);
        assert_eq!(xs, [0.0, 0.5, 1.0]);
        let mut flat = [3.0, 3.0];
        normalize_min_max(&mut flat);
        assert_eq!(flat, [0.0, 0.0]);
    }
}
