//! Cell-averaging CFAR (constant false-alarm rate) detection.
//!
//! A classic radar alternative to fixed-threshold peak picking: each
//! sample is compared against `scale ×` the average of its surrounding
//! *training* cells (skipping nearby *guard* cells that the target
//! itself occupies), so the threshold adapts to a non-stationary noise
//! floor — e.g. the decaying skirt of the direct chirp in EchoImage's
//! correlation envelope.

/// A CFAR detection.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Detection {
    /// Sample index of the detection.
    pub index: usize,
    /// Value at the detection.
    pub value: f64,
    /// The adaptive threshold that was exceeded.
    pub threshold: f64,
}

/// Cell-averaging CFAR over `signal`.
///
/// * `guard` — cells skipped either side of the cell under test,
/// * `train` — training cells averaged beyond the guards (each side),
/// * `scale` — threshold multiplier over the training mean.
///
/// Returns all samples exceeding their adaptive threshold that are also
/// local maxima within ±`guard` (one detection per lobe).
///
/// # Panics
///
/// Panics if `train == 0` or `scale` is not positive.
///
/// # Example
///
/// ```
/// use echo_dsp::cfar::ca_cfar;
///
/// // A target on a sloping noise floor.
/// let mut x: Vec<f64> = (0..200).map(|i| 1.0 + i as f64 * 0.01).collect();
/// x[120] += 10.0;
/// let hits = ca_cfar(&x, 2, 8, 3.0);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].index, 120);
/// ```
pub fn ca_cfar(signal: &[f64], guard: usize, train: usize, scale: f64) -> Vec<Detection> {
    assert!(train > 0, "need at least one training cell");
    assert!(scale > 0.0, "scale must be positive");
    let n = signal.len();
    let mut out = Vec::new();
    for i in 0..n {
        let v = signal[i];
        // Training windows on both sides, clipped at the edges.
        let mut sum = 0.0;
        let mut count = 0usize;
        // Left side.
        let left_hi = i.saturating_sub(guard + 1);
        let left_lo = left_hi.saturating_sub(train.saturating_sub(1));
        if i > guard {
            for &t in &signal[left_lo..=left_hi] {
                sum += t;
                count += 1;
            }
        }
        // Right side.
        let right_lo = i + guard + 1;
        if right_lo < n {
            let right_hi = (right_lo + train - 1).min(n - 1);
            for &t in &signal[right_lo..=right_hi] {
                sum += t;
                count += 1;
            }
        }
        if count == 0 {
            continue;
        }
        let threshold = scale * sum / count as f64;
        if v <= threshold {
            continue;
        }
        // One detection per lobe: require a local maximum within ±guard.
        let lo = i.saturating_sub(guard.max(1));
        let hi = (i + guard.max(1) + 1).min(n);
        let is_peak = signal[lo..hi]
            .iter()
            .enumerate()
            .all(|(k, &w)| w < v || (w == v && lo + k >= i));
        if is_peak {
            out.push(Detection {
                index: i,
                value: v,
                threshold,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_target_on_flat_noise() {
        let mut x = vec![1.0; 100];
        x[40] = 8.0;
        let hits = ca_cfar(&x, 2, 10, 3.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 40);
        assert!(hits[0].threshold < 8.0 && hits[0].threshold > 2.0);
    }

    #[test]
    fn adapts_to_sloping_floor() {
        // A fixed threshold tuned for the start would fire constantly at
        // the end of this ramp; CFAR does not.
        let x: Vec<f64> = (0..300).map(|i| 1.0 + i as f64 * 0.05).collect();
        let hits = ca_cfar(&x, 2, 12, 2.0);
        assert!(hits.is_empty(), "ramp alone must not fire: {hits:?}");
    }

    #[test]
    fn detects_weak_target_in_quiet_region_but_not_strong_floor() {
        let mut x = vec![0.1; 200];
        for v in x.iter_mut().take(60) {
            *v = 5.0; // loud early region (direct-path skirt)
        }
        x[150] = 0.9; // weak echo in the quiet region
        let hits = ca_cfar(&x, 3, 10, 2.5);
        assert!(hits.iter().any(|h| h.index == 150), "{hits:?}");
        // Nothing inside the uniformly loud region.
        assert!(hits.iter().all(|h| h.index >= 55));
    }

    #[test]
    fn two_separated_targets_yield_two_detections() {
        let mut x = vec![1.0; 300];
        x[80] = 9.0;
        x[200] = 7.0;
        let hits = ca_cfar(&x, 2, 10, 3.0);
        let idx: Vec<usize> = hits.iter().map(|h| h.index).collect();
        assert_eq!(idx, vec![80, 200]);
    }

    #[test]
    fn guard_cells_protect_wide_targets() {
        // A 3-sample-wide target must not raise its own threshold.
        let mut x = vec![1.0; 120];
        x[59] = 6.0;
        x[60] = 8.0;
        x[61] = 6.0;
        let hits = ca_cfar(&x, 3, 10, 3.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].index, 60);
    }

    #[test]
    fn empty_signal_is_quiet() {
        assert!(ca_cfar(&[], 2, 8, 3.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "training")]
    fn zero_training_cells_panics() {
        let _ = ca_cfar(&[1.0; 10], 1, 0, 2.0);
    }
}
