//! Signal-processing substrate for the EchoImage reproduction.
//!
//! This crate provides every DSP primitive the EchoImage pipeline needs,
//! implemented from scratch:
//!
//! * [`Complex`] arithmetic and [`fft`] (radix-2 + Bluestein, so any length),
//! * [`chirp`] — linear-frequency-modulated beep synthesis (paper Eq. 2),
//! * [`filter`] — Butterworth low/high/band-pass biquad cascades,
//! * [`hilbert`] — analytic signal and envelope detection,
//! * [`correlate`] — FFT matched filtering (paper Eq. 9),
//! * [`plan`] — precomputed, LRU-cached FFT plans shared by the hot paths,
//! * [`peaks`] — local-maxima search used for echo detection (paper §V-B),
//! * [`interp`] — fractional-delay interpolation used by the scene simulator,
//! * [`stats`] — small numeric helpers shared across crates.
//!
//! # Example
//!
//! Build the paper's probing beep (2–3 kHz, 2 ms at 48 kHz) and verify its
//! matched filter peaks at the injected delay:
//!
//! ```
//! use echo_dsp::chirp::LfmChirp;
//! use echo_dsp::correlate::matched_filter;
//!
//! let chirp = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0);
//! let s = chirp.samples();
//! // Place the chirp 100 samples into a quiet recording.
//! let mut rx = vec![0.0; 1_000];
//! rx[100..100 + s.len()].copy_from_slice(&s);
//! let c = matched_filter(&rx, &s);
//! let peak = c
//!     .iter()
//!     .enumerate()
//!     .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
//!     .map(|(i, _)| i)
//!     .unwrap();
//! assert_eq!(peak, 100);
//! ```

pub mod cfar;
pub mod chirp;
pub mod complex;
pub mod correlate;
pub mod fft;
pub mod filter;
pub mod fir;
pub mod hilbert;
pub mod interp;
pub mod peaks;
pub mod plan;
pub mod resample;
pub mod simd;
pub mod stats;
pub mod stft;
pub mod window;

pub use complex::Complex;
pub use plan::{fft_plan, FftPlan, FftScratch};

/// Speed of sound in air at ~20 °C, metres per second.
///
/// Used throughout the pipeline to convert echo delays to distances
/// (`D_f = τ·c/2`, paper §V-B).
pub const SPEED_OF_SOUND: f64 = 343.0;
