//! Linear-phase FIR filters via windowed-sinc design.
//!
//! The pipeline's default band-pass is IIR (Butterworth, §V-B of the
//! paper); the FIR designs here provide an exactly linear-phase
//! alternative whose constant group delay can simply be subtracted —
//! useful when echo timing must not be warped at band edges.

use crate::correlate::convolve;
use crate::window::{window, WindowKind};

/// A linear-phase FIR filter (odd-length, symmetric taps).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FirFilter {
    taps: Vec<f64>,
}

impl FirFilter {
    /// Windowed-sinc low-pass with cutoff `fc` Hz and `taps` coefficients
    /// (forced odd), Hamming-windowed.
    ///
    /// # Panics
    ///
    /// Panics if `taps == 0` or `fc` is outside `(0, fs/2)`.
    pub fn lowpass(taps: usize, fc: f64, fs: f64) -> Self {
        assert!(taps > 0, "need at least one tap");
        assert!(fc > 0.0 && fc < fs / 2.0, "cutoff must lie in (0, Nyquist)");
        let n = if taps.is_multiple_of(2) {
            taps + 1
        } else {
            taps
        };
        let mid = (n / 2) as isize;
        let w = window(WindowKind::Hamming, n);
        let fc_n = fc / fs; // cycles per sample
        let mut h: Vec<f64> = (0..n as isize)
            .map(|i| {
                let k = (i - mid) as f64;
                2.0 * fc_n * crate::interp::sinc(2.0 * fc_n * k) * w[i as usize]
            })
            .collect();
        // Normalise DC gain to exactly 1.
        let sum: f64 = h.iter().sum();
        for v in &mut h {
            *v /= sum;
        }
        FirFilter { taps: h }
    }

    /// Windowed-sinc band-pass for `[f_lo, f_hi]` Hz (difference of two
    /// low-passes), unit gain at the band centre.
    ///
    /// # Panics
    ///
    /// Panics if the band is invalid.
    pub fn bandpass(taps: usize, f_lo: f64, f_hi: f64, fs: f64) -> Self {
        assert!(f_lo < f_hi, "band edges must satisfy f_lo < f_hi");
        let hi = Self::lowpass(taps, f_hi, fs);
        let lo = Self::lowpass(taps, f_lo, fs);
        let mut h: Vec<f64> = hi
            .taps
            .iter()
            .zip(lo.taps.iter())
            .map(|(a, b)| a - b)
            .collect();
        // Normalise gain at the band centre.
        let fc = (f_lo + f_hi) / 2.0;
        let w = 2.0 * std::f64::consts::PI * fc / fs;
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for (k, &v) in h.iter().enumerate() {
            re += v * (w * k as f64).cos();
            im -= v * (w * k as f64).sin();
        }
        let g = re.hypot(im);
        for v in &mut h {
            *v /= g;
        }
        FirFilter { taps: h }
    }

    /// The filter coefficients.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Constant group delay in samples (`(N−1)/2` for symmetric taps).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() - 1) as f64 / 2.0
    }

    /// Filters a signal (full convolution trimmed to the input length,
    /// i.e. output sample `n` aligns with input sample `n` delayed by
    /// [`FirFilter::group_delay`]).
    pub fn filter(&self, signal: &[f64]) -> Vec<f64> {
        if signal.is_empty() {
            return Vec::new();
        }
        let mut y = convolve(signal, &self.taps);
        y.truncate(signal.len());
        y
    }

    /// Filters and removes the group delay, aligning output with input
    /// (edge samples are zero-padded).
    pub fn filter_zero_delay(&self, signal: &[f64]) -> Vec<f64> {
        if signal.is_empty() {
            return Vec::new();
        }
        let full = convolve(signal, &self.taps);
        let d = self.taps.len() / 2;
        full[d..d + signal.len()].to_vec()
    }

    /// Magnitude response at `f` Hz.
    pub fn gain_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * std::f64::consts::PI * f / fs;
        let (mut re, mut im) = (0.0f64, 0.0f64);
        for (k, &v) in self.taps.iter().enumerate() {
            re += v * (w * k as f64).cos();
            im -= v * (w * k as f64).sin();
        }
        re.hypot(im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::TAU;

    const FS: f64 = 48_000.0;

    #[test]
    fn lowpass_gains() {
        let f = FirFilter::lowpass(129, 2_000.0, FS);
        assert!((f.gain_at(1e-6, FS) - 1.0).abs() < 1e-9, "DC gain");
        assert!(f.gain_at(500.0, FS) > 0.99);
        assert!(f.gain_at(8_000.0, FS) < 1e-3);
    }

    #[test]
    fn bandpass_gains() {
        let f = FirFilter::bandpass(193, 2_000.0, 3_000.0, FS);
        assert!((f.gain_at(2_500.0, FS) - 1.0).abs() < 1e-6, "centre gain");
        assert!(f.gain_at(500.0, FS) < 1e-3, "low stop-band");
        assert!(f.gain_at(10_000.0, FS) < 1e-3, "high stop-band");
    }

    #[test]
    fn taps_are_symmetric_linear_phase() {
        let f = FirFilter::bandpass(101, 2_000.0, 3_000.0, FS);
        let t = f.taps();
        for i in 0..t.len() {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12, "tap {i}");
        }
        assert_eq!(f.group_delay(), 50.0);
    }

    #[test]
    fn even_tap_request_is_rounded_up_to_odd() {
        let f = FirFilter::lowpass(64, 1_000.0, FS);
        assert_eq!(f.taps().len() % 2, 1);
    }

    #[test]
    fn zero_delay_filtering_aligns_with_input() {
        let f = FirFilter::bandpass(193, 2_000.0, 3_000.0, FS);
        let n = 4_800;
        let x: Vec<f64> = (0..n)
            .map(|i| (TAU * 2_500.0 * i as f64 / FS).sin())
            .collect();
        let y = f.filter_zero_delay(&x);
        assert_eq!(y.len(), n);
        // Mid-signal: output in phase with input (gain 1 at centre).
        for i in (400..n - 400).step_by(531) {
            assert!(
                (y[i] - x[i]).abs() < 0.01,
                "sample {i}: {} vs {}",
                y[i],
                x[i]
            );
        }
    }

    #[test]
    fn filters_attenuate_out_of_band_tone() {
        let f = FirFilter::bandpass(193, 2_000.0, 3_000.0, FS);
        let n = 4_800;
        let x: Vec<f64> = (0..n)
            .map(|i| (TAU * 500.0 * i as f64 / FS).sin())
            .collect();
        let y = f.filter_zero_delay(&x);
        let rms = |s: &[f64]| (s.iter().map(|v| v * v).sum::<f64>() / s.len() as f64).sqrt();
        assert!(rms(&y[400..n - 400]) < 0.01 * rms(&x));
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn bad_cutoff_panics() {
        let _ = FirFilter::lowpass(65, 30_000.0, FS);
    }
}
