//! Short-time Fourier transform and spectrograms.
//!
//! Used for signal diagnostics (visualising chirps and noise) and by
//! downstream tooling that wants time–frequency views of captures.

use crate::complex::Complex;
use crate::fft::fft;
use crate::window::{window, WindowKind};

/// A time–frequency magnitude representation.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrogram {
    /// `frames[t][k]`: magnitude of bin `k` at frame `t`.
    pub frames: Vec<Vec<f64>>,
    /// Samples between frame starts.
    pub hop: usize,
    /// FFT size (bins per frame = `fft_size/2 + 1`).
    pub fft_size: usize,
    /// Sample rate, Hz.
    pub sample_rate: f64,
}

impl Spectrogram {
    /// Frequency of bin `k` in Hz.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.sample_rate / self.fft_size as f64
    }

    /// Time of frame `t` in seconds (frame centre).
    pub fn frame_time(&self, t: usize) -> f64 {
        (t * self.hop + self.fft_size / 2) as f64 / self.sample_rate
    }

    /// The bin with the largest magnitude in frame `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn peak_bin(&self, t: usize) -> usize {
        self.frames[t]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap_or(0)
    }

    /// Total energy per frame.
    pub fn frame_energies(&self) -> Vec<f64> {
        self.frames
            .iter()
            .map(|f| f.iter().map(|v| v * v).sum())
            .collect()
    }
}

/// Computes a magnitude spectrogram with a Hann window.
///
/// Frames shorter than `fft_size` at the signal tail are dropped.
///
/// # Panics
///
/// Panics if `fft_size` or `hop` is zero.
///
/// # Example
///
/// ```
/// use echo_dsp::chirp::LfmChirp;
/// use echo_dsp::stft::stft;
///
/// // A long 2→3 kHz chirp: the spectrogram's peak frequency must rise.
/// let c = LfmChirp::new(2_000.0, 3_000.0, 0.1, 48_000.0);
/// let spec = stft(&c.samples(), 512, 128, 48_000.0);
/// let first = spec.bin_frequency(spec.peak_bin(1));
/// let last = spec.bin_frequency(spec.peak_bin(spec.frames.len() - 2));
/// assert!(last > first);
/// ```
pub fn stft(signal: &[f64], fft_size: usize, hop: usize, sample_rate: f64) -> Spectrogram {
    assert!(fft_size > 0 && hop > 0, "fft_size and hop must be positive");
    let win = window(WindowKind::Hann, fft_size);
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + fft_size <= signal.len() {
        let mut buf: Vec<Complex> = signal[start..start + fft_size]
            .iter()
            .zip(win.iter())
            .map(|(&x, &w)| Complex::from_real(x * w))
            .collect();
        fft(&mut buf);
        frames.push(buf[..fft_size / 2 + 1].iter().map(|v| v.abs()).collect());
        start += hop;
    }
    Spectrogram {
        frames,
        hop,
        fft_size,
        sample_rate,
    }
}

/// Complex STFT frames (one-sided spectrum, `fft_size/2 + 1` bins per
/// frame), Hann-windowed.
///
/// # Panics
///
/// Panics if `fft_size` or `hop` is zero.
pub fn stft_complex(signal: &[f64], fft_size: usize, hop: usize) -> Vec<Vec<Complex>> {
    assert!(fft_size > 0 && hop > 0, "fft_size and hop must be positive");
    let win = window(WindowKind::Hann, fft_size);
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + fft_size <= signal.len() {
        let mut buf: Vec<Complex> = signal[start..start + fft_size]
            .iter()
            .zip(win.iter())
            .map(|(&x, &w)| Complex::from_real(x * w))
            .collect();
        fft(&mut buf);
        frames.push(buf[..fft_size / 2 + 1].to_vec());
        start += hop;
    }
    frames
}

/// Inverse STFT via weighted overlap-add, reconstructing a real signal
/// of length `out_len` from one-sided complex frames.
///
/// Exact (up to numerical error) for Hann analysis windows when
/// `hop ≤ fft_size/2` (constant-overlap-add holds after the per-sample
/// window-power normalisation applied here).
///
/// # Panics
///
/// Panics if frames have inconsistent sizes or `hop == 0`.
pub fn istft(frames: &[Vec<Complex>], fft_size: usize, hop: usize, out_len: usize) -> Vec<f64> {
    assert!(hop > 0, "hop must be positive");
    let bins = fft_size / 2 + 1;
    assert!(
        frames.iter().all(|f| f.len() == bins),
        "frames must hold fft_size/2 + 1 bins"
    );
    let win = window(WindowKind::Hann, fft_size);
    let mut out = vec![0.0f64; out_len];
    let mut norm = vec![0.0f64; out_len];
    for (t, frame) in frames.iter().enumerate() {
        // Rebuild the full Hermitian spectrum.
        let mut buf = vec![Complex::ZERO; fft_size];
        buf[..bins].copy_from_slice(frame);
        for k in 1..fft_size - bins + 1 {
            buf[fft_size - k] = frame[k].conj();
        }
        crate::fft::ifft(&mut buf);
        let start = t * hop;
        for (i, v) in buf.iter().enumerate() {
            let idx = start + i;
            if idx < out_len {
                // Weighted overlap-add: synthesis window = analysis
                // window, normalised by Σ w² below.
                out[idx] += v.re * win[i];
                norm[idx] += win[i] * win[i];
            }
        }
    }
    for (o, &n) in out.iter_mut().zip(norm.iter()) {
        if n > 1e-12 {
            *o /= n;
        }
    }
    out
}

/// Goertzel single-bin DFT: the power of `signal` at `frequency`.
///
/// Much cheaper than a full FFT when only one frequency matters — e.g.
/// detecting whether a probing beep is present in a live stream.
pub fn goertzel_power(signal: &[f64], frequency: f64, sample_rate: f64) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    let w = 2.0 * std::f64::consts::PI * frequency / sample_rate;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    (s1 * s1 + s2 * s2 - coeff * s1 * s2) / (signal.len() as f64 * signal.len() as f64 / 4.0)
}

/// Detects whether the probing band (between `f_lo` and `f_hi`) carries
/// substantially more power than its surroundings — a cheap beep-presence
/// trigger for streaming use.
pub fn band_activity(signal: &[f64], f_lo: f64, f_hi: f64, sample_rate: f64) -> f64 {
    let centre = (f_lo + f_hi) / 2.0;
    let in_band = goertzel_power(signal, centre, sample_rate)
        + goertzel_power(signal, f_lo, sample_rate)
        + goertzel_power(signal, f_hi, sample_rate);
    let out_band = goertzel_power(signal, f_lo / 2.0, sample_rate)
        + goertzel_power(signal, (f_hi * 1.5).min(sample_rate * 0.45), sample_rate)
        + 1e-12;
    in_band / out_band
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chirp::LfmChirp;
    use std::f64::consts::TAU;

    const FS: f64 = 48_000.0;

    fn tone(f: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| (TAU * f * i as f64 / FS).sin()).collect()
    }

    #[test]
    fn spectrogram_tracks_chirp_sweep() {
        let c = LfmChirp::new(2_000.0, 3_000.0, 0.2, FS);
        let spec = stft(&c.samples(), 1_024, 256, FS);
        assert!(spec.frames.len() > 20);
        // Peak frequency rises roughly monotonically.
        let f_first = spec.bin_frequency(spec.peak_bin(2));
        let f_mid = spec.bin_frequency(spec.peak_bin(spec.frames.len() / 2));
        let f_last = spec.bin_frequency(spec.peak_bin(spec.frames.len() - 3));
        assert!(
            f_first < f_mid && f_mid < f_last,
            "{f_first} {f_mid} {f_last}"
        );
        assert!(f_first > 1_800.0 && f_last < 3_200.0);
    }

    #[test]
    fn spectrogram_geometry() {
        let spec = stft(&tone(1_000.0, 4_096), 512, 128, FS);
        assert_eq!(spec.frames[0].len(), 257);
        assert!((spec.bin_frequency(256) - FS / 2.0).abs() < 1e-9);
        assert!(spec.frame_time(1) > spec.frame_time(0));
    }

    #[test]
    fn goertzel_matches_tone_frequency() {
        let s = tone(2_500.0, 4_800);
        let on = goertzel_power(&s, 2_500.0, FS);
        let off = goertzel_power(&s, 1_000.0, FS);
        assert!(on > 100.0 * off, "on {on}, off {off}");
    }

    #[test]
    fn goertzel_amplitude_scaling() {
        let s1 = tone(2_000.0, 4_800);
        let s2: Vec<f64> = s1.iter().map(|x| 2.0 * x).collect();
        let p1 = goertzel_power(&s1, 2_000.0, FS);
        let p2 = goertzel_power(&s2, 2_000.0, FS);
        assert!((p2 / p1 - 4.0).abs() < 0.01, "power scales with amplitude²");
    }

    #[test]
    fn band_activity_flags_beeps() {
        let beep = LfmChirp::new(2_000.0, 3_000.0, 0.01, FS).samples();
        let quiet: Vec<f64> = (0..480)
            .map(|i| ((i as u64).wrapping_mul(2_654_435_761) % 65_536) as f64 / 65_536.0 - 0.5)
            .collect();
        let a_beep = band_activity(&beep, 2_000.0, 3_000.0, FS);
        let a_quiet = band_activity(&quiet, 2_000.0, 3_000.0, FS);
        assert!(a_beep > 10.0 * a_quiet, "beep {a_beep}, quiet {a_quiet}");
    }

    #[test]
    fn empty_signal_is_quiet() {
        assert_eq!(goertzel_power(&[], 1_000.0, FS), 0.0);
        let spec = stft(&[0.0; 100], 512, 128, FS);
        assert!(spec.frames.is_empty());
    }

    #[test]
    fn stft_istft_round_trip() {
        // A broadband-ish signal reconstructs through analysis/synthesis.
        let n = 4_096;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (TAU * 700.0 * i as f64 / FS).sin() + 0.4 * (TAU * 2_500.0 * i as f64 / FS).cos()
            })
            .collect();
        let (fft_size, hop) = (512, 128);
        let frames = stft_complex(&x, fft_size, hop);
        let y = istft(&frames, fft_size, hop, n);
        // Interior samples (away from edge frames) reconstruct closely.
        for i in fft_size..n - fft_size {
            assert!(
                (y[i] - x[i]).abs() < 1e-6,
                "sample {i}: {} vs {}",
                y[i],
                x[i]
            );
        }
    }

    #[test]
    fn istft_of_zeroed_frames_is_silence() {
        let x = tone(1_000.0, 2_048);
        let mut frames = stft_complex(&x, 256, 64);
        for f in &mut frames {
            for v in f.iter_mut() {
                *v = Complex::ZERO;
            }
        }
        let y = istft(&frames, 256, 64, 2_048);
        assert!(y.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn stft_complex_frame_geometry() {
        let x = tone(500.0, 1_024);
        let frames = stft_complex(&x, 256, 128);
        assert_eq!(frames.len(), (1_024 - 256) / 128 + 1);
        assert!(frames.iter().all(|f| f.len() == 129));
    }
}
