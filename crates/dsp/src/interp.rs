//! Fractional-delay interpolation.
//!
//! The scene simulator places echoes at physically exact (non-integer)
//! sample delays; these helpers read and write signals at fractional
//! positions. Linear interpolation is the fast path; a windowed-sinc
//! interpolator is available where band-limited accuracy matters.

use std::f64::consts::PI;

/// Reads `signal` at fractional index `t` by linear interpolation.
/// Out-of-range positions return 0 (signals are zero outside support).
pub fn sample_linear(signal: &[f64], t: f64) -> f64 {
    if !t.is_finite() || t < 0.0 {
        return 0.0;
    }
    let i = t.floor() as usize;
    if i + 1 >= signal.len() {
        return if i < signal.len() {
            signal[i] * (1.0 - (t - i as f64))
        } else {
            0.0
        };
    }
    let frac = t - i as f64;
    signal[i] * (1.0 - frac) + signal[i + 1] * frac
}

/// Reads `signal` at fractional index `t` with a Hann-windowed sinc kernel
/// of half-width `taps` (e.g. 8 → 16-point interpolation).
pub fn sample_sinc(signal: &[f64], t: f64, taps: usize) -> f64 {
    if !t.is_finite() || t < -(taps as f64) || t > signal.len() as f64 + taps as f64 {
        return 0.0;
    }
    let center = t.floor() as isize;
    let mut acc = 0.0;
    let half = taps.max(1) as isize;
    for k in (center - half + 1)..=(center + half) {
        if k < 0 || k as usize >= signal.len() {
            continue;
        }
        let x = t - k as f64;
        let w = 0.5 + 0.5 * (PI * x / half as f64).cos(); // Hann taper
        acc += signal[k as usize] * sinc(x) * w;
    }
    acc
}

/// Adds `source`, delayed by fractional `delay` samples and scaled by
/// `gain`, into `dest` using linear interpolation splatting.
///
/// This is the adjoint of [`sample_linear`]: each source sample deposits
/// into the two destination bins bracketing its delayed position, which is
/// how the simulator renders echoes at exact physical delays.
pub fn add_delayed(dest: &mut [f64], source: &[f64], delay: f64, gain: f64) {
    if !delay.is_finite() || delay < 0.0 {
        return;
    }
    let base = delay.floor() as usize;
    let frac = delay - base as f64;
    for (i, &v) in source.iter().enumerate() {
        let j = base + i;
        let g = v * gain;
        if j < dest.len() {
            dest[j] += g * (1.0 - frac);
        }
        if frac > 0.0 && j + 1 < dest.len() {
            dest[j + 1] += g * frac;
        }
    }
}

/// Normalised sinc `sin(πx)/(πx)`.
#[inline]
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        (PI * x).sin() / (PI * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_interpolates_between_samples() {
        let s = [0.0, 10.0, 20.0];
        assert_eq!(sample_linear(&s, 0.0), 0.0);
        assert_eq!(sample_linear(&s, 0.5), 5.0);
        assert_eq!(sample_linear(&s, 1.25), 12.5);
    }

    #[test]
    fn linear_out_of_range_is_zero() {
        let s = [1.0, 2.0];
        assert_eq!(sample_linear(&s, -0.1), 0.0);
        assert_eq!(sample_linear(&s, 5.0), 0.0);
        assert_eq!(sample_linear(&s, f64::NAN), 0.0);
    }

    #[test]
    fn sinc_function_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-12);
        assert!(sinc(2.0).abs() < 1e-12);
        assert!((sinc(0.5) - 2.0 / PI).abs() < 1e-12);
    }

    #[test]
    fn sinc_interpolation_recovers_bandlimited_signal() {
        // A low-frequency sine sampled densely: sinc interp at half-sample
        // offsets should match the true value well.
        let n = 200;
        let f = 0.02; // cycles per sample — far below Nyquist
        let s: Vec<f64> = (0..n).map(|i| (2.0 * PI * f * i as f64).sin()).collect();
        for i in (20..n - 20).step_by(13) {
            let t = i as f64 + 0.5;
            let truth = (2.0 * PI * f * t).sin();
            let est = sample_sinc(&s, t, 8);
            assert!((est - truth).abs() < 1e-3, "at {t}: {est} vs {truth}");
        }
    }

    #[test]
    fn sinc_at_integer_positions_is_exact() {
        let s: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        for i in (10..40).step_by(7) {
            let est = sample_sinc(&s, i as f64, 8);
            assert!((est - s[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn add_delayed_integer_delay_is_exact_copy() {
        let src = [1.0, 2.0, 3.0];
        let mut dst = vec![0.0; 10];
        add_delayed(&mut dst, &src, 4.0, 2.0);
        assert_eq!(&dst[4..7], &[2.0, 4.0, 6.0]);
        assert_eq!(dst[3], 0.0);
        assert_eq!(dst[7], 0.0);
    }

    #[test]
    fn add_delayed_fractional_splits_energy() {
        let src = [1.0];
        let mut dst = vec![0.0; 5];
        add_delayed(&mut dst, &src, 2.25, 1.0);
        assert!((dst[2] - 0.75).abs() < 1e-12);
        assert!((dst[3] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn add_delayed_accumulates() {
        let src = [1.0];
        let mut dst = vec![0.0; 4];
        add_delayed(&mut dst, &src, 1.0, 1.0);
        add_delayed(&mut dst, &src, 1.0, 0.5);
        assert!((dst[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn add_delayed_truncates_past_end() {
        let src = [1.0, 1.0, 1.0];
        let mut dst = vec![0.0; 3];
        add_delayed(&mut dst, &src, 2.0, 1.0);
        assert_eq!(dst, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn negative_delay_is_ignored() {
        let src = [1.0];
        let mut dst = vec![0.0; 3];
        add_delayed(&mut dst, &src, -1.0, 1.0);
        assert_eq!(dst, vec![0.0; 3]);
    }
}
