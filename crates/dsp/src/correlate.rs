//! Matched filtering and cross-correlation (paper Eq. 9).
//!
//! The distance estimator slides the known chirp across the beamformed
//! recording: `C_l(t) = (r̂_l ⋆ h)(t)` with `h(t) = s*(−t)`, i.e. the
//! cross-correlation of the recording with the transmitted chirp. The peak
//! index is the echo delay in samples. All correlations here run in
//! O(n log n) via the FFT.

use crate::complex::Complex;
use crate::fft::{fft, ifft, next_pow2};

/// Matched-filter output: cross-correlation of `signal` with `template`.
///
/// `out[k] = Σ_n signal[n + k] · template[n]` for `k` in
/// `0..signal.len()` — index `k` is the template's delay into the signal.
/// Lags where the template overhangs the end use the available overlap
/// (zero padding), matching the paper's sliding-window formulation.
///
/// # Panics
///
/// Panics if `template` is empty.
///
/// # Example
///
/// ```
/// use echo_dsp::correlate::matched_filter;
///
/// let template = [1.0, 2.0, 1.0];
/// let mut signal = vec![0.0; 32];
/// signal[10..13].copy_from_slice(&template);
/// let c = matched_filter(&signal, &template);
/// let best = c.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
/// assert_eq!(best, 10);
/// ```
pub fn matched_filter(signal: &[f64], template: &[f64]) -> Vec<f64> {
    assert!(!template.is_empty(), "matched filter needs a template");
    if signal.is_empty() {
        return Vec::new();
    }
    let n = signal.len();
    let m = template.len();
    let size = next_pow2(n + m - 1);

    let mut a: Vec<Complex> = Vec::with_capacity(size);
    a.extend(signal.iter().map(|&x| Complex::from_real(x)));
    a.resize(size, Complex::ZERO);
    let mut b: Vec<Complex> = Vec::with_capacity(size);
    b.extend(template.iter().map(|&x| Complex::from_real(x)));
    b.resize(size, Complex::ZERO);

    fft(&mut a);
    fft(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= y.conj();
    }
    ifft(&mut a);
    a.truncate(n);
    a.into_iter().map(|v| v.re).collect()
}

/// Matched filter for complex (e.g. beamformed analytic) signals.
///
/// `out[k] = Σ_n signal[n + k] · conj(template[n])`.
///
/// # Panics
///
/// Panics if `template` is empty.
pub fn matched_filter_complex(signal: &[Complex], template: &[Complex]) -> Vec<Complex> {
    assert!(!template.is_empty(), "matched filter needs a template");
    if signal.is_empty() {
        return Vec::new();
    }
    let n = signal.len();
    let m = template.len();
    let size = next_pow2(n + m - 1);

    let mut a = signal.to_vec();
    a.resize(size, Complex::ZERO);
    let mut b = template.to_vec();
    b.resize(size, Complex::ZERO);

    fft(&mut a);
    fft(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= y.conj();
    }
    ifft(&mut a);
    a.truncate(n);
    a
}

/// Full linear convolution `signal * kernel` of length `n + m − 1`.
///
/// # Panics
///
/// Panics if either input is empty.
pub fn convolve(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    assert!(
        !signal.is_empty() && !kernel.is_empty(),
        "convolve needs non-empty inputs"
    );
    let n = signal.len();
    let m = kernel.len();
    let out_len = n + m - 1;
    let size = next_pow2(out_len);

    let mut a: Vec<Complex> = Vec::with_capacity(size);
    a.extend(signal.iter().map(|&x| Complex::from_real(x)));
    a.resize(size, Complex::ZERO);
    let mut b: Vec<Complex> = Vec::with_capacity(size);
    b.extend(kernel.iter().map(|&x| Complex::from_real(x)));
    b.resize(size, Complex::ZERO);

    fft(&mut a);
    fft(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= *y;
    }
    ifft(&mut a);
    a.truncate(out_len);
    a.into_iter().map(|v| v.re).collect()
}

/// Normalised cross-correlation coefficient in `[-1, 1]` between two
/// equal-length signals (zero-lag Pearson correlation without mean removal).
///
/// Returns 0 when either signal has zero energy.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn normalized_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let ea: f64 = a.iter().map(|x| x * x).sum();
    let eb: f64 = b.iter().map(|x| x * x).sum();
    if ea == 0.0 || eb == 0.0 {
        return 0.0;
    }
    dot / (ea.sqrt() * eb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chirp::LfmChirp;

    #[test]
    fn matched_filter_locates_delayed_template() {
        let chirp = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0);
        let s = chirp.samples();
        for delay in [0usize, 7, 100, 900] {
            let mut rx = vec![0.0; 1_200];
            for (i, &v) in s.iter().enumerate() {
                rx[delay + i] = v;
            }
            let c = matched_filter(&rx, &s);
            let best = c
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(best, delay);
        }
    }

    #[test]
    fn matched_filter_separates_two_echoes() {
        let chirp = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0);
        let s = chirp.samples();
        let mut rx = vec![0.0; 2_000];
        for (i, &v) in s.iter().enumerate() {
            rx[200 + i] += v;
            rx[700 + i] += 0.4 * v;
        }
        let c = matched_filter(&rx, &s);
        let peak_energy = s.iter().map(|v| v * v).sum::<f64>();
        assert!((c[200] - peak_energy).abs() < 1e-6 * peak_energy);
        assert!((c[700] - 0.4 * peak_energy).abs() < 1e-6 * peak_energy);
    }

    #[test]
    fn matched_filter_handles_partial_overlap_at_end() {
        let template = [1.0, 1.0, 1.0];
        let signal = [0.0, 0.0, 0.0, 1.0, 1.0];
        let c = matched_filter(&signal, &template);
        assert_eq!(c.len(), 5);
        assert!(
            (c[3] - 2.0).abs() < 1e-9,
            "tail overlap counts available samples"
        );
    }

    #[test]
    fn matched_filter_against_naive() {
        let signal: Vec<f64> = (0..50).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let template: Vec<f64> = (0..7).map(|i| (i as f64 * 0.9).cos()).collect();
        let fast = matched_filter(&signal, &template);
        for k in 0..signal.len() {
            let mut acc = 0.0;
            for (n, &t) in template.iter().enumerate() {
                if k + n < signal.len() {
                    acc += signal[k + n] * t;
                }
            }
            assert!((fast[k] - acc).abs() < 1e-9, "lag {k}");
        }
    }

    #[test]
    fn complex_matched_filter_matches_real_one_for_real_input() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let template: Vec<f64> = (0..9).map(|i| (i as f64 * 0.7).cos()).collect();
        let real = matched_filter(&signal, &template);
        let cs: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        let ct: Vec<Complex> = template.iter().map(|&x| Complex::from_real(x)).collect();
        let cplx = matched_filter_complex(&cs, &ct);
        for (a, b) in real.iter().zip(cplx.iter()) {
            assert!((a - b.re).abs() < 1e-9);
            assert!(b.im.abs() < 1e-9);
        }
    }

    #[test]
    fn convolve_against_naive() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0];
        let c = convolve(&a, &b);
        assert_eq!(c.len(), 4);
        let expect = [4.0, 13.0, 22.0, 15.0];
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_correlation_bounds() {
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        assert!((normalized_correlation(&a, &a) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((normalized_correlation(&a, &neg) + 1.0).abs() < 1e-12);
        let zeros = vec![0.0; 32];
        assert_eq!(normalized_correlation(&a, &zeros), 0.0);
    }

    #[test]
    #[should_panic(expected = "template")]
    fn empty_template_panics() {
        let _ = matched_filter(&[1.0, 2.0], &[]);
    }
}
