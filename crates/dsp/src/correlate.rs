//! Matched filtering and cross-correlation (paper Eq. 9).
//!
//! The distance estimator slides the known chirp across the beamformed
//! recording: `C_l(t) = (r̂_l ⋆ h)(t)` with `h(t) = s*(−t)`, i.e. the
//! cross-correlation of the recording with the transmitted chirp. The peak
//! index is the echo delay in samples. All correlations here run in
//! O(n log n) via the FFT.
//!
//! # Fast paths
//!
//! Three layers of reuse keep per-capture cost down:
//!
//! * every transform goes through the process-wide [`fft_plan`] cache, so
//!   twiddle tables are computed once per padded size;
//! * [`matched_filter`] and [`convolve`] pack their two *real* inputs into
//!   one complex signal (`z = signal + i·template`) and separate the
//!   spectra by conjugate symmetry — one forward FFT instead of two;
//! * a [`MatchedFilterPlan`] pins a fixed template (the transmitted
//!   chirp) and caches its spectrum per padded size, so a beep train pays
//!   one forward FFT *per capture* and none for the template. The
//!   `_with` variants additionally reuse caller scratch so the padded
//!   work buffer is allocated once per thread, not once per call.

use crate::complex::Complex;
use crate::fft::next_pow2;
use crate::plan::{fft_plan, FftPlan, FftScratch};
use crate::simd;
use std::sync::{Arc, Mutex};

/// Reusable padded work buffer for the correlation routines.
///
/// One scratch serves any mix of sizes; buffers grow to the largest size
/// seen and are reused across calls.
#[derive(Debug, Default)]
pub struct CorrelationScratch {
    buf: Vec<Complex>,
    fft: FftScratch,
}

impl CorrelationScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Packs two real signals into one complex buffer, transforms once, and
/// leaves the *product* spectrum (`A·B` or `A·conj(B)`) in `scratch.buf`,
/// exploiting `A[k] = (Z[k] + Z̄[n−k])/2`, `B[k] = −i(Z[k] − Z̄[n−k])/2`.
fn packed_real_product(
    signal: &[f64],
    template: &[f64],
    conjugate_template: bool,
    plan: &FftPlan,
    scratch: &mut CorrelationScratch,
) {
    let size = plan.len();
    let z = &mut scratch.buf;
    z.clear();
    z.resize(size, Complex::ZERO);
    for (slot, &x) in z.iter_mut().zip(signal.iter()) {
        slot.re = x;
    }
    for (slot, &x) in z.iter_mut().zip(template.iter()) {
        slot.im = x;
    }
    plan.fft_with(z, &mut scratch.fft);

    // The product of two real-input spectra is Hermitian, so compute the
    // lower half and mirror the rest: P[size−k] = conj(P[k]).
    let half = size / 2;
    for k in 0..=half {
        let kr = if k == 0 { 0 } else { size - k };
        let zk = z[k];
        let zr = z[kr].conj();
        let a = (zk + zr) * 0.5;
        let d = zk - zr;
        let b = Complex::new(d.im * 0.5, -d.re * 0.5);
        let p = if conjugate_template {
            a * b.conj()
        } else {
            a * b
        };
        z[k] = p;
        z[kr] = p.conj();
    }
}

/// Matched-filter output: cross-correlation of `signal` with `template`.
///
/// `out[k] = Σ_n signal[n + k] · template[n]` for `k` in
/// `0..signal.len()` — index `k` is the template's delay into the signal.
/// Lags where the template overhangs the end use the available overlap
/// (zero padding), matching the paper's sliding-window formulation.
///
/// # Panics
///
/// Panics if `template` is empty.
///
/// # Example
///
/// ```
/// use echo_dsp::correlate::matched_filter;
///
/// let template = [1.0, 2.0, 1.0];
/// let mut signal = vec![0.0; 32];
/// signal[10..13].copy_from_slice(&template);
/// let c = matched_filter(&signal, &template);
/// let best = c.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
/// assert_eq!(best, 10);
/// ```
pub fn matched_filter(signal: &[f64], template: &[f64]) -> Vec<f64> {
    assert!(!template.is_empty(), "matched filter needs a template");
    if signal.is_empty() {
        return Vec::new();
    }
    let size = next_pow2(signal.len() + template.len() - 1);
    matched_filter_with_plan(
        signal,
        template,
        &fft_plan(size),
        &mut CorrelationScratch::new(),
    )
}

/// [`matched_filter`] reusing a caller-provided plan and scratch.
///
/// `plan` must be for `next_pow2(signal.len() + template.len() − 1)`
/// points (fetch it once with [`fft_plan`] when filtering many captures
/// of the same length).
///
/// # Panics
///
/// Panics if `template` is empty or the plan length does not match.
pub fn matched_filter_with_plan(
    signal: &[f64],
    template: &[f64],
    plan: &FftPlan,
    scratch: &mut CorrelationScratch,
) -> Vec<f64> {
    assert!(!template.is_empty(), "matched filter needs a template");
    if signal.is_empty() {
        return Vec::new();
    }
    let size = next_pow2(signal.len() + template.len() - 1);
    assert_eq!(plan.len(), size, "plan sized for a different correlation");
    packed_real_product(signal, template, true, plan, scratch);
    plan.ifft_with(&mut scratch.buf, &mut scratch.fft);
    scratch.buf[..signal.len()].iter().map(|v| v.re).collect()
}

/// Matched filter for complex (e.g. beamformed analytic) signals.
///
/// `out[k] = Σ_n signal[n + k] · conj(template[n])`.
///
/// # Panics
///
/// Panics if `template` is empty.
pub fn matched_filter_complex(signal: &[Complex], template: &[Complex]) -> Vec<Complex> {
    assert!(!template.is_empty(), "matched filter needs a template");
    if signal.is_empty() {
        return Vec::new();
    }
    let n = signal.len();
    let m = template.len();
    let size = next_pow2(n + m - 1);
    let plan = fft_plan(size);
    let mut scratch = FftScratch::new();

    let mut a = signal.to_vec();
    a.resize(size, Complex::ZERO);
    let mut b = template.to_vec();
    b.resize(size, Complex::ZERO);

    plan.fft_with(&mut a, &mut scratch);
    plan.fft_with(&mut b, &mut scratch);
    simd::cmul_conj_in_place(&mut a, &b);
    plan.ifft_with(&mut a, &mut scratch);
    a.truncate(n);
    a
}

/// Full linear convolution `signal * kernel` of length `n + m − 1`.
///
/// # Panics
///
/// Panics if either input is empty.
pub fn convolve(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    assert!(
        !signal.is_empty() && !kernel.is_empty(),
        "convolve needs non-empty inputs"
    );
    let size = next_pow2(signal.len() + kernel.len() - 1);
    convolve_with_plan(
        signal,
        kernel,
        &fft_plan(size),
        &mut CorrelationScratch::new(),
    )
}

/// [`convolve`] reusing a caller-provided plan and scratch.
///
/// `plan` must be for `next_pow2(signal.len() + kernel.len() − 1)` points.
///
/// # Panics
///
/// Panics if either input is empty or the plan length does not match.
pub fn convolve_with_plan(
    signal: &[f64],
    kernel: &[f64],
    plan: &FftPlan,
    scratch: &mut CorrelationScratch,
) -> Vec<f64> {
    assert!(
        !signal.is_empty() && !kernel.is_empty(),
        "convolve needs non-empty inputs"
    );
    let out_len = signal.len() + kernel.len() - 1;
    let size = next_pow2(out_len);
    assert_eq!(plan.len(), size, "plan sized for a different convolution");
    packed_real_product(signal, kernel, false, plan, scratch);
    plan.ifft_with(&mut scratch.buf, &mut scratch.fft);
    scratch.buf[..out_len].iter().map(|v| v.re).collect()
}

/// A matched filter with a pinned template whose spectrum is cached.
///
/// The EchoImage pipeline correlates every capture against the *same*
/// transmitted chirp (real samples for raw recordings, the analytic
/// chirp for beamformed signals). Rebuilding the template spectrum per
/// call wastes one forward FFT per capture; this plan computes it once
/// per padded size and shares it behind an [`Arc`], so steady-state
/// matched filtering is one forward and one inverse transform.
///
/// Complex outputs are **bit-identical** to [`matched_filter_complex`]:
/// the cached spectrum is the same transform that function runs, and the
/// multiply/inverse steps are unchanged. Real outputs agree with
/// [`matched_filter`] to floating-point rounding (that function uses the
/// packed-real transform, which rounds differently in the last bits).
///
/// # Example
///
/// ```
/// use echo_dsp::correlate::{matched_filter, MatchedFilterPlan};
///
/// let template = [1.0, 2.0, 1.0];
/// let plan = MatchedFilterPlan::new(&template);
/// let mut signal = vec![0.0; 32];
/// signal[10..13].copy_from_slice(&template);
/// let planned = plan.matched_filter(&signal);
/// let plain = matched_filter(&signal, &template);
/// for (a, b) in planned.iter().zip(plain.iter()) {
///     assert!((a - b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug)]
pub struct MatchedFilterPlan {
    /// Template in complex form (imaginary parts zero for real templates).
    template: Vec<Complex>,
    /// Cached raw (un-conjugated) template spectra, one per padded size.
    spectra: Mutex<Vec<(usize, Arc<Vec<Complex>>)>>,
}

impl MatchedFilterPlan {
    /// Plans matched filtering against a real template.
    ///
    /// # Panics
    ///
    /// Panics if `template` is empty.
    pub fn new(template: &[f64]) -> Self {
        assert!(!template.is_empty(), "matched filter needs a template");
        Self {
            template: template.iter().map(|&x| Complex::from_real(x)).collect(),
            spectra: Mutex::new(Vec::new()),
        }
    }

    /// Plans matched filtering against a complex (e.g. analytic) template.
    ///
    /// # Panics
    ///
    /// Panics if `template` is empty.
    pub fn new_complex(template: &[Complex]) -> Self {
        assert!(!template.is_empty(), "matched filter needs a template");
        Self {
            template: template.to_vec(),
            spectra: Mutex::new(Vec::new()),
        }
    }

    /// Length of the pinned template in samples.
    pub fn template_len(&self) -> usize {
        self.template.len()
    }

    /// Padded FFT size used for a length-`n` signal.
    fn padded_size(&self, n: usize) -> usize {
        next_pow2(n + self.template.len() - 1)
    }

    /// The template spectrum for `size` points, computed on first use.
    fn spectrum(&self, size: usize) -> Arc<Vec<Complex>> {
        {
            let mut cache = self.spectra.lock().expect("template spectrum poisoned");
            if let Some(pos) = cache.iter().position(|(s, _)| *s == size) {
                let hit = cache.remove(pos);
                let spec = Arc::clone(&hit.1);
                cache.insert(0, hit);
                return spec;
            }
        }
        // Same transform matched_filter_complex runs on the padded
        // template, so downstream products are bit-identical.
        let mut b = self.template.clone();
        b.resize(size, Complex::ZERO);
        fft_plan(size).fft(&mut b);
        let spec = Arc::new(b);
        let mut cache = self.spectra.lock().expect("template spectrum poisoned");
        if !cache.iter().any(|(s, _)| *s == size) {
            cache.insert(0, (size, Arc::clone(&spec)));
            // A plan sees at most a handful of signal lengths; keep the
            // few most recent.
            cache.truncate(4);
        }
        spec
    }

    /// Cross-correlation of a real `signal` with the pinned template
    /// (same contract as [`matched_filter`]).
    pub fn matched_filter(&self, signal: &[f64]) -> Vec<f64> {
        self.matched_filter_with(signal, &mut CorrelationScratch::new())
    }

    /// [`MatchedFilterPlan::matched_filter`] reusing caller scratch.
    pub fn matched_filter_with(
        &self,
        signal: &[f64],
        scratch: &mut CorrelationScratch,
    ) -> Vec<f64> {
        if signal.is_empty() {
            return Vec::new();
        }
        let out = self.correlate_padded(
            signal.iter().map(|&x| Complex::from_real(x)),
            signal.len(),
            true,
            scratch,
        );
        out.iter().take(signal.len()).map(|v| v.re).collect()
    }

    /// Cross-correlation of a complex `signal` with the pinned template
    /// (same contract as [`matched_filter_complex`]).
    pub fn matched_filter_complex(&self, signal: &[Complex]) -> Vec<Complex> {
        self.matched_filter_complex_with(signal, &mut CorrelationScratch::new())
    }

    /// [`MatchedFilterPlan::matched_filter_complex`] reusing caller scratch.
    pub fn matched_filter_complex_with(
        &self,
        signal: &[Complex],
        scratch: &mut CorrelationScratch,
    ) -> Vec<Complex> {
        if signal.is_empty() {
            return Vec::new();
        }
        let out = self.correlate_padded(signal.iter().copied(), signal.len(), true, scratch);
        out[..signal.len()].to_vec()
    }

    /// Linear convolution of a real `signal` with the pinned template
    /// (same contract as [`convolve`] with the template as kernel).
    pub fn convolve(&self, signal: &[f64]) -> Vec<f64> {
        self.convolve_with(signal, &mut CorrelationScratch::new())
    }

    /// [`MatchedFilterPlan::convolve`] reusing caller scratch.
    pub fn convolve_with(&self, signal: &[f64], scratch: &mut CorrelationScratch) -> Vec<f64> {
        assert!(!signal.is_empty(), "convolve needs non-empty inputs");
        let out_len = signal.len() + self.template.len() - 1;
        let out = self.correlate_padded(
            signal.iter().map(|&x| Complex::from_real(x)),
            signal.len(),
            false,
            scratch,
        );
        out[..out_len].iter().map(|v| v.re).collect()
    }

    /// Shared core: pad `signal` to the plan size, transform, multiply by
    /// the cached template spectrum (conjugated for correlation), and
    /// invert. Returns a borrow of the scratch buffer.
    fn correlate_padded<'s>(
        &self,
        signal: impl Iterator<Item = Complex>,
        n: usize,
        conjugate_template: bool,
        scratch: &'s mut CorrelationScratch,
    ) -> &'s [Complex] {
        let size = self.padded_size(n);
        let plan = fft_plan(size);
        let spectrum = self.spectrum(size);
        let a = &mut scratch.buf;
        a.clear();
        a.extend(signal);
        a.resize(size, Complex::ZERO);
        plan.fft_with(a, &mut scratch.fft);
        // Identical op order to the unplanned path (`*x *= y.conj()`)
        // on either SIMD path, so the planned output is bit-identical.
        if conjugate_template {
            simd::cmul_conj_in_place(a, &spectrum);
        } else {
            simd::cmul_in_place(a, &spectrum);
        }
        plan.ifft_with(a, &mut scratch.fft);
        a
    }
}

/// Normalised cross-correlation coefficient in `[-1, 1]` between two
/// equal-length signals (zero-lag Pearson correlation without mean removal).
///
/// Returns 0 when either signal has zero energy.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn normalized_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let dot: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
    let ea: f64 = a.iter().map(|x| x * x).sum();
    let eb: f64 = b.iter().map(|x| x * x).sum();
    if ea == 0.0 || eb == 0.0 {
        return 0.0;
    }
    dot / (ea.sqrt() * eb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chirp::LfmChirp;
    use crate::fft::{fft, ifft};

    #[test]
    fn matched_filter_locates_delayed_template() {
        let chirp = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0);
        let s = chirp.samples();
        for delay in [0usize, 7, 100, 900] {
            let mut rx = vec![0.0; 1_200];
            for (i, &v) in s.iter().enumerate() {
                rx[delay + i] = v;
            }
            let c = matched_filter(&rx, &s);
            let best = c
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(best, delay);
        }
    }

    #[test]
    fn matched_filter_separates_two_echoes() {
        let chirp = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0);
        let s = chirp.samples();
        let mut rx = vec![0.0; 2_000];
        for (i, &v) in s.iter().enumerate() {
            rx[200 + i] += v;
            rx[700 + i] += 0.4 * v;
        }
        let c = matched_filter(&rx, &s);
        let peak_energy = s.iter().map(|v| v * v).sum::<f64>();
        assert!((c[200] - peak_energy).abs() < 1e-6 * peak_energy);
        assert!((c[700] - 0.4 * peak_energy).abs() < 1e-6 * peak_energy);
    }

    #[test]
    fn matched_filter_handles_partial_overlap_at_end() {
        let template = [1.0, 1.0, 1.0];
        let signal = [0.0, 0.0, 0.0, 1.0, 1.0];
        let c = matched_filter(&signal, &template);
        assert_eq!(c.len(), 5);
        assert!(
            (c[3] - 2.0).abs() < 1e-9,
            "tail overlap counts available samples"
        );
    }

    #[test]
    fn matched_filter_against_naive() {
        let signal: Vec<f64> = (0..50).map(|i| ((i * i) as f64 * 0.013).sin()).collect();
        let template: Vec<f64> = (0..7).map(|i| (i as f64 * 0.9).cos()).collect();
        let fast = matched_filter(&signal, &template);
        for k in 0..signal.len() {
            let mut acc = 0.0;
            for (n, &t) in template.iter().enumerate() {
                if k + n < signal.len() {
                    acc += signal[k + n] * t;
                }
            }
            assert!((fast[k] - acc).abs() < 1e-9, "lag {k}");
        }
    }

    #[test]
    fn complex_matched_filter_matches_real_one_for_real_input() {
        let signal: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let template: Vec<f64> = (0..9).map(|i| (i as f64 * 0.7).cos()).collect();
        let real = matched_filter(&signal, &template);
        let cs: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
        let ct: Vec<Complex> = template.iter().map(|&x| Complex::from_real(x)).collect();
        let cplx = matched_filter_complex(&cs, &ct);
        for (a, b) in real.iter().zip(cplx.iter()) {
            assert!((a - b.re).abs() < 1e-9);
            assert!(b.im.abs() < 1e-9);
        }
    }

    #[test]
    fn convolve_against_naive() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0];
        let c = convolve(&a, &b);
        assert_eq!(c.len(), 4);
        let expect = [4.0, 13.0, 22.0, 15.0];
        for (x, y) in c.iter().zip(expect.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn with_plan_variants_match_plain_calls_bitwise() {
        let signal: Vec<f64> = (0..300).map(|i| (i as f64 * 0.11).sin()).collect();
        let template: Vec<f64> = (0..31).map(|i| (i as f64 * 0.61).cos()).collect();
        let size = next_pow2(signal.len() + template.len() - 1);
        let plan = fft_plan(size);
        let mut scratch = CorrelationScratch::new();

        let mf = matched_filter(&signal, &template);
        let mf_planned = matched_filter_with_plan(&signal, &template, &plan, &mut scratch);
        assert_eq!(mf.len(), mf_planned.len());
        for (a, b) in mf.iter().zip(mf_planned.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // Scratch is dirty now — results must not change.
        let cv = convolve(&signal, &template);
        let cv_planned = convolve_with_plan(&signal, &template, &plan, &mut scratch);
        assert_eq!(cv.len(), cv_planned.len());
        for (a, b) in cv.iter().zip(cv_planned.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The pre-plan implementation of the complex matched filter (two
    /// forward FFTs per call), kept as the bitwise reference.
    fn matched_filter_complex_reference(signal: &[Complex], template: &[Complex]) -> Vec<Complex> {
        let n = signal.len();
        let size = next_pow2(n + template.len() - 1);
        let mut a = signal.to_vec();
        a.resize(size, Complex::ZERO);
        let mut b = template.to_vec();
        b.resize(size, Complex::ZERO);
        fft(&mut a);
        fft(&mut b);
        for (x, y) in a.iter_mut().zip(b.iter()) {
            *x *= y.conj();
        }
        ifft(&mut a);
        a.truncate(n);
        a
    }

    #[test]
    fn template_plan_is_bit_identical_to_reference_complex_path() {
        let signal: Vec<Complex> = (0..200)
            .map(|i| Complex::new((i as f64 * 0.23).sin(), (i as f64 * 0.17).cos()))
            .collect();
        let template: Vec<Complex> = (0..24)
            .map(|i| Complex::new((i as f64 * 0.7).cos(), (i as f64 * 0.3).sin()))
            .collect();
        let reference = matched_filter_complex_reference(&signal, &template);
        let unplanned = matched_filter_complex(&signal, &template);
        let plan = MatchedFilterPlan::new_complex(&template);
        let mut scratch = CorrelationScratch::new();
        let planned = plan.matched_filter_complex_with(&signal, &mut scratch);
        // Run again through the dirty scratch and cached spectrum.
        let planned_again = plan.matched_filter_complex_with(&signal, &mut scratch);
        for i in 0..signal.len() {
            for (a, b) in [
                (reference[i], unplanned[i]),
                (reference[i], planned[i]),
                (reference[i], planned_again[i]),
            ] {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "index {i}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "index {i}");
            }
        }
    }

    #[test]
    fn template_plan_real_paths_match_naive() {
        let signal: Vec<f64> = (0..150).map(|i| ((i * i) as f64 * 0.007).sin()).collect();
        let template: Vec<f64> = (0..11).map(|i| (i as f64 * 0.45).cos()).collect();
        let plan = MatchedFilterPlan::new(&template);
        assert_eq!(plan.template_len(), template.len());

        let mf = plan.matched_filter(&signal);
        for k in 0..signal.len() {
            let mut acc = 0.0;
            for (n, &t) in template.iter().enumerate() {
                if k + n < signal.len() {
                    acc += signal[k + n] * t;
                }
            }
            assert!((mf[k] - acc).abs() < 1e-9, "lag {k}");
        }

        let cv = plan.convolve(&signal);
        let expect = convolve(&signal, &template);
        assert_eq!(cv.len(), expect.len());
        for (a, b) in cv.iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn template_plan_caches_one_spectrum_per_size() {
        let template = [1.0, -0.5, 0.25];
        let plan = MatchedFilterPlan::new(&template);
        let _ = plan.matched_filter(&vec![0.5; 100]);
        let _ = plan.matched_filter(&vec![0.5; 100]);
        let _ = plan.matched_filter(&vec![0.5; 300]);
        let cached = plan.spectra.lock().unwrap().len();
        assert_eq!(cached, 2, "one spectrum per distinct padded size");
    }

    #[test]
    fn normalized_correlation_bounds() {
        let a: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        assert!((normalized_correlation(&a, &a) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((normalized_correlation(&a, &neg) + 1.0).abs() < 1e-12);
        let zeros = vec![0.0; 32];
        assert_eq!(normalized_correlation(&a, &zeros), 0.0);
    }

    #[test]
    #[should_panic(expected = "template")]
    fn empty_template_panics() {
        let _ = matched_filter(&[1.0, 2.0], &[]);
    }
}
