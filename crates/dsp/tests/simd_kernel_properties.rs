//! Scalar-vs-SIMD property suite for the dispatch kernels.
//!
//! Every kernel in `echo_dsp::simd` is exercised on random lengths —
//! deliberately including 0, 1 and non-multiples of the SIMD lane width
//! (2 complex / 4 real lanes per AVX2 vector) so the vector body *and*
//! the scalar tail are both hit — with seeded pseudo-random finite
//! values mixing magnitudes (large, tiny, exact zeros), comparing the
//! explicit-scalar path against the explicit-AVX2 path.
//!
//! # ULP policy
//!
//! The AVX2 kernels promise the scalar rounding bit-for-bit (they
//! vectorise across elements without reassociating within one, and use
//! no FMA), so every bound below is **0 ULP**. The bounds are spelled
//! per kernel anyway: a future kernel that legitimately reassociates
//! (e.g. a horizontal reduction) widens its own constant and documents
//! why, instead of quietly weakening the whole suite.
//!
//! On hosts without AVX2 the comparisons degenerate to scalar-vs-scalar
//! and pass trivially; CI's dispatch matrix runs the suite on AVX2
//! hardware.

use echo_dsp::peaks::{find_peaks, Peak};
use echo_dsp::simd::{
    self, accum_norm_sqr_with, axpy2_with, axpy_with, butterfly_pass_with, cmul_conj_in_place_with,
    cmul_in_place_with, cmul_into_with, cmul_scale_into_with, gemm_tile2_with, gemm_tile_with,
    max_f64_with, scale_in_place_with, sqdist_f32_with, sqdist_f64_with, SimdPath,
};
use echo_dsp::Complex;
use proptest::prelude::*;

/// Per-kernel ULP bounds (see module docs — all exact today).
const ULP_BUTTERFLY: u64 = 0;
const ULP_CMUL: u64 = 0;
const ULP_SCALE: u64 = 0;
const ULP_AXPY: u64 = 0;
const ULP_GEMM_TILE: u64 = 0;
const ULP_NORM_SQR: u64 = 0;
const ULP_MAX: u64 = 0;
// `sqdist_*` *define* a lane-strided + fixed-tree summation order that
// both paths implement identically, so the bound stays 0 ULP even
// though the reduction is horizontal.
const ULP_SQDIST: u64 = 0;

/// Distance in units-in-the-last-place between two finite doubles,
/// treating `+0.0` and `−0.0` as equal. Any NaN or sign disagreement is
/// reported as `u64::MAX` so a 0-ULP bound fails loudly.
fn ulp_distance(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() || a.is_sign_positive() != b.is_sign_positive() {
        return u64::MAX;
    }
    a.to_bits().abs_diff(b.to_bits())
}

fn assert_ulp(a: f64, b: f64, bound: u64, what: &str) -> Result<(), TestCaseError> {
    let d = ulp_distance(a, b);
    prop_assert!(
        d <= bound,
        "{}: {:e} vs {:e} differ by {} ULP (bound {})",
        what,
        a,
        b,
        d,
        bound
    );
    Ok(())
}

fn assert_ulp_c(a: Complex, b: Complex, bound: u64, what: &str) -> Result<(), TestCaseError> {
    assert_ulp(a.re, b.re, bound, what)?;
    assert_ulp(a.im, b.im, bound, what)
}

/// The path pair under test: scalar always, AVX2 when the host has it.
fn simd_path() -> SimdPath {
    if simd::avx2_supported() {
        SimdPath::Avx2
    } else {
        SimdPath::Scalar
    }
}

/// Seeded finite value stream mixing magnitudes: mostly O(1)–O(10³)
/// values, some subnormal-adjacent tiny ones, and exact ±0.0.
fn next_val(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let u = ((*state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    match *state % 8 {
        0 => 0.0,
        1 => -0.0,
        2 => u * 1.0e-6,
        3 => u * 1.0e3,
        _ => u,
    }
}

fn fvec(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_mul(2654435761).max(1);
    (0..n).map(|_| next_val(&mut s)).collect()
}

fn cvec(n: usize, seed: u64) -> Vec<Complex> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..n)
        .map(|_| Complex::new(next_val(&mut s), next_val(&mut s)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Lengths 0..101 straddle the lane width: empty, sub-vector, exact
    // multiples of 2/4/8, and ragged tails all occur.

    fn butterfly_pass_paths_agree(n in 0usize..101, seed in 0u64..10_000) {
        let lo = cvec(n, seed);
        let hi = cvec(n, seed ^ 0xA5A5);
        let tw = cvec(n, seed ^ 0x5A5A);
        let (mut s_lo, mut s_hi) = (lo.clone(), hi.clone());
        butterfly_pass_with(SimdPath::Scalar, &mut s_lo, &mut s_hi, &tw);
        let (mut v_lo, mut v_hi) = (lo, hi);
        butterfly_pass_with(simd_path(), &mut v_lo, &mut v_hi, &tw);
        for i in 0..n {
            assert_ulp_c(s_lo[i], v_lo[i], ULP_BUTTERFLY, "butterfly lo")?;
            assert_ulp_c(s_hi[i], v_hi[i], ULP_BUTTERFLY, "butterfly hi")?;
        }
    }

    fn cmul_family_paths_agree(
        n in 0usize..101,
        seed in 0u64..10_000,
        scale in -4.0..4.0f64,
    ) {
        let a = cvec(n, seed);
        let b = cvec(n, seed ^ 0xC3C3);
        let path = simd_path();

        let mut s = a.clone();
        cmul_in_place_with(SimdPath::Scalar, &mut s, &b);
        let mut v = a.clone();
        cmul_in_place_with(path, &mut v, &b);
        for i in 0..n {
            assert_ulp_c(s[i], v[i], ULP_CMUL, "cmul_in_place")?;
        }

        let mut s = a.clone();
        cmul_conj_in_place_with(SimdPath::Scalar, &mut s, &b);
        let mut v = a.clone();
        cmul_conj_in_place_with(path, &mut v, &b);
        for i in 0..n {
            assert_ulp_c(s[i], v[i], ULP_CMUL, "cmul_conj_in_place")?;
        }

        let mut s = vec![Complex::ZERO; n];
        cmul_into_with(SimdPath::Scalar, &mut s, &a, &b);
        let mut v = vec![Complex::ZERO; n];
        cmul_into_with(path, &mut v, &a, &b);
        for i in 0..n {
            assert_ulp_c(s[i], v[i], ULP_CMUL, "cmul_into")?;
        }

        let mut s = vec![Complex::ZERO; n];
        cmul_scale_into_with(SimdPath::Scalar, &mut s, &a, &b, scale);
        let mut v = vec![Complex::ZERO; n];
        cmul_scale_into_with(path, &mut v, &a, &b, scale);
        for i in 0..n {
            assert_ulp_c(s[i], v[i], ULP_CMUL, "cmul_scale_into")?;
        }
    }

    fn scale_paths_agree(
        n in 0usize..101,
        seed in 0u64..10_000,
        k in -1.0e3..1.0e3f64,
    ) {
        let a = cvec(n, seed);
        let mut s = a.clone();
        scale_in_place_with(SimdPath::Scalar, &mut s, k);
        let mut v = a;
        scale_in_place_with(simd_path(), &mut v, k);
        for i in 0..n {
            assert_ulp_c(s[i], v[i], ULP_SCALE, "scale_in_place")?;
        }
    }

    fn axpy_paths_agree(
        n in 0usize..101,
        seed in 0u64..10_000,
        k0 in -100.0..100.0f64,
        k1 in -100.0..100.0f64,
    ) {
        let acc = fvec(n, seed);
        let acc1 = fvec(n, seed ^ 0xE1E1);
        let src = fvec(n, seed ^ 0x1E1E);
        let path = simd_path();

        let mut s = acc.clone();
        axpy_with(SimdPath::Scalar, &mut s, k0, &src);
        let mut v = acc.clone();
        axpy_with(path, &mut v, k0, &src);
        for i in 0..n {
            assert_ulp(s[i], v[i], ULP_AXPY, "axpy")?;
        }

        let (mut s0, mut s1) = (acc.clone(), acc1.clone());
        axpy2_with(SimdPath::Scalar, &mut s0, &mut s1, k0, k1, &src);
        let (mut v0, mut v1) = (acc, acc1);
        axpy2_with(path, &mut v0, &mut v1, k0, k1, &src);
        for i in 0..n {
            assert_ulp(s0[i], v0[i], ULP_AXPY, "axpy2 row0")?;
            assert_ulp(s1[i], v1[i], ULP_AXPY, "axpy2 row1")?;
        }
    }

    // Tile widths 0..25 straddle the 8-wide vector block (vector body,
    // 4-wide remainder and scalar column tail all occur); `pad` makes
    // the column stride exceed the tile so the kernel must respect it.
    fn gemm_tile_paths_agree(
        xb in 0usize..25,
        k_rows in 0usize..12,
        pad in 0usize..5,
        offset in 0usize..4,
        seed in 0u64..10_000,
    ) {
        let stride = xb + offset + pad;
        let col_len = if k_rows == 0 { 0 } else { (k_rows - 1) * stride + offset + xb };
        let col = fvec(col_len, seed);
        let w0 = fvec(k_rows, seed ^ 0x3D3D);
        let w1 = fvec(k_rows, seed ^ 0xD3D3);
        let acc = fvec(xb, seed ^ 0x99);
        let acc1 = fvec(xb, seed ^ 0x9999);
        let path = simd_path();

        let mut s = acc.clone();
        gemm_tile_with(SimdPath::Scalar, &mut s, &w0, &col, stride, offset);
        let mut v = acc.clone();
        gemm_tile_with(path, &mut v, &w0, &col, stride, offset);
        for i in 0..xb {
            assert_ulp(s[i], v[i], ULP_GEMM_TILE, "gemm_tile")?;
        }

        let (mut s0, mut s1) = (acc.clone(), acc1.clone());
        gemm_tile2_with(SimdPath::Scalar, &mut s0, &mut s1, &w0, &w1, &col, stride, offset);
        let (mut v0, mut v1) = (acc, acc1);
        gemm_tile2_with(path, &mut v0, &mut v1, &w0, &w1, &col, stride, offset);
        for i in 0..xb {
            assert_ulp(s0[i], v0[i], ULP_GEMM_TILE, "gemm_tile2 row0")?;
            assert_ulp(s1[i], v1[i], ULP_GEMM_TILE, "gemm_tile2 row1")?;
        }
    }

    fn accum_norm_sqr_paths_agree(n in 0usize..101, seed in 0u64..10_000) {
        let acc = fvec(n, seed);
        let z = cvec(n, seed ^ 0x7777);
        let mut s = acc.clone();
        accum_norm_sqr_with(SimdPath::Scalar, &mut s, &z);
        let mut v = acc;
        accum_norm_sqr_with(simd_path(), &mut v, &z);
        for i in 0..n {
            assert_ulp(s[i], v[i], ULP_NORM_SQR, "accum_norm_sqr")?;
        }
    }

    fn sqdist_paths_agree(n in 0usize..101, seed in 0u64..10_000) {
        let a = fvec(n, seed);
        let b = fvec(n, seed ^ 0x4B4B);
        let s = sqdist_f64_with(SimdPath::Scalar, &a, &b);
        let v = sqdist_f64_with(simd_path(), &a, &b);
        assert_ulp(s, v, ULP_SQDIST, "sqdist_f64")?;

        let a32: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let b32: Vec<f32> = b.iter().map(|&x| x as f32).collect();
        let s32 = sqdist_f32_with(SimdPath::Scalar, &a32, &b32);
        let v32 = sqdist_f32_with(simd_path(), &a32, &b32);
        prop_assert_eq!(
            s32.to_bits(), v32.to_bits(),
            "sqdist_f32: {:e} vs {:e}", s32, v32
        );
    }

    fn max_paths_agree(n in 0usize..101, seed in 0u64..10_000) {
        let xs = fvec(n, seed);
        let s = max_f64_with(SimdPath::Scalar, &xs);
        let v = max_f64_with(simd_path(), &xs);
        if xs.is_empty() {
            prop_assert_eq!(s, f64::NEG_INFINITY);
            prop_assert_eq!(v, f64::NEG_INFINITY);
        } else {
            assert_ulp(s, v, ULP_MAX, "max_f64")?;
        }
    }

    // `find_peaks` now runs its neighbourhood checks on the SIMD max
    // kernel; pin it against a literal transcription of the original
    // element-wise scan on NaN-free signals. Coarse quantisation makes
    // value ties (the plateau rule) common instead of measure-zero.
    fn find_peaks_matches_elementwise_reference(
        n in 0usize..80,
        seed in 0u64..10_000,
        min_distance in 0usize..9,
        threshold in -3.0..3.0f64,
        quantise in 0u8..2,
    ) {
        let mut signal = fvec(n, seed);
        if quantise == 1 {
            for v in &mut signal {
                *v = (*v * 4.0).round() / 4.0;
            }
        }
        let got = find_peaks(&signal, min_distance, threshold);
        let want = find_peaks_reference(&signal, min_distance, threshold);
        prop_assert_eq!(got, want);
    }
}

/// The pre-SIMD `find_peaks` loop, kept verbatim as the semantic oracle.
fn find_peaks_reference(signal: &[f64], min_distance: usize, threshold: f64) -> Vec<Peak> {
    let n = signal.len();
    let d = min_distance.max(1);
    let mut peaks = Vec::new();
    for i in 0..n {
        let v = signal[i];
        if v <= threshold {
            continue;
        }
        let lo = i.saturating_sub(d);
        let hi = (i + d + 1).min(n);
        let mut is_peak = true;
        for (j, &w) in signal[lo..hi].iter().enumerate() {
            let j = lo + j;
            if j == i {
                continue;
            }
            if w > v || (w == v && j < i) {
                is_peak = false;
                break;
            }
        }
        if is_peak {
            peaks.push(Peak { index: i, value: v });
        }
    }
    peaks
}

/// The dispatched entry points must agree with whatever `active()`
/// reports — a direct guard that the cached dispatch byte and the
/// kernels can't disagree.
#[test]
fn dispatched_kernels_follow_active_path() {
    let a: Vec<Complex> = (0..37)
        .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
        .collect();
    let b: Vec<Complex> = (0..37)
        .map(|i| Complex::new((i as f64 * 0.9).cos(), (i as f64 * 0.4).sin()))
        .collect();
    let mut dispatched = a.clone();
    simd::cmul_in_place(&mut dispatched, &b);
    let mut explicit = a.clone();
    cmul_in_place_with(simd::active(), &mut explicit, &b);
    for (x, y) in dispatched.iter().zip(explicit.iter()) {
        assert_eq!(x.re.to_bits(), y.re.to_bits());
        assert_eq!(x.im.to_bits(), y.im.to_bits());
    }
}
