//! Property tests pinning planned FFTs to the unplanned reference.
//!
//! [`echo_dsp::FftPlan`] precomputes bit-reversal swaps, per-stage
//! twiddles, and Bluestein chirp tables with the *same recurrences* the
//! per-call `fft`/`ifft` loops run, so its outputs must be `to_bits`
//! identical — for power-of-two (radix-2) and arbitrary (Bluestein)
//! lengths alike. The correlation fast paths are pinned against naive
//! time-domain sums.

use echo_dsp::correlate::{convolve, matched_filter, matched_filter_complex, MatchedFilterPlan};
use echo_dsp::fft::{fft, ifft};
use echo_dsp::plan::{fft_plan, FftPlan, FftScratch};
use echo_dsp::Complex;
use proptest::prelude::*;

fn signal(seed: u64, n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| {
            let t = (i as u64).wrapping_mul(seed.wrapping_add(1)) % 977;
            Complex::new((t as f64 * 0.013).sin(), (t as f64 * 0.029).cos())
        })
        .collect()
}

fn real_signal(seed: u64, n: usize) -> Vec<f64> {
    signal(seed, n).into_iter().map(|c| c.re).collect()
}

fn assert_bits_eq(a: &[Complex], b: &[Complex]) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        prop_assert_eq!(
            x.re.to_bits(),
            y.re.to_bits(),
            "re differs at {}: {} vs {}",
            i,
            x.re,
            y.re
        );
        prop_assert_eq!(
            x.im.to_bits(),
            y.im.to_bits(),
            "im differs at {}: {} vs {}",
            i,
            x.im,
            y.im
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    fn planned_fft_is_bit_identical_for_pow2_sizes(
        log_n in 0u32..13,
        seed in 0u64..1_000,
    ) {
        let n = 1usize << log_n;
        let orig = signal(seed, n);
        let plan = fft_plan(n);
        let mut scratch = FftScratch::new();

        let mut planned = orig.clone();
        plan.fft_with(&mut planned, &mut scratch);
        let mut unplanned = orig.clone();
        fft(&mut unplanned);
        assert_bits_eq(&planned, &unplanned)?;

        let mut planned_inv = orig.clone();
        plan.ifft_with(&mut planned_inv, &mut scratch);
        let mut unplanned_inv = orig;
        ifft(&mut unplanned_inv);
        assert_bits_eq(&planned_inv, &unplanned_inv)?;
    }

    fn planned_fft_is_bit_identical_for_bluestein_sizes(
        n in 2usize..600,
        seed in 0u64..1_000,
    ) {
        prop_assume!(!n.is_power_of_two());
        let orig = signal(seed, n);
        let plan = FftPlan::new(n);
        let mut scratch = FftScratch::new();

        let mut planned = orig.clone();
        plan.fft_with(&mut planned, &mut scratch);
        let mut unplanned = orig.clone();
        fft(&mut unplanned);
        assert_bits_eq(&planned, &unplanned)?;

        let mut planned_inv = orig.clone();
        plan.ifft_with(&mut planned_inv, &mut scratch);
        let mut unplanned_inv = orig;
        ifft(&mut unplanned_inv);
        assert_bits_eq(&planned_inv, &unplanned_inv)?;
    }

    fn packed_real_matched_filter_matches_naive(
        sig_len in 1usize..120,
        tmpl_len in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let sig = real_signal(seed, sig_len);
        let tmpl = real_signal(seed ^ 0xabcd, tmpl_len);
        let fast = matched_filter(&sig, &tmpl);
        prop_assert_eq!(fast.len(), sig_len);
        let scale = tmpl.iter().map(|v| v * v).sum::<f64>().max(1.0);
        for (k, got) in fast.iter().enumerate() {
            let mut acc = 0.0;
            for (i, &t) in tmpl.iter().enumerate() {
                if k + i < sig_len {
                    acc += sig[k + i] * t;
                }
            }
            prop_assert!((got - acc).abs() < 1e-9 * scale, "lag {}: {} vs {}", k, got, acc);
        }
    }

    fn packed_real_convolve_matches_naive(
        sig_len in 1usize..120,
        ker_len in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let sig = real_signal(seed, sig_len);
        let ker = real_signal(seed ^ 0x1234, ker_len);
        let fast = convolve(&sig, &ker);
        prop_assert_eq!(fast.len(), sig_len + ker_len - 1);
        let scale = ker.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
        for (k, got) in fast.iter().enumerate() {
            let mut acc = 0.0;
            for (i, &h) in ker.iter().enumerate() {
                if k >= i && k - i < sig_len {
                    acc += sig[k - i] * h;
                }
            }
            prop_assert!((got - acc).abs() < 1e-9 * scale, "index {}: {} vs {}", k, got, acc);
        }
    }

    fn template_plan_complex_path_is_bit_identical(
        sig_len in 1usize..150,
        tmpl_len in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let sig = signal(seed, sig_len);
        let tmpl = signal(seed ^ 0x77, tmpl_len);
        let unplanned = matched_filter_complex(&sig, &tmpl);
        let plan = MatchedFilterPlan::new_complex(&tmpl);
        let planned = plan.matched_filter_complex(&sig);
        assert_bits_eq(&planned, &unplanned)?;
    }
}
