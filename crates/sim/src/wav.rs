//! Minimal multichannel WAV I/O (16-bit PCM), so simulated captures can
//! be dumped to disk, listened to, or inspected with standard audio
//! tools — and prerecorded multichannel audio can be fed back into the
//! pipeline.

use crate::recording::BeepCapture;
use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Writes a capture as an interleaved 16-bit PCM WAV file.
///
/// Samples are scaled by `gain` and clipped to ±1 before quantisation
/// (simulation units are not bounded).
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Example
///
/// ```no_run
/// use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
/// use echo_sim::wav::write_wav;
///
/// let scene = Scene::new(SceneConfig::laboratory_quiet(1));
/// let body = BodyModel::from_seed(1);
/// let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
/// write_wav("capture.wav", &cap, 0.5)?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_wav<P: AsRef<Path>>(path: P, capture: &BeepCapture, gain: f64) -> io::Result<()> {
    let channels = capture.num_channels() as u32;
    let n = capture.len() as u32;
    let sample_rate = capture.sample_rate().round() as u32;
    let bytes_per_sample = 2u32;
    let data_len = n * channels * bytes_per_sample;

    let mut f = File::create(path)?;
    // RIFF header.
    f.write_all(b"RIFF")?;
    f.write_all(&(36 + data_len).to_le_bytes())?;
    f.write_all(b"WAVE")?;
    // fmt chunk (PCM).
    f.write_all(b"fmt ")?;
    f.write_all(&16u32.to_le_bytes())?;
    f.write_all(&1u16.to_le_bytes())?; // PCM
    f.write_all(&(channels as u16).to_le_bytes())?;
    f.write_all(&sample_rate.to_le_bytes())?;
    f.write_all(&(sample_rate * channels * bytes_per_sample).to_le_bytes())?;
    f.write_all(&((channels * bytes_per_sample) as u16).to_le_bytes())?;
    f.write_all(&16u16.to_le_bytes())?;
    // data chunk, interleaved.
    f.write_all(b"data")?;
    f.write_all(&data_len.to_le_bytes())?;
    let mut buf = Vec::with_capacity(data_len as usize);
    for t in 0..capture.len() {
        for ch in 0..capture.num_channels() {
            let v = (capture.channel(ch)[t] * gain).clamp(-1.0, 1.0);
            let q = (v * i16::MAX as f64).round() as i16;
            buf.extend_from_slice(&q.to_le_bytes());
        }
    }
    f.write_all(&buf)
}

/// Most channels accepted from a WAV header. The simulator's captures
/// are 6-channel; 64 leaves headroom for real recording rigs while
/// rejecting the garbage headers (65535 channels) that would otherwise
/// drive allocation.
pub const MAX_WAV_CHANNELS: u16 = 64;

/// Highest sample rate accepted from a WAV header, Hz (384 kHz is the
/// top of the pro-audio range).
pub const MAX_WAV_SAMPLE_RATE: u32 = 384_000;

/// Reads a 16-bit PCM WAV file back into a [`BeepCapture`] (with the
/// given preroll annotation, which WAV cannot carry).
///
/// The fmt chunk is validated rather than trusted: the channel count
/// must be `1..=`[`MAX_WAV_CHANNELS`], the sample rate must be positive
/// and at most [`MAX_WAV_SAMPLE_RATE`], and the data chunk must hold a
/// whole number of frames.
///
/// # Errors
///
/// Returns `InvalidData` for non-PCM, non-16-bit or out-of-bounds
/// headers, or any I/O error.
pub fn read_wav<P: AsRef<Path>>(path: P, preroll: usize) -> io::Result<BeepCapture> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    // Checked little-endian field readers: a short file is a typed
    // `InvalidData` naming the byte offset, never an indexing panic.
    let le_u16 = |o: usize| -> io::Result<u16> {
        match bytes.get(o..o + 2) {
            Some(s) => Ok(u16::from_le_bytes([s[0], s[1]])),
            None => Err(bad(&format!("truncated WAV: 2-byte field at offset {o}"))),
        }
    };
    let le_u32 = |o: usize| -> io::Result<u32> {
        match bytes.get(o..o + 4) {
            Some(s) => Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]])),
            None => Err(bad(&format!("truncated WAV: 4-byte field at offset {o}"))),
        }
    };
    if bytes.len() < 44 || &bytes[..4] != b"RIFF" || &bytes[8..12] != b"WAVE" {
        return Err(bad("not a RIFF/WAVE file"));
    }
    // Walk chunks.
    let mut pos = 12usize;
    let mut channels = 0u16;
    let mut sample_rate = 0u32;
    let mut bits = 0u16;
    let mut saw_fmt = false;
    let mut data: Option<std::ops::Range<usize>> = None;
    while pos + 8 <= bytes.len() {
        let id = &bytes[pos..pos + 4];
        let len = le_u32(pos + 4)? as usize;
        if bytes.get(pos + 8..pos + 8 + len).is_none() {
            return Err(bad(&format!(
                "truncated chunk at offset {pos}: header claims {len} bytes, \
                 file holds {}",
                bytes.len() - pos - 8
            )));
        }
        match id {
            b"fmt " => {
                if len < 16 {
                    return Err(bad(&format!(
                        "short fmt chunk at offset {pos} ({len} bytes)"
                    )));
                }
                let format = le_u16(pos + 8)?;
                if format != 1 {
                    return Err(bad("only PCM WAV is supported"));
                }
                saw_fmt = true;
                channels = le_u16(pos + 10)?;
                sample_rate = le_u32(pos + 12)?;
                bits = le_u16(pos + 22)?;
            }
            b"data" => data = Some(pos + 8..pos + 8 + len),
            _ => {}
        }
        pos += 8 + len + (len & 1);
    }
    if !saw_fmt {
        return Err(bad("missing fmt chunk"));
    }
    if bits != 16 {
        return Err(bad("only 16-bit WAV is supported"));
    }
    if channels == 0 || channels > MAX_WAV_CHANNELS {
        return Err(bad("channel count out of the supported range"));
    }
    if sample_rate == 0 || sample_rate > MAX_WAV_SAMPLE_RATE {
        return Err(bad("sample rate out of the supported range"));
    }
    let data = &bytes[data.ok_or_else(|| bad("missing data chunk"))?];
    let frame = channels as usize * 2;
    if !data.len().is_multiple_of(frame) {
        return Err(bad("data chunk is not a whole number of frames"));
    }
    let n = data.len() / frame;
    let mut out = vec![Vec::with_capacity(n); channels as usize];
    for t in 0..n {
        for (ch, channel) in out.iter_mut().enumerate() {
            let o = t * frame + ch * 2;
            let q = i16::from_le_bytes([data[o], data[o + 1]]);
            channel.push(q as f64 / i16::MAX as f64);
        }
    }
    Ok(BeepCapture::new(out, sample_rate as f64, preroll.min(n)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BodyModel, Placement, Scene, SceneConfig};

    #[test]
    fn wav_round_trip_preserves_signal() {
        let scene = Scene::new(SceneConfig::laboratory_quiet(2));
        let body = BodyModel::from_seed(3);
        let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
        let path = std::env::temp_dir().join("echoimage_wav_roundtrip.wav");
        write_wav(&path, &cap, 0.25).unwrap();
        let back = read_wav(&path, cap.preroll()).unwrap();
        std::fs::remove_file(&path).ok();

        assert_eq!(back.num_channels(), cap.num_channels());
        assert_eq!(back.len(), cap.len());
        assert_eq!(back.sample_rate(), cap.sample_rate());
        // 16-bit quantisation: correlation with the original stays high.
        let corr = echo_dsp::correlate::normalized_correlation(
            back.channel(0),
            &cap.channel(0)
                .iter()
                .map(|v| (v * 0.25).clamp(-1.0, 1.0))
                .collect::<Vec<_>>(),
        );
        assert!(corr > 0.999, "round-trip correlation {corr}");
    }

    #[test]
    fn rejects_garbage_files() {
        let path = std::env::temp_dir().join("echoimage_wav_garbage.wav");
        std::fs::write(&path, b"definitely not a wav file").unwrap();
        assert!(read_wav(&path, 0).is_err());
        std::fs::remove_file(&path).ok();
    }

    /// A syntactically valid WAV with attacker-controlled fmt fields.
    fn crafted_wav(channels: u16, sample_rate: u32, data: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RIFF");
        bytes.extend_from_slice(&(36 + data.len() as u32).to_le_bytes());
        bytes.extend_from_slice(b"WAVE");
        bytes.extend_from_slice(b"fmt ");
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes()); // PCM
        bytes.extend_from_slice(&channels.to_le_bytes());
        bytes.extend_from_slice(&sample_rate.to_le_bytes());
        bytes.extend_from_slice(
            &sample_rate
                .wrapping_mul(channels as u32)
                .wrapping_mul(2)
                .to_le_bytes(),
        );
        bytes.extend_from_slice(&channels.wrapping_mul(2).to_le_bytes());
        bytes.extend_from_slice(&16u16.to_le_bytes());
        bytes.extend_from_slice(b"data");
        bytes.extend_from_slice(&(data.len() as u32).to_le_bytes());
        bytes.extend_from_slice(data);
        bytes
    }

    fn read_crafted(name: &str, bytes: &[u8]) -> std::io::Result<BeepCapture> {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, bytes).unwrap();
        let out = read_wav(&path, 0);
        std::fs::remove_file(&path).ok();
        out
    }

    #[test]
    fn oversized_channel_count_is_rejected() {
        // 65535 channels would allocate per the header; the bound must
        // reject it before construction.
        let bytes = crafted_wav(65_535, 48_000, &[0u8; 8]);
        let err = read_crafted("echoimage_wav_chans.wav", &bytes).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("channel count"), "{err}");
    }

    #[test]
    fn zero_sample_rate_is_rejected() {
        let bytes = crafted_wav(2, 0, &[0u8; 8]);
        let err = read_crafted("echoimage_wav_rate.wav", &bytes).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("sample rate"), "{err}");
    }

    #[test]
    fn partial_frame_in_data_chunk_is_rejected() {
        // 2 channels × 16 bit = 4-byte frames; 6 bytes is a frame and a
        // half, which the old reader silently truncated.
        let bytes = crafted_wav(2, 48_000, &[0u8; 6]);
        let err = read_crafted("echoimage_wav_frame.wav", &bytes).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("whole number of frames"), "{err}");
    }

    #[test]
    fn crafted_bounds_are_inclusive() {
        // The limits themselves are valid.
        let ok = crafted_wav(2, 48_000, &[0u8; 8]);
        let cap = read_crafted("echoimage_wav_ok.wav", &ok).unwrap();
        assert_eq!(cap.num_channels(), 2);
        assert_eq!(cap.len(), 2);
    }

    #[test]
    fn header_fields_are_correct() {
        let cap = BeepCapture::new(vec![vec![0.5, -0.5, 0.0]; 2], 48_000.0, 1);
        let path = std::env::temp_dir().join("echoimage_wav_header.wav");
        write_wav(&path, &cap, 1.0).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(&bytes[..4], b"RIFF");
        assert_eq!(&bytes[8..12], b"WAVE");
        // Channels = 2 at offset 22, sample rate at 24.
        assert_eq!(u16::from_le_bytes(bytes[22..24].try_into().unwrap()), 2);
        assert_eq!(
            u32::from_le_bytes(bytes[24..28].try_into().unwrap()),
            48_000
        );
    }
}
