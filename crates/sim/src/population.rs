//! The experiment population — the paper's Table I demographics.
//!
//! 20 volunteers: users 1–5 male undergraduates (10–20), user 6 a female
//! undergraduate (10–20), users 7–15 male graduate students (20–30),
//! users 16–19 female graduate students (20–30), and user 20 a male
//! faculty/staff/engineer (30–40). In the paper 12 register with the
//! system and 8 act as spoofers.

use crate::body::{BodyModel, Gender};

/// Age bracket, matching the paper's Table I rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AgeRange {
    /// 10–20 years.
    Teens,
    /// 20–30 years.
    Twenties,
    /// 30–40 years.
    Thirties,
}

impl AgeRange {
    /// Table label, e.g. `"10-20"`.
    pub fn label(self) -> &'static str {
        match self {
            AgeRange::Teens => "10-20",
            AgeRange::Twenties => "20-30",
            AgeRange::Thirties => "30-40",
        }
    }
}

/// Occupation, matching the paper's Table I rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Occupation {
    /// Undergraduate student.
    Undergraduate,
    /// Graduate student.
    Graduate,
    /// Faculty, staff and engineer.
    FacultyStaffEngineer,
}

impl Occupation {
    /// Table label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Occupation::Undergraduate => "Undergraduate Student",
            Occupation::Graduate => "Graduate Student",
            Occupation::FacultyStaffEngineer => "Faculty, Staff and Engineer",
        }
    }
}

/// One subject.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserProfile {
    /// 1-based user id, as in Table I.
    pub id: u32,
    /// Gender.
    pub gender: Gender,
    /// Age bracket.
    pub age: AgeRange,
    /// Occupation.
    pub occupation: Occupation,
    /// Body-model seed for this subject.
    pub body_seed: u64,
}

impl UserProfile {
    /// Instantiates this subject's body model.
    pub fn body(&self) -> BodyModel {
        BodyModel::from_seed_gendered(self.body_seed, self.gender)
    }
}

/// The experiment population.
///
/// # Example
///
/// ```
/// use echo_sim::population::Population;
///
/// let pop = Population::paper_table1(42);
/// assert_eq!(pop.len(), 20);
/// assert_eq!(pop.registered().count(), 12);
/// assert_eq!(pop.spoofers().count(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Population {
    profiles: Vec<UserProfile>,
    registered_count: usize,
}

impl Population {
    /// The exact Table I population: 20 subjects with the paper's
    /// demographics; the first 12 register, the last 8 act as spoofers.
    /// `seed` offsets every subject's body seed so different populations
    /// can be generated for repeated experiments.
    pub fn paper_table1(seed: u64) -> Self {
        let mut profiles = Vec::with_capacity(20);
        for id in 1u32..=20 {
            let (gender, age, occupation) = match id {
                1..=5 => (Gender::Male, AgeRange::Teens, Occupation::Undergraduate),
                6 => (Gender::Female, AgeRange::Teens, Occupation::Undergraduate),
                7..=15 => (Gender::Male, AgeRange::Twenties, Occupation::Graduate),
                16..=19 => (Gender::Female, AgeRange::Twenties, Occupation::Graduate),
                _ => (
                    Gender::Male,
                    AgeRange::Thirties,
                    Occupation::FacultyStaffEngineer,
                ),
            };
            profiles.push(UserProfile {
                id,
                gender,
                age,
                occupation,
                body_seed: seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(id as u64),
            });
        }
        Population {
            profiles,
            registered_count: 12,
        }
    }

    /// An arbitrary population of `n` subjects, `registered` of which
    /// enrol; genders alternate.
    ///
    /// # Panics
    ///
    /// Panics if `registered > n` or `n == 0`.
    pub fn generate(n: usize, registered: usize, seed: u64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(registered <= n, "cannot register more subjects than exist");
        let profiles = (1..=n as u32)
            .map(|id| UserProfile {
                id,
                gender: if id % 2 == 0 {
                    Gender::Female
                } else {
                    Gender::Male
                },
                age: AgeRange::Twenties,
                occupation: Occupation::Graduate,
                body_seed: seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(id as u64),
            })
            .collect();
        Population {
            profiles,
            registered_count: registered,
        }
    }

    /// Number of subjects.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Returns `true` when there are no subjects (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// All subjects.
    pub fn profiles(&self) -> &[UserProfile] {
        &self.profiles
    }

    /// Subjects that register with the system (legitimate users).
    pub fn registered(&self) -> impl Iterator<Item = &UserProfile> {
        self.profiles.iter().take(self.registered_count)
    }

    /// Subjects acting as spoofers (never enrolled).
    pub fn spoofers(&self) -> impl Iterator<Item = &UserProfile> {
        self.profiles.iter().skip(self.registered_count)
    }

    /// Renders the demographics as Table I rows: `(user-id range, gender,
    /// age, occupation)`.
    pub fn demographics_rows(&self) -> Vec<(String, String, String, String)> {
        let mut rows: Vec<(String, String, String, String)> = Vec::new();
        let mut run_start = 0usize;
        for i in 0..=self.profiles.len() {
            let close_run = i == self.profiles.len() || {
                let a = &self.profiles[run_start];
                let b = &self.profiles[i];
                (b.gender, b.age, b.occupation) != (a.gender, a.age, a.occupation)
            };
            if close_run {
                let a = &self.profiles[run_start];
                let id_label = if i - run_start == 1 {
                    format!("{}", a.id)
                } else {
                    format!("{}-{}", a.id, self.profiles[i - 1].id)
                };
                rows.push((
                    id_label,
                    format!("{:?}", a.gender),
                    a.age.label().to_string(),
                    a.occupation.label().to_string(),
                ));
                run_start = i;
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_paper_demographics() {
        let pop = Population::paper_table1(1);
        assert_eq!(pop.len(), 20);
        let p = pop.profiles();
        assert_eq!(p[0].gender, Gender::Male);
        assert_eq!(p[5].gender, Gender::Female);
        assert_eq!(p[5].age, AgeRange::Teens);
        assert_eq!(p[14].occupation, Occupation::Graduate);
        assert_eq!(p[19].occupation, Occupation::FacultyStaffEngineer);
        assert_eq!(p[19].age, AgeRange::Thirties);
    }

    #[test]
    fn twelve_registered_eight_spoofers() {
        let pop = Population::paper_table1(2);
        assert_eq!(pop.registered().count(), 12);
        assert_eq!(pop.spoofers().count(), 8);
        // Disjoint.
        let reg_ids: Vec<u32> = pop.registered().map(|p| p.id).collect();
        for s in pop.spoofers() {
            assert!(!reg_ids.contains(&s.id));
        }
    }

    #[test]
    fn body_seeds_are_unique() {
        let pop = Population::paper_table1(3);
        let mut seeds: Vec<u64> = pop.profiles().iter().map(|p| p.body_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 20);
    }

    #[test]
    fn different_population_seeds_give_different_bodies() {
        let a = Population::paper_table1(1);
        let b = Population::paper_table1(2);
        assert_ne!(a.profiles()[0].body_seed, b.profiles()[0].body_seed);
    }

    #[test]
    fn demographics_rows_match_table1_layout() {
        let pop = Population::paper_table1(4);
        let rows = pop.demographics_rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, "1-5");
        assert_eq!(rows[1].0, "6");
        assert_eq!(rows[2].0, "7-15");
        assert_eq!(rows[3].0, "16-19");
        assert_eq!(rows[4].0, "20");
        assert_eq!(rows[4].3, "Faculty, Staff and Engineer");
    }

    #[test]
    fn generate_respects_counts() {
        let pop = Population::generate(8, 5, 7);
        assert_eq!(pop.len(), 8);
        assert_eq!(pop.registered().count(), 5);
        assert_eq!(pop.spoofers().count(), 3);
    }

    #[test]
    #[should_panic(expected = "register")]
    fn generate_rejects_too_many_registered() {
        let _ = Population::generate(4, 5, 0);
    }

    #[test]
    fn profile_body_is_reproducible() {
        let pop = Population::paper_table1(5);
        let p = &pop.profiles()[0];
        assert_eq!(p.body(), p.body());
    }
}
