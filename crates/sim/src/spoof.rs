//! Seeded adversarial attack simulation.
//!
//! The paper's security claim is that a live body's 3-D acoustic image
//! cannot be forged by a loudspeaker. This module renders the two
//! attack families that claim must survive, as a deterministic,
//! scene-level counterpart to the channel-level [`FaultPlan`]:
//!
//! * **Replay** ([`ReplaySpoof`]) — an attacker who previously recorded
//!   the victim's echo train plays it back from a single loudspeaker at
//!   a configurable position and gain, optionally through a band-limited
//!   playback chain. Every microphone then receives the *same* waveform
//!   up to a per-element delay and gain — the collapsed spatial
//!   structure multi-channel replay detection exploits (Neri &
//!   Virtanen), and what the core pipeline's spatial-coherence check
//!   measures.
//! * **Twin impostor** ([`TwinSpoof`]) — an accomplice whose gross body
//!   geometry is sampled within a configurable radius of the target
//!   user's enrollment parameters, but whose surface micro-texture is
//!   their own. Radius 0 is a geometric doppelgänger; large radii decay
//!   to an ordinary impostor.
//!
//! A [`SpoofPlan`] names one attack plus a seed, renders whole probe
//! trains through a [`Scene`] (sharing the scene's room model with
//! clean captures), and is bit-deterministic in `(plan, scene,
//! indices)` like everything else in this crate.
//!
//! [`FaultPlan`]: crate::fault::FaultPlan

use crate::body::{BodyModel, BodyParameters, Gender, Placement};
use crate::recording::BeepCapture;
use crate::scene::Scene;
use echo_array::Vec3;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The attack families, without parameters — used to enumerate sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SpoofKind {
    /// Loudspeaker re-emission of a recorded echo train.
    Replay,
    /// A body sampled near the target user's enrollment geometry.
    Twin,
}

impl SpoofKind {
    /// Every attack family, in sweep order.
    pub const ALL: [SpoofKind; 2] = [SpoofKind::Replay, SpoofKind::Twin];

    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            SpoofKind::Replay => "replay",
            SpoofKind::Twin => "twin",
        }
    }
}

/// A loudspeaker replay attack: the parameters of the playback rig.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplaySpoof {
    /// The recorded waveforms the attacker plays, one per beep of the
    /// probe train (cycled when the train is longer than the
    /// recording). Each is one full capture window as recorded by the
    /// reference microphone.
    pub recordings: Vec<Vec<f64>>,
    /// Loudspeaker position in array coordinates.
    pub source: Vec3,
    /// Playback gain (1.0 re-emits at recorded level per metre).
    pub gain: f64,
    /// Playback-chain coloration: −3 dB cutoff of a one-pole low-pass
    /// in Hz. `None` plays back flat (an ideal rig). Consumer
    /// loudspeakers roll off the 2–3 kHz probe band's upper edge.
    pub coloration_cutoff: Option<f64>,
    /// Standard deviation of the attacker's per-beep trigger timing
    /// error, seconds. The attacker must fire playback when the device
    /// probes; even a good rig jitters by a fraction of a millisecond.
    pub trigger_jitter: f64,
    /// Seed for the trigger jitter stream.
    pub seed: u64,
}

impl ReplaySpoof {
    /// Builds a replay rig from a previously captured probe train,
    /// recording through microphone `ref_mic`. The loudspeaker sits at
    /// `source` (array coordinates) and plays at `gain`.
    ///
    /// # Panics
    ///
    /// Panics if `recorded` is empty or `ref_mic` is out of range.
    pub fn from_recording(
        recorded: &[BeepCapture],
        ref_mic: usize,
        source: Vec3,
        gain: f64,
    ) -> Self {
        assert!(
            !recorded.is_empty(),
            "replay needs at least one recorded beep"
        );
        ReplaySpoof {
            recordings: recorded
                .iter()
                .map(|cap| cap.channel(ref_mic).to_vec())
                .collect(),
            source,
            gain,
            coloration_cutoff: None,
            trigger_jitter: 0.0,
            seed: 0,
        }
    }

    /// Adds playback-chain coloration (one-pole low-pass at `hz`).
    pub fn with_coloration(mut self, hz: f64) -> Self {
        self.coloration_cutoff = Some(hz);
        self
    }

    /// Adds seeded per-beep trigger jitter with standard deviation
    /// `seconds`.
    pub fn with_trigger_jitter(mut self, seconds: f64, seed: u64) -> Self {
        self.trigger_jitter = seconds;
        self.seed = seed;
        self
    }

    /// The waveform played for probe beep `beep`: the recorded capture
    /// for that position in the train (cycled), through the coloration
    /// filter.
    pub fn playback_waveform(&self, fs: f64, beep: u64) -> Vec<f64> {
        let wave = &self.recordings[(beep as usize) % self.recordings.len()];
        match self.coloration_cutoff {
            None => wave.clone(),
            Some(hz) => {
                // One-pole low-pass: y[n] = (1−a)·x[n] + a·y[n−1],
                // a = exp(−2π·fc/fs).
                let a = (-std::f64::consts::TAU * hz / fs).exp();
                let mut y = 0.0;
                wave.iter()
                    .map(|&x| {
                        y = (1.0 - a) * x + a * y;
                        y
                    })
                    .collect()
            }
        }
    }

    /// The playback start offset for beep `beep`, in samples: zero-mean
    /// seeded trigger error.
    pub fn trigger_samples(&self, fs: f64, beep: u64) -> f64 {
        if self.trigger_jitter == 0.0 {
            return 0.0;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed ^ 0x7121_66E2_0000_0000 ^ beep.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        self.trigger_jitter * crate::body::randn(&mut rng) * fs
    }
}

/// A twin-like impostor: gross body geometry sampled within `radius`
/// of a target user's enrollment parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwinSpoof {
    /// The target user's body seed (their enrollment identity).
    pub target_seed: u64,
    /// The target's gender when the attacker knows it; `None` derives
    /// it from the seed the same way [`BodyModel::from_seed`] does.
    pub target_gender: Option<Gender>,
    /// Similarity radius in `[0, 1]`: each body parameter is perturbed
    /// by `radius` times its population standard deviation. 0 keeps the
    /// target's exact geometry (micro-texture still differs); 1 is an
    /// ordinary same-gender impostor.
    pub radius: f64,
    /// Seed for the perturbation draw and the twin's own micro-texture.
    pub seed: u64,
}

impl TwinSpoof {
    /// A twin of the user enrolled from `target_seed`, at `radius`.
    pub fn of(target_seed: u64, radius: f64, seed: u64) -> Self {
        TwinSpoof {
            target_seed,
            target_gender: None,
            radius,
            seed,
        }
    }

    /// The target's own body model (what the system enrolled).
    pub fn target_body(&self) -> BodyModel {
        match self.target_gender {
            Some(g) => BodyModel::from_seed_gendered(self.target_seed, g),
            None => BodyModel::from_seed(self.target_seed),
        }
    }

    /// The twin's body: the target's parameters perturbed by `radius`
    /// population standard deviations per parameter (clamped to
    /// plausible-adult ranges), with the twin's *own* surface
    /// micro-texture — an accomplice can match stature, not skin.
    pub fn body(&self) -> BodyModel {
        let target = self.target_body().params();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x7311_0000_5EED_0002);
        let r = self.radius.max(0.0);
        // Per-parameter population scales, matching
        // `BodyParameters::sample`.
        let params = BodyParameters {
            height: (target.height + r * 0.06 * crate::body::randn(&mut rng)).clamp(1.45, 2.00),
            shoulder_width: (target.shoulder_width + r * 0.03 * crate::body::randn(&mut rng))
                .clamp(0.32, 0.56),
            torso_depth: (target.torso_depth + r * 0.02 * crate::body::randn(&mut rng))
                .clamp(0.05, 0.16),
            head_radius: (target.head_radius + r * 0.007 * crate::body::randn(&mut rng))
                .clamp(0.075, 0.115),
            total_reflectivity: (target.total_reflectivity
                + r * 0.15 * crate::body::randn(&mut rng))
            .clamp(0.5, 1.6),
        };
        // The texture seed must differ from the target's for every
        // (target_seed, seed) pair, including seed == target_seed.
        let texture_seed = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.target_seed.rotate_left(17))
            ^ 0x7311_7EE7;
        BodyModel::from_parameters(params, texture_seed)
    }
}

/// One attack scenario: the family plus its parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SpoofAttack {
    /// Loudspeaker replay.
    Replay {
        /// The playback rig.
        rig: ReplaySpoof,
    },
    /// Twin impostor standing where the victim would.
    Twin {
        /// The accomplice.
        twin: TwinSpoof,
    },
}

/// A deterministic attack on one authentication attempt, mirroring
/// [`FaultPlan`](crate::fault::FaultPlan): the attack plus a base seed,
/// rendering whole probe trains through a [`Scene`].
///
/// # Example
///
/// ```
/// use echo_sim::body::{BodyModel, Placement};
/// use echo_sim::scene::{Scene, SceneConfig};
/// use echo_sim::spoof::SpoofPlan;
///
/// let scene = Scene::new(SceneConfig::laboratory_quiet(3));
/// let victim = BodyModel::from_seed(11);
/// let placement = Placement::standing_front(0.7);
/// // The attacker records the victim, then replays from 0.7 m.
/// let recorded = scene.capture_train(&victim, &placement, 0, 2, 0);
/// let plan = SpoofPlan::replay_of(&recorded, 0.7, 42);
/// let attack = plan.capture_train(&scene, &placement, 5, 2, 0);
/// assert_eq!(attack.len(), 2);
/// assert_eq!(attack[0].num_channels(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpoofPlan {
    /// The attack to mount.
    pub attack: SpoofAttack,
    /// Base seed (session-level randomness of the attack rig).
    pub seed: u64,
}

impl SpoofPlan {
    /// A replay attack re-emitting `recorded` (reference microphone 0)
    /// from a loudspeaker placed where the victim stood, `distance`
    /// metres straight ahead at chest height, with gain calibrated so
    /// the replayed echo arrives near recorded level. Includes a
    /// realistic rig: 3.4 kHz playback roll-off and 0.2 ms trigger
    /// jitter.
    pub fn replay_of(recorded: &[BeepCapture], distance: f64, seed: u64) -> Self {
        let source = Vec3::new(0.0, distance, 0.0);
        let replay = ReplaySpoof::from_recording(recorded, 0, source, distance)
            .with_coloration(3_400.0)
            .with_trigger_jitter(0.000_2, seed);
        SpoofPlan {
            attack: SpoofAttack::Replay { rig: replay },
            seed,
        }
    }

    /// A twin-impostor attack against the user enrolled from
    /// `target_seed`, at similarity `radius`.
    pub fn twin_of(target_seed: u64, radius: f64, seed: u64) -> Self {
        SpoofPlan {
            attack: SpoofAttack::Twin {
                twin: TwinSpoof::of(target_seed, radius, seed),
            },
            seed,
        }
    }

    /// The attack family.
    pub fn kind(&self) -> SpoofKind {
        match &self.attack {
            SpoofAttack::Replay { .. } => SpoofKind::Replay,
            SpoofAttack::Twin { .. } => SpoofKind::Twin,
        }
    }

    /// Renders the attacker's probe train: `count` beeps starting at
    /// `first_beep` in `session`, through `scene`. For a replay the
    /// loudspeaker plays into an otherwise victim-free scene; for a
    /// twin the impostor stands at `placement`.
    pub fn capture_train(
        &self,
        scene: &Scene,
        placement: &Placement,
        session: u32,
        count: usize,
        first_beep: u64,
    ) -> Vec<BeepCapture> {
        self.capture_train_traced(
            echo_obs::TraceCtx::none(),
            scene,
            placement,
            session,
            count,
            first_beep,
        )
    }

    /// [`SpoofPlan::capture_train`] recording a `sim.spoof` trace span
    /// (tagged with the attack kind) plus one `sim.beep` child per
    /// rendered beep under `ctx`.
    pub fn capture_train_traced(
        &self,
        ctx: echo_obs::TraceCtx,
        scene: &Scene,
        placement: &Placement,
        session: u32,
        count: usize,
        first_beep: u64,
    ) -> Vec<BeepCapture> {
        echo_obs::counter!("sim.spoof_trains").inc();
        let mut tspan = ctx.child("sim.spoof");
        tspan.attr_str("kind", self.kind().label());
        tspan.attr_u64("beeps", count as u64);
        match &self.attack {
            SpoofAttack::Replay { rig: replay } => (0..count)
                .map(|l| {
                    let _bspan = tspan.ctx().child_at("sim.beep", l as u64);
                    scene.capture_replay(replay, session, first_beep + l as u64)
                })
                .collect(),
            SpoofAttack::Twin { twin } => {
                let body = twin.body();
                scene.capture_train_traced(
                    tspan.ctx(),
                    &body,
                    placement,
                    session,
                    count,
                    first_beep,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneConfig;

    fn scene() -> Scene {
        Scene::new(SceneConfig::laboratory_quiet(5))
    }

    fn record_victim(scene: &Scene, seed: u64, beeps: usize) -> Vec<BeepCapture> {
        let victim = BodyModel::from_seed(seed);
        scene.capture_train(&victim, &Placement::standing_front(0.7), 0, beeps, 0)
    }

    #[test]
    fn replay_is_deterministic_and_kind_labelled() {
        let s = scene();
        let recorded = record_victim(&s, 11, 2);
        let plan = SpoofPlan::replay_of(&recorded, 0.7, 9);
        assert_eq!(plan.kind(), SpoofKind::Replay);
        assert_eq!(plan.kind().label(), "replay");
        let p = Placement::standing_front(0.7);
        let a = plan.capture_train(&s, &p, 5, 2, 0);
        let b = plan.capture_train(&s, &p, 5, 2, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn replay_differs_from_genuine_and_from_empty() {
        let s = scene();
        let recorded = record_victim(&s, 12, 1);
        let plan = SpoofPlan::replay_of(&recorded, 0.7, 1);
        let p = Placement::standing_front(0.7);
        let attack = &plan.capture_train(&s, &p, 5, 1, 0)[0];
        let genuine = s.capture_beep(&BodyModel::from_seed(12), &p, 5, 0);
        let empty = s.capture_empty(5, 0);
        assert_ne!(attack, &genuine, "replay is not the live body");
        assert_ne!(attack, &empty, "the loudspeaker leaves a trace");
        // The replayed energy is comparable to a genuine echo: within
        // an order of magnitude in the post-direct-path echo region.
        let echo_energy = |c: &BeepCapture| {
            let start = c.preroll() + 150;
            c.channel(0)[start..start + 800]
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
        };
        let (ea, eg) = (echo_energy(attack), echo_energy(&genuine));
        assert!(
            ea > eg / 10.0 && ea < eg * 10.0,
            "attack {ea} vs genuine {eg}"
        );
    }

    #[test]
    fn replay_collapses_the_spatial_structure() {
        // The discriminating signature: across microphones, the echo
        // window of a replay is (delay/gain aside) the same waveform,
        // while a genuine body's is a per-mic sum over a scatterer
        // cloud. Peak normalized cross-correlation between channels is
        // therefore higher under replay.
        let s = scene();
        let recorded = record_victim(&s, 13, 1);
        let plan = SpoofPlan::replay_of(&recorded, 0.7, 2);
        let p = Placement::standing_front(0.7);
        let attack = &plan.capture_train(&s, &p, 5, 1, 0)[0];
        let genuine = s.capture_beep(&BodyModel::from_seed(13), &p, 5, 0);

        let xcorr_peak = |cap: &BeepCapture| {
            // Echo window past the direct path; compare mic 0 vs mic 3
            // (opposite side of the circle).
            let start = cap.preroll() + 160;
            let len = 400;
            let a = &cap.channel(0)[start..start + len];
            let b = &cap.channel(3)[start..start + len];
            let norm = |x: &[f64]| x.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
            let (na, nb) = (norm(a), norm(b));
            let mut best = 0.0f64;
            for lag in -8i64..=8 {
                let mut dot = 0.0;
                for (i, &ai) in a.iter().enumerate() {
                    let j = i as i64 + lag;
                    if j >= 0 && (j as usize) < len {
                        dot += ai * b[j as usize];
                    }
                }
                best = best.max(dot / (na * nb));
            }
            best
        };
        let replay_coh = xcorr_peak(attack);
        let genuine_coh = xcorr_peak(&genuine);
        assert!(
            replay_coh > genuine_coh,
            "replay {replay_coh} must exceed genuine {genuine_coh}"
        );
    }

    #[test]
    fn coloration_attenuates_the_band_edge() {
        let s = scene();
        let recorded = record_victim(&s, 14, 1);
        let flat = ReplaySpoof::from_recording(&recorded, 0, Vec3::new(0.0, 0.7, 0.0), 0.7);
        let soft = flat.clone().with_coloration(1_000.0);
        let fs = s.config().sample_rate();
        let energy = |w: &[f64]| w.iter().map(|v| v * v).sum::<f64>();
        let e_flat = energy(&flat.playback_waveform(fs, 0));
        let e_soft = energy(&soft.playback_waveform(fs, 0));
        assert!(
            e_soft < e_flat * 0.5,
            "1 kHz low-pass must gut a 2–3 kHz probe: {e_soft} vs {e_flat}"
        );
    }

    #[test]
    fn trigger_jitter_is_seeded_and_per_beep() {
        let s = scene();
        let recorded = record_victim(&s, 15, 1);
        let rig = ReplaySpoof::from_recording(&recorded, 0, Vec3::new(0.0, 0.7, 0.0), 0.7)
            .with_trigger_jitter(0.001, 7);
        let fs = 48_000.0;
        assert_eq!(rig.trigger_samples(fs, 0), rig.trigger_samples(fs, 0));
        assert_ne!(rig.trigger_samples(fs, 0), rig.trigger_samples(fs, 1));
        let no_jitter = ReplaySpoof::from_recording(&recorded, 0, Vec3::new(0.0, 0.7, 0.0), 0.7);
        assert_eq!(no_jitter.trigger_samples(fs, 0), 0.0);
    }

    #[test]
    fn twin_tracks_the_target_geometry_with_radius() {
        let target = BodyModel::from_seed(21).params();
        let near = TwinSpoof::of(21, 0.05, 3).body().params();
        let far = TwinSpoof::of(21, 1.0, 3).body().params();
        let dist = |a: &BodyParameters, b: &BodyParameters| {
            ((a.height - b.height) / 0.06).abs()
                + ((a.shoulder_width - b.shoulder_width) / 0.03).abs()
                + ((a.torso_depth - b.torso_depth) / 0.02).abs()
                + ((a.head_radius - b.head_radius) / 0.007).abs()
        };
        assert!(
            dist(&near, &target) < dist(&far, &target),
            "radius must scale the geometric gap: near {} vs far {}",
            dist(&near, &target),
            dist(&far, &target)
        );
        assert!(
            dist(&near, &target) < 0.5,
            "a tight twin is nearly the target"
        );
    }

    #[test]
    fn twin_texture_differs_even_at_radius_zero() {
        let twin = TwinSpoof::of(22, 0.0, 22).body();
        let target = BodyModel::from_seed(22);
        // Same gross geometry…
        let (t, g) = (twin.params(), target.params());
        assert!((t.height - g.height).abs() < 1e-12);
        // …but a different person: the scatterer clouds differ.
        let p = Placement::standing_front(0.7);
        assert_ne!(twin.scatterers(&p, 0, 0), target.scatterers(&p, 0, 0));
    }

    #[test]
    fn twin_plan_renders_through_the_scene() {
        let s = scene();
        let plan = SpoofPlan::twin_of(23, 0.1, 4);
        assert_eq!(plan.kind(), SpoofKind::Twin);
        assert_eq!(plan.kind().label(), "twin");
        let p = Placement::standing_front(0.7);
        let caps = plan.capture_train(&s, &p, 0, 2, 0);
        assert_eq!(caps.len(), 2);
        assert_ne!(caps[0], caps[1], "beeps must sway independently");
        // The twin is not the target: captures differ from the
        // target's own.
        let target_caps = record_victim(&s, 23, 2);
        assert_ne!(caps[0], target_caps[0]);
    }

    #[test]
    fn room_model_is_shared_by_clean_and_attack_captures() {
        let mut cfg = SceneConfig::laboratory_quiet(5);
        cfg.room = Some(crate::room::RoomModel::small_room());
        let roomy = Scene::new(cfg);
        let free = scene();
        let p = Placement::standing_front(0.7);
        let victim = BodyModel::from_seed(31);

        // The room enriches the clean capture…
        let clean_roomy = roomy.capture_beep(&victim, &p, 0, 0);
        let clean_free = free.capture_beep(&victim, &p, 0, 0);
        assert_ne!(clean_roomy, clean_free, "wall images must add echoes");

        // …and the attack capture, through the same image set.
        let recorded = roomy.capture_train(&victim, &p, 0, 1, 0);
        let plan = SpoofPlan::replay_of(&recorded, 0.7, 6);
        let attack_roomy = &plan.capture_train(&roomy, &p, 5, 1, 0)[0];
        let attack_free = &plan.capture_train(&free, &p, 5, 1, 0)[0];
        assert_ne!(attack_roomy, attack_free);
    }

    #[test]
    #[should_panic(expected = "at least one recorded beep")]
    fn empty_recording_panics() {
        let _ = ReplaySpoof::from_recording(&[], 0, Vec3::new(0.0, 0.7, 0.0), 1.0);
    }
}
