//! Environment presets: static reflectors around the array.
//!
//! The paper evaluates in a laboratory room, a conference hall and an
//! outdoor place (§VI-A-1). Each preset populates the scene with static
//! clutter — walls, furniture, ground — whose echoes are the multipath
//! the beamforming/time-gating pipeline must reject.
//!
//! [`RoomModel`] adds a shoebox image-source model on top of the point
//! clutter: specular wall reflections up to a configurable order, the
//! multipath enrichment the multi-channel replay-detection literature
//! uses to make sure a detector separates *attacks* from rooms rather
//! than rooms from anechoic captures. The same model is applied to
//! clean and attack captures of a scene, so multipath alone never
//! distinguishes them.

use crate::body::Scatterer;
use echo_array::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The three experiment environments of the paper (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EnvironmentKind {
    /// A laboratory room: near walls, dense furniture clutter.
    Laboratory,
    /// A conference hall: distant walls, sparse clutter, long echoes.
    ConferenceHall,
    /// Outdoors: no walls, ground reflection only.
    Outdoor,
}

impl EnvironmentKind {
    /// All environments, in the paper's presentation order.
    pub fn all() -> [EnvironmentKind; 3] {
        [
            EnvironmentKind::Laboratory,
            EnvironmentKind::ConferenceHall,
            EnvironmentKind::Outdoor,
        ]
    }

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EnvironmentKind::Laboratory => "laboratory",
            EnvironmentKind::ConferenceHall => "conference hall",
            EnvironmentKind::Outdoor => "outdoor",
        }
    }
}

/// A concrete environment: a set of static reflectors in array
/// coordinates.
///
/// # Example
///
/// ```
/// use echo_sim::room::{Environment, EnvironmentKind};
///
/// let lab = Environment::generate(EnvironmentKind::Laboratory, 1);
/// assert!(!lab.reflectors().is_empty());
/// // The space directly in front of the array is kept clear for the user.
/// for r in lab.reflectors() {
///     let p = r.position;
///     assert!(!(p.x.abs() < 0.5 && p.y > 0.2 && p.y < 1.8 && p.z.abs() < 0.8));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Environment {
    kind: EnvironmentKind,
    reflectors: Vec<Scatterer>,
}

impl Environment {
    /// Generates the reflector layout for `kind`, deterministically in
    /// `seed`.
    ///
    /// The user's standing corridor (|x| < 0.5 m, 0.2 m < y < 1.8 m,
    /// |z| < 0.8 m) is kept free of clutter so the scene stays physically
    /// consistent with a person standing in front of the device.
    pub fn generate(kind: EnvironmentKind, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x2007_0000_0000);
        let mut reflectors = Vec::new();

        let add_wall = |rng: &mut ChaCha8Rng,
                        reflectors: &mut Vec<Scatterer>,
                        center: Vec3,
                        span_x: f64,
                        span_z: f64,
                        refl_total: f64| {
            let points = 24;
            for _ in 0..points {
                let dx = rng.gen_range(-span_x / 2.0..span_x / 2.0);
                let dz = rng.gen_range(-span_z / 2.0..span_z / 2.0);
                reflectors.push(Scatterer {
                    position: Vec3::new(center.x + dx, center.y, center.z + dz),
                    reflectivity: refl_total / points as f64 * rng.gen_range(0.5..1.5),
                });
            }
        };

        let add_clutter = |rng: &mut ChaCha8Rng,
                           reflectors: &mut Vec<Scatterer>,
                           count: usize,
                           y_range: (f64, f64)| {
            let mut placed = 0;
            while placed < count {
                let x: f64 = rng.gen_range(-3.0..3.0);
                let y = rng.gen_range(y_range.0..y_range.1);
                let z: f64 = rng.gen_range(-0.9..0.9);
                // Keep the user's corridor clear.
                if x.abs() < 0.5 && y > 0.2 && y < 1.8 && z.abs() < 0.8 {
                    continue;
                }
                reflectors.push(Scatterer {
                    position: Vec3::new(x, y, z),
                    reflectivity: rng.gen_range(0.005..0.04),
                });
                placed += 1;
            }
        };

        match kind {
            EnvironmentKind::Laboratory => {
                // Near walls: behind the user (~3 m), side walls (~2 m),
                // behind the device (~1 m).
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, 3.0, 0.0),
                    4.0,
                    2.0,
                    0.5,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(-2.0, 1.5, 0.0),
                    0.1,
                    2.0,
                    0.3,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(2.0, 1.5, 0.0),
                    0.1,
                    2.0,
                    0.3,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, -1.0, 0.0),
                    4.0,
                    2.0,
                    0.3,
                );
                add_clutter(&mut rng, &mut reflectors, 10, (0.8, 2.8));
            }
            EnvironmentKind::ConferenceHall => {
                // Distant walls, high ceiling, sparse furniture.
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, 8.0, 0.0),
                    12.0,
                    4.0,
                    0.6,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(-6.0, 3.0, 0.0),
                    0.1,
                    4.0,
                    0.4,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(6.0, 3.0, 0.0),
                    0.1,
                    4.0,
                    0.4,
                );
                add_clutter(&mut rng, &mut reflectors, 5, (2.0, 6.0));
            }
            EnvironmentKind::Outdoor => {
                // Only the ground plane scatters back (array on a table).
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, 1.0, -0.9),
                    3.0,
                    0.05,
                    0.15,
                );
            }
        }

        Environment { kind, reflectors }
    }

    /// The environment kind.
    pub fn kind(&self) -> EnvironmentKind {
        self.kind
    }

    /// The static reflectors.
    pub fn reflectors(&self) -> &[Scatterer] {
        &self.reflectors
    }
}

/// A shoebox room rendered with the image-source method: every sound
/// path additionally reaches each microphone via specular wall
/// reflections, modelled by mirroring the *receiver* across the six
/// walls (and their images) up to `max_order` total bounces.
///
/// Coordinates: the room spans `[0, size]` on each axis and the array
/// origin sits at `array_pos` inside it, so scene geometry stays in
/// array coordinates.
///
/// # Example
///
/// ```
/// use echo_sim::room::RoomModel;
/// use echo_array::Vec3;
///
/// let room = RoomModel::small_room();
/// // First order: one image per wall.
/// assert_eq!(room.images(Vec3::new(0.0, 0.0, 0.0)).len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RoomModel {
    /// Interior dimensions (Lx, Ly, Lz), metres.
    pub size: Vec3,
    /// Array origin in room coordinates; must lie inside the room.
    pub array_pos: Vec3,
    /// Maximum total reflection order (bounces summed over all axes).
    /// 0 disables the model; 1 adds the six first-order wall images.
    pub max_order: usize,
    /// Energy absorption coefficient of the walls, in `[0, 1]`. The
    /// pressure reflection coefficient per bounce is `√(1 − α)`.
    pub absorption: f64,
}

impl RoomModel {
    /// A typical small office/living room: 4 × 5 × 2.6 m, the device on
    /// a table near one wall, first-order reflections, moderately
    /// absorbent walls (α = 0.6, furniture + drywall).
    pub fn small_room() -> Self {
        RoomModel {
            size: Vec3::new(4.0, 5.0, 2.6),
            array_pos: Vec3::new(2.0, 1.0, 0.9),
            max_order: 1,
            absorption: 0.6,
        }
    }

    /// A harder, more reverberant variant: bare walls (α = 0.3) and
    /// second-order reflections (24 images per receiver).
    pub fn reverberant_room() -> Self {
        RoomModel {
            absorption: 0.3,
            max_order: 2,
            ..Self::small_room()
        }
    }

    /// Pressure reflection coefficient per wall bounce.
    pub fn reflection_coeff(&self) -> f64 {
        (1.0 - self.absorption.clamp(0.0, 1.0)).sqrt()
    }

    /// Image positions of a receiver at `p` (array coordinates), with
    /// their accumulated reflection coefficients. The identity (zero
    /// bounces) is *not* included. Order of the returned images is
    /// deterministic (lexicographic in the per-axis image indices).
    ///
    /// Per axis, the image index `q` places the mirrored coordinate at
    /// `q·L + x` for even `q` and `q·L + (L − x)` for odd `q`, with
    /// `|q|` wall bounces on that axis — the classic shoebox
    /// image-source enumeration.
    pub fn images(&self, p: Vec3) -> Vec<(Vec3, f64)> {
        let r = self.reflection_coeff();
        let n = self.max_order as i64;
        // Receiver in room coordinates.
        let rx = p.x + self.array_pos.x;
        let ry = p.y + self.array_pos.y;
        let rz = p.z + self.array_pos.z;
        let axis = |q: i64, len: f64, x: f64| -> f64 {
            let base = if q.rem_euclid(2) == 0 { x } else { len - x };
            q as f64 * len + base
        };
        let mut images = Vec::new();
        for qx in -n..=n {
            for qy in -n..=n {
                for qz in -n..=n {
                    let order = qx.abs() + qy.abs() + qz.abs();
                    if order == 0 || order > n {
                        continue;
                    }
                    let img_room = Vec3::new(
                        axis(qx, self.size.x, rx),
                        axis(qy, self.size.y, ry),
                        axis(qz, self.size.z, rz),
                    );
                    images.push((
                        Vec3::new(
                            img_room.x - self.array_pos.x,
                            img_room.y - self.array_pos.y,
                            img_room.z - self.array_pos.z,
                        ),
                        r.powi(order as i32),
                    ));
                }
            }
        }
        images
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Environment::generate(EnvironmentKind::Laboratory, 9);
        let b = Environment::generate(EnvironmentKind::Laboratory, 9);
        assert_eq!(a, b);
        let c = Environment::generate(EnvironmentKind::Laboratory, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn laboratory_is_most_cluttered() {
        let lab = Environment::generate(EnvironmentKind::Laboratory, 1);
        let hall = Environment::generate(EnvironmentKind::ConferenceHall, 1);
        let out = Environment::generate(EnvironmentKind::Outdoor, 1);
        assert!(lab.reflectors().len() > hall.reflectors().len());
        assert!(hall.reflectors().len() > out.reflectors().len());
    }

    #[test]
    fn user_corridor_stays_clear() {
        for kind in EnvironmentKind::all() {
            for seed in 0..5 {
                let env = Environment::generate(kind, seed);
                for r in env.reflectors() {
                    let p = r.position;
                    let in_corridor = p.x.abs() < 0.5 && p.y > 0.2 && p.y < 1.8 && p.z.abs() < 0.8;
                    assert!(!in_corridor, "{kind:?} seed {seed}: reflector at {p:?}");
                }
            }
        }
    }

    #[test]
    fn outdoor_reflectors_are_ground_level() {
        let out = Environment::generate(EnvironmentKind::Outdoor, 3);
        for r in out.reflectors() {
            assert!(
                r.position.z < -0.8,
                "outdoor reflector not on ground: {:?}",
                r.position
            );
        }
    }

    #[test]
    fn hall_walls_are_distant() {
        let hall = Environment::generate(EnvironmentKind::ConferenceHall, 4);
        let min_dist = hall
            .reflectors()
            .iter()
            .map(|r| r.position.norm())
            .fold(f64::INFINITY, f64::min);
        assert!(min_dist > 1.9, "nearest hall reflector at {min_dist} m");
    }

    #[test]
    fn reflectivities_are_positive() {
        for kind in EnvironmentKind::all() {
            let env = Environment::generate(kind, 0);
            assert!(env.reflectors().iter().all(|r| r.reflectivity > 0.0));
        }
    }

    #[test]
    fn first_order_room_has_six_wall_images() {
        let room = RoomModel::small_room();
        let images = room.images(Vec3::new(0.05, 0.0, 0.0));
        assert_eq!(images.len(), 6);
        let r = room.reflection_coeff();
        for (_, coeff) in &images {
            assert!((coeff - r).abs() < 1e-12, "first order bounces once");
        }
    }

    #[test]
    fn second_order_room_has_twenty_four_images() {
        let room = RoomModel::reverberant_room();
        assert_eq!(room.images(Vec3::new(0.0, 0.0, 0.0)).len(), 24);
    }

    #[test]
    fn images_lie_outside_the_room_and_mirror_the_receiver() {
        let room = RoomModel::small_room();
        let p = Vec3::new(0.1, 0.2, -0.1);
        for (img, _) in room.images(p) {
            let in_x = img.x + room.array_pos.x;
            let in_y = img.y + room.array_pos.y;
            let in_z = img.z + room.array_pos.z;
            let inside = (0.0..=room.size.x).contains(&in_x)
                && (0.0..=room.size.y).contains(&in_y)
                && (0.0..=room.size.z).contains(&in_z);
            assert!(!inside, "image at {img:?} must lie outside the room");
        }
        // The floor image (z-axis, q = -1) mirrors across z = 0: room
        // height of the receiver is array_pos.z + p.z = 0.8, so the
        // image sits at room height -0.8 → array z = -1.7.
        let floor = room
            .images(p)
            .into_iter()
            .map(|(v, _)| v)
            .find(|v| (v.x - p.x).abs() < 1e-12 && (v.y - p.y).abs() < 1e-12 && v.z < p.z)
            .expect("floor image exists");
        assert!(
            (floor.z - (-1.7)).abs() < 1e-12,
            "floor image z {}",
            floor.z
        );
    }

    #[test]
    fn absorption_scales_image_coefficients() {
        let soft = RoomModel {
            absorption: 0.9,
            ..RoomModel::small_room()
        };
        let hard = RoomModel {
            absorption: 0.1,
            ..RoomModel::small_room()
        };
        let p = Vec3::new(0.0, 0.0, 0.0);
        let c_soft = soft.images(p)[0].1;
        let c_hard = hard.images(p)[0].1;
        assert!(c_hard > 2.0 * c_soft, "{c_hard} vs {c_soft}");
    }

    #[test]
    fn zero_order_room_has_no_images() {
        let room = RoomModel {
            max_order: 0,
            ..RoomModel::small_room()
        };
        assert!(room.images(Vec3::new(0.0, 0.0, 0.0)).is_empty());
    }
}
