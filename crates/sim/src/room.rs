//! Environment presets: static reflectors around the array.
//!
//! The paper evaluates in a laboratory room, a conference hall and an
//! outdoor place (§VI-A-1). Each preset populates the scene with static
//! clutter — walls, furniture, ground — whose echoes are the multipath
//! the beamforming/time-gating pipeline must reject.

use crate::body::Scatterer;
use echo_array::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The three experiment environments of the paper (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum EnvironmentKind {
    /// A laboratory room: near walls, dense furniture clutter.
    Laboratory,
    /// A conference hall: distant walls, sparse clutter, long echoes.
    ConferenceHall,
    /// Outdoors: no walls, ground reflection only.
    Outdoor,
}

impl EnvironmentKind {
    /// All environments, in the paper's presentation order.
    pub fn all() -> [EnvironmentKind; 3] {
        [
            EnvironmentKind::Laboratory,
            EnvironmentKind::ConferenceHall,
            EnvironmentKind::Outdoor,
        ]
    }

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EnvironmentKind::Laboratory => "laboratory",
            EnvironmentKind::ConferenceHall => "conference hall",
            EnvironmentKind::Outdoor => "outdoor",
        }
    }
}

/// A concrete environment: a set of static reflectors in array
/// coordinates.
///
/// # Example
///
/// ```
/// use echo_sim::room::{Environment, EnvironmentKind};
///
/// let lab = Environment::generate(EnvironmentKind::Laboratory, 1);
/// assert!(!lab.reflectors().is_empty());
/// // The space directly in front of the array is kept clear for the user.
/// for r in lab.reflectors() {
///     let p = r.position;
///     assert!(!(p.x.abs() < 0.5 && p.y > 0.2 && p.y < 1.8 && p.z.abs() < 0.8));
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Environment {
    kind: EnvironmentKind,
    reflectors: Vec<Scatterer>,
}

impl Environment {
    /// Generates the reflector layout for `kind`, deterministically in
    /// `seed`.
    ///
    /// The user's standing corridor (|x| < 0.5 m, 0.2 m < y < 1.8 m,
    /// |z| < 0.8 m) is kept free of clutter so the scene stays physically
    /// consistent with a person standing in front of the device.
    pub fn generate(kind: EnvironmentKind, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x2007_0000_0000);
        let mut reflectors = Vec::new();

        let add_wall = |rng: &mut ChaCha8Rng,
                        reflectors: &mut Vec<Scatterer>,
                        center: Vec3,
                        span_x: f64,
                        span_z: f64,
                        refl_total: f64| {
            let points = 24;
            for _ in 0..points {
                let dx = rng.gen_range(-span_x / 2.0..span_x / 2.0);
                let dz = rng.gen_range(-span_z / 2.0..span_z / 2.0);
                reflectors.push(Scatterer {
                    position: Vec3::new(center.x + dx, center.y, center.z + dz),
                    reflectivity: refl_total / points as f64 * rng.gen_range(0.5..1.5),
                });
            }
        };

        let add_clutter = |rng: &mut ChaCha8Rng,
                           reflectors: &mut Vec<Scatterer>,
                           count: usize,
                           y_range: (f64, f64)| {
            let mut placed = 0;
            while placed < count {
                let x: f64 = rng.gen_range(-3.0..3.0);
                let y = rng.gen_range(y_range.0..y_range.1);
                let z: f64 = rng.gen_range(-0.9..0.9);
                // Keep the user's corridor clear.
                if x.abs() < 0.5 && y > 0.2 && y < 1.8 && z.abs() < 0.8 {
                    continue;
                }
                reflectors.push(Scatterer {
                    position: Vec3::new(x, y, z),
                    reflectivity: rng.gen_range(0.005..0.04),
                });
                placed += 1;
            }
        };

        match kind {
            EnvironmentKind::Laboratory => {
                // Near walls: behind the user (~3 m), side walls (~2 m),
                // behind the device (~1 m).
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, 3.0, 0.0),
                    4.0,
                    2.0,
                    0.5,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(-2.0, 1.5, 0.0),
                    0.1,
                    2.0,
                    0.3,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(2.0, 1.5, 0.0),
                    0.1,
                    2.0,
                    0.3,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, -1.0, 0.0),
                    4.0,
                    2.0,
                    0.3,
                );
                add_clutter(&mut rng, &mut reflectors, 10, (0.8, 2.8));
            }
            EnvironmentKind::ConferenceHall => {
                // Distant walls, high ceiling, sparse furniture.
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, 8.0, 0.0),
                    12.0,
                    4.0,
                    0.6,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(-6.0, 3.0, 0.0),
                    0.1,
                    4.0,
                    0.4,
                );
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(6.0, 3.0, 0.0),
                    0.1,
                    4.0,
                    0.4,
                );
                add_clutter(&mut rng, &mut reflectors, 5, (2.0, 6.0));
            }
            EnvironmentKind::Outdoor => {
                // Only the ground plane scatters back (array on a table).
                add_wall(
                    &mut rng,
                    &mut reflectors,
                    Vec3::new(0.0, 1.0, -0.9),
                    3.0,
                    0.05,
                    0.15,
                );
            }
        }

        Environment { kind, reflectors }
    }

    /// The environment kind.
    pub fn kind(&self) -> EnvironmentKind {
        self.kind
    }

    /// The static reflectors.
    pub fn reflectors(&self) -> &[Scatterer] {
        &self.reflectors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Environment::generate(EnvironmentKind::Laboratory, 9);
        let b = Environment::generate(EnvironmentKind::Laboratory, 9);
        assert_eq!(a, b);
        let c = Environment::generate(EnvironmentKind::Laboratory, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn laboratory_is_most_cluttered() {
        let lab = Environment::generate(EnvironmentKind::Laboratory, 1);
        let hall = Environment::generate(EnvironmentKind::ConferenceHall, 1);
        let out = Environment::generate(EnvironmentKind::Outdoor, 1);
        assert!(lab.reflectors().len() > hall.reflectors().len());
        assert!(hall.reflectors().len() > out.reflectors().len());
    }

    #[test]
    fn user_corridor_stays_clear() {
        for kind in EnvironmentKind::all() {
            for seed in 0..5 {
                let env = Environment::generate(kind, seed);
                for r in env.reflectors() {
                    let p = r.position;
                    let in_corridor = p.x.abs() < 0.5 && p.y > 0.2 && p.y < 1.8 && p.z.abs() < 0.8;
                    assert!(!in_corridor, "{kind:?} seed {seed}: reflector at {p:?}");
                }
            }
        }
    }

    #[test]
    fn outdoor_reflectors_are_ground_level() {
        let out = Environment::generate(EnvironmentKind::Outdoor, 3);
        for r in out.reflectors() {
            assert!(
                r.position.z < -0.8,
                "outdoor reflector not on ground: {:?}",
                r.position
            );
        }
    }

    #[test]
    fn hall_walls_are_distant() {
        let hall = Environment::generate(EnvironmentKind::ConferenceHall, 4);
        let min_dist = hall
            .reflectors()
            .iter()
            .map(|r| r.position.norm())
            .fold(f64::INFINITY, f64::min);
        assert!(min_dist > 1.9, "nearest hall reflector at {min_dist} m");
    }

    #[test]
    fn reflectivities_are_positive() {
        for kind in EnvironmentKind::all() {
            let env = Environment::generate(kind, 0);
            assert!(env.reflectors().iter().all(|r| r.reflectivity > 0.0));
        }
    }
}
