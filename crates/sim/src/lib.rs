//! Acoustic scene simulator for the EchoImage reproduction.
//!
//! The paper evaluates EchoImage with a physical ReSpeaker array and 20
//! human volunteers in three real environments. Neither the hardware nor
//! the volunteers are available to this reproduction, so this crate
//! simulates the full acoustic path at the signal level (see DESIGN.md §1
//! for the substitution argument):
//!
//! * [`body`] — parametric human bodies as stable per-user clouds of
//!   acoustic point scatterers,
//! * [`room`] — environment presets (laboratory / conference hall /
//!   outdoor) with static reflectors,
//! * [`noise`] — ambient noise generators (quiet, music, chatter,
//!   traffic) with literature-shaped spectra,
//! * [`scene`] — multichannel rendering: each microphone receives the
//!   direct beep plus every speaker→scatterer→mic echo at its exact
//!   fractional delay and inverse-distance attenuation, plus noise,
//! * [`population`] — the paper's Table I subject demographics,
//! * [`recording`] — captured multichannel beep windows,
//! * [`fault`] — deterministic per-microphone channel-fault injection
//!   (dead mics, gain drift, DC offset, clipping, clock skew, bursts),
//! * [`spoof`] — seeded adversarial attacks (loudspeaker replay, twin
//!   impostors) and the image-source room model they share with clean
//!   captures.
//!
//! # Example
//!
//! Capture one probing beep reflected off a simulated user 0.7 m away in
//! a quiet laboratory:
//!
//! ```
//! use echo_sim::body::{BodyModel, Placement};
//! use echo_sim::scene::{Scene, SceneConfig};
//! use echo_sim::room::EnvironmentKind;
//!
//! let scene = Scene::new(SceneConfig::laboratory_quiet(7));
//! let body = BodyModel::from_seed(42);
//! let placement = Placement::standing_front(0.7);
//! let capture = scene.capture_beep(&body, &placement, 0, 0);
//! assert_eq!(capture.num_channels(), 6);
//! assert!(capture.len() > 0);
//! ```

pub mod body;
pub mod fault;
pub mod noise;
pub mod population;
pub mod recording;
pub mod room;
pub mod scene;
pub mod spoof;
pub mod wav;

pub use body::{BodyModel, Placement, Scatterer};
pub use fault::{ChannelFault, FaultKind, FaultPlan};
pub use noise::NoiseKind;
pub use population::{Population, UserProfile};
pub use recording::BeepCapture;
pub use room::{EnvironmentKind, RoomModel};
pub use scene::{Bystander, Scene, SceneConfig};
pub use spoof::{ReplaySpoof, SpoofAttack, SpoofKind, SpoofPlan, TwinSpoof};
