//! Captured multichannel beep windows.

/// A multichannel recording of one probing-beep window.
///
/// Layout: `channels[m][n]` is sample `n` of microphone `m`. The first
/// [`BeepCapture::preroll`] samples are noise-only (captured before the
/// beep was emitted) — the MVDR stage estimates its noise covariance from
/// them. The beep leaves the speaker at sample index `preroll`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BeepCapture {
    channels: Vec<Vec<f64>>,
    sample_rate: f64,
    preroll: usize,
}

impl BeepCapture {
    /// Wraps raw channel data.
    ///
    /// # Panics
    ///
    /// Panics if there are no channels, lengths differ, the sample rate is
    /// not positive, or `preroll` exceeds the channel length.
    pub fn new(channels: Vec<Vec<f64>>, sample_rate: f64, preroll: usize) -> Self {
        assert!(!channels.is_empty(), "a capture needs at least one channel");
        let n = channels[0].len();
        assert!(
            channels.iter().all(|c| c.len() == n),
            "channels must have equal lengths"
        );
        assert!(sample_rate > 0.0, "sample rate must be positive");
        assert!(preroll <= n, "preroll exceeds capture length");
        BeepCapture {
            channels,
            sample_rate,
            preroll,
        }
    }

    /// Number of microphones M.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Samples per channel.
    pub fn len(&self) -> usize {
        self.channels[0].len()
    }

    /// Returns `true` when the capture holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Number of leading noise-only samples.
    pub fn preroll(&self) -> usize {
        self.preroll
    }

    /// One microphone's samples.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn channel(&self, m: usize) -> &[f64] {
        &self.channels[m]
    }

    /// All channels.
    pub fn channels(&self) -> &[Vec<f64>] {
        &self.channels
    }

    /// The noise-only preroll of each channel (first `preroll` samples).
    pub fn noise_segments(&self) -> Vec<&[f64]> {
        self.channels.iter().map(|c| &c[..self.preroll]).collect()
    }

    /// The beep-and-echoes portion of each channel (from `preroll` on).
    pub fn signal_segments(&self) -> Vec<&[f64]> {
        self.channels.iter().map(|c| &c[self.preroll..]).collect()
    }

    /// Applies a function to every channel, returning a new capture with
    /// the same metadata (used for band-pass filtering).
    ///
    /// # Panics
    ///
    /// Panics if `f` changes the channel length.
    pub fn map_channels(&self, mut f: impl FnMut(&[f64]) -> Vec<f64>) -> BeepCapture {
        let channels: Vec<Vec<f64>> = self.channels.iter().map(|c| f(c)).collect();
        assert!(
            channels.iter().all(|c| c.len() == self.len()),
            "map_channels must preserve length"
        );
        BeepCapture {
            channels,
            sample_rate: self.sample_rate,
            preroll: self.preroll,
        }
    }

    /// A new capture holding only the listed channels (same metadata) —
    /// the degraded-mode pipeline images with the surviving microphones.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, not strictly increasing, or names a
    /// channel the capture does not have. Callers in `echoimage-core`
    /// validate the mask against the channel-health screen first.
    pub fn select_channels(&self, indices: &[usize]) -> BeepCapture {
        assert!(!indices.is_empty(), "a capture needs at least one channel");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "channel indices must be strictly increasing"
        );
        assert!(
            indices.iter().all(|&i| i < self.channels.len()),
            "channel index out of range"
        );
        BeepCapture {
            channels: indices.iter().map(|&i| self.channels[i].clone()).collect(),
            sample_rate: self.sample_rate,
            preroll: self.preroll,
        }
    }

    /// Hard-clips every sample to ±`limit` (microphone saturation; used
    /// for failure-injection tests).
    pub fn clipped(&self, limit: f64) -> BeepCapture {
        assert!(limit > 0.0, "clip limit must be positive");
        self.map_channels(|c| c.iter().map(|&x| x.clamp(-limit, limit)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture() -> BeepCapture {
        BeepCapture::new(vec![vec![0.0, 1.0, -2.0, 3.0]; 3], 48_000.0, 2)
    }

    #[test]
    fn accessors() {
        let c = capture();
        assert_eq!(c.num_channels(), 3);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.sample_rate(), 48_000.0);
        assert_eq!(c.preroll(), 2);
        assert_eq!(c.channel(0), &[0.0, 1.0, -2.0, 3.0]);
    }

    #[test]
    fn noise_and_signal_segments_partition_the_capture() {
        let c = capture();
        assert_eq!(c.noise_segments()[0], &[0.0, 1.0]);
        assert_eq!(c.signal_segments()[0], &[-2.0, 3.0]);
    }

    #[test]
    fn map_channels_preserves_metadata() {
        let c = capture().map_channels(|ch| ch.iter().map(|x| x * 2.0).collect());
        assert_eq!(c.channel(1), &[0.0, 2.0, -4.0, 6.0]);
        assert_eq!(c.preroll(), 2);
    }

    #[test]
    fn clipping_saturates() {
        let c = capture().clipped(1.5);
        assert_eq!(c.channel(0), &[0.0, 1.0, -1.5, 1.5]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn ragged_channels_rejected() {
        let _ = BeepCapture::new(vec![vec![0.0; 3], vec![0.0; 4]], 48_000.0, 0);
    }

    #[test]
    #[should_panic(expected = "preroll")]
    fn oversized_preroll_rejected() {
        let _ = BeepCapture::new(vec![vec![0.0; 3]], 48_000.0, 4);
    }
}
