//! Multichannel scene rendering.
//!
//! A [`Scene`] combines the microphone array, the co-located speaker, an
//! environment's static reflectors and an ambient-noise condition, and
//! renders what each microphone records during one probing beep: the
//! direct speaker→mic sound plus one echo per scatterer, each at its
//! exact (fractional-sample) propagation delay with inverse-distance
//! attenuation per leg, plus ambient and microphone self-noise.

use crate::body::{BodyModel, Placement, Scatterer};
use crate::noise::{amplitude_for_spl, NoiseGenerator, NoiseKind};
use crate::recording::BeepCapture;
use crate::room::{Environment, EnvironmentKind, RoomModel};
use crate::spoof::ReplaySpoof;
use echo_array::{MicArray, Vec3};
use echo_dsp::chirp::LfmChirp;
use echo_dsp::interp::add_delayed;
use echo_dsp::SPEED_OF_SOUND;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Full description of a capture setup.
#[derive(Debug, Clone)]
pub struct SceneConfig {
    /// The microphone array (paper prototype: ReSpeaker-like 6-mic circle).
    pub array: MicArray,
    /// Speaker position in array coordinates (placed beside the array).
    pub speaker: Vec3,
    /// Static environment reflectors.
    pub environment: Environment,
    /// Ambient-noise condition.
    pub noise: NoiseGenerator,
    /// The probing beep.
    pub chirp: LfmChirp,
    /// Seconds of post-beep capture (must cover the echo period).
    pub capture_window: f64,
    /// Seconds of noise-only preroll (used for covariance estimation).
    pub preroll: f64,
    /// Microphone self-noise floor, dB SPL equivalent.
    pub mic_noise_spl: f64,
    /// Speaker→microphone direct-coupling factor. Commercial smart
    /// speakers point the driver away from the microphones and isolate
    /// the enclosure, so the direct chirp reaches the array attenuated
    /// (≈ −26 dB here) rather than at free-field strength; without this
    /// the direct pulse's correlation skirt would bury near-body echoes,
    /// which contradicts the paper's Fig. 5.
    pub direct_coupling: f64,
    /// Standard deviation of the per-microphone gain mismatch, dB.
    /// Real arrays are never perfectly matched; the mismatch is fixed
    /// per device (derived from the scene seed). 0 disables.
    pub mic_gain_error_db: f64,
    /// Standard deviation of the per-microphone timing mismatch,
    /// seconds (ADC skew / element placement error). 0 disables.
    pub mic_timing_error: f64,
    /// Floor plane height in array coordinates for second-order
    /// (scatterer → floor → microphone) ghost paths; `None` disables
    /// them. A tabletop device sees the floor at ≈ −0.9 m.
    pub floor_z: Option<f64>,
    /// Pressure reflection coefficient of the floor for ghost paths.
    pub floor_reflectivity: f64,
    /// Shoebox image-source room model: every path (direct, echo, and
    /// replayed attack emission alike) additionally reaches each
    /// microphone via specular wall reflections. `None` renders the
    /// legacy free-field scene. The same model applies to clean and
    /// attack captures of a scene, so multipath never separates them
    /// on its own.
    pub room: Option<RoomModel>,
    /// Speed of sound, m/s.
    pub speed_of_sound: f64,
    /// Scene-level seed: controls the noise streams.
    pub seed: u64,
}

impl SceneConfig {
    /// The paper's default setup in a given environment and noise
    /// condition: ReSpeaker-like array, speaker 8 cm to the side, 2–3 kHz
    /// 2 ms beep at 48 kHz, 60 ms capture window, 10 ms preroll.
    pub fn with_environment(env: EnvironmentKind, noise: NoiseKind, seed: u64) -> Self {
        let sample_rate = 48_000.0;
        SceneConfig {
            array: MicArray::respeaker_6(),
            speaker: Vec3::new(0.08, 0.0, 0.0),
            environment: Environment::generate(env, seed),
            noise: NoiseGenerator::nominal(noise, sample_rate),
            chirp: LfmChirp::new(2_000.0, 3_000.0, 0.002, sample_rate),
            capture_window: 0.060,
            preroll: 0.010,
            mic_noise_spl: 30.0,
            direct_coupling: 0.02,
            mic_gain_error_db: 0.0,
            mic_timing_error: 0.0,
            floor_z: None,
            floor_reflectivity: 0.3,
            room: None,
            speed_of_sound: SPEED_OF_SOUND,
            seed,
        }
    }

    /// A quiet laboratory — the paper's default evaluation condition.
    pub fn laboratory_quiet(seed: u64) -> Self {
        Self::with_environment(EnvironmentKind::Laboratory, NoiseKind::Quiet, seed)
    }

    /// Sample rate in Hz (taken from the chirp).
    pub fn sample_rate(&self) -> f64 {
        self.chirp.sample_rate()
    }
}

/// A renderable acoustic scene.
///
/// # Example
///
/// ```
/// use echo_sim::body::{BodyModel, Placement};
/// use echo_sim::scene::{Scene, SceneConfig};
///
/// let scene = Scene::new(SceneConfig::laboratory_quiet(3));
/// let user = BodyModel::from_seed(11);
/// let capture = scene.capture_beep(&user, &Placement::standing_front(0.7), 0, 0);
/// assert_eq!(capture.num_channels(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
}

impl Scene {
    /// Creates a scene from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the capture window is too short to contain the chirp or
    /// any duration is non-positive.
    pub fn new(config: SceneConfig) -> Self {
        assert!(
            config.capture_window > config.chirp.duration(),
            "capture window shorter than the chirp"
        );
        assert!(config.preroll >= 0.0, "preroll must be non-negative");
        assert!(
            config.speed_of_sound > 0.0,
            "speed of sound must be positive"
        );
        Scene { config }
    }

    /// The scene configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Samples in one full capture (preroll + window).
    pub fn capture_samples(&self) -> usize {
        let fs = self.config.sample_rate();
        ((self.config.preroll + self.config.capture_window) * fs).round() as usize
    }

    /// Preroll length in samples.
    pub fn preroll_samples(&self) -> usize {
        (self.config.preroll * self.config.sample_rate()).round() as usize
    }

    /// Captures one beep reflected off `body` standing at `placement`.
    ///
    /// `session` and `beep` index the observation: they drive the body's
    /// session drift / per-beep sway and decorrelate the noise streams.
    pub fn capture_beep(
        &self,
        body: &BodyModel,
        placement: &Placement,
        session: u32,
        beep: u64,
    ) -> BeepCapture {
        let scatterers = body.scatterers(placement, session, beep);
        self.capture_beep_from(&scatterers, session, beep)
    }

    /// Captures one beep with no user present (spoof-free baseline and
    /// failure-injection tests).
    pub fn capture_empty(&self, session: u32, beep: u64) -> BeepCapture {
        self.capture_beep_from(&[], session, beep)
    }

    /// Captures one beep from an explicit scatterer set (the body plus
    /// anything else the caller wants in the scene).
    pub fn capture_beep_from(
        &self,
        body_scatterers: &[Scatterer],
        session: u32,
        beep: u64,
    ) -> BeepCapture {
        let _span = echo_obs::span!("stage.capture");
        echo_obs::counter!("sim.beeps_captured").inc();
        let cfg = &self.config;
        let fs = cfg.sample_rate();
        let n = self.capture_samples();
        let preroll = self.preroll_samples();
        let chirp = cfg.chirp.samples();
        let c = cfg.speed_of_sound;

        let m = cfg.array.len();
        let mut channels = vec![vec![0.0f64; n]; m];

        // Per-device microphone imperfections: a fixed gain and timing
        // mismatch per element, derived from the scene seed (the same
        // device keeps the same mismatch across all captures).
        let mut imp_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x313C_0000_0000);
        let imperfections: Vec<(f64, f64)> = (0..m)
            .map(|_| {
                let gain_db = cfg.mic_gain_error_db * crate::body::randn(&mut imp_rng);
                let timing = cfg.mic_timing_error * crate::body::randn(&mut imp_rng);
                (10f64.powf(gain_db / 20.0), timing * fs)
            })
            .collect();

        for (mi, ch) in channels.iter_mut().enumerate() {
            let mic = cfg.array.position(mi);
            let (mic_gain, mic_delay) = imperfections[mi];

            // The receiver and its room images: every path below is
            // rendered once per virtual microphone, so wall reflections
            // enrich clean and attack captures identically. Without a
            // room model this is exactly the legacy single-receiver
            // loop.
            for (vmic, vcoeff) in self.virtual_mics(mic) {
                // Direct path speaker → mic, attenuated by the
                // enclosure's speaker/microphone isolation.
                let d_direct = cfg.speaker.distance_to(vmic).max(0.02);
                add_delayed(
                    ch,
                    &chirp,
                    (preroll as f64 + d_direct / c * fs + mic_delay).max(0.0),
                    vcoeff * mic_gain * cfg.direct_coupling / d_direct,
                );

                // Echoes: speaker → scatterer → mic, plus (optionally)
                // the second-order scatterer → floor → mic ghost,
                // rendered via the image method (mirror the microphone
                // across the floor).
                let mic_ghost = cfg
                    .floor_z
                    .map(|fz| Vec3::new(vmic.x, vmic.y, 2.0 * fz - vmic.z));
                for s in body_scatterers.iter().chain(cfg.environment.reflectors()) {
                    let d1 = cfg.speaker.distance_to(s.position).max(0.05);
                    let d2 = s.position.distance_to(vmic).max(0.05);
                    add_delayed(
                        ch,
                        &chirp,
                        (preroll as f64 + (d1 + d2) / c * fs + mic_delay).max(0.0),
                        vcoeff * mic_gain * s.reflectivity / (d1 * d2),
                    );
                    if let Some(ghost) = mic_ghost {
                        let d2g = s.position.distance_to(ghost).max(0.05);
                        add_delayed(
                            ch,
                            &chirp,
                            (preroll as f64 + (d1 + d2g) / c * fs + mic_delay).max(0.0),
                            vcoeff * mic_gain * cfg.floor_reflectivity * s.reflectivity
                                / (d1 * d2g),
                        );
                    }
                }
            }
        }

        // Ambient noise (coherent across mics) and mic self-noise
        // (independent per mic).
        let noise_seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((session as u64) << 40) ^ beep.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let ambient = cfg.noise.render(&cfg.array, n, noise_seed);
        let mic_rms = amplitude_for_spl(cfg.mic_noise_spl);
        let mut self_rng = ChaCha8Rng::seed_from_u64(noise_seed ^ 0x5E1F_0000);
        for (ch, amb) in channels.iter_mut().zip(ambient.iter()) {
            for (x, a) in ch.iter_mut().zip(amb.iter()) {
                *x += a + mic_rms * crate::body::randn(&mut self_rng);
            }
        }

        BeepCapture::new(channels, fs, preroll)
    }

    /// The receiver at `mic` plus its image-source room ghosts; the
    /// identity receiver always comes first with unit coefficient.
    fn virtual_mics(&self, mic: Vec3) -> Vec<(Vec3, f64)> {
        let mut vmics = vec![(mic, 1.0)];
        if let Some(room) = &self.config.room {
            vmics.extend(room.images(mic));
        }
        vmics
    }

    /// Captures one beep during a *replay attack*: the device probes as
    /// usual (direct path, environment echoes, ambient and self-noise —
    /// the victim is absent), while a single point-source loudspeaker at
    /// `replay.source` re-emits a previously recorded echo waveform.
    ///
    /// The re-emission reaches every microphone as the *same* waveform,
    /// delayed and attenuated per element (and per room image) — the
    /// collapsed spatial structure that separates a loudspeaker from a
    /// genuine scatterer cloud.
    pub fn capture_replay(&self, replay: &ReplaySpoof, session: u32, beep: u64) -> BeepCapture {
        echo_obs::counter!("sim.replay_captures").inc();
        let base = self.capture_beep_from(&[], session, beep);
        let cfg = &self.config;
        let fs = cfg.sample_rate();
        let c = cfg.speed_of_sound;
        let playback = replay.playback_waveform(fs, beep);
        let trigger = replay.trigger_samples(fs, beep);

        let mut imp_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x313C_0000_0000);
        let imperfections: Vec<(f64, f64)> = (0..cfg.array.len())
            .map(|_| {
                let gain_db = cfg.mic_gain_error_db * crate::body::randn(&mut imp_rng);
                let timing = cfg.mic_timing_error * crate::body::randn(&mut imp_rng);
                (10f64.powf(gain_db / 20.0), timing * fs)
            })
            .collect();

        let mut channels: Vec<Vec<f64>> = base.channels().to_vec();
        for (mi, ch) in channels.iter_mut().enumerate() {
            let mic = cfg.array.position(mi);
            let (mic_gain, mic_delay) = imperfections[mi];
            for (vmic, vcoeff) in self.virtual_mics(mic) {
                let d = replay.source.distance_to(vmic).max(0.05);
                add_delayed(
                    ch,
                    &playback,
                    (trigger + d / c * fs + mic_delay).max(0.0),
                    vcoeff * mic_gain * replay.gain / d,
                );
            }
        }
        BeepCapture::new(channels, fs, base.preroll())
    }

    /// Captures one beep with a *bystander* walking through the scene —
    /// the paper's §VI-A-1 "residents could behave normally (e.g. …
    /// passing through the test locations) during the whole data
    /// collection". The bystander is a full body model on a straight
    /// walking path, positioned per beep index.
    pub fn capture_beep_with_bystander(
        &self,
        body: &BodyModel,
        placement: &Placement,
        session: u32,
        beep: u64,
        bystander: &Bystander,
    ) -> BeepCapture {
        let mut scatterers = body.scatterers(placement, session, beep);
        scatterers.extend(bystander.scatterers_at_beep(beep, placement.array_height));
        self.capture_beep_from(&scatterers, session, beep)
    }

    /// Convenience: capture a whole train of `count` beeps (the paper's
    /// L beeps at 0.5 s intervals — rendered as independent windows since
    /// echoes die out long before the next beep).
    pub fn capture_train(
        &self,
        body: &BodyModel,
        placement: &Placement,
        session: u32,
        count: usize,
        first_beep: u64,
    ) -> Vec<BeepCapture> {
        self.capture_train_traced(
            echo_obs::TraceCtx::none(),
            body,
            placement,
            session,
            count,
            first_beep,
        )
    }

    /// [`Scene::capture_train`] recording one `sim.beep` trace span per
    /// rendered beep (indexed by position in the train) under `ctx`.
    pub fn capture_train_traced(
        &self,
        ctx: echo_obs::TraceCtx,
        body: &BodyModel,
        placement: &Placement,
        session: u32,
        count: usize,
        first_beep: u64,
    ) -> Vec<BeepCapture> {
        (0..count)
            .map(|l| {
                let _tspan = ctx.child_at("sim.beep", l as u64);
                self.capture_beep(body, placement, session, first_beep + l as u64)
            })
            .collect()
    }

    /// Expected round-trip echo delay in seconds for a scatterer at
    /// distance `d` straight ahead (diagnostic helper).
    pub fn expected_round_trip(&self, d: f64) -> f64 {
        2.0 * d / self.config.speed_of_sound
    }
}

/// A person walking through the scene on a straight path while the
/// device probes (one beep every `beep_interval` seconds).
#[derive(Debug, Clone)]
pub struct Bystander {
    /// The bystander's body.
    pub body: BodyModel,
    /// Starting position at beep 0: (lateral x, distance y), metres.
    pub start: (f64, f64),
    /// Walking velocity: (vx, vy), metres per second.
    pub velocity: (f64, f64),
    /// Seconds between beeps (paper §V-A: 0.5 s).
    pub beep_interval: f64,
}

impl Bystander {
    /// A typical passer-by: starts 2 m to the left at 2 m depth and
    /// crosses laterally at ~1.2 m/s.
    pub fn walking_past(body: BodyModel) -> Self {
        Bystander {
            body,
            start: (-2.0, 2.0),
            velocity: (1.2, 0.0),
            beep_interval: 0.5,
        }
    }

    /// The bystander's scatterers at beep `beep`.
    pub fn scatterers_at_beep(&self, beep: u64, array_height: f64) -> Vec<Scatterer> {
        let t = beep as f64 * self.beep_interval;
        let placement = Placement {
            lateral: self.start.0 + self.velocity.0 * t,
            distance: (self.start.1 + self.velocity.1 * t).max(0.3),
            array_height,
        };
        // Use a high session id so the bystander's drift stream never
        // collides with the main user's.
        self.body.scatterers(&placement, 9_999, beep)
    }
}

// Re-export Rng trait use so the module compiles when rand idioms change.
#[allow(unused)]
fn _rng_assertions(mut r: ChaCha8Rng) {
    let _: f64 = r.gen_range(0.0..1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_dsp::correlate::matched_filter;
    use echo_dsp::filter::SosFilter;
    use echo_dsp::stats::rms;

    fn scene() -> Scene {
        Scene::new(SceneConfig::laboratory_quiet(5))
    }

    #[test]
    fn capture_shape_is_consistent() {
        let s = scene();
        let cap = s.capture_empty(0, 0);
        assert_eq!(cap.num_channels(), 6);
        assert_eq!(cap.len(), s.capture_samples());
        assert_eq!(cap.preroll(), s.preroll_samples());
        assert_eq!(cap.sample_rate(), 48_000.0);
    }

    #[test]
    fn preroll_is_noise_only() {
        let s = scene();
        let body = BodyModel::from_seed(1);
        let cap = s.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
        // Preroll RMS should be orders of magnitude below the beep part.
        let noise_rms = rms(cap.noise_segments()[0]);
        let signal_rms = rms(&cap.signal_segments()[0][..2_000]);
        assert!(signal_rms > 5.0 * noise_rms, "{signal_rms} vs {noise_rms}");
    }

    #[test]
    fn direct_path_arrives_at_the_expected_sample() {
        let s = scene();
        let cap = s.capture_empty(0, 0);
        let chirp = s.config().chirp.samples();
        // Filter to the probing band, then matched-filter channel 0.
        // Zero-phase filtering so the filter's group delay does not shift
        // the peak (the production pipeline measures echo delays relative
        // to the direct-path peak, which cancels the delay instead).
        let bp = SosFilter::butterworth_bandpass(4, 2_000.0, 3_000.0, 48_000.0);
        let filtered = bp.filtfilt(cap.channel(0));
        let mf = matched_filter(&filtered, &chirp);
        let peak = echo_dsp::stats::argmax(&mf[..cap.preroll() + 500]).unwrap();
        // Speaker at 8 cm from centre; mic 0 at (0.05, 0, 0) → 3 cm path.
        let d = s.config().speaker.distance_to(s.config().array.position(0));
        let expect = cap.preroll() as f64 + d / SPEED_OF_SOUND * 48_000.0;
        // Band-pass group delay shifts the peak a little.
        assert!(
            (peak as f64 - expect).abs() < 30.0,
            "peak {peak} vs expected {expect}"
        );
    }

    #[test]
    fn body_echo_appears_at_round_trip_delay() {
        let s = scene();
        let body = BodyModel::from_seed(2);
        let dist = 0.7;
        let with_body = s.capture_beep(&body, &Placement::standing_front(dist), 0, 0);
        let empty = s.capture_empty(0, 0);
        // Difference isolates the body echo (same noise seeds).
        let diff: Vec<f64> = with_body
            .channel(0)
            .iter()
            .zip(empty.channel(0))
            .map(|(a, b)| a - b)
            .collect();
        let chirp = s.config().chirp.samples();
        let mf = matched_filter(&diff, &chirp);
        let peak = echo_dsp::stats::argmax(&mf).unwrap();
        let expect = with_body.preroll() as f64 + s.expected_round_trip(dist) * 48_000.0;
        // Body scatterers spread ±torso depth; allow a couple of ms.
        assert!(
            (peak as f64 - expect).abs() < 100.0,
            "peak {peak} vs expected {expect}"
        );
    }

    #[test]
    fn farther_bodies_reflect_less_energy() {
        let s = scene();
        let body = BodyModel::from_seed(3);
        let energy_at = |d: f64| {
            let cap = s.capture_beep(&body, &Placement::standing_front(d), 0, 0);
            let empty = s.capture_empty(0, 0);
            let diff: Vec<f64> = cap
                .channel(0)
                .iter()
                .zip(empty.channel(0))
                .map(|(a, b)| a - b)
                .collect();
            echo_dsp::stats::energy(&diff)
        };
        let near = energy_at(0.6);
        let far = energy_at(1.4);
        assert!(near > 3.0 * far, "near {near} vs far {far}");
    }

    #[test]
    fn capture_is_deterministic_per_indices() {
        let s = scene();
        let body = BodyModel::from_seed(4);
        let p = Placement::standing_front(0.7);
        assert_eq!(
            s.capture_beep(&body, &p, 1, 2),
            s.capture_beep(&body, &p, 1, 2)
        );
        assert_ne!(
            s.capture_beep(&body, &p, 1, 2),
            s.capture_beep(&body, &p, 1, 3)
        );
    }

    #[test]
    fn train_produces_distinct_beeps() {
        let s = scene();
        let body = BodyModel::from_seed(5);
        let caps = s.capture_train(&body, &Placement::standing_front(0.7), 0, 3, 0);
        assert_eq!(caps.len(), 3);
        assert_ne!(caps[0], caps[1]);
        assert_ne!(caps[1], caps[2]);
    }

    #[test]
    fn floor_ghosts_add_delayed_energy() {
        let mut cfg = SceneConfig::laboratory_quiet(5);
        cfg.floor_z = Some(-0.9);
        let with_floor = Scene::new(cfg);
        let without = scene();
        let body = BodyModel::from_seed(9);
        let p = Placement::standing_front(0.7);
        let a = with_floor.capture_beep(&body, &p, 0, 0);
        let b = without.capture_beep(&body, &p, 0, 0);
        assert_ne!(a, b, "ghost paths must change the capture");
        // The ghost arrives later than the direct echo: the extra energy
        // concentrates after the first-order body return (~0.7 m ≈ 4 ms).
        let fs = 48_000.0;
        let after = (a.preroll() as f64 + 0.006 * fs) as usize;
        let diff_late: f64 = a.channel(0)[after..]
            .iter()
            .zip(&b.channel(0)[after..])
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff_late > 0.0, "ghosts should appear after the body echo");
        // And the total added energy is modest (floor coefficient 0.3,
        // longer path): well below the first-order echo energy.
        let e_with: f64 = a.channel(0).iter().map(|v| v * v).sum();
        let e_without: f64 = b.channel(0).iter().map(|v| v * v).sum();
        assert!(e_with < e_without * 1.5, "{e_with} vs {e_without}");
    }

    #[test]
    fn bystander_changes_capture_and_moves() {
        let s = scene();
        let user = BodyModel::from_seed(7);
        let walker = Bystander::walking_past(BodyModel::from_seed(70));
        let p = Placement::standing_front(0.7);
        let clean = s.capture_beep(&user, &p, 0, 0);
        let with0 = s.capture_beep_with_bystander(&user, &p, 0, 0, &walker);
        let with5 = s.capture_beep_with_bystander(&user, &p, 0, 5, &walker);
        assert_ne!(clean, with0, "bystander must leave a trace");
        // The bystander moved ~3 m between beeps 0 and 5, so the traces
        // differ in more than per-beep sway alone.
        let base5 = s.capture_beep(&user, &p, 0, 5);
        let diff0: f64 = clean
            .channel(0)
            .iter()
            .zip(with0.channel(0))
            .map(|(a, b)| (a - b).abs())
            .sum();
        let diff5: f64 = base5
            .channel(0)
            .iter()
            .zip(with5.channel(0))
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff0 > 0.0 && diff5 > 0.0);
        assert_ne!(format!("{diff0:.6}"), format!("{diff5:.6}"));
    }

    #[test]
    fn bystander_path_advances_with_beeps() {
        let walker = Bystander::walking_past(BodyModel::from_seed(71));
        let a = walker.scatterers_at_beep(0, 0.9);
        let b = walker.scatterers_at_beep(4, 0.9);
        let mean_x = |s: &[crate::body::Scatterer]| {
            s.iter().map(|p| p.position.x).sum::<f64>() / s.len() as f64
        };
        // 4 beeps × 0.5 s × 1.2 m/s = 2.4 m of lateral travel.
        assert!((mean_x(&b) - mean_x(&a) - 2.4).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "capture window")]
    fn window_must_contain_chirp() {
        let mut cfg = SceneConfig::laboratory_quiet(0);
        cfg.capture_window = 0.001;
        let _ = Scene::new(cfg);
    }
}
