//! Per-microphone channel-fault injection.
//!
//! The paper's prototype assumes six identically behaving ReSpeaker
//! microphones; deployed hardware does not cooperate. Channels die,
//! preamp gains drift with temperature, DC servos fail, ADCs clip,
//! sample clocks skew and nearby electronics inject bursts. This module
//! models those failures as a deterministic post-processing stage on a
//! [`BeepCapture`]: a [`FaultPlan`] names which microphones are faulted
//! and how, and `apply` rewrites only those channels, seeded so the same
//! plan always produces the same damaged capture.
//!
//! Faults are parameterised *relative to the channel they damage* (peak
//! amplitude), so one plan is meaningful across environments and
//! distances without retuning.

use crate::recording::BeepCapture;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The fault families, without parameters — used to enumerate sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum FaultKind {
    /// Channel is flatlined (broken mic or unplugged element).
    Dead,
    /// Preamp gain ramps away from nominal over the capture window.
    GainDrift,
    /// A constant DC offset rides on the signal (failed servo/coupling).
    DcOffset,
    /// Hard amplitude saturation at a fraction of the channel's peak.
    Clipping,
    /// The channel's ADC clock runs at a slightly wrong rate.
    ClockSkew,
    /// A burst of wideband interference lands inside the window.
    BurstInterference,
}

impl FaultKind {
    /// Every fault family, in sweep order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Dead,
        FaultKind::GainDrift,
        FaultKind::DcOffset,
        FaultKind::Clipping,
        FaultKind::ClockSkew,
        FaultKind::BurstInterference,
    ];

    /// A short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Dead => "dead",
            FaultKind::GainDrift => "gain-drift",
            FaultKind::DcOffset => "dc-offset",
            FaultKind::Clipping => "clipping",
            FaultKind::ClockSkew => "clock-skew",
            FaultKind::BurstInterference => "burst",
        }
    }
}

/// One microphone's fault, with physical parameters.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ChannelFault {
    /// The channel records exactly zero.
    Dead,
    /// Gain ramps linearly (in dB) from 0 dB at the first sample to
    /// `db` dB at the last.
    GainDrift {
        /// Gain at the end of the window, dB (negative = fading out).
        db: f64,
    },
    /// Adds `scale × peak` to every sample, where `peak` is the
    /// channel's own maximum absolute amplitude.
    DcOffset {
        /// Offset as a multiple of the channel peak.
        scale: f64,
    },
    /// Clamps every sample to `±fraction × peak`.
    Clipping {
        /// Rail position as a fraction of the channel peak, in (0, 1].
        fraction: f64,
    },
    /// Resamples the channel as if its ADC clock ran `ppm` parts per
    /// million fast (positive) or slow (negative). Length-preserving.
    ClockSkew {
        /// Clock error in parts per million.
        ppm: f64,
    },
    /// Adds a seeded white-noise burst of amplitude `level × peak`
    /// covering one eighth of the window at a seeded position.
    BurstInterference {
        /// Burst amplitude as a multiple of the channel peak.
        level: f64,
    },
}

impl ChannelFault {
    /// The family this fault belongs to.
    pub fn kind(&self) -> FaultKind {
        match self {
            ChannelFault::Dead => FaultKind::Dead,
            ChannelFault::GainDrift { .. } => FaultKind::GainDrift,
            ChannelFault::DcOffset { .. } => FaultKind::DcOffset,
            ChannelFault::Clipping { .. } => FaultKind::Clipping,
            ChannelFault::ClockSkew { .. } => FaultKind::ClockSkew,
            ChannelFault::BurstInterference { .. } => FaultKind::BurstInterference,
        }
    }

    /// Maps a `[0, 1]` severity onto physical parameters: 0 is barely
    /// perceptible, 1 is the worst plausible instance of the family
    /// (−30 dB drift, a DC pedestal of twice the peak, rails at 5 % of
    /// the peak, 5000 ppm skew, a burst four peaks tall).
    pub fn from_severity(kind: FaultKind, severity: f64) -> ChannelFault {
        let s = severity.clamp(0.0, 1.0);
        match kind {
            FaultKind::Dead => ChannelFault::Dead,
            FaultKind::GainDrift => ChannelFault::GainDrift { db: -30.0 * s },
            FaultKind::DcOffset => ChannelFault::DcOffset { scale: 2.0 * s },
            FaultKind::Clipping => ChannelFault::Clipping {
                fraction: (1.0 - 0.95 * s).max(0.05),
            },
            FaultKind::ClockSkew => ChannelFault::ClockSkew { ppm: 5_000.0 * s },
            FaultKind::BurstInterference => ChannelFault::BurstInterference { level: 4.0 * s },
        }
    }

    /// Applies the fault to one channel. `seed` drives any randomness
    /// (only [`ChannelFault::BurstInterference`] uses it), so the same
    /// `(fault, samples, seed)` always yields the same output.
    pub fn apply_channel(&self, samples: &[f64], seed: u64) -> Vec<f64> {
        let n = samples.len();
        let peak = samples.iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        match self {
            ChannelFault::Dead => vec![0.0; n],
            ChannelFault::GainDrift { db } => {
                let last = (n.saturating_sub(1)).max(1) as f64;
                samples
                    .iter()
                    .enumerate()
                    .map(|(t, &x)| x * 10f64.powf(db * t as f64 / last / 20.0))
                    .collect()
            }
            ChannelFault::DcOffset { scale } => {
                let offset = scale * peak;
                samples.iter().map(|&x| x + offset).collect()
            }
            ChannelFault::Clipping { fraction } => {
                let rail = fraction.abs() * peak;
                samples.iter().map(|&x| x.clamp(-rail, rail)).collect()
            }
            ChannelFault::ClockSkew { ppm } => {
                let rate = 1.0 + ppm * 1e-6;
                (0..n)
                    .map(|t| sample_linear(samples, t as f64 * rate))
                    .collect()
            }
            ChannelFault::BurstInterference { level } => {
                let mut out = samples.to_vec();
                if n == 0 {
                    return out;
                }
                let burst_len = (n / 8).max(1);
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB1A5_7000_0000_0001);
                let start = if n > burst_len {
                    rng.gen_range(0..n - burst_len)
                } else {
                    0
                };
                let amp = level * peak;
                for x in out.iter_mut().skip(start).take(burst_len) {
                    *x += amp * crate::body::randn(&mut rng);
                }
                out
            }
        }
    }
}

/// Linear interpolation of `signal` at fractional index `t` (zero
/// outside the support), local so fault injection stays self-contained.
fn sample_linear(signal: &[f64], t: f64) -> f64 {
    if t < 0.0 {
        return 0.0;
    }
    let i = t.floor() as usize;
    if i + 1 >= signal.len() {
        return if i < signal.len() { signal[i] } else { 0.0 };
    }
    let frac = t - i as f64;
    signal[i] * (1.0 - frac) + signal[i + 1] * frac
}

/// A deterministic assignment of faults to microphones.
///
/// # Example
///
/// ```
/// use echo_sim::fault::{ChannelFault, FaultPlan};
/// use echo_sim::BeepCapture;
///
/// let capture = BeepCapture::new(vec![vec![1.0, -1.0, 0.5]; 3], 48_000.0, 1);
/// let plan = FaultPlan::new(7).with_fault(1, ChannelFault::Dead);
/// let damaged = plan.apply(&capture);
/// assert_eq!(damaged.channel(0), capture.channel(0));
/// assert!(damaged.channel(1).iter().all(|&x| x == 0.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// `(microphone index, fault)` pairs.
    pub faults: Vec<(usize, ChannelFault)>,
    /// Base seed for the faults' randomness.
    pub seed: u64,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            faults: Vec::new(),
            seed,
        }
    }

    /// The no-fault plan (what a healthy device experiences).
    pub fn none() -> Self {
        Self::new(0)
    }

    /// Adds a fault on microphone `mic`.
    pub fn with_fault(mut self, mic: usize, fault: ChannelFault) -> Self {
        self.faults.push((mic, fault));
        self
    }

    /// The same fault family and severity on every listed microphone —
    /// the shape the fault-sweep experiment enumerates.
    pub fn uniform(kind: FaultKind, severity: f64, mics: &[usize], seed: u64) -> Self {
        FaultPlan {
            faults: mics
                .iter()
                .map(|&m| (m, ChannelFault::from_severity(kind, severity)))
                .collect(),
            seed,
        }
    }

    /// `true` when no microphone is faulted.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The distinct faulted microphone indices, ascending.
    pub fn faulted_mics(&self) -> Vec<usize> {
        let mut mics: Vec<usize> = self.faults.iter().map(|(m, _)| *m).collect();
        mics.sort_unstable();
        mics.dedup();
        mics
    }

    /// Applies every fault to its channel, leaving the rest untouched.
    /// Deterministic in `(plan, capture)`; faults on the same microphone
    /// compose in plan order.
    ///
    /// # Panics
    ///
    /// Panics if a fault names a microphone the capture does not have.
    pub fn apply(&self, capture: &BeepCapture) -> BeepCapture {
        if self.is_empty() {
            return capture.clone();
        }
        echo_obs::counter!("sim.fault_channels").add(self.faults.len() as u64);
        let mut channels: Vec<Vec<f64>> = capture.channels().to_vec();
        for (mic, fault) in &self.faults {
            assert!(
                *mic < channels.len(),
                "fault names microphone {mic} but the capture has {} channels",
                channels.len()
            );
            let channel_seed = self
                .seed
                .wrapping_add((*mic as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            channels[*mic] = fault.apply_channel(&channels[*mic], channel_seed);
        }
        BeepCapture::new(channels, capture.sample_rate(), capture.preroll())
    }

    /// Applies the plan to a whole beep train — the same hardware fault
    /// damages every beep of a session.
    pub fn apply_train(&self, captures: &[BeepCapture]) -> Vec<BeepCapture> {
        self.apply_train_traced(echo_obs::TraceCtx::none(), captures)
    }

    /// [`FaultPlan::apply_train`] recording a `sim.fault_inject` trace
    /// span under `ctx`, tagged with the injected-microphone bitmask so
    /// a trace of a fault experiment shows *which* channels were
    /// damaged before the pipeline saw them.
    pub fn apply_train_traced(
        &self,
        ctx: echo_obs::TraceCtx,
        captures: &[BeepCapture],
    ) -> Vec<BeepCapture> {
        if self.is_empty() {
            return captures.iter().map(|c| self.apply(c)).collect();
        }
        echo_obs::counter!("sim.fault_trains").inc();
        let mut tspan = ctx.child("sim.fault_inject");
        let mask = self
            .faulted_mics()
            .iter()
            .fold(0u64, |m, &mic| m | 1u64 << mic.min(63));
        tspan.attr_u64("fault_mask", mask);
        tspan.attr_u64("beeps", captures.len() as u64);
        captures.iter().map(|c| self.apply(c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic 4-channel capture with per-channel structure:
    /// a windowed tone plus a distinct amplitude per channel.
    fn capture() -> BeepCapture {
        let n = 512;
        let channels: Vec<Vec<f64>> = (0..4)
            .map(|ch| {
                let amp = 0.5 + 0.2 * ch as f64;
                (0..n)
                    .map(|t| {
                        amp * (0.07 * t as f64).sin() * (-((t as f64) - 200.0).abs() / 150.0).exp()
                    })
                    .collect()
            })
            .collect();
        BeepCapture::new(channels, 48_000.0, 64)
    }

    fn energy(xs: &[f64]) -> f64 {
        xs.iter().map(|x| x * x).sum()
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let cap = capture();
        for kind in FaultKind::ALL {
            let plan = FaultPlan::uniform(kind, 0.8, &[0, 2], 42);
            assert_eq!(
                plan.apply(&cap),
                plan.apply(&cap),
                "{kind:?} must be deterministic"
            );
        }
    }

    #[test]
    fn burst_seed_changes_the_damage() {
        let cap = capture();
        let a = FaultPlan::uniform(FaultKind::BurstInterference, 1.0, &[1], 1).apply(&cap);
        let b = FaultPlan::uniform(FaultKind::BurstInterference, 1.0, &[1], 2).apply(&cap);
        assert_ne!(a.channel(1), b.channel(1));
    }

    #[test]
    fn dead_channel_has_zero_energy_and_spares_the_rest() {
        let cap = capture();
        let out = FaultPlan::new(5)
            .with_fault(2, ChannelFault::Dead)
            .apply(&cap);
        assert_eq!(energy(out.channel(2)), 0.0);
        for ch in [0, 1, 3] {
            assert_eq!(
                out.channel(ch),
                cap.channel(ch),
                "channel {ch} must be untouched"
            );
        }
    }

    #[test]
    fn clipping_bounds_the_amplitude() {
        let cap = capture();
        let fraction = 0.3;
        let out = FaultPlan::new(5)
            .with_fault(1, ChannelFault::Clipping { fraction })
            .apply(&cap);
        let peak = cap.channel(1).iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        let rail = fraction * peak;
        assert!(out.channel(1).iter().all(|&x| x.abs() <= rail + 1e-15));
        // It actually clipped something.
        assert!(out.channel(1).iter().any(|&x| x.abs() == rail));
    }

    #[test]
    fn clock_skew_preserves_length_and_metadata() {
        let cap = capture();
        let out = FaultPlan::new(5)
            .with_fault(0, ChannelFault::ClockSkew { ppm: 5_000.0 })
            .apply(&cap);
        assert_eq!(out.len(), cap.len());
        assert_eq!(out.sample_rate(), cap.sample_rate());
        assert_eq!(out.preroll(), cap.preroll());
        assert_ne!(out.channel(0), cap.channel(0), "skew must move samples");
    }

    #[test]
    fn gain_drift_fades_the_tail_but_not_the_head() {
        let cap = capture();
        let out = FaultPlan::new(5)
            .with_fault(3, ChannelFault::GainDrift { db: -30.0 })
            .apply(&cap);
        assert_eq!(
            out.channel(3)[0],
            cap.channel(3)[0],
            "gain is 0 dB at t = 0"
        );
        let n = cap.len();
        let tail = |c: &BeepCapture| energy(&c.channel(3)[3 * n / 4..]);
        assert!(tail(&out) < tail(&cap) * 0.1, "tail must fade hard");
    }

    #[test]
    fn dc_offset_shifts_the_mean_by_the_requested_pedestal() {
        let cap = capture();
        let scale = 1.5;
        let out = FaultPlan::new(5)
            .with_fault(0, ChannelFault::DcOffset { scale })
            .apply(&cap);
        let peak = cap.channel(0).iter().fold(0.0f64, |a, &x| a.max(x.abs()));
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let shift = mean(out.channel(0)) - mean(cap.channel(0));
        assert!((shift - scale * peak).abs() < 1e-12);
    }

    #[test]
    fn burst_raises_energy_only_inside_one_window() {
        let cap = capture();
        let out = FaultPlan::new(9)
            .with_fault(1, ChannelFault::BurstInterference { level: 4.0 })
            .apply(&cap);
        assert!(energy(out.channel(1)) > 2.0 * energy(cap.channel(1)));
        // The burst covers one eighth of the window: most samples are
        // untouched.
        let changed = out
            .channel(1)
            .iter()
            .zip(cap.channel(1))
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed <= cap.len() / 8 + 1, "changed {changed}");
        assert!(changed > 0);
    }

    #[test]
    fn severity_zero_is_nearly_harmless_severity_one_is_not() {
        let cap = capture();
        for kind in [
            FaultKind::GainDrift,
            FaultKind::ClockSkew,
            FaultKind::BurstInterference,
        ] {
            let mild = FaultPlan::uniform(kind, 0.0, &[0], 3).apply(&cap);
            let harsh = FaultPlan::uniform(kind, 1.0, &[0], 3).apply(&cap);
            let dist = |a: &BeepCapture| {
                a.channel(0)
                    .iter()
                    .zip(cap.channel(0))
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
            };
            assert!(
                dist(&mild) < dist(&harsh),
                "{kind:?}: severity must scale the damage"
            );
        }
    }

    #[test]
    fn apply_train_damages_every_beep() {
        let caps = vec![capture(), capture()];
        let plan = FaultPlan::uniform(FaultKind::Dead, 1.0, &[1], 0);
        let out = plan.apply_train(&caps);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| energy(c.channel(1)) == 0.0));
    }

    #[test]
    fn plan_helpers() {
        assert!(FaultPlan::none().is_empty());
        let plan = FaultPlan::uniform(FaultKind::Clipping, 0.5, &[4, 1, 1], 8);
        assert!(!plan.is_empty());
        assert_eq!(plan.faulted_mics(), vec![1, 4]);
        assert!(plan
            .faults
            .iter()
            .all(|(_, f)| f.kind() == FaultKind::Clipping));
    }

    #[test]
    #[should_panic(expected = "fault names microphone")]
    fn out_of_range_mic_panics() {
        let cap = capture();
        let _ = FaultPlan::new(0)
            .with_fault(9, ChannelFault::Dead)
            .apply(&cap);
    }
}
