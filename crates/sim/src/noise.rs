//! Ambient-noise generators.
//!
//! The paper tests in quiet rooms (~30 dB) and with music / chatter /
//! traffic noise played at ~50 dB from 1–2 m away (§VI-A-1). Each kind is
//! synthesised as spectrally shaped noise whose energy sits mostly below
//! 2 kHz — the very property the paper's 2–3 kHz band-pass exploits.
//!
//! Calibration: amplitudes are referenced to the probing beep, which is
//! emitted with unit amplitude at 1 m ≙ [`BEEP_SPL_AT_1M`] dB SPL.

use echo_dsp::filter::SosFilter;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::body::randn;

/// SPL (dB) assigned to the unit-amplitude probing beep at 1 m. All noise
/// levels are calibrated against this anchor.
pub const BEEP_SPL_AT_1M: f64 = 70.0;

/// Converts an SPL in dB to a linear RMS amplitude in simulation units.
pub fn amplitude_for_spl(db: f64) -> f64 {
    10f64.powf((db - BEEP_SPL_AT_1M) / 20.0)
}

/// The ambient-noise conditions evaluated in the paper (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NoiseKind {
    /// Quiet room, ~30 dB broadband floor.
    Quiet,
    /// Music playback: tonal + broadband content below ~1.8 kHz.
    Music,
    /// People chatting: speech-band noise with syllabic modulation.
    Chatter,
    /// Traffic: low-frequency rumble.
    Traffic,
}

impl NoiseKind {
    /// The paper's nominal level for this condition, dB SPL.
    pub fn nominal_spl(self) -> f64 {
        match self {
            NoiseKind::Quiet => 30.0,
            NoiseKind::Music | NoiseKind::Chatter | NoiseKind::Traffic => 50.0,
        }
    }

    /// All four conditions, in the paper's presentation order.
    pub fn all() -> [NoiseKind; 4] {
        [
            NoiseKind::Quiet,
            NoiseKind::Music,
            NoiseKind::Chatter,
            NoiseKind::Traffic,
        ]
    }

    /// Human-readable label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            NoiseKind::Quiet => "quiet",
            NoiseKind::Music => "music",
            NoiseKind::Chatter => "chatter",
            NoiseKind::Traffic => "traffic",
        }
    }
}

/// A calibrated ambient-noise generator.
///
/// # Example
///
/// ```
/// use echo_sim::noise::{NoiseGenerator, NoiseKind};
///
/// let gen = NoiseGenerator::new(NoiseKind::Music, 50.0, 48_000.0);
/// let array = echo_array::MicArray::respeaker_6();
/// let channels = gen.render(&array, 4_800, 123);
/// assert_eq!(channels.len(), 6);
/// assert_eq!(channels[0].len(), 4_800);
/// ```
#[derive(Debug, Clone)]
pub struct NoiseGenerator {
    kind: NoiseKind,
    spl_db: f64,
    sample_rate: f64,
}

impl NoiseGenerator {
    /// Creates a generator for `kind` at `spl_db` dB, sampled at
    /// `sample_rate` Hz.
    ///
    /// # Panics
    ///
    /// Panics if the sample rate is not positive.
    pub fn new(kind: NoiseKind, spl_db: f64, sample_rate: f64) -> Self {
        assert!(sample_rate > 0.0, "sample rate must be positive");
        NoiseGenerator {
            kind,
            spl_db,
            sample_rate,
        }
    }

    /// Generator at the paper's nominal level for `kind`.
    pub fn nominal(kind: NoiseKind, sample_rate: f64) -> Self {
        Self::new(kind, kind.nominal_spl(), sample_rate)
    }

    /// The noise kind.
    pub fn kind(&self) -> NoiseKind {
        self.kind
    }

    /// The calibrated level in dB SPL.
    pub fn spl_db(&self) -> f64 {
        self.spl_db
    }

    /// Renders `mics` noise channels of `n` samples as a *diffuse field*:
    /// several independent plane-wave streams arrive from random far-field
    /// directions, each reaching microphone `m` with its physical TDOA for
    /// the given array geometry, plus a small independent (sensor-local)
    /// component. This gives the spatial coherence structure a real room
    /// exhibits — unlike a naive "shared channel" model, whose zero-delay
    /// coherence looks like a single source at zenith and invites an MVDR
    /// null that would also swallow nearby look directions.
    pub fn render(&self, array: &echo_array::MicArray, n: usize, seed: u64) -> Vec<Vec<f64>> {
        use echo_dsp::interp::sample_linear;

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0150_0000_0000);
        let mics = array.len();
        let fs = self.sample_rate;
        // Margin so negative TDOAs stay in range.
        let margin = 32usize;
        let streams = 8;
        let mut sources: Vec<(Vec<f64>, echo_array::Direction)> = Vec::with_capacity(streams);
        for _ in 0..streams {
            let azimuth = rng.gen_range(0.0..std::f64::consts::TAU);
            let elevation = rng.gen_range(0.6..2.2);
            let stream = self.render_mono(n + 2 * margin, &mut rng);
            sources.push((stream, echo_array::Direction::new(azimuth, elevation)));
        }
        (0..mics)
            .map(|m| {
                let indep = self.render_mono(n, &mut rng);
                let mut ch = vec![0.0f64; n];
                for (stream, dir) in &sources {
                    let tau = array.tdoa(m, *dir, echo_dsp::SPEED_OF_SOUND) * fs;
                    for (t, v) in ch.iter_mut().enumerate() {
                        *v += sample_linear(stream, t as f64 + margin as f64 + tau);
                    }
                }
                let norm = (streams as f64).sqrt();
                for (v, i) in ch.iter_mut().zip(indep.iter()) {
                    *v = *v / norm + 0.2 * i;
                }
                scale_to_rms(ch, amplitude_for_spl(self.spl_db))
            })
            .collect()
    }

    /// Renders a single unscaled channel with this kind's spectral shape.
    fn render_mono(&self, n: usize, rng: &mut ChaCha8Rng) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        let fs = self.sample_rate;
        let white: Vec<f64> = (0..n).map(|_| randn(rng)).collect();
        match self.kind {
            NoiseKind::Quiet => {
                // Flat room tone with a gentle low-frequency tilt.
                let lp = SosFilter::butterworth_lowpass(1, 6_000.0_f64.min(fs * 0.45), fs);
                lp.filter(&white)
            }
            NoiseKind::Traffic => {
                // Rumble: energy concentrated below ~500 Hz.
                let lp = SosFilter::butterworth_lowpass(3, 500.0, fs);
                lp.filter(&white)
            }
            NoiseKind::Chatter => {
                // Speech band with syllabic (~4 Hz) amplitude modulation;
                // conversational speech rolls off steeply above ~1.5 kHz
                // (the paper's premise: ambient noise sits below 2 kHz).
                let bp = SosFilter::butterworth_bandpass(6, 150.0, 1_400.0, fs);
                let mut shaped = bp.filter(&white);
                let mod_rate = 4.0;
                let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                for (i, v) in shaped.iter_mut().enumerate() {
                    let t = i as f64 / fs;
                    *v *= 0.6 + 0.4 * (std::f64::consts::TAU * mod_rate * t + phase).sin();
                }
                shaped
            }
            NoiseKind::Music => {
                // Tonal partials under 1.4 kHz over a coloured noise bed.
                let lp = SosFilter::butterworth_lowpass(4, 1_500.0, fs);
                let mut bed = lp.filter(&white);
                let n_tones = 5;
                for _ in 0..n_tones {
                    let f = rng.gen_range(110.0..1_400.0);
                    let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                    let amp = rng.gen_range(0.4..1.0);
                    for (i, v) in bed.iter_mut().enumerate() {
                        let t = i as f64 / fs;
                        *v += amp * (std::f64::consts::TAU * f * t + phase).sin();
                    }
                }
                bed
            }
        }
    }
}

fn scale_to_rms(mut xs: Vec<f64>, target_rms: f64) -> Vec<f64> {
    let rms = (xs.iter().map(|x| x * x).sum::<f64>() / xs.len().max(1) as f64).sqrt();
    if rms > 0.0 {
        let k = target_rms / rms;
        for x in &mut xs {
            *x *= k;
        }
    }
    xs
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_dsp::fft::{bin_frequency, magnitude_spectrum};
    use echo_dsp::stats::rms;

    const FS: f64 = 48_000.0;

    fn arr() -> echo_array::MicArray {
        echo_array::MicArray::respeaker_6()
    }

    fn band_energy_fraction(signal: &[f64], lo: f64, hi: f64) -> f64 {
        let spec = magnitude_spectrum(signal);
        let n = signal.len();
        let total: f64 = spec[..n / 2].iter().map(|v| v * v).sum();
        let band: f64 = spec[..n / 2]
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = bin_frequency(*k, n, FS);
                f >= lo && f <= hi
            })
            .map(|(_, v)| v * v)
            .sum();
        band / total
    }

    #[test]
    fn spl_calibration_anchors_at_beep_level() {
        assert!((amplitude_for_spl(BEEP_SPL_AT_1M) - 1.0).abs() < 1e-12);
        assert!((amplitude_for_spl(BEEP_SPL_AT_1M - 20.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rendered_rms_matches_requested_level() {
        for kind in NoiseKind::all() {
            let gen = NoiseGenerator::new(kind, 50.0, FS);
            let ch = gen.render(&arr(), 48_000, 5);
            let target = amplitude_for_spl(50.0);
            for c in &ch {
                assert!(
                    (rms(c) - target).abs() < 0.05 * target,
                    "{kind:?}: rms {} vs {target}",
                    rms(c)
                );
            }
        }
    }

    #[test]
    fn traffic_energy_is_low_frequency() {
        let gen = NoiseGenerator::nominal(NoiseKind::Traffic, FS);
        let ch = gen.render(&arr(), 48_000, 11);
        assert!(band_energy_fraction(&ch[0], 0.0, 800.0) > 0.95);
    }

    #[test]
    fn music_and_chatter_sit_mostly_below_2khz() {
        for kind in [NoiseKind::Music, NoiseKind::Chatter] {
            let gen = NoiseGenerator::nominal(kind, FS);
            let ch = gen.render(&arr(), 48_000, 13);
            let below = band_energy_fraction(&ch[0], 0.0, 2_000.0);
            assert!(below > 0.85, "{kind:?}: {below}");
        }
    }

    #[test]
    fn probing_band_leakage_is_small() {
        // The 2–3 kHz band-pass is the paper's noise defence; the noise
        // models must leave that band mostly clean.
        for kind in [NoiseKind::Music, NoiseKind::Chatter, NoiseKind::Traffic] {
            let gen = NoiseGenerator::nominal(kind, FS);
            let ch = gen.render(&arr(), 48_000, 17);
            let in_band = band_energy_fraction(&ch[0], 2_000.0, 3_000.0);
            assert!(in_band < 0.1, "{kind:?}: {in_band}");
        }
    }

    #[test]
    fn diffuse_field_coherence_follows_wavelength() {
        // Low-frequency noise (traffic, λ ≫ aperture) is highly coherent
        // across adjacent mics; broadband room tone decorrelates.
        let traffic = NoiseGenerator::nominal(NoiseKind::Traffic, FS);
        let ch = traffic.render(&arr(), 19_200, 23);
        let corr_traffic = echo_dsp::correlate::normalized_correlation(&ch[0], &ch[1]);
        assert!(corr_traffic > 0.8, "traffic coherence {corr_traffic}");
        assert!(corr_traffic < 0.9999, "channels must not be identical");

        let quiet = NoiseGenerator::nominal(NoiseKind::Quiet, FS);
        let chq = quiet.render(&arr(), 19_200, 23);
        let corr_quiet = echo_dsp::correlate::normalized_correlation(&chq[0], &chq[1]);
        assert!(
            corr_quiet < corr_traffic,
            "broadband coherence {corr_quiet} should fall below low-frequency {corr_traffic}"
        );
    }

    #[test]
    fn rendering_is_deterministic_in_the_seed() {
        let gen = NoiseGenerator::nominal(NoiseKind::Chatter, FS);
        assert_eq!(gen.render(&arr(), 1_000, 7), gen.render(&arr(), 1_000, 7));
        assert_ne!(gen.render(&arr(), 1_000, 7), gen.render(&arr(), 1_000, 8));
    }

    #[test]
    fn zero_length_render_is_empty() {
        let gen = NoiseGenerator::nominal(NoiseKind::Quiet, FS);
        let ch = gen.render(&arr(), 0, 1);
        assert!(ch.iter().all(|c| c.is_empty()));
    }

    #[test]
    fn labels_and_levels() {
        assert_eq!(NoiseKind::Quiet.nominal_spl(), 30.0);
        assert_eq!(NoiseKind::Music.nominal_spl(), 50.0);
        assert_eq!(NoiseKind::Traffic.label(), "traffic");
        assert_eq!(NoiseKind::all().len(), 4);
    }
}
