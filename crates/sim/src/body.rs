//! Parametric human-body scatterer model.
//!
//! The paper's biometric signal is the pattern of echoes bouncing off a
//! specific person's body. This module substitutes volunteers with a
//! parametric model: each user is a stable cloud of acoustic point
//! scatterers sampled over a torso + head silhouette whose geometry
//! (height, shoulder width, torso curvature, head size) and surface
//! reflectivity texture derive deterministically from a per-user seed.
//!
//! What the classifier exploits in the real system — inter-user variation
//! that is stable within a user — is exactly what this model produces:
//! the same seed always yields the same body, while session drift
//! (clothing, posture) and per-beep sway (breathing, balance) add the
//! realistic intra-user noise the paper's multi-session protocol measures.

use echo_array::Vec3;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An acoustic point scatterer: a surface patch that re-radiates the beep.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scatterer {
    /// Position in array coordinates (origin at the array centre).
    pub position: Vec3,
    /// Pressure reflectivity of the patch (dimensionless, referenced to
    /// 1 m legs).
    pub reflectivity: f64,
}

/// Biological sex used to condition body-size distributions (matches the
/// paper's Table I demographics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Gender {
    /// Male body-size priors.
    Male,
    /// Female body-size priors.
    Female,
}

/// Gross body geometry for one user.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BodyParameters {
    /// Standing height in metres.
    pub height: f64,
    /// Shoulder (bi-acromial + deltoid) width in metres.
    pub shoulder_width: f64,
    /// Front-surface curvature depth of the torso in metres.
    pub torso_depth: f64,
    /// Head radius in metres.
    pub head_radius: f64,
    /// Total body reflectivity budget (distributed over all scatterers).
    pub total_reflectivity: f64,
}

impl BodyParameters {
    /// Samples plausible adult parameters from `rng`, conditioned on
    /// `gender`.
    pub fn sample(rng: &mut impl Rng, gender: Gender) -> Self {
        let (h_mu, h_sd, w_mu, w_sd) = match gender {
            Gender::Male => (1.75, 0.06, 0.46, 0.03),
            Gender::Female => (1.62, 0.05, 0.40, 0.025),
        };
        BodyParameters {
            height: (h_mu + h_sd * randn(rng)).clamp(1.45, 2.00),
            shoulder_width: (w_mu + w_sd * randn(rng)).clamp(0.32, 0.56),
            torso_depth: (0.10 + 0.02 * randn(rng)).clamp(0.05, 0.16),
            head_radius: (0.095 + 0.007 * randn(rng)).clamp(0.075, 0.115),
            total_reflectivity: (1.0 + 0.15 * randn(rng)).clamp(0.5, 1.6),
        }
    }
}

/// Where a user stands relative to the array.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Placement {
    /// Horizontal user–array distance along +y, metres (the paper's D_p).
    pub distance: f64,
    /// Lateral offset along x, metres.
    pub lateral: f64,
    /// Array height above the floor, metres (tabletop smart speaker).
    pub array_height: f64,
}

impl Placement {
    /// A user standing directly in front of the array at `distance`
    /// metres, with the array on a 0.9 m tabletop — the paper's §V-B
    /// assumption ("users intentionally stand directly in front of the
    /// array").
    ///
    /// # Panics
    ///
    /// Panics if `distance` is not positive and finite.
    pub fn standing_front(distance: f64) -> Self {
        assert!(
            distance.is_finite() && distance > 0.0,
            "distance must be positive"
        );
        Placement {
            distance,
            lateral: 0.0,
            array_height: 0.9,
        }
    }
}

/// One cosine component of the surface-reflectivity texture field.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct TextureWave {
    fx: f64,
    fz: f64,
    phase: f64,
    amp: f64,
}

/// A canonical (unplaced) body scatterer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
struct TemplatePoint {
    /// Lateral offset from the body midline, metres.
    x: f64,
    /// Height above the floor, metres.
    z: f64,
    /// Front-surface offset toward the array (positive = closer), metres.
    bulge: f64,
    /// Reflectivity share.
    reflectivity: f64,
}

/// A user's body: a deterministic scatterer template plus jitter models.
///
/// # Example
///
/// ```
/// use echo_sim::body::{BodyModel, Placement};
///
/// let a = BodyModel::from_seed(1);
/// let b = BodyModel::from_seed(1);
/// // Same seed → identical body.
/// assert_eq!(a.params(), b.params());
///
/// let placed = a.scatterers(&Placement::standing_front(0.7), 0, 0);
/// assert!(placed.len() > 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BodyModel {
    seed: u64,
    params: BodyParameters,
    template: Vec<TemplatePoint>,
}

/// Lateral grid resolution of the torso template.
const TORSO_COLS: usize = 17;
/// Vertical grid resolution of the torso template.
const TORSO_ROWS: usize = 27;
/// Points sampled on the head disc.
const HEAD_POINTS: usize = 81;

impl BodyModel {
    /// Builds a user's body from a seed: parameters, silhouette and
    /// reflectivity texture are all deterministic functions of it.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0D7_CAFE_0000_0000);
        let gender = if rng.gen_bool(0.5) {
            Gender::Male
        } else {
            Gender::Female
        };
        let params = BodyParameters::sample(&mut rng, gender);
        Self::from_parameters(params, seed)
    }

    /// Builds a user's body from a seed with gender-conditioned sizes
    /// (used by the Table I population).
    pub fn from_seed_gendered(seed: u64, gender: Gender) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB0D7_CAFE_0000_0000);
        let params = BodyParameters::sample(&mut rng, gender);
        Self::from_parameters(params, seed)
    }

    /// Builds a body from explicit parameters; the seed still controls
    /// the reflectivity texture.
    pub fn from_parameters(params: BodyParameters, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7E87_0000_5EED_0001);
        let waves: Vec<TextureWave> = (0..8)
            .map(|_| TextureWave {
                fx: rng.gen_range(2.0..16.0),
                fz: rng.gen_range(2.0..16.0),
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
                amp: rng.gen_range(0.15..0.5),
            })
            .collect();
        let texture = |x: f64, z: f64| -> f64 {
            let s: f64 = waves
                .iter()
                .map(|w| w.amp * (w.fx * x + w.fz * z + w.phase).cos())
                .sum();
            s.exp()
        };

        let h = params.height;
        let hip_z = 0.50 * h;
        let shoulder_z = 0.82 * h;
        let head_z = 0.93 * h;

        let mut template = Vec::new();
        // Torso: tapered front surface between hip and shoulders.
        for row in 0..TORSO_ROWS {
            let fz = row as f64 / (TORSO_ROWS - 1) as f64;
            let z = hip_z + fz * (shoulder_z - hip_z);
            // Width tapers toward the hips a little.
            let half_w = params.shoulder_width / 2.0 * (0.80 + 0.20 * fz);
            for col in 0..TORSO_COLS {
                let fx = col as f64 / (TORSO_COLS - 1) as f64 * 2.0 - 1.0;
                let x = fx * half_w;
                // Convex chest: centre of the torso sits closest to the
                // array.
                let bulge = params.torso_depth * (1.0 - fx * fx).max(0.0);
                template.push(TemplatePoint {
                    x,
                    z,
                    bulge,
                    reflectivity: texture(x, z),
                });
            }
        }
        // Head: a disc of points with spherical bulge.
        let side = (HEAD_POINTS as f64).sqrt().ceil() as usize;
        for i in 0..side {
            for j in 0..side {
                let fx = i as f64 / (side - 1) as f64 * 2.0 - 1.0;
                let fz = j as f64 / (side - 1) as f64 * 2.0 - 1.0;
                if fx * fx + fz * fz > 1.0 {
                    continue;
                }
                let x = fx * params.head_radius;
                let z = head_z + fz * params.head_radius;
                let bulge = params.head_radius * (1.0 - fx * fx - fz * fz).max(0.0).sqrt();
                template.push(TemplatePoint {
                    x,
                    z,
                    bulge,
                    reflectivity: 0.8 * texture(x, z),
                });
            }
        }

        // User-specific surface micro-structure: real bodies are not
        // smooth grids, and this per-user scatterer jitter is what makes
        // one user's echo speckle pattern stably different from
        // another's (it is fixed per user, unlike per-beep sway).
        for p in &mut template {
            p.x += 0.008 * randn(&mut rng);
            p.z += 0.008 * randn(&mut rng);
            p.bulge = (p.bulge + 0.005 * randn(&mut rng)).max(0.0);
        }

        // Normalise the reflectivity budget.
        let total: f64 = template.iter().map(|p| p.reflectivity).sum();
        for p in &mut template {
            p.reflectivity *= params.total_reflectivity / total;
        }

        BodyModel {
            seed,
            params,
            template,
        }
    }

    /// The user's gross body parameters.
    pub fn params(&self) -> BodyParameters {
        self.params
    }

    /// The seed this body was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scatterers in the template.
    pub fn num_scatterers(&self) -> usize {
        self.template.len()
    }

    /// Places the body in array coordinates and applies session drift and
    /// per-beep sway.
    ///
    /// * `session` — multi-day session index (the paper's Sessions 1–3):
    ///   controls clothing/posture drift that is stable within a session.
    /// * `beep` — beep index: controls small per-observation sway
    ///   (breathing, balance).
    ///
    /// The body's front surface faces the array: scatterer `y` is
    /// `placement.distance − bulge` (the chest bulges *toward* the array).
    pub fn scatterers(&self, placement: &Placement, session: u32, beep: u64) -> Vec<Scatterer> {
        // Session drift: clothing changes the reflectivity slightly and
        // the standing pose shifts by a few millimetres.
        let mut srng =
            ChaCha8Rng::seed_from_u64(self.seed ^ 0x5E55_0000 ^ ((session as u64) << 32));
        let s_dx = 0.005 * randn(&mut srng);
        let s_dz = 0.006 * randn(&mut srng);
        let s_refl = (1.0 + 0.05 * randn(&mut srng)).clamp(0.8, 1.2);
        let cloth = TextureWave {
            fx: srng.gen_range(3.0..10.0),
            fz: srng.gen_range(3.0..10.0),
            phase: srng.gen_range(0.0..std::f64::consts::TAU),
            amp: 0.08,
        };

        // Per-beep sway: breathing moves the chest along y (several
        // millimetres — this is what decorrelates echo speckle between
        // beeps and lets the paper's Eq. 10 averaging smooth the
        // envelope), balance sways the whole body laterally.
        let mut brng = ChaCha8Rng::seed_from_u64(
            self.seed ^ 0xBEEB_0000_0000 ^ ((session as u64) << 48) ^ beep,
        );
        let b_dx = 0.001 * randn(&mut brng);
        let b_dy = 0.004 * randn(&mut brng);
        let b_dz = 0.001 * randn(&mut brng);

        let z0 = -placement.array_height;
        self.template
            .iter()
            .map(|p| {
                let refl_mod = s_refl
                    * (1.0 + cloth.amp * (cloth.fx * p.x + cloth.fz * p.z + cloth.phase).cos());
                Scatterer {
                    position: Vec3::new(
                        placement.lateral + p.x + s_dx + b_dx,
                        placement.distance - p.bulge + b_dy,
                        z0 + p.z + s_dz + b_dz,
                    ),
                    reflectivity: p.reflectivity * refl_mod,
                }
            })
            .collect()
    }
}

/// Standard-normal sample via Box–Muller (the `rand` crate alone has no
/// normal distribution).
pub(crate) fn randn(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_deterministic() {
        let a = BodyModel::from_seed(7);
        let b = BodyModel::from_seed(7);
        assert_eq!(a, b);
        let pa = a.scatterers(&Placement::standing_front(0.7), 1, 3);
        let pb = b.scatterers(&Placement::standing_front(0.7), 1, 3);
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = BodyModel::from_seed(1);
        let b = BodyModel::from_seed(2);
        assert_ne!(a.params(), b.params());
    }

    #[test]
    fn template_covers_upper_body_span() {
        let body = BodyModel::from_seed(3);
        let placed = body.scatterers(&Placement::standing_front(0.7), 0, 0);
        let h = body.params().height;
        let zs: Vec<f64> = placed.iter().map(|s| s.position.z).collect();
        let z_min = zs.iter().cloned().fold(f64::INFINITY, f64::min);
        let z_max = zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Hip (~0.5 H) to top of head, relative to a 0.9 m tabletop.
        assert!(z_min < 0.5 * h - 0.9 + 0.05, "z_min = {z_min}");
        assert!(z_max > 0.9 * h - 0.9 - 0.05, "z_max = {z_max}");
    }

    #[test]
    fn scatterers_sit_at_the_requested_distance() {
        let body = BodyModel::from_seed(4);
        let placed = body.scatterers(&Placement::standing_front(0.7), 0, 0);
        for s in &placed {
            // Front surface: between (distance − depth − jitter) and distance.
            assert!(
                s.position.y > 0.7 - 0.2 && s.position.y < 0.72,
                "y = {}",
                s.position.y
            );
        }
    }

    #[test]
    fn reflectivity_budget_is_respected() {
        let body = BodyModel::from_seed(5);
        let placed = body.scatterers(&Placement::standing_front(0.7), 0, 0);
        let total: f64 = placed.iter().map(|s| s.reflectivity).sum();
        let budget = body.params().total_reflectivity;
        // Session/clothing modulation keeps the total within ~±25%.
        assert!(
            (total - budget).abs() < 0.25 * budget,
            "total {total} vs budget {budget}"
        );
        assert!(placed.iter().all(|s| s.reflectivity > 0.0));
    }

    #[test]
    fn per_beep_sway_is_small_but_nonzero() {
        let body = BodyModel::from_seed(6);
        let p = Placement::standing_front(0.7);
        let a = body.scatterers(&p, 0, 0);
        let b = body.scatterers(&p, 0, 1);
        let max_shift = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.position.distance_to(y.position))
            .fold(0.0f64, f64::max);
        assert!(max_shift > 1e-6, "beeps should differ");
        assert!(max_shift < 0.02, "sway too large: {max_shift}");
    }

    #[test]
    fn session_drift_exceeds_beep_sway() {
        let body = BodyModel::from_seed(8);
        let p = Placement::standing_front(0.7);
        let s0 = body.scatterers(&p, 0, 0);
        let s1 = body.scatterers(&p, 2, 0);
        let refl_change: f64 = s0
            .iter()
            .zip(&s1)
            .map(|(a, b)| (a.reflectivity - b.reflectivity).abs() / a.reflectivity)
            .sum::<f64>()
            / s0.len() as f64;
        assert!(refl_change > 0.005, "sessions should drift: {refl_change}");
    }

    #[test]
    fn gendered_sampling_shifts_the_mean() {
        let mut hm = 0.0;
        let mut hf = 0.0;
        let n = 200;
        for i in 0..n {
            hm += BodyModel::from_seed_gendered(i, Gender::Male)
                .params()
                .height;
            hf += BodyModel::from_seed_gendered(i, Gender::Female)
                .params()
                .height;
        }
        assert!(hm / n as f64 > hf / n as f64 + 0.05);
    }

    #[test]
    fn randn_has_roughly_unit_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let xs: Vec<f64> = (0..20_000).map(|_| randn(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.05, "var = {var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn placement_rejects_bad_distance() {
        let _ = Placement::standing_front(-1.0);
    }
}
