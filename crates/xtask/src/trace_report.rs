//! `cargo xtask trace-report` — offline analysis of a flight-recorder
//! trace written by `--trace-out`.
//!
//! The input is the JSONL stream `echo_obs::export::trace_jsonl`
//! produces: span lines (hierarchical stage spans) and audit lines (one
//! per authentication decision), discriminated by `"type"`. The report
//! prints per-stage statistics with critical-path attribution, the
//! slowest traces, and every failed (rejected) authentication attempt.
//! `--chrome <out>` additionally re-exports the spans as Chrome
//! trace-event JSON loadable in Perfetto (`ui.perfetto.dev`).

use crate::jsonv::Json;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::exit;

/// One span line, decoded from JSONL.
#[derive(Debug, Clone)]
struct Span {
    trace: u64,
    span: u64,
    parent: Option<u64>,
    name: String,
    lidx: u64,
    start_ns: u64,
    dur_ns: u64,
    seq: u64,
    attrs: Vec<(String, Json)>,
}

/// One audit line, decoded from JSONL.
#[derive(Debug, Clone)]
struct Audit {
    trace: u64,
    claimed_user: Option<u64>,
    retry_index: u64,
    degraded_mask: u64,
    rejected: bool,
    reject_reason: String,
}

pub fn trace_report(args: &[String]) {
    let mut file: Option<String> = None;
    let mut chrome_out: Option<String> = None;
    let mut top = 5usize;
    let mut selftest = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--chrome" => chrome_out = Some(crate::required_value(&mut it, "--chrome")),
            "--top" => {
                let v = crate::required_value(&mut it, "--top");
                top = v.parse().unwrap_or_else(|_| {
                    eprintln!("--top wants a number, got `{v}`");
                    exit(2);
                });
            }
            "--selftest" => selftest = true,
            other if file.is_none() && !other.starts_with("--") => file = Some(other.to_string()),
            other => {
                eprintln!("unknown trace-report argument `{other}`");
                exit(2);
            }
        }
    }
    if selftest {
        trace_report_selftest();
        return;
    }
    let Some(file) = file else {
        eprintln!("usage: cargo xtask trace-report <trace.jsonl> [--chrome <out>] [--top <n>]");
        exit(2);
    };
    let text = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("could not read {file}: {e}");
        exit(1);
    });
    let (spans, audits) = parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("could not parse {file}: {e}");
        exit(1);
    });
    print!("{}", render_report(&spans, &audits, top));
    if let Some(out) = chrome_out {
        write_chrome(&spans, Path::new(&out));
    }
}

/// Splits a JSONL document into decoded spans and audits, skipping
/// blank lines. Unknown `"type"` values are an error — the file is not
/// a flight-recorder trace.
fn parse_jsonl(text: &str) -> Result<(Vec<Span>, Vec<Audit>), String> {
    let mut spans = Vec::new();
    let mut audits = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = doc
            .get("type")
            .and_then(|t| match t {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?;
        match kind {
            "span" => spans.push(decode_span(&doc, lineno + 1)?),
            "audit" => audits.push(decode_audit(&doc, lineno + 1)?),
            other => return Err(format!("line {}: unknown type `{other}`", lineno + 1)),
        }
    }
    Ok((spans, audits))
}

fn field_u64(doc: &Json, key: &str, lineno: usize) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .map(|v| v as u64)
        .ok_or_else(|| format!("line {lineno}: missing numeric \"{key}\""))
}

fn field_str(doc: &Json, key: &str, lineno: usize) -> Result<String, String> {
    match doc.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(format!("line {lineno}: missing string \"{key}\"")),
    }
}

/// Span/parent ids are 16-digit hex strings in the JSONL (64-bit hashes
/// exceed JSON's exact-integer range).
fn hex_id(doc: &Json, key: &str, lineno: usize) -> Result<Option<u64>, String> {
    match doc.get(key) {
        Some(Json::Str(s)) => u64::from_str_radix(s, 16)
            .map(Some)
            .map_err(|e| format!("line {lineno}: bad hex id \"{key}\": {e}")),
        Some(Json::Null) | None => Ok(None),
        Some(_) => Err(format!("line {lineno}: \"{key}\" is neither hex nor null")),
    }
}

fn decode_span(doc: &Json, lineno: usize) -> Result<Span, String> {
    let attrs = match doc.get("attrs") {
        Some(Json::Obj(members)) => members.clone(),
        _ => Vec::new(),
    };
    Ok(Span {
        trace: field_u64(doc, "trace", lineno)?,
        span: hex_id(doc, "span", lineno)?
            .ok_or_else(|| format!("line {lineno}: missing \"span\""))?,
        parent: hex_id(doc, "parent", lineno)?,
        name: field_str(doc, "name", lineno)?,
        lidx: field_u64(doc, "lidx", lineno)?,
        start_ns: field_u64(doc, "start_ns", lineno)?,
        dur_ns: field_u64(doc, "dur_ns", lineno)?,
        seq: field_u64(doc, "seq", lineno)?,
        attrs,
    })
}

fn decode_audit(doc: &Json, lineno: usize) -> Result<Audit, String> {
    Ok(Audit {
        trace: field_u64(doc, "trace", lineno)?,
        claimed_user: doc
            .get("claimed_user")
            .and_then(Json::as_f64)
            .map(|v| v as u64),
        retry_index: field_u64(doc, "retry_index", lineno)?,
        degraded_mask: field_u64(doc, "degraded_mask", lineno)?,
        // Anything that is not an accept counts as a failed attempt —
        // biometric rejects and serving-layer `overloaded` sheds alike.
        rejected: field_str(doc, "verdict", lineno)? != "accepted",
        reject_reason: field_str(doc, "reject_reason", lineno)?,
    })
}

/// Per-stage aggregate.
#[derive(Debug, Default, Clone)]
struct StageStats {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    /// Nanoseconds this stage contributed to critical paths: for every
    /// span on a trace's critical path (the root-to-leaf chain through
    /// the longest child at each level), its duration minus the chain
    /// child's duration.
    critical_ns: u64,
}

/// Walks each trace's critical path — from the root, repeatedly descend
/// into the child with the largest duration — and attributes each
/// chain node's *exclusive* time (duration minus the chosen child's) to
/// its stage.
fn attribute_critical_path(spans: &[Span], stats: &mut BTreeMap<String, StageStats>) {
    let mut children: BTreeMap<(u64, u64), Vec<&Span>> = BTreeMap::new();
    for s in spans {
        if let Some(parent) = s.parent {
            children.entry((s.trace, parent)).or_default().push(s);
        }
    }
    for root in spans.iter().filter(|s| s.parent.is_none()) {
        let mut node = root;
        loop {
            let longest = children
                .get(&(node.trace, node.span))
                .and_then(|c| c.iter().max_by_key(|s| (s.dur_ns, s.seq)).copied());
            let child_ns = longest.map_or(0, |c| c.dur_ns);
            let entry = stats.entry(node.name.clone()).or_default();
            entry.critical_ns += node.dur_ns.saturating_sub(child_ns);
            match longest {
                Some(next) => node = next,
                None => break,
            }
        }
    }
}

/// Builds the textual report: per-stage table (sorted by critical-path
/// contribution), slowest traces, failed attempts.
fn render_report(spans: &[Span], audits: &[Audit], top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace report: {} spans, {} traces, {} audit records",
        spans.len(),
        {
            let mut traces: Vec<u64> = spans.iter().map(|s| s.trace).collect();
            traces.sort_unstable();
            traces.dedup();
            traces.len()
        },
        audits.len()
    );

    let mut stats: BTreeMap<String, StageStats> = BTreeMap::new();
    for s in spans {
        let entry = stats.entry(s.name.clone()).or_default();
        entry.count += 1;
        entry.total_ns += s.dur_ns;
        entry.max_ns = entry.max_ns.max(s.dur_ns);
    }
    attribute_critical_path(spans, &mut stats);

    let _ = writeln!(
        out,
        "\n  {:<28} {:>7} {:>12} {:>12} {:>12} {:>14}",
        "stage", "count", "total µs", "mean µs", "max µs", "critical µs"
    );
    let mut rows: Vec<(&String, &StageStats)> = stats.iter().collect();
    rows.sort_by(|a, b| b.1.critical_ns.cmp(&a.1.critical_ns).then(a.0.cmp(b.0)));
    for (name, s) in rows {
        let _ = writeln!(
            out,
            "  {:<28} {:>7} {:>12.1} {:>12.1} {:>12.1} {:>14.1}",
            name,
            s.count,
            s.total_ns as f64 / 1e3,
            s.total_ns as f64 / s.count.max(1) as f64 / 1e3,
            s.max_ns as f64 / 1e3,
            s.critical_ns as f64 / 1e3,
        );
    }

    if let Some(serve) = render_serve_breakdown(spans) {
        out.push_str(&serve);
    }

    let mut roots: Vec<&Span> = spans.iter().filter(|s| s.parent.is_none()).collect();
    roots.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.trace.cmp(&b.trace)));
    if !roots.is_empty() {
        let _ = writeln!(out, "\n  slowest traces:");
        for root in roots.iter().take(top) {
            let _ = writeln!(
                out,
                "    trace {:<6} {:<28} {:>12.1} µs",
                root.trace,
                root.name,
                root.dur_ns as f64 / 1e3
            );
        }
    }

    let failed: Vec<&Audit> = audits.iter().filter(|a| a.rejected).collect();
    if failed.is_empty() {
        let _ = writeln!(out, "\n  failed attempts: none");
    } else {
        let _ = writeln!(out, "\n  failed attempts ({}):", failed.len());
        for a in failed.iter().take(top.max(failed.len().min(20))) {
            let claimed = a
                .claimed_user
                .map_or("unclaimed".to_string(), |u| format!("user {u}"));
            let _ = writeln!(
                out,
                "    trace {:<6} {:<12} retry {}  mask {:#b}  — {}",
                a.trace, claimed, a.retry_index, a.degraded_mask, a.reject_reason
            );
        }
    }
    out
}

/// Daemon-trace breakdown: for `serve.request` roots, splits the
/// summed end-to-end time into batcher wait (`serve.queue_wait`),
/// pipeline time (`serve.decide`), and the remainder (framing,
/// extraction batching, outbox writes). Answers the on-call question
/// "is serving latency queueing or compute?" without reading the full
/// stage table. `None` when the trace has no daemon spans.
fn render_serve_breakdown(spans: &[Span]) -> Option<String> {
    use std::fmt::Write as _;
    let (count, total_ns) = spans
        .iter()
        .filter(|s| s.parent.is_none() && s.name == "serve.request")
        .fold((0u64, 0u64), |(c, t), s| (c + 1, t + s.dur_ns));
    if count == 0 {
        return None;
    }
    let sum_of = |name: &str| -> u64 {
        spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_ns)
            .sum()
    };
    let wait_ns = sum_of("serve.queue_wait");
    let decide_ns = sum_of("serve.decide");
    let other_ns = total_ns.saturating_sub(wait_ns + decide_ns);
    let mut out = String::new();
    let _ = writeln!(out, "\n  serve e2e breakdown ({count} requests):");
    for (label, ns) in [
        ("batcher wait", wait_ns),
        ("pipeline (decide)", decide_ns),
        ("other (framing/batch/outbox)", other_ns),
    ] {
        let _ = writeln!(
            out,
            "    {:<30} {:>12.1} µs total {:>10.1} µs/req {:>6.1}%",
            label,
            ns as f64 / 1e3,
            ns as f64 / count as f64 / 1e3,
            100.0 * ns as f64 / total_ns.max(1) as f64,
        );
    }
    Some(out)
}

/// Re-exports the parsed spans through the canonical Chrome trace-event
/// serialiser, so the Perfetto file matches what the recorder itself
/// would emit.
fn write_chrome(spans: &[Span], out: &Path) {
    let events: Vec<echo_obs::SpanEvent> = spans
        .iter()
        .map(|s| echo_obs::SpanEvent {
            trace: s.trace,
            span: s.span,
            parent: s.parent.unwrap_or(0),
            // SpanEvent names are &'static str (recorder spans use
            // literals); a one-shot CLI leaks its handful of decoded
            // names to bridge the type.
            name: Box::leak(s.name.clone().into_boxed_str()),
            lidx: s.lidx,
            start_ns: s.start_ns,
            dur_ns: s.dur_ns,
            seq: s.seq,
            attrs: s
                .attrs
                .iter()
                .filter_map(|(k, v)| {
                    let key: &'static str = Box::leak(k.clone().into_boxed_str());
                    let value = match v {
                        Json::Num(n) => echo_obs::trace::AttrValue::F64(*n),
                        Json::Bool(b) => echo_obs::trace::AttrValue::Bool(*b),
                        Json::Str(s) => echo_obs::trace::AttrValue::Str(s.clone()),
                        _ => return None,
                    };
                    Some((key, value))
                })
                .collect(),
        })
        .collect();
    let doc = echo_obs::export::chrome_trace_json(&events);
    if let Some(dir) = out.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(out, doc) {
        Ok(()) => println!("chrome trace: {}", out.display()),
        Err(e) => {
            eprintln!("could not write {}: {e}", out.display());
            exit(1);
        }
    }
}

/// A fixture covering every report feature: two traces (one with a
/// nested critical path), one accepted and one rejected audit.
const SELFTEST_JSONL: &str = concat!(
    "{\"type\":\"span\",\"trace\":1,\"seq\":0,\"span\":\"0000000000000010\",\"parent\":null,",
    "\"name\":\"auth.train\",\"lidx\":0,\"start_ns\":0,\"dur_ns\":10000,\"attrs\":{}}\n",
    "{\"type\":\"span\",\"trace\":1,\"seq\":1,\"span\":\"0000000000000020\",",
    "\"parent\":\"0000000000000010\",\"name\":\"stage.auth\",\"lidx\":0,\"start_ns\":100,",
    "\"dur_ns\":9000,\"attrs\":{\"accepted\":true}}\n",
    "{\"type\":\"span\",\"trace\":1,\"seq\":2,\"span\":\"0000000000000030\",",
    "\"parent\":\"0000000000000020\",\"name\":\"stage.imaging\",\"lidx\":0,\"start_ns\":200,",
    "\"dur_ns\":6000,\"attrs\":{\"grid_n\":32}}\n",
    "{\"type\":\"span\",\"trace\":2,\"seq\":0,\"span\":\"0000000000000040\",\"parent\":null,",
    "\"name\":\"auth.train\",\"lidx\":0,\"start_ns\":20000,\"dur_ns\":4000,\"attrs\":{}}\n",
    "{\"type\":\"span\",\"trace\":3,\"seq\":0,\"span\":\"0000000000000050\",\"parent\":null,",
    "\"name\":\"serve.request\",\"lidx\":0,\"start_ns\":30000,\"dur_ns\":8000,",
    "\"attrs\":{\"tenant\":1,\"op\":\"auth\"}}\n",
    "{\"type\":\"span\",\"trace\":3,\"seq\":1,\"span\":\"0000000000000060\",",
    "\"parent\":\"0000000000000050\",\"name\":\"serve.queue_wait\",\"lidx\":0,",
    "\"start_ns\":30100,\"dur_ns\":3000,\"attrs\":{}}\n",
    "{\"type\":\"span\",\"trace\":3,\"seq\":2,\"span\":\"0000000000000070\",",
    "\"parent\":\"0000000000000050\",\"name\":\"serve.decide\",\"lidx\":0,",
    "\"start_ns\":33200,\"dur_ns\":4000,\"attrs\":{}}\n",
    "{\"type\":\"audit\",\"trace\":1,\"seq\":1,\"claimed_user\":7,\"beeps\":3,",
    "\"votes\":[[7,3]],\"votes_needed\":2,\"best_gate_margin\":0.25,\"channels\":6,",
    "\"degraded_mask\":0,\"retry_index\":0,\"verdict\":\"accepted\",\"accepted_user\":7,",
    "\"reject_reason\":\"\"}\n",
    "{\"type\":\"audit\",\"trace\":2,\"seq\":2,\"claimed_user\":null,\"beeps\":3,",
    "\"votes\":[],\"votes_needed\":2,\"best_gate_margin\":null,\"channels\":6,",
    "\"degraded_mask\":5,\"retry_index\":1,\"verdict\":\"rejected\",\"accepted_user\":null,",
    "\"reject_reason\":\"spoofer gate rejected every beep\"}\n",
);

/// Proves the parser, the critical-path attribution and the report
/// renderer against the inline fixture, without touching the
/// filesystem.
fn trace_report_selftest() {
    let (spans, audits) = parse_jsonl(SELFTEST_JSONL).expect("selftest fixture must parse");
    assert_eq!(spans.len(), 7, "selftest: span count");
    assert_eq!(audits.len(), 2, "selftest: audit count");
    assert_eq!(spans[1].parent, Some(0x10), "selftest: hex parent decodes");

    let mut stats: BTreeMap<String, StageStats> = BTreeMap::new();
    attribute_critical_path(&spans, &mut stats);
    // Trace 1: root 10 000 − 9 000 exclusive; stage.auth 9 000 − 6 000;
    // stage.imaging 6 000 (leaf). Trace 2: root 4 000 (leaf).
    assert_eq!(stats["auth.train"].critical_ns, 1_000 + 4_000);
    assert_eq!(stats["stage.auth"].critical_ns, 3_000);
    assert_eq!(stats["stage.imaging"].critical_ns, 6_000);

    let report = render_report(&spans, &audits, 5);
    assert!(report.contains("7 spans, 3 traces, 2 audit records"));
    assert!(report.contains("stage.imaging"), "per-stage row present");
    assert!(report.contains("serve e2e breakdown (1 requests):"));
    // 3 µs of 8 µs queued, 4 µs deciding, 1 µs everything else.
    assert!(report.contains("batcher wait"), "serve breakdown row");
    assert!(report.contains("37.5%"), "batcher wait share:\n{report}");
    assert!(report.contains("50.0%"), "pipeline share:\n{report}");
    assert!(report.contains("slowest traces:"));
    assert!(
        report.contains("spoofer gate rejected every beep"),
        "rejected audit surfaces its reason"
    );
    println!("trace-report selftest passed");
}
