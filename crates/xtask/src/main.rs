//! Workspace task runner.
//!
//! `cargo xtask ci` replays the exact gate from
//! `.github/workflows/ci.yml` locally — same commands, same order — so
//! a change that passes here passes CI. `cargo xtask bench-check` is
//! the bench-regression gate: it collects a fresh `feature_bench`
//! sample and fails if any gated kernel latency regressed more than the
//! threshold against the committed `BENCH_features.json` baseline.
//! Wired up through the `xtask` alias in `.cargo/config.toml`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::{exit, Command};

mod jsonv;
mod trace_report;
use jsonv::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ci") => ci(),
        Some("bench-check") => bench_check(&args[1..]),
        Some("bench-baseline") => bench_baseline(),
        Some("obs-smoke") => obs_smoke(),
        Some("trace-report") => trace_report::trace_report(&args[1..]),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            exit(2);
        }
        None => {
            eprintln!("{USAGE}");
            exit(2);
        }
    }
}

const USAGE: &str =
    "usage: cargo xtask <ci | bench-check | bench-baseline | obs-smoke | trace-report>

tasks:
  ci              run the full CI gate (fmt, clippy, build, tests, the
                  determinism matrix, property suites, bench build +
                  bench-regression check, trace-report selftest)
  bench-check     collect a fresh feature_bench sample and fail on a
                  latency regression beyond the threshold
                    --baseline <path>   committed numbers
                                        [default: BENCH_features.json]
                    --fresh <path>      compare an existing sample
                                        instead of running the bench
                    --threshold <pct>   allowed regression [default: 25]
                    --selftest          verify the comparator itself
  bench-baseline  rerun the full (non-quick) feature bench and rewrite
                  BENCH_features.json — the documented override when a
                  deliberate change moves the baseline
  obs-smoke       boot the echo-serve daemon, drive it with the load
                  test over TCP, and assert `echo-top --once --json
                  --assert-live` sees non-empty tenant windows and
                  finite drift
  trace-report    analyse a --trace-out JSONL flight-recorder trace:
                  per-stage critical-path statistics, slowest traces,
                  failed authentication attempts
                    <trace.jsonl>       input trace
                    --chrome <out>      also write Chrome trace-event
                                        JSON loadable in Perfetto
                    --top <n>           slowest traces shown [default: 5]
                    --selftest          verify the analyser itself";

/// The kernel latencies the regression gate holds. Deliberately the
/// low-variance single-kernel timings — end-to-end stage timings and
/// the naive-reference baselines wander too much on shared runners.
const GATED_METRICS: [&str; 9] = [
    "single_image.gemm_ns",
    "single_image.gemm_scratch_ns",
    "matched_filter.packed_ns",
    "matched_filter.planned_ns",
    "stage.distance.mean_ns",
    "stage.spatial.mean_ns",
    "serve.p99_ns",
    "store.lookup_p99_ns",
    "stats.render_ns",
];

/// One gate step: display name, cargo arguments, extra environment.
type Step = (
    &'static str,
    &'static [&'static str],
    &'static [(&'static str, &'static str)],
);

/// The `(package, suite)` pairs that must hold bit-for-bit across
/// worker-thread counts and SIMD dispatch modes, mirrored by the CI
/// determinism matrix.
const DETERMINISM_SUITES: [(&str, &str); 7] = [
    ("echoimage-core", "fault_injection"),
    ("echoimage-core", "feature_determinism"),
    ("echoimage-core", "metrics_determinism"),
    ("echoimage-core", "simd_dispatch"),
    ("echoimage-core", "spoof_audit"),
    ("echoimage-core", "trace_determinism"),
    ("echo-serve", "window_determinism"),
];

/// The SIMD dispatch modes the determinism matrix forces. `scalar` pins
/// the portable kernels; `auto` takes the vectorised path wherever the
/// host supports it (and must produce bit-identical results).
const SIMD_MODES: [&str; 2] = ["scalar", "auto"];

/// The CI gate, in the same order as .github/workflows/ci.yml: cheap
/// static checks first, then the determinism matrix, the test run, and
/// the bench-regression check last.
fn ci() {
    let steps: &[Step] = &[
        ("format check", &["fmt", "--all", "--check"], &[]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
            &[],
        ),
        ("release build", &["build", "--release", "--workspace"], &[]),
        ("tests", &["test", "-q", "--workspace"], &[]),
        (
            "sim fault injectors",
            &["test", "-q", "-p", "echo-sim", "fault"],
            &[],
        ),
    ];
    for (name, args, envs) in steps {
        run(name, args, envs);
    }
    // Determinism matrix: every suite that claims bit-identical results
    // (and metric counters) runs pinned serial and with the worker pool,
    // each crossed with the scalar and auto SIMD dispatch modes (the
    // simd_dispatch suite additionally asserts the dispatch gauge
    // reports the forced path).
    let mut matrix_steps = 0;
    for simd in SIMD_MODES {
        for threads in ["1", "0"] {
            for (pkg, suite) in DETERMINISM_SUITES {
                run(
                    &format!("{suite} (threads = {threads}, simd = {simd})"),
                    &["test", "-q", "-p", pkg, "--test", suite],
                    &[("ECHOIMAGE_THREADS", threads), ("ECHOIMAGE_SIMD", simd)],
                );
                matrix_steps += 1;
            }
        }
    }
    matrix_steps += simd_parity();
    let tail: &[Step] = &[
        (
            "GEMM forward vs naive oracle (property suite)",
            &["test", "-q", "-p", "echo-ml", "--test", "cnn_properties"],
            &[],
        ),
        (
            "FFT plan vs unplanned reference (property suite)",
            &[
                "test",
                "-q",
                "-p",
                "echo-dsp",
                "--test",
                "fft_plan_properties",
            ],
            &[],
        ),
        (
            "SIMD kernels vs scalar, ULP-bounded (property suite)",
            &[
                "test",
                "-q",
                "-p",
                "echo-dsp",
                "--test",
                "simd_kernel_properties",
            ],
            &[],
        ),
        ("bench build", &["bench", "--no-run", "--workspace"], &[]),
        // Serve smoke: an in-process daemon replays 200 sessions; the
        // bin itself exits non-zero on any request error, missing p99,
        // or panic, so passing here means the serving path answered
        // every request with a typed decision.
        (
            "serve smoke (200-session load test)",
            &[
                "run",
                "--release",
                "-q",
                "-p",
                "echo-serve",
                "--bin",
                "load_test",
                "--",
                "--quick",
            ],
            &[],
        ),
        // Store smoke: a 100k-user shard store exercised end to end —
        // snapshot reload published mid-run from another thread,
        // prefiltered decisions checked against the exhaustive oracle
        // on every loaded snapshot, newest-shard-wins and heap/mmap
        // reader agreement pinned. Exits non-zero on the first failed
        // check.
        (
            "store smoke (100k-user shards, mid-run reload parity)",
            &[
                "run",
                "--release",
                "-q",
                "-p",
                "echo-bench",
                "--bin",
                "store_bench",
                "--",
                "--quick",
            ],
            &[],
        ),
        // Attack gate: the quick fig_attack run exits non-zero when the
        // population replay attack-success-rate (classifier gate AND
        // spatial screen, see DESIGN.md §14) exceeds the ceiling.
        (
            "spoof gate (replay ASR ceiling, fig_attack --quick)",
            &[
                "run",
                "--release",
                "-q",
                "-p",
                "echo-bench",
                "--bin",
                "fig_attack",
                "--",
                "--quick",
                "--asr-ceiling",
                "0.01",
            ],
            &[],
        ),
    ];
    for (name, args, envs) in tail {
        run(name, args, envs);
    }
    println!("==> obs smoke (daemon + stats + echo-top)");
    obs_smoke();
    println!("==> trace-report selftest");
    trace_report::trace_report(&["--selftest".into()]);
    println!("==> bench-regression check");
    bench_check(&["--selftest".into()]);
    bench_check(&[]);
    println!(
        "\nCI gate passed ({} steps)",
        steps.len() + matrix_steps + tail.len() + 4
    );
    print_step_durations();
}

/// Cross-process SIMD parity: runs the digest half of the
/// `simd_dispatch` suite once per dispatch mode and compares the
/// `target/simd-parity/<mode>.digest` files. On AVX2 hardware this
/// pins the scalar and vectorised pipelines to bit-identical output;
/// on hosts without AVX2 both modes resolve to scalar, one digest file
/// is written, and the comparison holds trivially. Returns the number
/// of gate steps run.
fn simd_parity() -> usize {
    let dir = Path::new("target/simd-parity");
    let _ = std::fs::remove_dir_all(dir);
    for simd in SIMD_MODES {
        run(
            &format!("simd parity digest (simd = {simd})"),
            &[
                "test",
                "-q",
                "-p",
                "echoimage-core",
                "--test",
                "simd_dispatch",
                "parity_digest_is_recorded",
            ],
            &[("ECHOIMAGE_SIMD", simd)],
        );
    }
    let mut digests: Vec<(String, String)> = Vec::new();
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| {
        eprintln!("simd parity: could not read {}: {e}", dir.display());
        exit(1);
    });
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(entry.path()).unwrap_or_else(|e| {
            eprintln!("simd parity: could not read {name}: {e}");
            exit(1);
        });
        digests.push((name, text.trim().to_string()));
    }
    digests.sort();
    if digests.is_empty() {
        eprintln!("simd parity: the digest suite wrote no digest files");
        exit(1);
    }
    for (name, digest) in &digests {
        println!("  simd parity: {name} = {digest}");
    }
    if digests.iter().any(|(_, d)| d != &digests[0].1) {
        eprintln!(
            "simd parity FAILED: scalar and SIMD dispatch produced \
             different pipeline output"
        );
        exit(1);
    }
    if digests.len() == 1 {
        println!("  simd parity: one dispatch mode on this host; parity holds trivially");
    } else {
        println!("  simd parity: all dispatch modes bit-identical");
    }
    SIMD_MODES.len()
}

// ── observability smoke ──────────────────────────────────────────────

/// Boots the real daemon binary on an ephemeral TCP port, drives it
/// with the wire load test, then asserts `echo-top --once --json
/// --assert-live` against it: at least one tenant window with
/// decisions, every drift score finite, valid JSON on stdout. This is
/// the end-to-end proof that the Stats opcode, the window substrate,
/// and the dashboard agree over a real socket.
fn obs_smoke() {
    run(
        "build serve bins (release)",
        &["build", "--release", "-q", "-p", "echo-serve", "--bins"],
        &[],
    );
    let bin = |name: &str| Path::new("target/release").join(name);

    let mut daemon = Command::new(bin("echo_serve"))
        .args(["--tcp", "127.0.0.1:0"])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("obs-smoke: could not start echo_serve: {e}");
            exit(1);
        });
    // The daemon announces its ephemeral port on stderr:
    //   echo-serve listening on tcp://127.0.0.1:PORT
    let stderr = daemon.stderr.take().expect("stderr was piped");
    let addr = {
        use std::io::BufRead;
        let mut lines = std::io::BufReader::new(stderr).lines();
        loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.split("tcp://").nth(1) {
                        break addr.trim().to_string();
                    }
                    eprintln!("  [echo_serve] {line}");
                }
                _ => {
                    let _ = daemon.kill();
                    eprintln!("obs-smoke: daemon exited before announcing its address");
                    exit(1);
                }
            }
        }
    };
    println!("  obs-smoke: daemon at {addr}");

    let kill_and_fail = |daemon: &mut std::process::Child, msg: &str| -> ! {
        let _ = daemon.kill();
        let _ = daemon.wait();
        eprintln!("obs-smoke: {msg}");
        exit(1);
    };

    let load = Command::new(bin("load_test"))
        .args(["--quick", "--connect", &addr])
        .status();
    match load {
        Ok(s) if s.success() => {}
        Ok(s) => kill_and_fail(&mut daemon, &format!("load_test failed with {s}")),
        Err(e) => kill_and_fail(&mut daemon, &format!("load_test could not start: {e}")),
    }

    let top = Command::new(bin("echo_top"))
        .args(["--tcp", &addr, "--once", "--json", "--assert-live"])
        .output();
    let out = match top {
        Ok(out) if out.status.success() => out,
        Ok(out) => kill_and_fail(
            &mut daemon,
            &format!(
                "echo-top --assert-live failed with {}: {}",
                out.status,
                String::from_utf8_lossy(&out.stderr)
            ),
        ),
        Err(e) => kill_and_fail(&mut daemon, &format!("echo_top could not start: {e}")),
    };
    let json = String::from_utf8_lossy(&out.stdout);
    let doc = Json::parse(&json).unwrap_or_else(|e| {
        let _ = daemon.kill();
        eprintln!("obs-smoke: echo-top emitted invalid JSON: {e}\n{json}");
        exit(1);
    });
    let tenants = match doc.get("tenants") {
        Some(Json::Arr(t)) if !t.is_empty() => t.len(),
        _ => kill_and_fail(&mut daemon, "echo-top JSON carries no tenant windows"),
    };
    println!("  obs-smoke: echo-top sees {tenants} live tenant window(s)");

    let _ = daemon.kill();
    let _ = daemon.wait();
    println!("obs-smoke passed");
}

// ── bench-regression gate ────────────────────────────────────────────

fn bench_check(args: &[String]) {
    let mut baseline_path = PathBuf::from("BENCH_features.json");
    let mut fresh_path: Option<PathBuf> = None;
    let mut threshold_pct = 25.0f64;
    let mut selftest = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = required_value(&mut it, "--baseline").into(),
            "--fresh" => fresh_path = Some(required_value(&mut it, "--fresh").into()),
            "--threshold" => {
                let v = required_value(&mut it, "--threshold");
                threshold_pct = v.parse().unwrap_or_else(|_| {
                    eprintln!("--threshold wants a number, got `{v}`");
                    exit(2);
                });
            }
            "--selftest" => selftest = true,
            other => {
                eprintln!("unknown bench-check flag `{other}`");
                exit(2);
            }
        }
    }
    if selftest {
        bench_check_selftest(threshold_pct);
        return;
    }

    let baseline = gated_metrics_from_file(&baseline_path);
    let mut fresh = match &fresh_path {
        Some(path) => gated_metrics_from_file(path),
        None => collect_fresh_sample("target/bench-check/fresh.json"),
    };
    let mut failures = compare(&baseline, &fresh, threshold_pct);
    if !failures.is_empty() && fresh_path.is_none() {
        // Timing noise on a loaded machine produces one-off spikes; a
        // genuine regression survives a second sample. Take the
        // per-metric minimum of the two.
        println!(
            "possible regression on the first sample; \
             collecting a second (per-metric min is kept)"
        );
        let second = collect_fresh_sample("target/bench-check/fresh2.json");
        for (name, value) in second {
            fresh
                .entry(name)
                .and_modify(|v| *v = v.min(value))
                .or_insert(value);
        }
        failures = compare(&baseline, &fresh, threshold_pct);
    }

    println!(
        "bench-check vs {} (threshold {threshold_pct}%):",
        baseline_path.display()
    );
    for name in GATED_METRICS {
        let (b, f) = (baseline.get(name), fresh.get(name));
        if let (Some(b), Some(f)) = (b, f) {
            println!(
                "  {name:<30} {b:>10.0} ns → {f:>10.0} ns   ({:+.1}%)",
                (f / b - 1.0) * 100.0
            );
        }
    }
    if failures.is_empty() {
        println!("bench-check passed");
    } else {
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        eprintln!(
            "bench-check failed ({} metric(s)). If this change deliberately \
             moves the baseline, rerun `cargo xtask bench-baseline` on a \
             quiet machine and commit the new BENCH_features.json.",
            failures.len()
        );
        exit(1);
    }
}

/// Runs the quick feature bench, writing its artefact (and metrics
/// snapshot) under target/bench-check/, and extracts the gated metrics.
fn collect_fresh_sample(out: &str) -> BTreeMap<String, f64> {
    run(
        "feature bench sample",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "echo-bench",
            "--bin",
            "feature_bench",
            "--",
            "--quick",
            "--out",
            out,
            "--metrics-out",
            "target/bench-check/metrics.json",
        ],
        &[],
    );
    gated_metrics_from_file(Path::new(out))
}

fn gated_metrics_from_file(path: &Path) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("could not read {}: {e}", path.display());
        exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("could not parse {}: {e}", path.display());
        exit(1);
    });
    GATED_METRICS
        .iter()
        .filter_map(|&name| Some((name.to_string(), doc.path(name)?.as_f64()?)))
        .collect()
}

/// Gated metrics whose fresh value exceeds baseline × (1 + threshold).
/// A metric missing from either side is also a failure — the gate must
/// never silently shrink.
fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    threshold_pct: f64,
) -> Vec<String> {
    let mut failures = Vec::new();
    for name in GATED_METRICS {
        match (baseline.get(name), fresh.get(name)) {
            (Some(&b), Some(&f)) if b > 0.0 => {
                let limit = b * (1.0 + threshold_pct / 100.0);
                if f > limit {
                    failures.push(format!(
                        "{name}: {f:.0} ns vs baseline {b:.0} ns \
                         (+{:.1}%, limit +{threshold_pct}%)",
                        (f / b - 1.0) * 100.0
                    ));
                }
            }
            (Some(_), Some(_)) => failures.push(format!("{name}: non-positive baseline")),
            (None, _) => failures.push(format!("{name}: missing from baseline")),
            (_, None) => failures.push(format!("{name}: missing from fresh sample")),
        }
    }
    failures
}

/// Proves the comparator catches a synthetic >threshold regression and
/// accepts values inside the envelope, without running any benchmark.
fn bench_check_selftest(threshold_pct: f64) {
    let base: BTreeMap<String, f64> = GATED_METRICS
        .iter()
        .map(|&m| (m.to_string(), 100_000.0))
        .collect();

    let inside: BTreeMap<String, f64> = base
        .iter()
        .map(|(k, v)| (k.clone(), v * (1.0 + threshold_pct / 100.0) * 0.99))
        .collect();
    assert!(
        compare(&base, &inside, threshold_pct).is_empty(),
        "selftest: a sample inside the envelope must pass"
    );

    let regressed: BTreeMap<String, f64> = base
        .iter()
        .map(|(k, v)| (k.clone(), v * (1.0 + threshold_pct / 100.0) * 1.01))
        .collect();
    let failures = compare(&base, &regressed, threshold_pct);
    assert_eq!(
        failures.len(),
        GATED_METRICS.len(),
        "selftest: every synthetic regression must be flagged, got {failures:?}"
    );

    let mut partial = base.clone();
    partial.remove(GATED_METRICS[0]);
    assert!(
        !compare(&partial, &base, threshold_pct).is_empty(),
        "selftest: a metric missing from the baseline must fail"
    );
    assert!(
        !compare(&base, &partial, threshold_pct).is_empty(),
        "selftest: a metric missing from the fresh sample must fail"
    );
    println!("bench-check selftest passed (threshold {threshold_pct}%)");
}

/// The documented baseline override: reruns the full bench so
/// `BENCH_features.json` is rewritten from this machine's numbers.
fn bench_baseline() {
    run(
        "feature bench (full, rewrites BENCH_features.json)",
        &[
            "run",
            "--release",
            "-q",
            "-p",
            "echo-bench",
            "--bin",
            "feature_bench",
        ],
        &[],
    );
    println!("baseline rewritten — review and commit BENCH_features.json");
}

pub(crate) fn required_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> String {
    it.next().cloned().unwrap_or_else(|| {
        eprintln!("{flag} needs a value");
        exit(2);
    })
}

/// Wall-clock per gate step, in execution order, for the end-of-run
/// summary — where CI minutes actually go is itself a gated budget.
fn step_durations() -> &'static std::sync::Mutex<Vec<(String, std::time::Duration)>> {
    static DURATIONS: std::sync::OnceLock<std::sync::Mutex<Vec<(String, std::time::Duration)>>> =
        std::sync::OnceLock::new();
    DURATIONS.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

fn print_step_durations() {
    let steps = step_durations().lock().unwrap();
    if steps.is_empty() {
        return;
    }
    let total: std::time::Duration = steps.iter().map(|(_, d)| *d).sum();
    println!("\nstep durations (total {:.1}s):", total.as_secs_f64());
    for (name, dur) in steps.iter() {
        println!("  {:>8.1}s  {name}", dur.as_secs_f64());
    }
}

fn run(name: &str, args: &[&str], envs: &[(&str, &str)]) {
    let env_prefix: String = envs.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    println!("==> {name}: {env_prefix}cargo {}", args.join(" "));
    // CARGO points back at the cargo that invoked the alias, so the
    // gate runs with the same toolchain the developer is using.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let start = std::time::Instant::now();
    let status = Command::new(cargo)
        .args(args)
        .envs(envs.iter().copied())
        .status();
    step_durations()
        .lock()
        .unwrap()
        .push((name.to_string(), start.elapsed()));
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("step `{name}` failed with {s}");
            exit(1);
        }
        Err(e) => {
            eprintln!("step `{name}` could not start: {e}");
            exit(1);
        }
    }
}
