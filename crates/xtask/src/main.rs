//! Workspace task runner.
//!
//! `cargo xtask ci` replays the exact gate from
//! `.github/workflows/ci.yml` locally — same commands, same order — so
//! a change that passes here passes CI. Wired up through the `xtask`
//! alias in `.cargo/config.toml`.

use std::process::{exit, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ci") => ci(),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            exit(2);
        }
        None => {
            eprintln!("{USAGE}");
            exit(2);
        }
    }
}

const USAGE: &str = "usage: cargo xtask ci

tasks:
  ci    run the full CI gate (fmt, clippy, build, tests, bench build)";

/// The CI gate, in the same order as .github/workflows/ci.yml: cheap
/// static checks first, the test run last.
fn ci() {
    let steps: &[(&str, &[&str])] = &[
        ("format check", &["fmt", "--all", "--check"]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        ("release build", &["build", "--release", "--workspace"]),
        ("tests", &["test", "-q", "--workspace"]),
        ("bench build", &["bench", "--no-run", "--workspace"]),
    ];
    for (name, args) in steps {
        run(name, args);
    }
    println!("\nCI gate passed ({} steps)", steps.len());
}

fn run(name: &str, args: &[&str]) {
    println!("==> {name}: cargo {}", args.join(" "));
    // CARGO points back at the cargo that invoked the alias, so the
    // gate runs with the same toolchain the developer is using.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo).args(args).status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("step `{name}` failed with {s}");
            exit(1);
        }
        Err(e) => {
            eprintln!("step `{name}` could not start: {e}");
            exit(1);
        }
    }
}
