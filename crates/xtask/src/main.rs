//! Workspace task runner.
//!
//! `cargo xtask ci` replays the exact gate from
//! `.github/workflows/ci.yml` locally — same commands, same order — so
//! a change that passes here passes CI. Wired up through the `xtask`
//! alias in `.cargo/config.toml`.

use std::process::{exit, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("ci") => ci(),
        Some(other) => {
            eprintln!("unknown task `{other}`");
            eprintln!("{USAGE}");
            exit(2);
        }
        None => {
            eprintln!("{USAGE}");
            exit(2);
        }
    }
}

const USAGE: &str = "usage: cargo xtask ci

tasks:
  ci    run the full CI gate (fmt, clippy, build, tests, fault and
        determinism suites, property suites, bench build + smoke run)";

/// One gate step: display name, cargo arguments, extra environment.
type Step = (
    &'static str,
    &'static [&'static str],
    &'static [(&'static str, &'static str)],
);

/// The CI gate, in the same order as .github/workflows/ci.yml: cheap
/// static checks first, the test run last.
fn ci() {
    let steps: &[Step] = &[
        ("format check", &["fmt", "--all", "--check"], &[]),
        (
            "clippy",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
            &[],
        ),
        ("release build", &["build", "--release", "--workspace"], &[]),
        ("tests", &["test", "-q", "--workspace"], &[]),
        (
            "sim fault injectors",
            &["test", "-q", "-p", "echo-sim", "fault"],
            &[],
        ),
        // The degraded-imaging suite runs twice: pinned serial and with
        // the worker pool, holding the bit-identity claim on both.
        (
            "degraded imaging (threads = 1)",
            &[
                "test",
                "-q",
                "-p",
                "echoimage-core",
                "--test",
                "fault_injection",
            ],
            &[("ECHOIMAGE_THREADS", "1")],
        ),
        (
            "degraded imaging (threads = 0)",
            &[
                "test",
                "-q",
                "-p",
                "echoimage-core",
                "--test",
                "fault_injection",
            ],
            &[("ECHOIMAGE_THREADS", "0")],
        ),
        // The fast feature path claims bit-identity across thread
        // counts, batch sizes, and cache states; hold it both pinned
        // serial and with the worker pool.
        (
            "feature determinism (threads = 1)",
            &[
                "test",
                "-q",
                "-p",
                "echoimage-core",
                "--test",
                "feature_determinism",
            ],
            &[("ECHOIMAGE_THREADS", "1")],
        ),
        (
            "feature determinism (threads = 0)",
            &[
                "test",
                "-q",
                "-p",
                "echoimage-core",
                "--test",
                "feature_determinism",
            ],
            &[("ECHOIMAGE_THREADS", "0")],
        ),
        (
            "GEMM forward vs naive oracle (property suite)",
            &["test", "-q", "-p", "echo-ml", "--test", "cnn_properties"],
            &[],
        ),
        (
            "FFT plan vs unplanned reference (property suite)",
            &[
                "test",
                "-q",
                "-p",
                "echo-dsp",
                "--test",
                "fft_plan_properties",
            ],
            &[],
        ),
        ("bench build", &["bench", "--no-run", "--workspace"], &[]),
        (
            "feature bench smoke run",
            &[
                "run",
                "--release",
                "-q",
                "-p",
                "echo-bench",
                "--bin",
                "feature_bench",
                "--",
                "--quick",
            ],
            &[],
        ),
    ];
    for (name, args, envs) in steps {
        run(name, args, envs);
    }
    println!("\nCI gate passed ({} steps)", steps.len());
}

fn run(name: &str, args: &[&str], envs: &[(&str, &str)]) {
    let env_prefix: String = envs.iter().map(|(k, v)| format!("{k}={v} ")).collect();
    println!("==> {name}: {env_prefix}cargo {}", args.join(" "));
    // CARGO points back at the cargo that invoked the alias, so the
    // gate runs with the same toolchain the developer is using.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let status = Command::new(cargo)
        .args(args)
        .envs(envs.iter().copied())
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("step `{name}` failed with {s}");
            exit(1);
        }
        Err(e) => {
            eprintln!("step `{name}` could not start: {e}");
            exit(1);
        }
    }
}
