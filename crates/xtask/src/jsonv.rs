//! A minimal JSON value parser for the bench-regression gate.
//!
//! The workspace's vendored `serde_json` stub derives (de)serializers
//! for known types but has no generic `Value`, and the gate has to read
//! whatever `BENCH_features.json` a past commit wrote — so xtask
//! carries its own ~150-line recursive-descent parser. It accepts the
//! full JSON grammar except exotic number forms (`1e999` overflows to
//! infinity like `f64::from_str` does) and keeps object keys in
//! document order.

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object-member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Dotted-path lookup: `path("single_image.gemm_ns")`.
    pub fn path(&self, dotted: &str) -> Option<&Json> {
        dotted.split('.').try_fold(self, |node, key| node.get(key))
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. `pos` only ever stops on
                    // char boundaries, so the suffix re-validates.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::Json;

    #[test]
    fn parses_the_bench_artefact_shape() {
        let doc = r#"{
          "bench": "feature_bench",
          "quick": false,
          "single_image": {"gemm_ns": 172313, "speedup_vs_naive": 4.93},
          "batch_16_images": [{"threads": "1", "ns_per_batch": 2646145}],
          "nullable": null
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.path("single_image.gemm_ns").unwrap().as_f64(),
            Some(172313.0)
        );
        assert_eq!(
            v.path("single_image.speedup_vs_naive").unwrap().as_f64(),
            Some(4.93)
        );
        assert_eq!(v.get("quick"), Some(&Json::Bool(false)));
        assert_eq!(v.get("nullable"), Some(&Json::Null));
        match v.get("batch_16_images") {
            Some(Json::Arr(rows)) => {
                assert_eq!(rows[0].get("threads"), Some(&Json::Str("1".into())));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parses_escapes_and_negative_exponent_numbers() {
        let v = Json::parse(r#"{"s": "a\"b\\c\ndA", "n": -1.5e-3}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str("a\"b\\c\ndA".into())));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-1.5e-3));
    }

    #[test]
    fn missing_path_and_wrong_type_are_none() {
        let v = Json::parse(r#"{"a": {"b": 1}}"#).unwrap();
        assert!(v.path("a.c").is_none());
        assert!(v.path("a.b.c").is_none());
        assert!(v.get("a").unwrap().as_f64().is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in ["{", r#"{"a": }"#, "[1,]", r#""unterminated"#, "1 2", "tru"] {
            assert!(Json::parse(doc).is_err(), "accepted {doc:?}");
        }
    }
}
