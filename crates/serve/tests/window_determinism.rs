//! Cross-thread-count determinism of the windowed telemetry.
//!
//! The windowing contract extends the audit contract: epoch buckets
//! advance on **decision count**, not wall clock, so the deterministic
//! projection of every [`echo_obs::WindowSnapshot`] — counts, sketch
//! bins, drift bits — must be bit-identical between a serial extraction
//! pool and the auto-sized one. Wall-clock-derived fields (qps, latency
//! bucket placement) are excluded by `WindowSnapshot::fingerprint`.
//! Lives in its own integration-test binary because it resets the
//! process-global window state between runs.

use echo_obs::WindowSnapshot;
use echo_serve::config::ServeConfig;
use echo_serve::loadgen::synth_image;
use echo_serve::protocol::{Opcode, Request, Status};
use echo_serve::server::{BindAddr, ServerHandle};
use echo_serve::Client;
use std::time::Duration;

const TENANT: u64 = 9;

/// Runs the canonical serve workload and returns the global and tenant
/// window snapshots plus any drift alarms, with short epochs so the
/// ring actually turns over and drift is computed several times.
fn run_workload(
    threads: usize,
) -> (
    WindowSnapshot,
    Vec<WindowSnapshot>,
    Vec<echo_obs::DriftAlarm>,
) {
    echo_obs::reset_audits();
    echo_obs::reset_traces();
    echo_obs::window::reset_windows();
    echo_obs::window::set_epoch_len(4);
    let cfg = ServeConfig::validated(Duration::from_micros(500), 8, 64, threads).expect("config");
    let server =
        ServerHandle::start(cfg, BindAddr::Tcp("127.0.0.1:0".into())).expect("bind tcp socket");
    let addr = server.local_addr().expect("tcp addr");
    let mut client = Client::connect_tcp(addr).expect("connect");

    for user in [1u64, 2] {
        let images: Vec<_> = (0..20u64)
            .map(|v| synth_image(TENANT, user, v, 32))
            .collect();
        let resp = client
            .call(&Request {
                op: Opcode::Enroll,
                request_id: user,
                tenant: TENANT,
                user,
                images,
            })
            .expect("enrol");
        assert_eq!(resp.status, Status::Ok, "{}", resp.reason);
    }

    for i in 0..24u64 {
        let user = i % 2 + 1;
        let images: Vec<_> = (0..3u64)
            .map(|b| synth_image(TENANT, user, 4_000 + i * 8 + b, 32))
            .collect();
        let resp = client
            .call(&Request {
                op: Opcode::Auth,
                request_id: 100 + i,
                tenant: TENANT,
                user,
                images,
            })
            .expect("auth");
        assert!(
            matches!(resp.status, Status::Accepted | Status::Rejected),
            "probe {i}: {:?} {}",
            resp.status,
            resp.reason
        );
    }
    server.shutdown();
    let (global, tenants) = echo_obs::window::snapshot_windows();
    let alarms = echo_obs::window::take_drift_alarms();
    echo_obs::window::reset_windows();
    (global, tenants, alarms)
}

#[test]
fn window_fingerprints_bit_identical_across_thread_counts() {
    let (g1, t1, a1) = run_workload(1);
    let (g0, t0, a0) = run_workload(0);

    // The runs actually exercised the windows: 24 decisions at
    // epoch_len 4 closes several epochs and computes drift.
    assert_eq!(g1.cum.decisions, 24, "global cum decisions");
    assert_eq!(t1.len(), 1, "one tenant window");
    assert_eq!(t1[0].tenant, Some(TENANT));
    assert!(t1[0].epoch >= 5, "epochs closed: {}", t1[0].epoch);
    let drift = t1[0].drift.expect("drift computed after epoch close");
    assert!(drift.is_finite(), "drift {drift}");

    // Deterministic projections are bit-identical.
    assert_eq!(
        g1.fingerprint(),
        g0.fingerprint(),
        "global window fingerprint"
    );
    assert_eq!(t0.len(), 1);
    assert_eq!(
        t1[0].fingerprint(),
        t0[0].fingerprint(),
        "tenant window fingerprint"
    );
    // Drift is part of the fingerprint, but assert bit-equality
    // explicitly too — it is the alarm-facing number.
    assert_eq!(
        t1[0].drift.map(f64::to_bits),
        t0[0].drift.map(f64::to_bits),
        "drift bits"
    );
    // Same decisions → same alarms (both sides, same order).
    assert_eq!(a1.len(), a0.len(), "alarm count");
    for (x, y) in a1.iter().zip(a0.iter()) {
        assert_eq!(x.tenant, y.tenant);
        assert_eq!(x.epoch, y.epoch);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
}
