//! Cross-thread-count determinism of the serving path.
//!
//! This test compares the *entire audit log* of two runs of the same
//! sequential workload — one on a serial extraction pool
//! (`threads = 1`), one on the auto-sized pool (`threads = 0`) — and
//! requires them bit-identical: same verdicts, same vote tallies, same
//! gate margins to the last bit, same sequence numbers. It lives in its
//! own integration-test binary because it resets the process-global
//! observability state between runs; sharing a process with other
//! tests would race on the audit ring.

use echo_serve::config::ServeConfig;
use echo_serve::loadgen::synth_image;
use echo_serve::protocol::{Opcode, Request, Status};
use echo_serve::server::{BindAddr, ServerHandle};
use echo_serve::Client;
use std::time::Duration;

fn run_workload(threads: usize) -> Vec<echo_obs::AuthAudit> {
    echo_obs::reset_audits();
    echo_obs::reset_traces();
    let cfg = ServeConfig::validated(Duration::from_micros(500), 8, 64, threads).expect("config");
    let server =
        ServerHandle::start(cfg, BindAddr::Tcp("127.0.0.1:0".into())).expect("bind tcp socket");
    let addr = server.local_addr().expect("tcp addr");
    let mut client = Client::connect_tcp(addr).expect("connect");

    for user in [1u64, 2] {
        let images: Vec<_> = (0..20u64).map(|v| synth_image(9, user, v, 32)).collect();
        let resp = client
            .call(&Request {
                op: Opcode::Enroll,
                request_id: user,
                tenant: 9,
                user,
                images,
            })
            .expect("enrol");
        assert_eq!(resp.status, Status::Ok, "{}", resp.reason);
    }

    // Sequential probes: the workload itself is order-deterministic, so
    // any divergence below comes from the extraction pool.
    for i in 0..12u64 {
        let user = i % 2 + 1;
        let images: Vec<_> = (0..3u64)
            .map(|b| synth_image(9, user, 4_000 + i * 8 + b, 32))
            .collect();
        let resp = client
            .call(&Request {
                op: Opcode::Auth,
                request_id: 100 + i,
                tenant: 9,
                user,
                images,
            })
            .expect("auth");
        assert!(
            matches!(resp.status, Status::Accepted | Status::Rejected),
            "probe {i}: {:?} {}",
            resp.status,
            resp.reason
        );
    }
    server.shutdown();
    echo_obs::take_audits()
}

#[test]
fn audits_bit_identical_across_thread_counts() {
    let serial = run_workload(1);
    let auto = run_workload(0);
    assert_eq!(serial.len(), 12, "one audit per probe");
    assert_eq!(
        serial, auto,
        "serial and auto pools must decide identically"
    );
}
