//! Functional integration tests for the daemon: wire round-trips over
//! both transports, typed overload shedding, and enrol-while-
//! authenticate consistency.
//!
//! These tests share the process-global observability state with each
//! other (integration tests in one binary run on parallel threads), so
//! any test that inspects the audit log filters by its own distinctive
//! tenant id instead of assuming it owns the ring. Cross-run audit
//! equality lives in `serve_determinism.rs`, a separate binary and
//! therefore a separate process.

use echo_serve::config::ServeConfig;
use echo_serve::loadgen::synth_image;
use echo_serve::protocol::{Opcode, Request, Status};
use echo_serve::server::{BindAddr, ServerHandle};
use echo_serve::Client;
use std::time::Duration;

fn enroll(client: &mut Client, tenant: u64, user: u64, images: usize) {
    let images: Vec<_> = (0..images as u64)
        .map(|v| synth_image(tenant, user, v, 32))
        .collect();
    let resp = client
        .call(&Request {
            op: Opcode::Enroll,
            request_id: 900 + user,
            tenant,
            user,
            images,
        })
        .expect("enrol round-trip");
    assert_eq!(resp.status, Status::Ok, "enrol failed: {}", resp.reason);
}

fn auth_request(tenant: u64, user: u64, rid: u64, first_variant: u64) -> Request {
    let images: Vec<_> = (0..3u64)
        .map(|b| synth_image(tenant, user, first_variant + b, 32))
        .collect();
    Request {
        op: Opcode::Auth,
        request_id: rid,
        tenant,
        user,
        images,
    }
}

/// A fresh directory per run: a pid-keyed fixed path collides after
/// pid reuse and trips over a stale socket a crashed earlier run left
/// behind, so probe with `create_dir` until an unused name sticks.
fn socket_dir() -> std::path::PathBuf {
    let base = std::env::temp_dir();
    (0..)
        .map(|i| base.join(format!("echo-serve-test-{}-{i}", std::process::id())))
        .find(|dir| std::fs::create_dir(dir).is_ok())
        .expect("create socket temp dir")
}

#[test]
fn unix_socket_roundtrip_enrol_then_authenticate() {
    let dir = socket_dir();
    let path = dir.join("serve.sock");
    let server = ServerHandle::start(ServeConfig::default(), BindAddr::Unix(path.clone()))
        .expect("bind unix socket");
    let mut client = Client::connect_unix(&path).expect("connect");

    // Ping before any enrolment.
    let pong = client
        .call(&Request {
            op: Opcode::Ping,
            request_id: 1,
            tenant: 11,
            user: u64::MAX,
            images: Vec::new(),
        })
        .expect("ping");
    assert_eq!(pong.status, Status::Ok);

    // Auth against an empty tenant is a typed error, not a panic.
    let resp = client
        .call(&auth_request(11, 1, 2, 100))
        .expect("auth round-trip");
    assert_eq!(resp.status, Status::Error);
    assert!(resp.reason.contains("no enrolled users"), "{}", resp.reason);

    enroll(&mut client, 11, 1, 20);
    let resp = client
        .call(&auth_request(11, 1, 3, 100))
        .expect("auth round-trip");
    assert_eq!(resp.status, Status::Accepted, "{}", resp.reason);

    server.shutdown();
    assert!(!path.exists(), "socket file cleaned up on shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_with_typed_rejects_and_audits() {
    // One admission slot and a batch window long enough that the burst
    // below lands entirely inside it: everything past the first queued
    // job must shed.
    let tenant = 777u64;
    let cfg = ServeConfig::validated(Duration::from_millis(150), 4096, 1, 1).expect("config");
    let server =
        ServerHandle::start(cfg, BindAddr::Tcp("127.0.0.1:0".into())).expect("bind tcp socket");
    let addr = server.local_addr().expect("tcp addr");
    let mut client = Client::connect_tcp(addr).expect("connect");

    enroll(&mut client, tenant, 1, 20);

    // Burst: fire-and-forget eight auths, then collect all replies.
    let burst = 8u64;
    for i in 0..burst {
        client
            .send(&auth_request(tenant, 1, i, 1_000 + i * 8))
            .expect("send");
    }
    let mut decided = 0u64;
    let mut overloaded = 0u64;
    for _ in 0..burst {
        let resp = client.recv().expect("recv");
        match resp.status {
            Status::Accepted | Status::Rejected => decided += 1,
            Status::Overloaded => {
                overloaded += 1;
                assert!(
                    resp.reason.contains("admission queue full"),
                    "overload reason names the policy: {}",
                    resp.reason
                );
            }
            s => panic!("unexpected status {s:?}: {}", resp.reason),
        }
    }
    assert!(decided >= 1, "the admitted request still gets a decision");
    assert!(
        overloaded >= 1,
        "a burst of {burst} against a 1-deep queue must shed"
    );

    // The shed decisions are auditable: the global log holds Overloaded
    // verdicts whose reasons name this tenant.
    let shed_audits = echo_obs::take_audits()
        .into_iter()
        .filter(|a| a.verdict == echo_obs::AuthVerdict::Overloaded)
        .filter(|a| a.reject_reason.contains(&format!("tenant {tenant}")))
        .count() as u64;
    assert_eq!(shed_audits, overloaded, "one audit per shed request");

    server.shutdown();
}

fn identify_request(tenant: u64, user: u64, rid: u64, first_variant: u64) -> Request {
    let images: Vec<_> = (0..3u64)
        .map(|b| synth_image(tenant, user, first_variant + b, 32))
        .collect();
    Request {
        op: Opcode::Identify,
        request_id: rid,
        tenant,
        // Identify never claims a subject — naming one is the server's
        // job.
        user: u64::MAX,
        images,
    }
}

#[test]
fn identify_names_the_user_and_follows_enrolment() {
    let tenant = 555u64;
    let server = ServerHandle::start(ServeConfig::default(), BindAddr::Tcp("127.0.0.1:0".into()))
        .expect("bind tcp socket");
    let addr = server.local_addr().expect("tcp addr");
    let mut client = Client::connect_tcp(addr).expect("connect");

    // Identify against an empty tenant is a typed error, not a panic.
    let resp = client
        .call(&identify_request(tenant, 1, 1, 50))
        .expect("identify round-trip");
    assert_eq!(resp.status, Status::Error);
    assert!(resp.reason.contains("no enrolled users"), "{}", resp.reason);

    // 40 images per user: the store's SVDD gates are trained per user
    // in isolation (no sibling-threshold slack), so held-out probes
    // need a ball sized from a respectable sample.
    enroll(&mut client, tenant, 1, 40);
    enroll(&mut client, tenant, 2, 40);

    // Unclaimed probes name the right subject.
    for user in [1u64, 2] {
        let resp = client
            .call(&identify_request(
                tenant,
                user,
                10 + user,
                3_000 + user * 16,
            ))
            .expect("identify round-trip");
        assert_eq!(
            resp.status,
            Status::Accepted,
            "user {user}: {}",
            resp.reason
        );
        assert_eq!(resp.user_id, user, "identified as the wrong user");
    }

    // Identify keeps serving (and never errors) while an enrol builds
    // and publishes a new store snapshot on another connection.
    let identify_thread = std::thread::spawn(move || {
        let mut named = 0u32;
        for i in 0..24u64 {
            let resp = client
                .call(&identify_request(tenant, 1, 100 + i, 4_000 + i * 8))
                .expect("identify during enrol");
            match resp.status {
                Status::Accepted => {
                    assert_eq!(resp.user_id, 1, "misidentified during reload");
                    named += 1;
                }
                Status::Rejected => {}
                s => panic!("identify during enrol returned {s:?}: {}", resp.reason),
            }
        }
        named
    });
    let mut enrol_client = Client::connect_tcp(addr).expect("second connection");
    enroll(&mut enrol_client, tenant, 3, 40);
    let named = identify_thread.join().expect("identify thread");
    assert!(named > 0, "user 1 kept being identified through the swap");

    // The published snapshot serves the newly enrolled user.
    let resp = enrol_client
        .call(&identify_request(tenant, 3, 300, 6_000))
        .expect("identify after enrol");
    assert_eq!(resp.status, Status::Accepted, "{}", resp.reason);
    assert_eq!(resp.user_id, 3);
    server.shutdown();
}

#[test]
fn enrol_while_authenticating_never_errors() {
    let tenant = 33u64;
    let server = ServerHandle::start(ServeConfig::default(), BindAddr::Tcp("127.0.0.1:0".into()))
        .expect("bind tcp socket");
    let addr = server.local_addr().expect("tcp addr");
    let mut client = Client::connect_tcp(addr).expect("connect");
    enroll(&mut client, tenant, 1, 20);

    // One thread authenticates user 1 in a tight loop while the main
    // thread enrols user 2 (a full SVDD retrain and snapshot swap).
    // Every auth must land on a coherent snapshot: decided before the
    // swap against user 1 alone, or after it against both — never an
    // error, never a torn model.
    let auth_thread = std::thread::spawn(move || {
        let mut accepted = 0u32;
        for i in 0..24u64 {
            let resp = client
                .call(&auth_request(tenant, 1, 100 + i, 2_000 + i * 8))
                .expect("auth during enrol");
            match resp.status {
                Status::Accepted => accepted += 1,
                Status::Rejected => {}
                s => panic!("auth during enrol returned {s:?}: {}", resp.reason),
            }
        }
        accepted
    });

    let mut enrol_client = Client::connect_tcp(addr).expect("second connection");
    enroll(&mut enrol_client, tenant, 2, 20);
    let accepted = auth_thread.join().expect("auth thread");
    assert!(accepted > 0, "user 1 kept authenticating through the swap");

    // The new snapshot serves both users.
    for user in [1u64, 2] {
        let resp = enrol_client
            .call(&auth_request(tenant, user, 300 + user, 5_000))
            .expect("auth after enrol");
        assert_eq!(
            resp.status,
            Status::Accepted,
            "user {user} after swap: {}",
            resp.reason
        );
    }
    server.shutdown();
}
