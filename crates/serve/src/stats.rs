//! Building [`StatsReport`]s: the bridge between the `echo-obs` window
//! substrate and the wire.
//!
//! [`collect`] runs on the I/O thread per `Stats` request; it only
//! reads the window mutex and a handful of atomics, so a stats poll
//! costs microseconds and never touches the batcher queue. Gate-margin
//! quantiles are computed here, server-side, from the window sketches —
//! sketches never cross the wire.

use crate::protocol::{RollupStats, StatsReport, TenantStats};
use echo_obs::json::json_f64;
use echo_obs::window::{self, WindowRollup, WindowSnapshot, REJECT_LABELS};

fn rollup_stats(r: &WindowRollup) -> RollupStats {
    RollupStats {
        epochs: r.epochs,
        decisions: r.decisions,
        accepted: r.accepted,
        rejects: r.rejects,
        qps: r.qps,
        margin_p50: r.margins.quantile(0.5),
        margin_p99: r.margins.quantile(0.99),
        lat: r.lat.clone(),
    }
}

fn tenant_stats(w: &WindowSnapshot) -> TenantStats {
    TenantStats {
        tenant: w.tenant,
        epoch: w.epoch,
        drift: w.drift,
        cum: rollup_stats(&w.cum),
        windows: w.windows.iter().map(rollup_stats).collect(),
    }
}

/// Assembles a [`StatsReport`] from the live windows and registry.
/// `filter` restricts the per-tenant list to one tenant id (the global
/// window is always included).
pub fn collect(filter: Option<u64>) -> StatsReport {
    let (global, tenants) = window::snapshot_windows();
    let tenants: Vec<TenantStats> = tenants
        .iter()
        .filter(|w| filter.is_none() || w.tenant == filter)
        .map(tenant_stats)
        .collect();
    let queue_depth = echo_obs::registry().gauge("serve.queue_depth").get();
    let batch = echo_obs::registry().histogram("serve.batch_size");
    let fill = echo_obs::registry().histogram("serve.batch_fill_pct");
    StatsReport {
        epoch_len: window::epoch_len(),
        queue_depth,
        batch_count: batch.count(),
        batch_sum: batch.sum_ns(),
        fill_count: fill.count(),
        fill_sum: fill.sum_ns(),
        global: tenant_stats(&global),
        tenants,
    }
}

fn opt_f64_json(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), json_f64)
}

fn opt_u64_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".into(), |v| v.to_string())
}

fn rollup_json(r: &RollupStats) -> String {
    let rejects: Vec<String> = REJECT_LABELS
        .iter()
        .zip(r.rejects.iter())
        .map(|(label, count)| format!("\"{label}\": {count}"))
        .collect();
    format!(
        "{{\"epochs\": {}, \"decisions\": {}, \"accepted\": {}, \"rejects\": {{{}}}, \
         \"qps\": {}, \"margin_p50\": {}, \"margin_p99\": {}, \"lat_count\": {}, \
         \"lat_mean_ns\": {}, \"lat_p50_ns\": {}, \"lat_p99_ns\": {}}}",
        r.epochs,
        r.decisions,
        r.accepted,
        rejects.join(", "),
        json_f64(r.qps),
        opt_f64_json(r.margin_p50),
        opt_f64_json(r.margin_p99),
        r.lat.count,
        opt_f64_json(r.lat.mean_ns()),
        opt_u64_json(r.lat.quantile_ns(0.5)),
        opt_u64_json(r.lat.quantile_ns(0.99)),
    )
}

fn tenant_json(t: &TenantStats) -> String {
    let windows: Vec<String> = t.windows.iter().map(rollup_json).collect();
    format!(
        "{{\"tenant\": {}, \"epoch\": {}, \"drift\": {}, \"cum\": {}, \"windows\": [{}]}}",
        t.tenant
            .map_or_else(|| "null".to_string(), |v| v.to_string()),
        t.epoch,
        opt_f64_json(t.drift),
        rollup_json(&t.cum),
        windows.join(", "),
    )
}

/// Serialises a [`StatsReport`] as a JSON document — the payload of
/// `echo-top --once --json`, asserted by the CI `obs-smoke` job.
/// Latency quantiles and means are precomputed so scripts don't need
/// the bucket ladder.
pub fn report_to_json(s: &StatsReport) -> String {
    let tenants: Vec<String> = s.tenants.iter().map(tenant_json).collect();
    let mean_batch = (s.batch_count > 0)
        .then(|| s.batch_sum as f64 / s.batch_count as f64)
        .map_or_else(|| "null".into(), json_f64);
    let mean_fill = (s.fill_count > 0)
        .then(|| s.fill_sum as f64 / s.fill_count as f64)
        .map_or_else(|| "null".into(), json_f64);
    format!(
        "{{\n  \"epoch_len\": {},\n  \"queue_depth\": {},\n  \"mean_batch\": {mean_batch},\n  \
         \"mean_fill_pct\": {mean_fill},\n  \"global\": {},\n  \"tenants\": [{}]\n}}\n",
        s.epoch_len,
        s.queue_depth,
        tenant_json(&s.global),
        tenants.join(", "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_obs::window::LatHist;

    fn roll(decisions: u64) -> RollupStats {
        let mut lat = LatHist::new();
        for _ in 0..decisions {
            lat.observe_ns(2_000_000);
        }
        RollupStats {
            epochs: 2,
            decisions,
            accepted: decisions / 2,
            rejects: [0, 0, 1, 2, 0],
            qps: 50.0,
            margin_p50: Some(-0.01),
            margin_p99: None,
            lat,
        }
    }

    #[test]
    fn report_json_is_wellformed_and_carries_tenants() {
        let report = StatsReport {
            epoch_len: 32,
            queue_depth: 3,
            batch_count: 4,
            batch_sum: 18,
            fill_count: 4,
            fill_sum: 290,
            global: TenantStats {
                tenant: None,
                epoch: 5,
                drift: None,
                cum: roll(20),
                windows: vec![roll(4), roll(12), roll(20)],
            },
            tenants: vec![TenantStats {
                tenant: Some(9),
                epoch: 5,
                drift: Some(0.03),
                cum: roll(20),
                windows: vec![roll(4), roll(12), roll(20)],
            }],
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"tenant\": null"));
        assert!(json.contains("\"tenant\": 9"));
        assert!(json.contains("\"drift\": 0.03"));
        assert!(json.contains("\"mean_batch\": 4.5"));
        assert!(json.contains("\"mean_fill_pct\": 72.5"));
        assert!(json.contains("\"spoofer_gate\": 1"));
        assert!(json.contains("\"margin_p99\": null"));
        assert!(json.contains("\"lat_p99_ns\""));
        assert_eq!(json.matches('"').count() % 2, 0);
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser dependency.
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
