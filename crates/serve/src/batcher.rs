//! The micro-batching scheduler: one thread that turns a queue of
//! individually-submitted requests into batched feature extraction.
//!
//! Feature extraction dominates the serving cost and
//! [`ImageFeatures::extract_batch_threaded`] amortises its scratch
//! setup across a batch, so the scheduler's job is to trade a bounded
//! slice of latency for throughput: it holds the oldest queued request
//! at most [`ServeConfig::batch_window`] hoping more arrive, and
//! flushes immediately once [`ServeConfig::max_batch`] requests are
//! queued. Under light load the window expires with a batch of one
//! (latency ≈ window); under heavy load the size trigger fires first
//! and the window never adds latency at all.
//!
//! One flush concatenates every job's images into a single extraction
//! call, then walks the jobs **in queue order** to decide each one.
//! That ordering is the snapshot-consistency story for enrol-while-
//! authenticate: an enrol job retrains and swaps its tenant's
//! authenticator at its queue position, so every auth job decides
//! against exactly the model that was live when it reached the front —
//! the same sequence a serial server would produce. Feature extraction
//! itself is model-independent, which is why batching it across the
//! enrol boundary is safe.

use crate::protocol::{encode_response, Opcode, Request, Response, Status};
use crate::server::{Job, Shared};
use echo_ml::GrayImage;
use echoimage_core::auth::AuthAttempt;
use echoimage_core::store::{identify_traced, IdentifyConfig};
use echoimage_core::AuthDecision;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Runs the scheduler until shutdown is flagged *and* the queue is
/// drained, so every admitted request gets a response even when the
/// daemon is asked to exit mid-burst.
pub(crate) fn run(shared: &Shared) {
    loop {
        let batch = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if q.is_empty() {
                    if shared.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    q = shared.cond.wait(q).unwrap();
                    continue;
                }
                let now = Instant::now();
                let deadline = q.front().expect("nonempty").enqueued + shared.cfg.batch_window;
                if q.len() >= shared.cfg.max_batch
                    || now >= deadline
                    || shared.shutdown.load(Ordering::Relaxed)
                {
                    break;
                }
                // Deadline not reached and batch not full: sleep until
                // the deadline, waking early if more work arrives.
                let (qq, _) = shared.cond.wait_timeout(q, deadline - now).unwrap();
                q = qq;
            }
            let take = q.len().min(shared.cfg.max_batch);
            let batch: Vec<Job> = q.drain(..take).collect();
            echo_obs::gauge!("serve.queue_depth").set(q.len() as i64);
            batch
        };
        process_batch(shared, batch);
    }
}

fn process_batch(shared: &Shared, mut batch: Vec<Job>) {
    let t0 = Instant::now();
    // Batch size is a unitless count; the ns-bucketed histogram still
    // gives exact count/sum, which is all the mean-batch-size gate
    // reads.
    echo_obs::histogram!("serve.batch_size").observe_ns(batch.len() as u64);
    // Occupancy: how full this flush was relative to the configured
    // ceiling, in percent (unitless, like batch_size).
    let fill_pct = (batch.len() * 100 / shared.cfg.max_batch.max(1)) as u64;
    echo_obs::histogram!("serve.batch_fill_pct").observe_ns(fill_pct);

    // One extraction call over every image in the flush — the point of
    // the whole crate.
    let mut all: Vec<GrayImage> = Vec::new();
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(batch.len());
    for job in &mut batch {
        let start = all.len();
        all.append(&mut job.req.images);
        ranges.push((start, all.len()));
        // The job has left the queue: close its wait span so the trace
        // separates batcher wait from pipeline time.
        drop(job.queue_wait.take());
    }
    let features = shared.fx.extract_batch_threaded(&all, shared.cfg.threads);

    for (job, (s, e)) in batch.into_iter().zip(ranges) {
        let feats = &features[s..e];
        let resp = {
            // Everything the decision path audits — including records
            // emitted deep inside echoimage-core — is stamped with the
            // job's tenant and fed to its telemetry window.
            let _tenant = echo_obs::tenant_scope(job.req.tenant);
            let _decide_span = job.span.ctx().child("serve.decide");
            decide(shared, &job, feats)
        };
        let e2e_ns = job.enqueued.elapsed().as_nanos() as u64;
        echo_obs::histogram!("serve.e2e").observe_ns(e2e_ns);
        echo_obs::window::observe_latency(job.req.tenant, e2e_ns);
        shared.registry.release(job.req.tenant);
        let frame = encode_response(&resp);
        let mut ob = shared.outboxes.lock().unwrap();
        if let Some(q) = ob.get_mut(&job.conn) {
            q.push_back(frame);
        }
        // The job's span (and with it the request's trace) closes here,
        // after the response is queued for write.
    }
    echo_obs::histogram!("serve.batch_flush").observe_ns(t0.elapsed().as_nanos() as u64);
}

fn decide(shared: &Shared, job: &Job, feats: &[Vec<f64>]) -> Response {
    let req = &job.req;
    let ctx = job.span.ctx();
    let respond = |status: Status, user_id: u64, reason: String| Response {
        op: req.op,
        request_id: req.request_id,
        status,
        user_id,
        trace_id: ctx.trace_id(),
        reason,
        stats: None,
    };
    match req.op {
        Opcode::Auth => match shared.registry.authenticator(req.tenant) {
            None => {
                echo_obs::counter!("serve.errors").inc();
                respond(
                    Status::Error,
                    0,
                    format!("tenant {} has no enrolled users", req.tenant),
                )
            }
            Some(auth) => {
                let attempt = AuthAttempt {
                    claimed_user: req.claimed_user(),
                    retry_index: 0,
                };
                match auth.authenticate_features_traced(ctx, feats, attempt) {
                    Ok(AuthDecision::Accepted { user_id }) => {
                        echo_obs::counter!("serve.accepted").inc();
                        respond(Status::Accepted, user_id as u64, String::new())
                    }
                    Ok(AuthDecision::Rejected) => {
                        echo_obs::counter!("serve.rejected").inc();
                        respond(Status::Rejected, 0, "biometric reject".into())
                    }
                    Err(e) => {
                        echo_obs::counter!("serve.errors").inc();
                        respond(Status::Error, 0, e.to_string())
                    }
                }
            }
        },
        Opcode::Identify => match shared.registry.store(req.tenant) {
            None => {
                echo_obs::counter!("serve.errors").inc();
                respond(
                    Status::Error,
                    0,
                    format!("tenant {} has no enrolled users", req.tenant),
                )
            }
            Some(handle) => {
                // One wait-free snapshot load per request: an enrol
                // published at an earlier queue position is visible, a
                // later one is not — the same serial order auth observes
                // through its authenticator snapshot.
                let store = handle.load();
                let attempt = AuthAttempt {
                    claimed_user: None,
                    retry_index: 0,
                };
                match identify_traced(
                    store.as_ref(),
                    ctx,
                    feats,
                    &IdentifyConfig::default(),
                    attempt,
                ) {
                    Ok(AuthDecision::Accepted { user_id }) => {
                        echo_obs::counter!("serve.accepted").inc();
                        respond(Status::Accepted, user_id as u64, String::new())
                    }
                    Ok(AuthDecision::Rejected) => {
                        echo_obs::counter!("serve.rejected").inc();
                        respond(Status::Rejected, 0, "biometric reject".into())
                    }
                    Err(e) => {
                        echo_obs::counter!("serve.errors").inc();
                        respond(Status::Error, 0, e.to_string())
                    }
                }
            }
        },
        Opcode::Enroll => match req.claimed_user() {
            None => {
                echo_obs::counter!("serve.errors").inc();
                respond(Status::Error, 0, "enrol requires a user id".into())
            }
            Some(user) => {
                match shared
                    .registry
                    .enroll_group(req.tenant, user as usize, feats.to_vec())
                {
                    Ok(()) => {
                        echo_obs::counter!("serve.enrolls").inc();
                        respond(Status::Ok, user, String::new())
                    }
                    Err(e) => {
                        echo_obs::counter!("serve.errors").inc();
                        respond(Status::Error, 0, e.to_string())
                    }
                }
            }
        },
        // Ping/shutdown/stats are answered on the I/O thread and never
        // reach the queue; answer defensively rather than panic if one
        // does.
        Opcode::Ping | Opcode::Shutdown | Opcode::Stats => respond(Status::Ok, 0, String::new()),
    }
}

/// Builds the `Overloaded` response and audit record for a shed
/// request. Lives here (not in the I/O loop) so the shed path and the
/// decided path produce their records from one place.
pub(crate) fn shed(req: &Request, trace_id: u64, queued: usize) -> Response {
    echo_obs::counter!("serve.overloaded").inc();
    let beeps = req.images.len() as u64;
    echo_obs::record_audit(echo_obs::AuthAudit {
        trace: trace_id,
        tenant: Some(req.tenant),
        seq: 0,
        claimed_user: req.claimed_user(),
        beeps,
        votes: Vec::new(),
        votes_needed: beeps / 2 + 1,
        best_gate_margin: None,
        channels: 0,
        degraded_mask: 0,
        retry_index: 0,
        verdict: echo_obs::AuthVerdict::Overloaded,
        reject_kind: echo_obs::RejectKind::Overloaded,
        reject_reason: format!(
            "overloaded: tenant {} admission queue full ({queued} queued)",
            req.tenant
        ),
        spatial_coherence: None,
    });
    Response {
        op: req.op,
        request_id: req.request_id,
        status: Status::Overloaded,
        user_id: 0,
        trace_id,
        reason: format!(
            "overloaded: tenant {} admission queue full ({queued} queued)",
            req.tenant
        ),
        stats: None,
    }
}
