//! A small blocking client for the daemon's frame protocol — what the
//! load generator, the smoke tests, and a would-be device SDK build on.

use crate::protocol::{
    decode_response, encode_request, split_frame, ProtocolError, Request, Response,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent a frame this client cannot decode.
    Protocol(ProtocolError),
    /// The server closed the connection mid-response.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Protocol(e) => write!(f, "bad response frame: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

enum ClientStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            ClientStream::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.write_all(buf),
            ClientStream::Unix(s) => s.write_all(buf),
        }
    }
}

/// A blocking connection to the daemon. Requests may be pipelined:
/// [`Client::send`] does not wait, [`Client::recv`] returns responses
/// in the order the server finished them (FIFO per connection for
/// queued work).
pub struct Client {
    stream: ClientStream,
    buf: Vec<u8>,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection fails.
    pub fn connect_tcp(addr: SocketAddr) -> Result<Client, ClientError> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Ok(Client {
            stream: ClientStream::Tcp(s),
            buf: Vec::new(),
        })
    }

    /// Connects over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the connection fails.
    pub fn connect_unix<P: AsRef<Path>>(path: P) -> Result<Client, ClientError> {
        let s = UnixStream::connect(path)?;
        Ok(Client {
            stream: ClientStream::Unix(s),
            buf: Vec::new(),
        })
    }

    /// A second handle on the same connection (e.g. a reader thread
    /// draining pipelined responses while this one keeps sending). The
    /// clone starts with an empty frame buffer, so exactly one of the
    /// two handles should ever call [`Client::recv`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket cannot be duplicated.
    pub fn try_clone(&self) -> Result<Client, ClientError> {
        let stream = match &self.stream {
            ClientStream::Tcp(s) => ClientStream::Tcp(s.try_clone()?),
            ClientStream::Unix(s) => ClientStream::Unix(s.try_clone()?),
        };
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Bounds how long [`Client::recv`] blocks (`None` = forever).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] when the socket rejects the option.
    pub fn set_read_timeout(
        &mut self,
        dur: Option<std::time::Duration>,
    ) -> Result<(), ClientError> {
        match &self.stream {
            ClientStream::Tcp(s) => s.set_read_timeout(dur)?,
            ClientStream::Unix(s) => s.set_read_timeout(dur)?,
        }
        Ok(())
    }

    /// Sends one request frame without waiting for the response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on write failure.
    pub fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        self.stream.write_all(&encode_request(req))?;
        Ok(())
    }

    /// Blocks until the next complete response frame arrives.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF mid-frame, [`ClientError::Io`] /
    /// [`ClientError::Protocol`] on transport or framing failures.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some((payload, used)) = split_frame(&self.buf)? {
                let resp = decode_response(payload)?;
                self.buf.drain(..used);
                return Ok(resp);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClientError::Closed),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Sends one request and blocks for its response, skipping any
    /// pipelined responses to *other* request ids still in flight.
    ///
    /// # Errors
    ///
    /// See [`Client::send`] and [`Client::recv`].
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.send(req)?;
        loop {
            let resp = self.recv()?;
            if resp.request_id == req.request_id {
                return Ok(resp);
            }
        }
    }
}
