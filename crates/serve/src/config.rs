//! Serving-layer configuration, validated at parse time.
//!
//! Every knob that reaches the daemon from the outside world — CLI
//! flags, the `ECHOIMAGE_THREADS` environment variable — goes through
//! [`ServeConfig::validated`] before a socket is ever bound, so a typo
//! is a typed error at startup instead of a pathological batcher at
//! 3am. The bounds are deliberately generous: they reject obvious
//! garbage (a zero-slot queue, a one-minute batch window), not tuned
//! operating points.

use echoimage_core::par::ThreadsParseError;
use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

/// Longest accepted micro-batch window. A window is added to every
/// request's latency in the worst case; anything beyond a second is a
/// misconfiguration, not a tuning choice.
pub const MAX_BATCH_WINDOW: Duration = Duration::from_secs(1);

/// Largest accepted flush size.
pub const MAX_MAX_BATCH: usize = 4096;

/// Largest accepted per-tenant admission-queue bound.
pub const MAX_QUEUE_BOUND: usize = 65_536;

/// A serving knob that failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `batch_window` exceeds [`MAX_BATCH_WINDOW`].
    BatchWindowTooLong {
        /// The rejected window.
        got_ms: u128,
    },
    /// `max_batch` is zero or exceeds [`MAX_MAX_BATCH`].
    MaxBatchOutOfRange {
        /// The rejected flush size.
        got: usize,
    },
    /// `queue_bound` is zero or exceeds [`MAX_QUEUE_BOUND`].
    QueueBoundOutOfRange {
        /// The rejected bound.
        got: usize,
    },
    /// The worker-thread count failed the workspace-wide parse
    /// (see [`echoimage_core::par::parse_threads`]).
    Threads(ThreadsParseError),
}

impl fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeConfigError::BatchWindowTooLong { got_ms } => write!(
                f,
                "batch window {got_ms} ms exceeds the maximum of {} ms",
                MAX_BATCH_WINDOW.as_millis()
            ),
            ServeConfigError::MaxBatchOutOfRange { got } => {
                write!(f, "max batch {got} is outside 1..={MAX_MAX_BATCH}")
            }
            ServeConfigError::QueueBoundOutOfRange { got } => {
                write!(f, "queue bound {got} is outside 1..={MAX_QUEUE_BOUND}")
            }
            ServeConfigError::Threads(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeConfigError {}

impl From<ThreadsParseError> for ServeConfigError {
    fn from(e: ThreadsParseError) -> Self {
        ServeConfigError::Threads(e)
    }
}

/// Validated serving parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// How long the batcher holds the oldest queued request hoping for
    /// company before flushing anyway. Zero disables coalescing — every
    /// request is its own batch.
    pub batch_window: Duration,
    /// Flush immediately once this many requests are queued.
    pub max_batch: usize,
    /// Per-tenant admission bound: requests arriving while this many of
    /// the tenant's jobs are already queued are shed with a typed
    /// `Overloaded` response instead of growing the queue without
    /// limit.
    pub queue_bound: usize,
    /// Worker threads for batched feature extraction (workspace
    /// convention: `0` = available parallelism, `1` = serial).
    pub threads: usize,
    /// When set, the I/O loop atomically rewrites this file about once
    /// a second with the Prometheus text exposition (registry metrics
    /// plus the tenant windows) for file-based scraping. A path, not a
    /// bounded knob, so it is set after [`ServeConfig::validated`]
    /// rather than through it.
    pub prom_out: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_window: Duration::from_millis(3),
            max_batch: 32,
            queue_bound: 256,
            threads: 0,
            prom_out: None,
        }
    }
}

impl ServeConfig {
    /// Validates raw knob values into a [`ServeConfig`].
    ///
    /// # Errors
    ///
    /// One [`ServeConfigError`] per out-of-range knob, checked in field
    /// order.
    pub fn validated(
        batch_window: Duration,
        max_batch: usize,
        queue_bound: usize,
        threads: usize,
    ) -> Result<Self, ServeConfigError> {
        if batch_window > MAX_BATCH_WINDOW {
            return Err(ServeConfigError::BatchWindowTooLong {
                got_ms: batch_window.as_millis(),
            });
        }
        if max_batch == 0 || max_batch > MAX_MAX_BATCH {
            return Err(ServeConfigError::MaxBatchOutOfRange { got: max_batch });
        }
        if queue_bound == 0 || queue_bound > MAX_QUEUE_BOUND {
            return Err(ServeConfigError::QueueBoundOutOfRange { got: queue_bound });
        }
        if threads > echoimage_core::par::MAX_THREADS {
            return Err(ThreadsParseError::OutOfRange { value: threads }.into());
        }
        Ok(ServeConfig {
            batch_window,
            max_batch,
            queue_bound,
            threads,
            prom_out: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let d = ServeConfig::default();
        assert_eq!(
            ServeConfig::validated(d.batch_window, d.max_batch, d.queue_bound, d.threads),
            Ok(d)
        );
    }

    #[test]
    fn each_knob_is_bounds_checked_with_a_typed_error() {
        let d = ServeConfig::default();
        assert!(matches!(
            ServeConfig::validated(Duration::from_secs(2), d.max_batch, d.queue_bound, 0),
            Err(ServeConfigError::BatchWindowTooLong { got_ms: 2000 })
        ));
        assert!(matches!(
            ServeConfig::validated(d.batch_window, 0, d.queue_bound, 0),
            Err(ServeConfigError::MaxBatchOutOfRange { got: 0 })
        ));
        assert!(matches!(
            ServeConfig::validated(d.batch_window, 5000, d.queue_bound, 0),
            Err(ServeConfigError::MaxBatchOutOfRange { got: 5000 })
        ));
        assert!(matches!(
            ServeConfig::validated(d.batch_window, d.max_batch, 0, 0),
            Err(ServeConfigError::QueueBoundOutOfRange { got: 0 })
        ));
        assert!(matches!(
            ServeConfig::validated(d.batch_window, d.max_batch, d.queue_bound, 2000),
            Err(ServeConfigError::Threads(_))
        ));
        // A zero window is legal: it means "no coalescing".
        assert!(ServeConfig::validated(Duration::ZERO, 1, 1, 1).is_ok());
    }

    #[test]
    fn errors_render_actionable_messages() {
        let e = ServeConfig::validated(Duration::ZERO, 0, 1, 0).unwrap_err();
        assert!(e.to_string().contains("max batch"), "{e}");
    }
}
