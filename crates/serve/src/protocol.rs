//! The wire protocol: length-prefixed binary frames.
//!
//! Every message is one frame — a little-endian `u32` payload length
//! followed by that many payload bytes — so framing survives partial
//! reads trivially: buffer until the prefix is complete, then until the
//! payload is. Inside a frame the payload is a fixed header plus (for
//! auth/enrol) a pixel block:
//!
//! ```text
//! request  := op:u8  request_id:u64  tenant:u64  user:u64
//!             n_images:u16  width:u16  height:u16
//!             pixels:[f32; n_images·width·height]      (row-major)
//! response := op:u8  request_id:u64  status:u8  user_id:u64
//!             trace_id:u64  reason_len:u32  reason:[u8]
//! ```
//!
//! All integers are little-endian. `user` is the claimed subject for
//! auth (`u64::MAX` = unclaimed), the enrollee for enrol, and ignored
//! for identify (the whole point is not claiming one). Pixels are
//! `f32` on the wire — the acoustic image's dynamic range survives
//! single precision, and it halves the frame size of the hottest
//! message.
//!
//! Decoding never panics: every failure is a typed [`ProtocolError`]
//! carrying the byte offset at which the payload went wrong, so a
//! malformed client shows up in the daemon log as
//! `"frame truncated at byte 21: need 8, have 3"` rather than a panic
//! backtrace (the bug class this PR sweeps off the I/O surface).

use echo_ml::GrayImage;
use echo_obs::window::{LatHist, REJECT_CLASSES, ROLLUP_SPANS};
use std::fmt;

/// Hard ceiling on a frame payload. Bounds per-connection buffering; a
/// maximal auth request (64 images of 256×256 `f32`) fits comfortably.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Most images accepted in one request.
pub const MAX_IMAGES: u16 = 64;

/// Largest accepted image side.
pub const MAX_IMAGE_SIDE: u16 = 256;

/// Request kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Authenticate a beep train of acoustic images.
    Auth = 1,
    /// Add an enrolment group for a user and retrain the tenant.
    Enroll = 2,
    /// Liveness probe.
    Ping = 3,
    /// Ask the daemon to drain and exit.
    Shutdown = 4,
    /// Identify the subject of a beep train against the tenant's
    /// template store (no claimed user required; `user` is ignored and
    /// conventionally `u64::MAX`).
    Identify = 5,
    /// Read the daemon's live telemetry windows. `tenant` selects one
    /// tenant, or `u64::MAX` for all; `user` and images are ignored.
    /// Answered inline on the I/O thread — a stats poll never waits
    /// behind the batcher.
    Stats = 6,
}

impl Opcode {
    fn from_u8(op: u8) -> Option<Self> {
        match op {
            1 => Some(Opcode::Auth),
            2 => Some(Opcode::Enroll),
            3 => Some(Opcode::Ping),
            4 => Some(Opcode::Shutdown),
            5 => Some(Opcode::Identify),
            6 => Some(Opcode::Stats),
            _ => None,
        }
    }

    /// A short stable label for trace attributes and dashboards.
    pub fn label(&self) -> &'static str {
        match self {
            Opcode::Auth => "auth",
            Opcode::Enroll => "enroll",
            Opcode::Ping => "ping",
            Opcode::Shutdown => "shutdown",
            Opcode::Identify => "identify",
            Opcode::Stats => "stats",
        }
    }
}

/// Response status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Authenticated as `user_id`.
    Accepted = 0,
    /// Biometric reject (spoofer gate / no majority).
    Rejected = 1,
    /// Shed by admission control before classification — back off and
    /// retry; this is a serving-layer verdict, not a biometric one.
    Overloaded = 2,
    /// The request failed with the error in `reason`.
    Error = 3,
    /// Acknowledgement for ping / enrol / shutdown.
    Ok = 4,
}

impl Status {
    fn from_u8(s: u8) -> Option<Self> {
        match s {
            0 => Some(Status::Accepted),
            1 => Some(Status::Rejected),
            2 => Some(Status::Overloaded),
            3 => Some(Status::Error),
            4 => Some(Status::Ok),
            _ => None,
        }
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub op: Opcode,
    /// Caller-chosen correlation id, echoed verbatim in the response.
    pub request_id: u64,
    pub tenant: u64,
    /// Claimed subject (auth) or enrollee (enrol); `u64::MAX` = none.
    pub user: u64,
    /// The beep train's acoustic images (empty for ping/shutdown).
    pub images: Vec<GrayImage>,
}

impl Request {
    /// The claimed subject, if the caller stated one.
    pub fn claimed_user(&self) -> Option<u64> {
        (self.user != u64::MAX).then_some(self.user)
    }
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Opcode of the request this answers.
    pub op: Opcode,
    pub request_id: u64,
    pub status: Status,
    /// Authenticated user for [`Status::Accepted`], otherwise 0.
    pub user_id: u64,
    /// Trace id of the server-side attempt (0 when untraced).
    pub trace_id: u64,
    /// Reject/error reason; empty on success.
    pub reason: String,
    /// Telemetry payload; `Some` only on successful [`Opcode::Stats`]
    /// responses (encoded as a trailing binary block, absent for every
    /// other opcode).
    pub stats: Option<StatsReport>,
}

/// One rollup on the wire: verdict counts, QPS, gate-margin quantiles
/// (computed server-side from the window sketch — sketches never cross
/// the wire) and the latency histogram for client-side quantile math.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupStats {
    /// Epochs the rollup spans (including the current partial one).
    pub epochs: u64,
    pub decisions: u64,
    pub accepted: u64,
    /// Rejections by class, indexed per
    /// [`echo_obs::window::REJECT_LABELS`].
    pub rejects: [u64; REJECT_CLASSES],
    /// Decisions per wall-clock second over the span.
    pub qps: f64,
    /// Median gate margin over the span.
    pub margin_p50: Option<f64>,
    /// 99th-percentile gate margin over the span.
    pub margin_p99: Option<f64>,
    /// End-to-end latency histogram over the span.
    pub lat: LatHist,
}

/// One tenant's windows on the wire (`tenant: None` = the global
/// cross-tenant window).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    pub tenant: Option<u64>,
    /// Current (partial) epoch number.
    pub epoch: u64,
    /// Latest PSI drift score vs the enrolment-time reference.
    pub drift: Option<f64>,
    /// Cumulative totals since the window was created.
    pub cum: RollupStats,
    /// Trailing rollups, one per span in
    /// [`echo_obs::window::ROLLUP_SPANS`] (1 / 8 / 64 epochs).
    pub windows: Vec<RollupStats>,
}

/// The [`Opcode::Stats`] payload: daemon-level queue/batch health plus
/// the global and per-tenant windows.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReport {
    /// Decisions per epoch in force.
    pub epoch_len: u64,
    /// Batcher queue depth at snapshot time.
    pub queue_depth: i64,
    /// Observations / summed sizes of the `serve.batch_size` histogram
    /// (cumulative; delta two reports for a windowed mean).
    pub batch_count: u64,
    pub batch_sum: u64,
    /// Observations / summed percentages of the `serve.batch_fill_pct`
    /// occupancy histogram.
    pub fill_count: u64,
    pub fill_sum: u64,
    /// The cross-tenant global window.
    pub global: TenantStats,
    /// Per-tenant windows, ascending tenant id.
    pub tenants: Vec<TenantStats>,
}

/// A frame that could not be decoded. Every variant names the byte
/// offset (within the payload) where decoding stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The length prefix announces a payload beyond [`MAX_FRAME`].
    FrameTooLarge { len: usize },
    /// The payload ended before a field did.
    Truncated {
        offset: usize,
        need: usize,
        have: usize,
    },
    /// Unknown opcode byte.
    BadOpcode { offset: usize, op: u8 },
    /// Unknown status byte.
    BadStatus { offset: usize, status: u8 },
    /// Image geometry outside [`MAX_IMAGES`]/[`MAX_IMAGE_SIDE`], or a
    /// zero side with a nonzero image count.
    BadGeometry {
        offset: usize,
        n_images: u16,
        width: u16,
        height: u16,
    },
    /// The reason field is not UTF-8.
    BadUtf8 { offset: usize },
    /// A presence flag byte in a stats block was neither 0 nor 1, or a
    /// block count was out of range — the frame is corrupt, not merely
    /// short.
    BadStatsBlock { offset: usize, value: u64 },
    /// Bytes remained after the last field.
    TrailingBytes { offset: usize, extra: usize },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_FRAME}-byte limit"
                )
            }
            ProtocolError::Truncated { offset, need, have } => {
                write!(
                    f,
                    "frame truncated at byte {offset}: need {need}, have {have}"
                )
            }
            ProtocolError::BadOpcode { offset, op } => {
                write!(f, "unknown opcode {op} at byte {offset}")
            }
            ProtocolError::BadStatus { offset, status } => {
                write!(f, "unknown status {status} at byte {offset}")
            }
            ProtocolError::BadGeometry {
                offset,
                n_images,
                width,
                height,
            } => write!(
                f,
                "bad image geometry {n_images}×{width}×{height} at byte {offset} \
                 (limits: {MAX_IMAGES} images, {MAX_IMAGE_SIDE} per side)"
            ),
            ProtocolError::BadUtf8 { offset } => {
                write!(f, "reason at byte {offset} is not valid UTF-8")
            }
            ProtocolError::BadStatsBlock { offset, value } => {
                write!(f, "corrupt stats block at byte {offset}: value {value}")
            }
            ProtocolError::TrailingBytes { offset, extra } => {
                write!(
                    f,
                    "{extra} trailing bytes after the last field at byte {offset}"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(ProtocolError::Truncated {
                offset: self.pos,
                need: n,
                have,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtocolError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f32(&mut self) -> Result<f32, ProtocolError> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i64(&mut self) -> Result<i64, ProtocolError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A 0/1 presence flag; any other byte is a corrupt block, not a
    /// short one.
    fn flag(&mut self) -> Result<bool, ProtocolError> {
        let off = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(ProtocolError::BadStatsBlock {
                offset: off,
                value: v as u64,
            }),
        }
    }

    fn opt_f64(&mut self) -> Result<Option<f64>, ProtocolError> {
        Ok(if self.flag()? {
            Some(self.f64()?)
        } else {
            None
        })
    }

    fn done(&self) -> Result<(), ProtocolError> {
        if self.pos != self.buf.len() {
            return Err(ProtocolError::TrailingBytes {
                offset: self.pos,
                extra: self.buf.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Encodes a request into a complete frame (prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let n = req.images.len();
    let (w, h) = req
        .images
        .first()
        .map_or((0, 0), |i| (i.width(), i.height()));
    let payload_len = 1 + 8 + 8 + 8 + 2 + 2 + 2 + n * w * h * 4;
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.push(req.op as u8);
    out.extend_from_slice(&req.request_id.to_le_bytes());
    out.extend_from_slice(&req.tenant.to_le_bytes());
    out.extend_from_slice(&req.user.to_le_bytes());
    out.extend_from_slice(&(n as u16).to_le_bytes());
    out.extend_from_slice(&(w as u16).to_le_bytes());
    out.extend_from_slice(&(h as u16).to_le_bytes());
    for img in &req.images {
        for &p in img.pixels() {
            out.extend_from_slice(&(p as f32).to_le_bytes());
        }
    }
    out
}

/// Decodes a request payload (the bytes *after* the length prefix).
///
/// # Errors
///
/// A [`ProtocolError`] naming the offending byte offset.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut c = Cursor::new(payload);
    let op_off = c.pos;
    let op_byte = c.u8()?;
    let op = Opcode::from_u8(op_byte).ok_or(ProtocolError::BadOpcode {
        offset: op_off,
        op: op_byte,
    })?;
    let request_id = c.u64()?;
    let tenant = c.u64()?;
    let user = c.u64()?;
    let geom_off = c.pos;
    let n_images = c.u16()?;
    let width = c.u16()?;
    let height = c.u16()?;
    let geometry_ok = n_images <= MAX_IMAGES
        && width <= MAX_IMAGE_SIDE
        && height <= MAX_IMAGE_SIDE
        && (n_images == 0 || (width > 0 && height > 0));
    if !geometry_ok {
        return Err(ProtocolError::BadGeometry {
            offset: geom_off,
            n_images,
            width,
            height,
        });
    }
    let (w, h) = (width as usize, height as usize);
    let mut images = Vec::with_capacity(n_images as usize);
    for _ in 0..n_images {
        let mut img = GrayImage::zeros(w, h);
        for p in img.pixels_mut() {
            *p = c.f32()? as f64;
        }
        images.push(img);
    }
    c.done()?;
    Ok(Request {
        op,
        request_id,
        tenant,
        user,
        images,
    })
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        None => out.push(0),
    }
}

fn put_rollup(out: &mut Vec<u8>, r: &RollupStats) {
    out.extend_from_slice(&r.epochs.to_le_bytes());
    out.extend_from_slice(&r.decisions.to_le_bytes());
    out.extend_from_slice(&r.accepted.to_le_bytes());
    for &n in &r.rejects {
        out.extend_from_slice(&n.to_le_bytes());
    }
    out.extend_from_slice(&r.qps.to_bits().to_le_bytes());
    put_opt_f64(out, r.margin_p50);
    put_opt_f64(out, r.margin_p99);
    out.extend_from_slice(&r.lat.count.to_le_bytes());
    out.extend_from_slice(&r.lat.sum_ns.to_le_bytes());
    for &b in &r.lat.buckets {
        out.extend_from_slice(&b.to_le_bytes());
    }
}

fn put_tenant_stats(out: &mut Vec<u8>, t: &TenantStats) {
    match t.tenant {
        Some(id) => {
            out.push(1);
            out.extend_from_slice(&id.to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&t.epoch.to_le_bytes());
    put_opt_f64(out, t.drift);
    out.push(t.windows.len() as u8);
    put_rollup(out, &t.cum);
    for w in &t.windows {
        put_rollup(out, w);
    }
}

fn put_stats(out: &mut Vec<u8>, s: &StatsReport) {
    out.extend_from_slice(&s.epoch_len.to_le_bytes());
    out.extend_from_slice(&s.queue_depth.to_le_bytes());
    out.extend_from_slice(&s.batch_count.to_le_bytes());
    out.extend_from_slice(&s.batch_sum.to_le_bytes());
    out.extend_from_slice(&s.fill_count.to_le_bytes());
    out.extend_from_slice(&s.fill_sum.to_le_bytes());
    out.extend_from_slice(&(s.tenants.len() as u16).to_le_bytes());
    put_tenant_stats(out, &s.global);
    for t in &s.tenants {
        put_tenant_stats(out, t);
    }
}

/// Encodes a response into a complete frame (prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let reason = resp.reason.as_bytes();
    let mut out = vec![0u8; 4]; // length prefix patched below
    out.push(resp.op as u8);
    out.extend_from_slice(&resp.request_id.to_le_bytes());
    out.push(resp.status as u8);
    out.extend_from_slice(&resp.user_id.to_le_bytes());
    out.extend_from_slice(&resp.trace_id.to_le_bytes());
    out.extend_from_slice(&(reason.len() as u32).to_le_bytes());
    out.extend_from_slice(reason);
    if let Some(stats) = &resp.stats {
        put_stats(&mut out, stats);
    }
    let payload_len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&payload_len.to_le_bytes());
    out
}

fn take_rollup(c: &mut Cursor<'_>) -> Result<RollupStats, ProtocolError> {
    let epochs = c.u64()?;
    let decisions = c.u64()?;
    let accepted = c.u64()?;
    let mut rejects = [0u64; REJECT_CLASSES];
    for slot in rejects.iter_mut() {
        *slot = c.u64()?;
    }
    let qps = c.f64()?;
    let margin_p50 = c.opt_f64()?;
    let margin_p99 = c.opt_f64()?;
    let mut lat = LatHist::new();
    lat.count = c.u64()?;
    lat.sum_ns = c.u64()?;
    for b in lat.buckets.iter_mut() {
        *b = c.u64()?;
    }
    Ok(RollupStats {
        epochs,
        decisions,
        accepted,
        rejects,
        qps,
        margin_p50,
        margin_p99,
        lat,
    })
}

fn take_tenant_stats(c: &mut Cursor<'_>) -> Result<TenantStats, ProtocolError> {
    let tenant = if c.flag()? { Some(c.u64()?) } else { None };
    let epoch = c.u64()?;
    let drift = c.opt_f64()?;
    let n_off = c.pos;
    let n_windows = c.u8()? as usize;
    // The window count is structural: anything but the fixed rollup
    // span set means sender and receiver disagree on the format.
    if n_windows != ROLLUP_SPANS.len() {
        return Err(ProtocolError::BadStatsBlock {
            offset: n_off,
            value: n_windows as u64,
        });
    }
    let cum = take_rollup(c)?;
    let mut windows = Vec::with_capacity(n_windows);
    for _ in 0..n_windows {
        windows.push(take_rollup(c)?);
    }
    Ok(TenantStats {
        tenant,
        epoch,
        drift,
        cum,
        windows,
    })
}

fn take_stats(c: &mut Cursor<'_>) -> Result<StatsReport, ProtocolError> {
    let epoch_len = c.u64()?;
    let queue_depth = c.i64()?;
    let batch_count = c.u64()?;
    let batch_sum = c.u64()?;
    let fill_count = c.u64()?;
    let fill_sum = c.u64()?;
    let n_tenants = c.u16()? as usize;
    let global = take_tenant_stats(c)?;
    let mut tenants = Vec::with_capacity(n_tenants.min(1024));
    for _ in 0..n_tenants {
        tenants.push(take_tenant_stats(c)?);
    }
    Ok(StatsReport {
        epoch_len,
        queue_depth,
        batch_count,
        batch_sum,
        fill_count,
        fill_sum,
        global,
        tenants,
    })
}

/// Decodes a response payload (the bytes *after* the length prefix).
///
/// # Errors
///
/// A [`ProtocolError`] naming the offending byte offset.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut c = Cursor::new(payload);
    let op_off = c.pos;
    let op_byte = c.u8()?;
    let op = Opcode::from_u8(op_byte).ok_or(ProtocolError::BadOpcode {
        offset: op_off,
        op: op_byte,
    })?;
    let request_id = c.u64()?;
    let st_off = c.pos;
    let st_byte = c.u8()?;
    let status = Status::from_u8(st_byte).ok_or(ProtocolError::BadStatus {
        offset: st_off,
        status: st_byte,
    })?;
    let user_id = c.u64()?;
    let trace_id = c.u64()?;
    let reason_len = c.u32()? as usize;
    let reason_off = c.pos;
    let reason = std::str::from_utf8(c.take(reason_len)?)
        .map_err(|_| ProtocolError::BadUtf8 { offset: reason_off })?
        .to_string();
    // Only a successful Stats response carries a trailing stats block;
    // for every other opcode (and for stats errors, which end at the
    // reason) leftover bytes are still a protocol violation.
    let stats = if op == Opcode::Stats && c.pos < c.buf.len() {
        Some(take_stats(&mut c)?)
    } else {
        None
    };
    c.done()?;
    Ok(Response {
        op,
        request_id,
        status,
        user_id,
        trace_id,
        reason,
        stats,
    })
}

/// Tries to split one complete frame off the front of `buf`.
///
/// Returns the payload and the total bytes consumed (prefix included),
/// `Ok(None)` when the buffer does not yet hold a whole frame.
///
/// # Errors
///
/// [`ProtocolError::FrameTooLarge`] as soon as the prefix announces a
/// payload beyond [`MAX_FRAME`] — without waiting for the bytes, so an
/// abusive prefix cannot make the server buffer 4 GiB first.
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ProtocolError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge { len });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Request {
        Request {
            op: Opcode::Auth,
            request_id: 42,
            tenant: 7,
            user: 3,
            images: vec![
                GrayImage::from_fn(4, 3, |x, y| (x * 10 + y) as f64),
                GrayImage::from_fn(4, 3, |x, y| (y * 10 + x) as f64),
            ],
        }
    }

    #[test]
    fn request_round_trips_including_pixels() {
        let req = sample_request();
        let frame = encode_request(&req);
        let (payload, used) = split_frame(&frame).unwrap().unwrap();
        assert_eq!(used, frame.len());
        let back = decode_request(payload).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn identify_request_round_trips_without_a_claimed_user() {
        let req = Request {
            op: Opcode::Identify,
            user: u64::MAX,
            ..sample_request()
        };
        assert_eq!(req.claimed_user(), None);
        let frame = encode_request(&req);
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        let back = decode_request(payload).unwrap();
        assert_eq!(back.op, Opcode::Identify);
        assert_eq!(back, req);
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            op: Opcode::Auth,
            request_id: 42,
            status: Status::Overloaded,
            user_id: 0,
            trace_id: 99,
            reason: "overloaded: tenant 7 queue full (256 queued)".into(),
            stats: None,
        };
        let frame = encode_response(&resp);
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        assert_eq!(decode_response(payload).unwrap(), resp);
    }

    fn sample_rollup(seed: u64) -> RollupStats {
        let mut lat = LatHist::new();
        lat.observe_ns(1_500 + seed);
        lat.observe_ns(2_000_000);
        RollupStats {
            epochs: 3,
            decisions: 40 + seed,
            accepted: 31,
            rejects: [1, 2, 3, 2, 1],
            qps: 123.5,
            margin_p50: Some(0.04),
            margin_p99: None,
            lat,
        }
    }

    fn sample_stats() -> StatsReport {
        let tenant = |id: Option<u64>| TenantStats {
            tenant: id,
            epoch: 17,
            drift: id.map(|i| 0.01 * i as f64),
            cum: sample_rollup(0),
            windows: vec![sample_rollup(1), sample_rollup(2), sample_rollup(3)],
        };
        StatsReport {
            epoch_len: 32,
            queue_depth: -1,
            batch_count: 9,
            batch_sum: 40,
            fill_count: 9,
            fill_sum: 730,
            global: tenant(None),
            tenants: vec![tenant(Some(7)), tenant(Some(9))],
        }
    }

    #[test]
    fn stats_response_round_trips() {
        let resp = Response {
            op: Opcode::Stats,
            request_id: 5,
            status: Status::Ok,
            user_id: 0,
            trace_id: 0,
            reason: String::new(),
            stats: Some(sample_stats()),
        };
        let frame = encode_response(&resp);
        let (payload, used) = split_frame(&frame).unwrap().unwrap();
        assert_eq!(used, frame.len());
        let back = decode_response(payload).unwrap();
        assert_eq!(back, resp);
        let stats = back.stats.unwrap();
        assert_eq!(stats.tenants.len(), 2);
        assert_eq!(stats.tenants[0].tenant, Some(7));
        assert_eq!(stats.global.tenant, None);
        assert_eq!(stats.queue_depth, -1);
        assert_eq!(stats.tenants[1].drift, Some(0.09));
    }

    #[test]
    fn stats_error_response_carries_no_block() {
        let resp = Response {
            op: Opcode::Stats,
            request_id: 5,
            status: Status::Error,
            user_id: 0,
            trace_id: 0,
            reason: "no such tenant".into(),
            stats: None,
        };
        let frame = encode_response(&resp);
        let (payload, _) = split_frame(&frame).unwrap().unwrap();
        assert_eq!(decode_response(payload).unwrap(), resp);
    }

    #[test]
    fn truncated_stats_block_is_typed_at_every_cut() {
        let frame = encode_response(&Response {
            op: Opcode::Stats,
            request_id: 5,
            status: Status::Ok,
            user_id: 0,
            trace_id: 0,
            reason: String::new(),
            stats: Some(sample_stats()),
        });
        let payload = &frame[4..];
        // The fixed response header ends after the (empty) reason.
        let header_end = 1 + 8 + 1 + 8 + 8 + 4;
        for cut in [header_end + 1, header_end + 60, payload.len() - 1] {
            let err = decode_response(&payload[..cut]).unwrap_err();
            assert!(
                matches!(err, ProtocolError::Truncated { .. }),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_stats_flags_and_counts_are_rejected() {
        let frame = encode_response(&Response {
            op: Opcode::Stats,
            request_id: 5,
            status: Status::Ok,
            user_id: 0,
            trace_id: 0,
            reason: String::new(),
            stats: Some(sample_stats()),
        });
        let header_end = 4 + 1 + 8 + 1 + 8 + 8 + 4;
        // First byte after the six u64 block headers + tenant count is
        // the global entry's tenant-presence flag.
        let flag_off = header_end + 6 * 8 + 2;
        let mut bad_flag = frame.clone();
        bad_flag[flag_off] = 7;
        let err = decode_response(&bad_flag[4..]).unwrap_err();
        assert!(
            matches!(err, ProtocolError::BadStatsBlock { value: 7, .. }),
            "{err:?}"
        );
        // The global entry is tenantless: flag(1) + epoch(8) +
        // drift-flag(1) puts the window count next; any count except
        // the rollup-span set is structurally corrupt.
        let n_windows_off = flag_off + 1 + 8 + 1;
        let mut bad_count = frame.clone();
        assert_eq!(bad_count[n_windows_off], ROLLUP_SPANS.len() as u8);
        bad_count[n_windows_off] = 9;
        let err = decode_response(&bad_count[4..]).unwrap_err();
        assert!(
            matches!(err, ProtocolError::BadStatsBlock { value: 9, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn non_stats_response_rejects_trailing_stats_bytes() {
        let mut frame = encode_response(&Response {
            op: Opcode::Ping,
            request_id: 1,
            status: Status::Ok,
            user_id: 0,
            trace_id: 0,
            reason: String::new(),
            stats: None,
        });
        frame.extend_from_slice(&[1, 2, 3]);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_response(&frame[4..]),
            Err(ProtocolError::TrailingBytes { extra: 3, .. })
        ));
    }

    #[test]
    fn split_frame_waits_for_complete_frames() {
        let frame = encode_request(&sample_request());
        for cut in [0, 3, 4, frame.len() - 1] {
            assert_eq!(split_frame(&frame[..cut]).unwrap(), None, "cut={cut}");
        }
        // Two frames back to back: the first splits off cleanly.
        let mut two = frame.clone();
        two.extend_from_slice(&frame);
        let (_, used) = split_frame(&two).unwrap().unwrap();
        assert_eq!(used, frame.len());
    }

    #[test]
    fn oversized_prefix_is_rejected_before_buffering() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            split_frame(&buf),
            Err(ProtocolError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn truncation_errors_carry_the_byte_offset() {
        let frame = encode_request(&sample_request());
        let payload = &frame[4..];
        // Cut inside the pixel block: offset points into the payload.
        let err = decode_request(&payload[..30]).unwrap_err();
        match err {
            ProtocolError::Truncated { offset, .. } => assert!(offset <= 30, "{offset}"),
            other => panic!("expected Truncated, got {other:?}"),
        }
        let err = decode_request(&[]).unwrap_err();
        assert!(matches!(err, ProtocolError::Truncated { offset: 0, .. }));
    }

    #[test]
    fn bad_opcode_status_and_geometry_are_typed() {
        let mut frame = encode_request(&sample_request());
        frame[4] = 200;
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtocolError::BadOpcode { offset: 0, op: 200 })
        ));

        let resp = Response {
            op: Opcode::Ping,
            request_id: 1,
            status: Status::Ok,
            user_id: 0,
            trace_id: 0,
            reason: String::new(),
            stats: None,
        };
        let mut rframe = encode_response(&resp);
        rframe[4 + 9] = 77;
        assert!(matches!(
            decode_response(&rframe[4..]),
            Err(ProtocolError::BadStatus { status: 77, .. })
        ));

        let mut geo = encode_request(&Request {
            images: Vec::new(),
            ..sample_request()
        });
        // Patch n_images to a huge count with zero sides.
        let n_off = 4 + 1 + 8 + 8 + 8;
        geo[n_off..n_off + 2].copy_from_slice(&500u16.to_le_bytes());
        assert!(matches!(
            decode_request(&geo[4..]),
            Err(ProtocolError::BadGeometry { n_images: 500, .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode_request(&Request {
            op: Opcode::Ping,
            request_id: 9,
            tenant: 0,
            user: u64::MAX,
            images: Vec::new(),
        });
        // Grow the payload and the prefix consistently.
        frame.push(0xAB);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(
            decode_request(&frame[4..]),
            Err(ProtocolError::TrailingBytes { extra: 1, .. })
        ));
    }

    #[test]
    fn errors_render_with_offsets() {
        let msg = ProtocolError::Truncated {
            offset: 21,
            need: 8,
            have: 3,
        }
        .to_string();
        assert!(msg.contains("byte 21"), "{msg}");
    }
}
