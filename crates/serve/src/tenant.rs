//! Per-tenant state: the live authenticator, the enrolment corpus it
//! was trained from, and the admission counter that backs load
//! shedding.
//!
//! The daemon serves many tenants (think: households) from one process.
//! Each tenant owns an independent [`Authenticator`] plus the raw
//! feature groups it was trained from, so an enrol request retrains
//! only its own tenant. Authentication takes an `Arc` snapshot of the
//! tenant's authenticator: a retrain builds the new model off to the
//! side and swaps the `Arc`, so a decision in flight keeps scoring
//! against exactly the model that was live when the decision started —
//! never a half-updated one.
//!
//! Admission control is a plain per-tenant counter of queued jobs,
//! bounded by [`crate::config::ServeConfig::queue_bound`]: one slow or
//! abusive tenant fills its own queue and gets `Overloaded` responses
//! while its neighbours keep authenticating.

use echoimage_core::auth::{AuthConfig, Authenticator};
use echoimage_core::store::{MemoryStore, StoreHandle, TemplateBuilder, TemplateStore};
use echoimage_core::EchoImageError;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct Tenant {
    auth: Option<Arc<Authenticator>>,
    /// Raw enrolment feature groups, `(user_id, groups)`, in first-seen
    /// user order — the corpus every retrain is built from.
    groups: Vec<(usize, Vec<Vec<Vec<f64>>>)>,
    /// Template builder with the scaler frozen at first enrolment —
    /// every template published through `store` is scaled identically.
    builder: Option<TemplateBuilder>,
    /// Current identification snapshot; an enrol upserts ONE user's
    /// template (other users' models are shared by pointer) instead of
    /// re-copying the whole population the way the classification
    /// retrain does.
    mem: Option<Arc<MemoryStore>>,
    /// The published-snapshot cell identify requests load from.
    store: Option<Arc<StoreHandle>>,
    /// Jobs currently admitted to the batch queue.
    queued: usize,
}

/// All tenants known to this daemon.
#[derive(Default)]
pub struct TenantRegistry {
    inner: Mutex<HashMap<u64, Tenant>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tries to admit one more job for `tenant` under `bound`.
    ///
    /// # Errors
    ///
    /// The current queued count when the tenant is already at the
    /// bound — the caller sheds the request with that number in the
    /// `Overloaded` reason.
    pub fn try_admit(&self, tenant: u64, bound: usize) -> Result<(), usize> {
        let mut map = self.inner.lock().unwrap();
        let t = map.entry(tenant).or_default();
        if t.queued >= bound {
            return Err(t.queued);
        }
        t.queued += 1;
        Ok(())
    }

    /// Releases one admitted job for `tenant` (its response was
    /// encoded).
    pub fn release(&self, tenant: u64) {
        let mut map = self.inner.lock().unwrap();
        if let Some(t) = map.get_mut(&tenant) {
            t.queued = t.queued.saturating_sub(1);
        }
    }

    /// Jobs currently admitted for `tenant`.
    pub fn queued(&self, tenant: u64) -> usize {
        self.inner
            .lock()
            .unwrap()
            .get(&tenant)
            .map_or(0, |t| t.queued)
    }

    /// A snapshot of the tenant's live authenticator, or `None` while
    /// nobody is enrolled.
    pub fn authenticator(&self, tenant: u64) -> Option<Arc<Authenticator>> {
        self.inner
            .lock()
            .unwrap()
            .get(&tenant)
            .and_then(|t| t.auth.clone())
    }

    /// Appends one enrolment group for `user` and retrains the tenant.
    /// On a training error the group is rolled back, so the tenant's
    /// corpus and live model stay consistent with each other.
    ///
    /// # Errors
    ///
    /// Whatever [`Authenticator::enroll_with_groups`] rejects (empty
    /// group, inconsistent dimensionality, …).
    pub fn enroll_group(
        &self,
        tenant: u64,
        user: usize,
        group: Vec<Vec<f64>>,
    ) -> Result<(), EchoImageError> {
        if group.is_empty() {
            return Err(EchoImageError::InvalidParameter(
                "enrolment group has no feature vectors",
            ));
        }
        let mut map = self.inner.lock().unwrap();
        let t = map.entry(tenant).or_default();
        let (uidx, added_user) = match t.groups.iter().position(|(id, _)| *id == user) {
            Some(i) => (i, false),
            None => {
                t.groups.push((user, Vec::new()));
                (t.groups.len() - 1, true)
            }
        };
        t.groups[uidx].1.push(group);
        let rollback = |t: &mut Tenant| {
            t.groups[uidx].1.pop();
            if added_user {
                t.groups.remove(uidx);
            }
        };
        let auth = match Authenticator::enroll_with_groups(&t.groups, &AuthConfig::default()) {
            Ok(auth) => auth,
            Err(e) => {
                rollback(t);
                return Err(e);
            }
        };
        // Incremental template-store update: train only THIS user's
        // gates under the frozen scaler and upsert their template —
        // existing users' templates are shared by pointer, so the cost
        // of publishing a new snapshot is independent of how many
        // neighbours the tenant has.
        let builder = t.builder.get_or_insert_with(|| {
            TemplateBuilder::new(auth.scaler().clone(), AuthConfig::default())
        });
        let store_step = builder
            .build_user(user as u64, &t.groups[uidx].1)
            .and_then(|tmpl| {
                let base = match &t.mem {
                    Some(m) => m.upsert(Arc::new(tmpl))?,
                    None => MemoryStore::from_templates(builder.scaler(), vec![Arc::new(tmpl)])?,
                };
                Ok(Arc::new(base))
            });
        match store_step {
            Ok(mem) => {
                t.mem = Some(Arc::clone(&mem));
                let snapshot: Arc<dyn TemplateStore> = mem;
                match &t.store {
                    Some(handle) => handle.publish(snapshot),
                    None => t.store = Some(Arc::new(StoreHandle::new(snapshot))),
                }
                // Freeze the drift reference: the gate-margin
                // distribution of the enrolment corpus under the model
                // that was just published. Live auth margins are PSI'd
                // against this by the window's drift watch; re-freezing
                // on every enrol keeps the reference aligned with the
                // live model.
                let margins: Vec<f64> = t
                    .groups
                    .iter()
                    .flat_map(|(_, groups)| groups.iter().flatten())
                    .map(|fv| auth.gate_decision(fv))
                    .collect();
                echo_obs::window::set_reference(
                    tenant,
                    echo_obs::window::reference_from_margins(&margins),
                );
                t.auth = Some(Arc::new(auth));
                Ok(())
            }
            Err(e) => {
                // Keep corpus, classifier and store consistent: if the
                // template cannot be built, the enrolment fails as a
                // whole and the previous model stays live.
                rollback(t);
                Err(e)
            }
        }
    }

    /// The tenant's identification-store handle, or `None` while nobody
    /// is enrolled. Callers `load()` a snapshot per request; a
    /// concurrent enrol publishes a new one without invalidating it.
    pub fn store(&self, tenant: u64) -> Option<Arc<StoreHandle>> {
        self.inner
            .lock()
            .unwrap()
            .get(&tenant)
            .and_then(|t| t.store.clone())
    }

    /// Number of tenants the registry has seen.
    pub fn tenant_count(&self) -> usize {
        self.inner.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(cx: f64, n: usize, salt: u64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add(salt);
                let a = ((h & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.3;
                vec![cx + a, cx - a]
            })
            .collect()
    }

    #[test]
    fn admission_is_per_tenant_and_bounded() {
        let r = TenantRegistry::new();
        assert!(r.try_admit(1, 2).is_ok());
        assert!(r.try_admit(1, 2).is_ok());
        assert_eq!(r.try_admit(1, 2), Err(2));
        // Tenant 2 is unaffected by tenant 1's full queue.
        assert!(r.try_admit(2, 2).is_ok());
        r.release(1);
        assert!(r.try_admit(1, 2).is_ok());
        // Releasing an unknown tenant is a no-op, not a panic.
        r.release(99);
        assert_eq!(r.queued(99), 0);
    }

    #[test]
    fn enroll_swaps_the_authenticator_snapshot() {
        let r = TenantRegistry::new();
        assert!(r.authenticator(5).is_none());
        r.enroll_group(5, 1, cloud(0.0, 30, 1)).unwrap();
        let first = r.authenticator(5).unwrap();
        assert_eq!(first.user_ids(), vec![1]);
        // A snapshot taken before the retrain still scores against the
        // old model after a second user enrols.
        r.enroll_group(5, 2, cloud(3.0, 30, 2)).unwrap();
        assert_eq!(first.user_ids(), vec![1]);
        assert_eq!(r.authenticator(5).unwrap().user_ids(), vec![1, 2]);
    }

    #[test]
    fn failed_retrain_rolls_the_corpus_back() {
        let r = TenantRegistry::new();
        r.enroll_group(5, 1, cloud(0.0, 30, 3)).unwrap();
        let before = r.authenticator(5).unwrap();
        // Wrong dimensionality: retrain fails, corpus must roll back.
        let err = r.enroll_group(5, 2, vec![vec![1.0, 2.0, 3.0]; 10]);
        assert!(err.is_err());
        assert!(Arc::ptr_eq(&before, &r.authenticator(5).unwrap()));
        assert!(r.enroll_group(5, 2, cloud(3.0, 30, 4)).is_ok());
        let empty = r.enroll_group(5, 3, Vec::new());
        assert!(empty.is_err());
    }
}
