//! Deterministic load generation against a running daemon.
//!
//! The generator builds a synthetic world of tenants and users whose
//! acoustic images are distinct low-frequency patterns with per-capture
//! jitter — the same (tenant, user, variant) triple always produces the
//! same image, so load runs are reproducible without any RNG state.
//! It enrols the world over the wire, then replays paced, pipelined
//! auth sessions at a target QPS from one open-loop sender while a
//! reader thread tallies responses.
//!
//! Latency percentiles are *not* measured here: they come from the
//! daemon's own `serve.e2e` histogram (see
//! [`crate::loadgen::report`]), so the numbers the load test prints are
//! the numbers the observability layer exports — one source of truth.

use crate::client::{Client, ClientError};
use crate::protocol::{Opcode, Request, StatsReport, Status};
use echo_ml::GrayImage;
use echo_obs::MetricsSnapshot;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Shape of a load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Auth sessions to replay.
    pub sessions: usize,
    /// Target aggregate arrival rate.
    pub qps: f64,
    /// Tenants in the world (requests round-robin across them).
    pub tenants: u64,
    /// Enrolled users per tenant.
    pub users_per_tenant: u64,
    /// Images per auth request (the beep train length).
    pub beeps: usize,
    /// Enrolment captures per user.
    pub enroll_images: usize,
    /// Image side in pixels.
    pub image_side: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            sessions: 2000,
            qps: 600.0,
            tenants: 2,
            users_per_tenant: 2,
            beeps: 3,
            enroll_images: 30,
            image_side: 32,
        }
    }
}

/// Raw outcome tallies of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadTallies {
    pub sessions: usize,
    pub accepted: u64,
    pub rejected: u64,
    pub overloaded: u64,
    pub errors: u64,
    /// First send to last response.
    pub wall_s: f64,
}

impl LoadTallies {
    /// Sessions per second actually completed.
    pub fn achieved_qps(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.sessions as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// The load test's summary: tallies plus the serving histograms'
/// latency and batching view.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    pub tallies: LoadTallies,
    /// `serve.e2e` quantiles (admission → response encoded).
    pub p50_ns: Option<u64>,
    pub p99_ns: Option<u64>,
    pub p999_ns: Option<u64>,
    /// Mean and max of `serve.batch_size` — the direct evidence that
    /// micro-batching actually coalesced concurrent requests.
    pub mean_batch: Option<f64>,
    pub max_batch: Option<u64>,
}

impl LoadReport {
    /// Hand-rolled JSON (all fields numeric; `null` for absent).
    pub fn to_json(&self) -> String {
        fn opt_u(v: Option<u64>) -> String {
            v.map_or_else(|| "null".into(), |v| v.to_string())
        }
        let t = &self.tallies;
        format!(
            "{{\n  \"sessions\": {},\n  \"accepted\": {},\n  \"rejected\": {},\n  \
             \"overloaded\": {},\n  \"errors\": {},\n  \"wall_s\": {:.3},\n  \
             \"achieved_qps\": {:.1},\n  \"p50_ns\": {},\n  \"p99_ns\": {},\n  \
             \"p999_ns\": {},\n  \"mean_batch\": {},\n  \"max_batch\": {}\n}}\n",
            t.sessions,
            t.accepted,
            t.rejected,
            t.overloaded,
            t.errors,
            t.wall_s,
            t.achieved_qps(),
            opt_u(self.p50_ns),
            opt_u(self.p99_ns),
            opt_u(self.p999_ns),
            self.mean_batch
                .map_or_else(|| "null".into(), |m| format!("{m:.2}")),
            opt_u(self.max_batch),
        )
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Triangular wave on [0, 1) — a cheap, fully deterministic stand-in
/// for a sinusoid.
fn tri(t: f64) -> f64 {
    let f = t - t.floor();
    1.0 - (2.0 * f - 1.0).abs()
}

/// The deterministic synthetic capture for `(tenant, user, variant)`:
/// a user-specific oriented ramp pattern plus small per-variant sway,
/// standing in for the acoustic image of that user's body at that
/// moment.
///
/// The per-capture variation is deliberately **low-dimensional** —
/// a small phase shift and amplitude change of the whole pattern, like
/// the global image change a swaying body produces — plus only a tiny
/// per-pixel noise floor. Independent per-pixel noise would put every
/// fresh capture on its own orthogonal shell in feature space (the
/// high-dimensional concentration effect) and no domain description
/// could wrap it; a low-dimensional sway manifold is what enrolment
/// actually samples and what fresh probes interpolate inside.
pub fn synth_image(tenant: u64, user: u64, variant: u64, side: usize) -> GrayImage {
    let seed = splitmix(tenant.wrapping_mul(0x51A7_637B).wrapping_add(user));
    let fx = (seed % 4) as f64 + 1.0;
    let fy = ((seed >> 8) % 4) as f64 + 1.0;
    let phase = ((seed >> 16) & 0xFFFF) as f64 / 65536.0;
    let sway = splitmix(seed ^ splitmix(variant));
    let dphase = ((sway & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.08;
    let amp = 1.0 + (((sway >> 16) & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.1;
    GrayImage::from_fn(side, side, |x, y| {
        let u = x as f64 / side as f64;
        let v = y as f64 / side as f64;
        let base = amp * tri(fx * u + fy * v + phase + dphase);
        let j = splitmix(seed ^ splitmix(variant) ^ (((x as u64) << 32) | y as u64));
        base + ((j & 0xFFFF) as f64 / 65536.0 - 0.5) * 0.01
    })
}

/// Enrols every user of every tenant in `spec` over the wire.
///
/// # Errors
///
/// [`ClientError`] on transport failure; a non-`Ok` enrol response
/// surfaces as an [`ClientError::Io`] of kind `InvalidData` naming the
/// server's reason.
pub fn enroll_world(addr: SocketAddr, spec: &LoadSpec) -> Result<(), ClientError> {
    let mut client = Client::connect_tcp(addr)?;
    let mut rid = 1_000_000u64;
    for tenant in 0..spec.tenants {
        for user in 1..=spec.users_per_tenant {
            let images: Vec<GrayImage> = (0..spec.enroll_images as u64)
                .map(|v| synth_image(tenant, user, v, spec.image_side))
                .collect();
            rid += 1;
            let resp = client.call(&Request {
                op: Opcode::Enroll,
                request_id: rid,
                tenant,
                user,
                images,
            })?;
            if resp.status != Status::Ok {
                return Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!(
                        "enrol of tenant {tenant} user {user} failed: {}",
                        resp.reason
                    ),
                )));
            }
        }
    }
    Ok(())
}

/// Replays `spec.sessions` paced auth sessions against `addr` and
/// tallies the responses. Open-loop: the sender never waits for a
/// response, so the offered rate tracks `spec.qps` even when the
/// server queues.
///
/// # Errors
///
/// [`ClientError`] when the connection fails or the server stops
/// responding (10 s read timeout).
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> Result<LoadTallies, ClientError> {
    let sender_client = Client::connect_tcp(addr)?;
    let mut reader_client = sender_client.try_clone()?;
    reader_client.set_read_timeout(Some(Duration::from_secs(10)))?;

    let sessions = spec.sessions;
    let reader = std::thread::Builder::new()
        .name("load-reader".into())
        .spawn(move || -> Result<(u64, u64, u64, u64), ClientError> {
            let (mut acc, mut rej, mut over, mut err) = (0u64, 0u64, 0u64, 0u64);
            for _ in 0..sessions {
                match reader_client.recv()?.status {
                    Status::Accepted => acc += 1,
                    Status::Rejected => rej += 1,
                    Status::Overloaded => over += 1,
                    Status::Error | Status::Ok => err += 1,
                }
            }
            Ok((acc, rej, over, err))
        })
        .map_err(ClientError::Io)?;

    let mut sender = sender_client;
    let start = Instant::now();
    for i in 0..sessions {
        let due = start + Duration::from_secs_f64(i as f64 / spec.qps);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        let tenant = i as u64 % spec.tenants;
        let user = (i as u64 / spec.tenants) % spec.users_per_tenant + 1;
        let images: Vec<GrayImage> = (0..spec.beeps as u64)
            .map(|b| synth_image(tenant, user, 1_000 + i as u64 * 8 + b, spec.image_side))
            .collect();
        sender.send(&Request {
            op: Opcode::Auth,
            request_id: i as u64,
            tenant,
            user,
            images,
        })?;
    }

    let (accepted, rejected, overloaded, errors) = reader
        .join()
        .map_err(|_| ClientError::Closed)
        .and_then(|r| r)?;
    let wall_s = start.elapsed().as_secs_f64();
    Ok(LoadTallies {
        sessions,
        accepted,
        rejected,
        overloaded,
        errors,
        wall_s,
    })
}

/// Fetches one [`StatsReport`] from the daemon at `addr` over the
/// wire (all tenants).
///
/// # Errors
///
/// [`ClientError`] on transport failure; a non-`Ok` status or a
/// response without a stats block surfaces as an [`ClientError::Io`]
/// of kind `InvalidData`.
pub fn fetch_stats(addr: SocketAddr) -> Result<StatsReport, ClientError> {
    let mut client = Client::connect_tcp(addr)?;
    let resp = client.call(&Request {
        op: Opcode::Stats,
        request_id: 0,
        tenant: u64::MAX,
        user: u64::MAX,
        images: Vec::new(),
    })?;
    let invalid =
        |msg: String| ClientError::Io(std::io::Error::new(std::io::ErrorKind::InvalidData, msg));
    if resp.status != Status::Ok {
        return Err(invalid(format!("stats request failed: {}", resp.reason)));
    }
    resp.stats
        .ok_or_else(|| invalid("stats response carried no stats block".into()))
}

/// Builds the load summary from **deltas between two [`StatsReport`]s**
/// bracketing the run, so back-to-back runs in one process (or against
/// one long-lived daemon) never contaminate each other through the
/// cumulative process-wide histograms. The per-flush `max_batch` is not
/// part of the stats block, so it is `None` here; the batching evidence
/// is the delta mean.
pub fn report_from_stats(
    tallies: LoadTallies,
    before: &StatsReport,
    after: &StatsReport,
) -> LoadReport {
    let lat = after.global.cum.lat.delta_since(&before.global.cum.lat);
    let batch_count = after.batch_count.saturating_sub(before.batch_count);
    let batch_sum = after.batch_sum.saturating_sub(before.batch_sum);
    LoadReport {
        tallies,
        p50_ns: lat.quantile_ns(0.50),
        p99_ns: lat.quantile_ns(0.99),
        p999_ns: lat.quantile_ns(0.999),
        mean_batch: (batch_count > 0).then(|| batch_sum as f64 / batch_count as f64),
        max_batch: None,
    }
}

/// Combines run tallies with the daemon's own **cumulative** histograms
/// into the summary the bench harness reads. Only valid when nothing
/// else has driven the serving histograms in this process; the load
/// test itself uses [`report_from_stats`].
pub fn report(tallies: LoadTallies, snapshot: &MetricsSnapshot) -> LoadReport {
    let e2e = snapshot.histogram("serve.e2e");
    let batch = snapshot.histogram("serve.batch_size");
    LoadReport {
        tallies,
        p50_ns: e2e.and_then(|h| h.quantile_ns(0.50)),
        p99_ns: e2e.and_then(|h| h.quantile_ns(0.99)),
        p999_ns: e2e.and_then(|h| h.quantile_ns(0.999)),
        mean_batch: batch.and_then(|h| h.mean_ns()),
        max_batch: batch.and_then(|h| h.max_ns),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_images_are_deterministic_and_user_distinct() {
        let a = synth_image(0, 1, 5, 16);
        let b = synth_image(0, 1, 5, 16);
        assert_eq!(a, b);
        let other_user = synth_image(0, 2, 5, 16);
        assert_ne!(a, other_user);
        let other_variant = synth_image(0, 1, 6, 16);
        assert_ne!(a, other_variant);
    }

    #[test]
    fn stats_report_deltas_ignore_prior_runs() {
        use crate::protocol::{RollupStats, TenantStats};
        use echo_obs::LatHist;

        fn rollup(lat: LatHist) -> RollupStats {
            RollupStats {
                epochs: 1,
                decisions: lat.count,
                accepted: lat.count,
                rejects: [0; 5],
                qps: 0.0,
                margin_p50: None,
                margin_p99: None,
                lat,
            }
        }
        fn snap(lat: LatHist, batch_count: u64, batch_sum: u64) -> StatsReport {
            StatsReport {
                epoch_len: 32,
                queue_depth: 0,
                batch_count,
                batch_sum,
                fill_count: 0,
                fill_sum: 0,
                global: TenantStats {
                    tenant: None,
                    epoch: 0,
                    drift: None,
                    cum: rollup(lat),
                    windows: Vec::new(),
                },
                tenants: Vec::new(),
            }
        }

        // A "previous run" left 100 very slow observations behind.
        let mut stale = LatHist::new();
        for _ in 0..100 {
            stale.observe_ns(900_000_000);
        }
        let mut after_lat = stale.clone();
        for _ in 0..50 {
            after_lat.observe_ns(1_000_000);
        }
        let tallies = LoadTallies {
            sessions: 50,
            accepted: 50,
            rejected: 0,
            overloaded: 0,
            errors: 0,
            wall_s: 1.0,
        };
        let before = snap(stale, 40, 200);
        let after = snap(after_lat, 50, 250);
        let r = report_from_stats(tallies, &before, &after);
        // Only this run's 1 ms observations survive the delta; the
        // stale 900 ms tail from the earlier run is subtracted out.
        assert!(r.p99_ns.unwrap() < 100_000_000, "{:?}", r.p99_ns);
        assert_eq!(r.mean_batch, Some(5.0));
        assert_eq!(r.max_batch, None);
    }

    #[test]
    fn report_serialises_null_for_missing_histograms() {
        let r = report(
            LoadTallies {
                sessions: 10,
                accepted: 9,
                rejected: 1,
                overloaded: 0,
                errors: 0,
                wall_s: 0.5,
            },
            &MetricsSnapshot {
                enabled: true,
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
            },
        );
        let json = r.to_json();
        assert!(json.contains("\"p99_ns\": null"), "{json}");
        assert!(json.contains("\"achieved_qps\": 20.0"), "{json}");
    }
}
