//! The daemon: a hand-rolled non-blocking event loop plus the batching
//! scheduler, behind a [`ServerHandle`].
//!
//! Two threads per server, by design rather than limitation:
//!
//! * the **I/O thread** owns every socket. It accepts connections,
//!   accumulates bytes into per-connection buffers, decodes complete
//!   frames, runs admission control, and drains response outboxes back
//!   into the sockets. Because no other thread ever touches a socket,
//!   response frames can never interleave mid-frame.
//! * the **batcher thread** ([`crate::batcher`]) owns the model: it
//!   coalesces queued jobs into batched feature extraction and pushes
//!   encoded responses into the outboxes.
//!
//! The loop is poll-based (`set_nonblocking` + a short idle sleep)
//! instead of epoll-based: the workspace is zero-dependency and the
//! daemon's work unit is a ~100 µs feature extraction, so a sub-
//! millisecond poll granularity costs nothing measurable while keeping
//! the loop portable and small. Fast-path requests (ping, shutdown)
//! are answered directly on the I/O thread; auth and enrol go through
//! admission control into the batch queue, or come straight back as
//! typed `Overloaded` responses when the tenant's queue is full.
//!
//! A connection whose stream produces a protocol error is sent one
//! final `Error` response and closed: a length-prefixed stream that has
//! desynchronised cannot be re-synchronised safely.

use crate::batcher;
use crate::config::ServeConfig;
use crate::protocol::{
    decode_request, encode_response, split_frame, Opcode, Request, Response, Status,
};
use crate::tenant::TenantRegistry;
use echo_obs::TraceSpan;
use echoimage_core::features::ImageFeatures;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long the I/O loop sleeps when a poll round moved no bytes.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Grace period after shutdown for draining queued work and unwritten
/// responses before the loop exits anyway.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// How often the `prom_out` exposition file is rewritten.
const PROM_INTERVAL: Duration = Duration::from_secs(1);

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// A TCP address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    Tcp(String),
    /// A unix-domain socket path; a stale file at the path is replaced.
    Unix(PathBuf),
}

/// One admitted request waiting for (or in) a batch.
pub(crate) struct Job {
    /// Connection to route the response to.
    pub conn: u64,
    pub req: Request,
    /// Admission time — the start of the e2e latency measurement.
    pub enqueued: Instant,
    /// The request's root span; its trace id is echoed in the response
    /// and stamped on the audit, and it closes when the response is
    /// queued for write.
    pub span: TraceSpan,
    /// Child span covering the time from admission to batch pickup;
    /// the batcher drops it when the job leaves the queue, making
    /// batcher wait visible to `trace-report` as its own stage.
    pub queue_wait: Option<TraceSpan>,
}

/// State shared between the I/O thread, the batcher, and the handle.
pub(crate) struct Shared {
    pub cfg: ServeConfig,
    pub fx: ImageFeatures,
    pub registry: TenantRegistry,
    pub queue: Mutex<VecDeque<Job>>,
    pub cond: Condvar,
    /// Per-connection queues of fully-encoded response frames. Only the
    /// I/O thread writes sockets; everyone else appends frames here.
    pub outboxes: Mutex<HashMap<u64, VecDeque<Vec<u8>>>>,
    pub shutdown: AtomicBool,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
}

struct Conn {
    stream: Stream,
    /// Bytes read but not yet framed.
    inbuf: Vec<u8>,
    /// Encoded frames (possibly partially written) awaiting the socket.
    pending: Vec<u8>,
    /// Peer closed or errored: stop reading, flush `pending`, drop.
    closing: bool,
}

/// A running daemon. Dropping the handle shuts the server down and
/// joins both threads.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: Option<SocketAddr>,
    io: Option<std::thread::JoinHandle<()>>,
    batcher: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `bind` and starts the I/O and batcher threads.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding the listener or spawning threads.
    pub fn start(cfg: ServeConfig, bind: BindAddr) -> io::Result<ServerHandle> {
        let listener = match bind {
            BindAddr::Tcp(addr) => {
                let l = TcpListener::bind(&addr)?;
                l.set_nonblocking(true)?;
                Listener::Tcp(l)
            }
            BindAddr::Unix(path) => {
                // A stale socket file from a dead daemon would make
                // bind fail forever; replacing it is the standard cure.
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                Listener::Unix(l, path)
            }
        };
        let addr = match &listener {
            Listener::Tcp(l) => Some(l.local_addr()?),
            Listener::Unix(..) => None,
        };
        let shared = Arc::new(Shared {
            cfg,
            fx: ImageFeatures::new(),
            registry: TenantRegistry::new(),
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            outboxes: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        let io_shared = Arc::clone(&shared);
        let io = std::thread::Builder::new()
            .name("echo-serve-io".into())
            .spawn(move || io_loop(&io_shared, listener))?;
        let b_shared = Arc::clone(&shared);
        let batcher = std::thread::Builder::new()
            .name("echo-serve-batch".into())
            .spawn(move || batcher::run(&b_shared))?;
        Ok(ServerHandle {
            shared,
            addr,
            io: Some(io),
            batcher: Some(batcher),
        })
    }

    /// The bound TCP address (`None` for unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// The tenant registry, e.g. to pre-enrol users in-process instead
    /// of over the wire.
    pub fn registry(&self) -> &TenantRegistry {
        &self.shared.registry
    }

    /// The feature extractor the daemon decides with — enrolment data
    /// prepared out-of-band must come from the same extractor.
    pub fn features(&self) -> &ImageFeatures {
        &self.shared.fx
    }

    /// `true` once a shutdown request was received or issued.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::Relaxed)
    }

    /// Flags shutdown and joins both threads, draining queued work
    /// first (bounded by an internal grace period).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Blocks until the server exits of its own accord — i.e. a client
    /// sends a `Shutdown` frame — then joins both threads. The daemon
    /// binary's main loop is exactly this call.
    pub fn wait(mut self) {
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
        // The I/O loop only exits with the flag set, but make sure the
        // batcher sees it even if the loop died another way.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.cond.notify_all();
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.cond.notify_all();
        if let Some(h) = self.io.take() {
            let _ = h.join();
        }
        if let Some(h) = self.batcher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn io_loop(shared: &Shared, listener: Listener) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 1;
    let mut read_buf = [0u8; 64 * 1024];
    let mut shutdown_at: Option<Instant> = None;
    let mut prom_due = Instant::now();

    loop {
        // Periodic Prometheus exposition: rewrite the scrape file about
        // once a second, off the request path (a render costs tens of
        // microseconds against a 500 µs idle tick).
        if let Some(path) = &shared.cfg.prom_out {
            if Instant::now() >= prom_due {
                prom_due = Instant::now() + PROM_INTERVAL;
                write_prometheus(path);
            }
        }
        let shutting_down = shared.shutdown.load(Ordering::Relaxed);
        let mut moved = false;

        // Accept — unless we're draining for shutdown.
        if !shutting_down {
            loop {
                let accepted = match &listener {
                    Listener::Tcp(l) => l
                        .accept()
                        .map(|(s, _)| s.set_nonblocking(true).map(|()| Stream::Tcp(s))),
                    Listener::Unix(l, _) => l
                        .accept()
                        .map(|(s, _)| s.set_nonblocking(true).map(|()| Stream::Unix(s))),
                };
                match accepted {
                    Ok(Ok(stream)) => {
                        let id = next_conn;
                        next_conn += 1;
                        conns.insert(
                            id,
                            Conn {
                                stream,
                                inbuf: Vec::new(),
                                pending: Vec::new(),
                                closing: false,
                            },
                        );
                        shared.outboxes.lock().unwrap().insert(id, VecDeque::new());
                        moved = true;
                    }
                    // A connection that died between accept() and
                    // set_nonblocking(): drop it, keep serving.
                    Ok(Err(_)) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // Read, frame, dispatch.
        let mut dead: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if !conn.closing {
                loop {
                    match conn.stream.read(&mut read_buf) {
                        Ok(0) => {
                            conn.closing = true;
                            break;
                        }
                        Ok(n) => {
                            conn.inbuf.extend_from_slice(&read_buf[..n]);
                            moved = true;
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.closing = true;
                            break;
                        }
                    }
                }
                loop {
                    match split_frame(&conn.inbuf) {
                        Ok(Some((payload, used))) => {
                            let frames = handle_payload(shared, id, payload);
                            conn.inbuf.drain(..used);
                            match frames {
                                Ok(()) => {}
                                Err(frame) => {
                                    conn.pending.extend_from_slice(&frame);
                                    conn.closing = true;
                                    break;
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            echo_obs::counter!("serve.protocol_errors").inc();
                            conn.pending
                                .extend_from_slice(&encode_response(&protocol_error_response(&e)));
                            conn.closing = true;
                            break;
                        }
                    }
                }
            }

            // Move finished responses from the outbox into the write
            // buffer, then push bytes.
            {
                let mut ob = shared.outboxes.lock().unwrap();
                if let Some(q) = ob.get_mut(&id) {
                    while let Some(f) = q.pop_front() {
                        conn.pending.extend_from_slice(&f);
                    }
                }
            }
            while !conn.pending.is_empty() {
                match conn.stream.write(&conn.pending) {
                    Ok(0) => {
                        conn.closing = true;
                        conn.pending.clear();
                        break;
                    }
                    Ok(n) => {
                        conn.pending.drain(..n);
                        moved = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.closing = true;
                        conn.pending.clear();
                        break;
                    }
                }
            }

            if conn.closing && conn.pending.is_empty() {
                // Don't cut the connection while decisions for it are
                // still queued or in flight.
                let has_queued = shared.queue.lock().unwrap().iter().any(|j| j.conn == id)
                    || !shared
                        .outboxes
                        .lock()
                        .unwrap()
                        .get(&id)
                        .is_none_or(|q| q.is_empty());
                if !has_queued {
                    dead.push(id);
                }
            }
        }
        for id in dead {
            conns.remove(&id);
            shared.outboxes.lock().unwrap().remove(&id);
        }

        if shutting_down {
            let deadline = *shutdown_at.get_or_insert_with(Instant::now) + SHUTDOWN_GRACE;
            let queue_empty = shared.queue.lock().unwrap().is_empty();
            let outboxes_empty = shared
                .outboxes
                .lock()
                .unwrap()
                .values()
                .all(|q| q.is_empty());
            let pending_empty = conns.values().all(|c| c.pending.is_empty());
            if (queue_empty && outboxes_empty && pending_empty) || Instant::now() >= deadline {
                break;
            }
        }

        if !moved {
            std::thread::sleep(IDLE_SLEEP);
        }
    }

    if let Listener::Unix(_, path) = &listener {
        let _ = std::fs::remove_file(path);
    }
    // One final exposition so the post-shutdown file reflects the full
    // run.
    if let Some(path) = &shared.cfg.prom_out {
        write_prometheus(path);
    }
}

/// Renders the registry snapshot plus the tenant windows in Prometheus
/// text format and atomically replaces `path` (write-temp-then-rename,
/// so a concurrent scraper never reads a torn file).
fn write_prometheus(path: &std::path::Path) {
    let snap = echo_obs::snapshot();
    let (global, tenants) = echo_obs::window::snapshot_windows();
    let mut text = echo_obs::export::prometheus_text(&snap);
    text.push_str(&echo_obs::export::prometheus_windows(&global, &tenants));
    let tmp = path.with_extension("prom.tmp");
    if std::fs::write(&tmp, &text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Handles one decoded-or-not frame payload from connection `conn`.
/// `Ok(())` means any response was routed through the outbox/queue;
/// `Err(frame)` carries a final response after which the connection
/// must close.
fn handle_payload(shared: &Shared, conn: u64, payload: &[u8]) -> Result<(), Vec<u8>> {
    let req = match decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            echo_obs::counter!("serve.protocol_errors").inc();
            return Err(encode_response(&protocol_error_response(&e)));
        }
    };
    echo_obs::counter!("serve.requests").inc();
    let mut span = echo_obs::root_span("serve.request");
    span.attr_u64("tenant", req.tenant);
    span.attr_u64("request_id", req.request_id);
    span.attr_str("op", req.op.label());
    match req.op {
        Opcode::Ping => {
            push_response(
                shared,
                conn,
                &Response {
                    op: Opcode::Ping,
                    request_id: req.request_id,
                    status: Status::Ok,
                    user_id: 0,
                    trace_id: span.ctx().trace_id(),
                    reason: String::new(),
                    stats: None,
                },
            );
        }
        Opcode::Shutdown => {
            shared.shutdown.store(true, Ordering::Relaxed);
            shared.cond.notify_all();
            push_response(
                shared,
                conn,
                &Response {
                    op: Opcode::Shutdown,
                    request_id: req.request_id,
                    status: Status::Ok,
                    user_id: 0,
                    trace_id: span.ctx().trace_id(),
                    reason: String::new(),
                    stats: None,
                },
            );
        }
        Opcode::Stats => {
            // Answered inline on the I/O thread, like ping: a stats
            // poll reads windows and gauges only and must never wait
            // behind the batcher.
            let filter = (req.tenant != u64::MAX).then_some(req.tenant);
            let report = crate::stats::collect(filter);
            push_response(
                shared,
                conn,
                &Response {
                    op: Opcode::Stats,
                    request_id: req.request_id,
                    status: Status::Ok,
                    user_id: 0,
                    trace_id: span.ctx().trace_id(),
                    reason: String::new(),
                    stats: Some(report),
                },
            );
        }
        Opcode::Auth | Opcode::Enroll | Opcode::Identify => {
            match shared
                .registry
                .try_admit(req.tenant, shared.cfg.queue_bound)
            {
                Err(queued) => {
                    let resp = batcher::shed(&req, span.ctx().trace_id(), queued);
                    push_response(shared, conn, &resp);
                }
                Ok(()) => {
                    let queue_wait = Some(span.ctx().child("serve.queue_wait"));
                    let mut q = shared.queue.lock().unwrap();
                    q.push_back(Job {
                        conn,
                        req,
                        enqueued: Instant::now(),
                        span,
                        queue_wait,
                    });
                    echo_obs::gauge!("serve.queue_depth").set(q.len() as i64);
                    drop(q);
                    shared.cond.notify_one();
                }
            }
        }
    }
    Ok(())
}

fn push_response(shared: &Shared, conn: u64, resp: &Response) {
    let mut ob = shared.outboxes.lock().unwrap();
    if let Some(q) = ob.get_mut(&conn) {
        q.push_back(encode_response(resp));
    }
}

fn protocol_error_response(e: &crate::protocol::ProtocolError) -> Response {
    Response {
        op: Opcode::Ping,
        request_id: 0,
        status: Status::Error,
        user_id: 0,
        trace_id: 0,
        reason: format!("protocol error: {e}"),
        stats: None,
    }
}
