//! `echo-serve`: the EchoImage authentication daemon.
//!
//! The rest of the workspace authenticates one attempt at a time — a
//! CLI invocation, an eval-harness call. This crate turns that library
//! into a long-lived service: a daemon that accepts authentication
//! requests over a length-prefixed binary protocol (TCP or unix-domain
//! socket), coalesces concurrent requests into **micro-batches** so the
//! feature extractor's batched path does the heavy lifting, applies
//! per-tenant admission control with typed `Overloaded` load shedding,
//! and reports itself through the `echo-obs` counters, gauges,
//! histograms, traces, and audit log.
//!
//! The moving parts, one module each:
//!
//! * [`protocol`] — the wire format: `u32`-length-prefixed frames, all
//!   decoding panic-free with byte-offset error context.
//! * [`config`] — [`config::ServeConfig`], every knob validated at
//!   parse time.
//! * [`tenant`] — per-tenant authenticator snapshots (`Arc`-swapped on
//!   enrol) and the admission counters behind load shedding.
//! * [`server`] — the non-blocking I/O loop and [`server::ServerHandle`].
//! * [`client`] — a small blocking client for the protocol.
//! * [`loadgen`] — deterministic load generation for the `load_test`
//!   bin and the serving benchmark.
//!
//! Requests carry acoustic **images**, not raw microphone captures and
//! not features: the device-side DSP (beamforming, imaging) is cheap
//! and personal to the device's array geometry, while feature
//! extraction is the server's hot loop and exactly the stage that
//! batches well. See DESIGN.md §11 for the full architecture.
//!
//! # Example
//!
//! ```
//! use echo_serve::config::ServeConfig;
//! use echo_serve::protocol::{Opcode, Request, Status};
//! use echo_serve::server::{BindAddr, ServerHandle};
//! use echo_serve::{client::Client, loadgen};
//!
//! let server = ServerHandle::start(
//!     ServeConfig::default(),
//!     BindAddr::Tcp("127.0.0.1:0".into()),
//! )
//! .unwrap();
//! let addr = server.local_addr().unwrap();
//!
//! let mut client = Client::connect_tcp(addr).unwrap();
//! // Enrol user 1 of tenant 0 from twenty synthetic captures…
//! let images: Vec<_> = (0..20).map(|v| loadgen::synth_image(0, 1, v, 32)).collect();
//! let resp = client
//!     .call(&Request { op: Opcode::Enroll, request_id: 1, tenant: 0, user: 1, images })
//!     .unwrap();
//! assert_eq!(resp.status, Status::Ok);
//! // …then authenticate a fresh capture of the same user.
//! let probe: Vec<_> = (100..103).map(|v| loadgen::synth_image(0, 1, v, 32)).collect();
//! let resp = client
//!     .call(&Request { op: Opcode::Auth, request_id: 2, tenant: 0, user: 1, images: probe })
//!     .unwrap();
//! assert_eq!(resp.status, Status::Accepted);
//! server.shutdown();
//! ```

pub mod client;
pub mod config;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod stats;
pub mod tenant;

mod batcher;

pub use client::{Client, ClientError};
pub use config::{ServeConfig, ServeConfigError};
pub use protocol::{
    Opcode, ProtocolError, Request, Response, RollupStats, StatsReport, Status, TenantStats,
};
pub use server::{BindAddr, ServerHandle};
