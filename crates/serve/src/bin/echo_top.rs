//! `echo-top`: a live terminal dashboard over the daemon's `Stats`
//! opcode.
//!
//! ```text
//! echo_top [--tcp ADDR | --unix PATH] [--tenant ID] [--interval-ms N]
//!          [--once] [--json] [--assert-live]
//! ```
//!
//! By default it polls every second and redraws one screen: a daemon
//! header (queue depth, mean batch size and fill) plus one row per
//! tenant with windowed QPS, accept rate, rejects by class, latency
//! p50/p99, and the PSI drift score against the enrolment-time
//! reference. `--once` polls a single time; with `--json` it prints the
//! raw report as JSON instead of a screen — the CI `obs-smoke` job runs
//! `--once --json --assert-live`, where `--assert-live` exits non-zero
//! unless at least one tenant window has decisions and every reported
//! drift score is finite.

use echo_serve::client::Client;
use echo_serve::protocol::{Opcode, Request, RollupStats, StatsReport, Status, TenantStats};
use echo_serve::stats::report_to_json;
use std::process::ExitCode;
use std::time::Duration;

fn flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn flag_present(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn connect(tcp: &Option<String>, unix: &Option<String>) -> Result<Client, String> {
    match (tcp, unix) {
        (Some(_), Some(_)) => Err("--tcp and --unix are mutually exclusive".into()),
        (None, Some(path)) => Client::connect_unix(path).map_err(|e| e.to_string()),
        (_, None) => {
            let addr = tcp.as_deref().unwrap_or("127.0.0.1:7777");
            let addr: std::net::SocketAddr =
                addr.parse().map_err(|_| format!("bad address `{addr}`"))?;
            Client::connect_tcp(addr).map_err(|e| e.to_string())
        }
    }
}

fn poll(client: &mut Client, tenant: u64) -> Result<StatsReport, String> {
    let resp = client
        .call(&Request {
            op: Opcode::Stats,
            request_id: 0,
            tenant,
            user: u64::MAX,
            images: Vec::new(),
        })
        .map_err(|e| e.to_string())?;
    if resp.status != Status::Ok {
        return Err(format!("stats request failed: {}", resp.reason));
    }
    resp.stats.ok_or_else(|| "response carried no stats".into())
}

fn fmt_ns(ns: Option<u64>) -> String {
    match ns {
        None => "-".into(),
        Some(ns) if ns < 1_000 => format!("{ns}ns"),
        Some(ns) if ns < 1_000_000 => format!("{:.1}µs", ns as f64 / 1e3),
        Some(ns) if ns < 1_000_000_000 => format!("{:.1}ms", ns as f64 / 1e6),
        Some(ns) => format!("{:.2}s", ns as f64 / 1e9),
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |v| format!("{v:.3}"))
}

/// One dashboard row from a tenant's 8-epoch window (index 1: long
/// enough to smooth batching jitter, short enough to move when traffic
/// does).
fn row(t: &TenantStats) -> String {
    let name = t
        .tenant
        .map_or_else(|| "global".to_string(), |id| id.to_string());
    let w: &RollupStats = t.windows.get(1).unwrap_or(&t.cum);
    let acc_pct = if w.decisions > 0 {
        format!("{:.1}%", 100.0 * w.accepted as f64 / w.decisions as f64)
    } else {
        "-".into()
    };
    format!(
        "{name:>8} {epoch:>7} {qps:>8.1} {acc:>7} {accepted:>7} {gate:>6} {replay:>6} \
         {nomaj:>6} {screen:>6} {shed:>6} {p50:>8} {p99:>8} {drift:>7}",
        epoch = t.epoch,
        qps = w.qps,
        acc = acc_pct,
        accepted = w.accepted,
        gate = w.rejects[2],
        replay = w.rejects[1],
        nomaj = w.rejects[3],
        screen = w.rejects[0],
        shed = w.rejects[4],
        p50 = fmt_ns(w.lat.quantile_ns(0.5)),
        p99 = fmt_ns(w.lat.quantile_ns(0.99)),
        drift = fmt_opt(t.drift),
    )
}

fn render(report: &StatsReport, target: &str) -> String {
    let mut out = String::new();
    let mean_batch = (report.batch_count > 0)
        .then(|| report.batch_sum as f64 / report.batch_count as f64)
        .map_or_else(|| "-".into(), |v| format!("{v:.1}"));
    let mean_fill = (report.fill_count > 0)
        .then(|| report.fill_sum as f64 / report.fill_count as f64)
        .map_or_else(|| "-".into(), |v| format!("{v:.0}%"));
    out.push_str(&format!(
        "echo-top — {target} — epoch_len {} — queue {} — batch {mean_batch} (fill {mean_fill})\n",
        report.epoch_len, report.queue_depth,
    ));
    out.push_str(&format!(
        "{:>8} {:>7} {:>8} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8} {:>8} {:>7}\n",
        "TENANT",
        "EPOCH",
        "QPS",
        "ACC%",
        "ACCEPT",
        "GATE",
        "REPLAY",
        "NOMAJ",
        "SCREEN",
        "SHED",
        "P50",
        "P99",
        "DRIFT",
    ));
    out.push_str(&row(&report.global));
    out.push('\n');
    for t in &report.tenants {
        out.push_str(&row(t));
        out.push('\n');
    }
    out
}

/// The `--assert-live` predicate: at least one per-tenant window has
/// recorded decisions, and no drift score is NaN or infinite.
fn is_live(report: &StatsReport) -> bool {
    let any_decisions = report.tenants.iter().any(|t| t.cum.decisions > 0);
    let drift_ok = report
        .tenants
        .iter()
        .chain(std::iter::once(&report.global))
        .all(|t| t.drift.is_none_or(f64::is_finite));
    any_decisions && drift_ok
}

fn run() -> Result<bool, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let tcp = flag_value(&mut args, "--tcp");
    let unix = flag_value(&mut args, "--unix");
    let tenant: u64 = match flag_value(&mut args, "--tenant") {
        None => u64::MAX,
        Some(v) => v.parse().map_err(|_| format!("bad tenant id `{v}`"))?,
    };
    let interval_ms: u64 = match flag_value(&mut args, "--interval-ms") {
        None => 1_000,
        Some(v) => v.parse().map_err(|_| format!("bad interval `{v}`"))?,
    };
    let once = flag_present(&mut args, "--once");
    let json = flag_present(&mut args, "--json");
    let assert_live = flag_present(&mut args, "--assert-live");
    if let Some(extra) = args.first() {
        return Err(format!("unrecognised argument `{extra}`"));
    }

    let target = match (&tcp, &unix) {
        (None, Some(p)) => format!("unix://{p}"),
        (addr, None) => format!("tcp://{}", addr.as_deref().unwrap_or("127.0.0.1:7777")),
        _ => String::new(),
    };
    let mut client = connect(&tcp, &unix)?;

    loop {
        let report = poll(&mut client, tenant)?;
        if json {
            print!("{}", report_to_json(&report));
        } else if once {
            print!("{}", render(&report, &target));
        } else {
            // Clear the screen and home the cursor, then redraw.
            print!("\x1b[2J\x1b[H{}", render(&report, &target));
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        if once {
            return Ok(!assert_live || is_live(&report));
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => {
            eprintln!("echo_top: --assert-live failed: no live tenant window or non-finite drift");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("echo_top: {e}");
            ExitCode::FAILURE
        }
    }
}
