//! The daemon binary: bind, serve, exit on a `Shutdown` frame.
//!
//! ```text
//! echo_serve [--tcp ADDR | --unix PATH] [--window-us N] [--max-batch N]
//!            [--queue-bound N] [--threads N] [--prom-out PATH]
//! ```
//!
//! Every knob is validated before the socket is bound; a bad flag is a
//! one-line typed error on stderr and a non-zero exit, never a panic.

use echo_serve::config::ServeConfig;
use echo_serve::server::{BindAddr, ServerHandle};
use std::process::ExitCode;
use std::time::Duration;

fn flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name}: `{v}` is not a valid value")),
    }
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let tcp = flag_value(&mut args, "--tcp");
    let unix = flag_value(&mut args, "--unix");
    let prom_out = flag_value(&mut args, "--prom-out");
    let window_us: u64 = parse_flag(&mut args, "--window-us", 3_000)?;
    let max_batch: usize = parse_flag(&mut args, "--max-batch", 32)?;
    let queue_bound: usize = parse_flag(&mut args, "--queue-bound", 256)?;
    let threads = match flag_value(&mut args, "--threads") {
        Some(v) => echoimage_core::par::parse_threads(&v).map_err(|e| e.to_string())?,
        None => echoimage_core::par::threads_from_env().map_err(|e| e.to_string())?,
    };
    if let Some(extra) = args.first() {
        return Err(format!("unrecognised argument `{extra}`"));
    }

    let mut cfg = ServeConfig::validated(
        Duration::from_micros(window_us),
        max_batch,
        queue_bound,
        threads,
    )
    .map_err(|e| e.to_string())?;
    cfg.prom_out = prom_out.map(Into::into);

    let bind = match (tcp, unix) {
        (Some(_), Some(_)) => return Err("--tcp and --unix are mutually exclusive".into()),
        (None, Some(path)) => BindAddr::Unix(path.into()),
        (Some(addr), None) => BindAddr::Tcp(addr),
        (None, None) => BindAddr::Tcp("127.0.0.1:7777".into()),
    };

    let server =
        ServerHandle::start(cfg, bind.clone()).map_err(|e| format!("bind {bind:?}: {e}"))?;
    match server.local_addr() {
        Some(addr) => eprintln!("echo-serve listening on tcp://{addr}"),
        None => eprintln!("echo-serve listening on {bind:?}"),
    }
    server.wait();
    eprintln!("echo-serve: shutdown complete");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("echo_serve: {e}");
            ExitCode::FAILURE
        }
    }
}
