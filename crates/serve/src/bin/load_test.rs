//! Load-tests the daemon: replay thousands of simulated auth sessions
//! at a target QPS and report latency/batching from the daemon's own
//! histograms.
//!
//! ```text
//! load_test [--sessions N] [--qps F] [--beeps N] [--tenants N] [--users N]
//!           [--window-us N] [--max-batch N] [--queue-bound N] [--threads N]
//!           [--metrics-out PATH] [--quick] [--connect ADDR]
//! ```
//!
//! By default the server runs in-process on an ephemeral TCP port;
//! `--connect ADDR` drives an already-running daemon instead. Either
//! way the reported latency and batching numbers come from **`Stats`
//! snapshots bracketing the run** (delta of the daemon's cumulative
//! histograms), so back-to-back runs against one process never
//! contaminate each other. The run self-checks: it fails (non-zero
//! exit) if any request errored or the p99 is missing, which is what
//! the CI smoke leans on.

use echo_serve::config::ServeConfig;
use echo_serve::loadgen::{self, LoadSpec};
use echo_serve::server::{BindAddr, ServerHandle};
use std::process::ExitCode;
use std::time::Duration;

fn flag_value(args: &mut Vec<String>, name: &str) -> Option<String> {
    let i = args.iter().position(|a| a == name)?;
    if i + 1 >= args.len() {
        return None;
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    match args.iter().position(|a| a == name) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("{name}: `{v}` is not a valid value")),
    }
}

fn run() -> Result<bool, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = take_flag(&mut args, "--quick");
    let default_sessions = if quick { 200 } else { 2000 };
    let mut spec = LoadSpec {
        sessions: parse_flag(&mut args, "--sessions", default_sessions)?,
        qps: parse_flag(&mut args, "--qps", 600.0)?,
        beeps: parse_flag(&mut args, "--beeps", LoadSpec::default().beeps)?,
        tenants: parse_flag(&mut args, "--tenants", 2)?,
        users_per_tenant: parse_flag(&mut args, "--users", 2)?,
        ..LoadSpec::default()
    };
    spec.tenants = spec.tenants.max(1);
    spec.users_per_tenant = spec.users_per_tenant.max(1);
    let window_us: u64 = parse_flag(&mut args, "--window-us", 3_000)?;
    let max_batch: usize = parse_flag(&mut args, "--max-batch", 32)?;
    let queue_bound: usize = parse_flag(&mut args, "--queue-bound", 256)?;
    let threads = match flag_value(&mut args, "--threads") {
        Some(v) => echoimage_core::par::parse_threads(&v).map_err(|e| e.to_string())?,
        None => echoimage_core::par::threads_from_env().map_err(|e| e.to_string())?,
    };
    let metrics_out = flag_value(&mut args, "--metrics-out");
    let connect = flag_value(&mut args, "--connect");
    if let Some(extra) = args.first() {
        return Err(format!("unrecognised argument `{extra}`"));
    }

    // In-process daemon unless --connect points at a running one.
    let (server, addr) = match connect {
        Some(addr) => {
            let addr = addr
                .parse()
                .map_err(|_| format!("--connect: bad address `{addr}`"))?;
            (None, addr)
        }
        None => {
            let cfg = ServeConfig::validated(
                Duration::from_micros(window_us),
                max_batch,
                queue_bound,
                threads,
            )
            .map_err(|e| e.to_string())?;
            let server = ServerHandle::start(cfg, BindAddr::Tcp("127.0.0.1:0".into()))
                .map_err(|e| format!("bind: {e}"))?;
            let addr = server
                .local_addr()
                .ok_or_else(|| "server has no TCP address".to_string())?;
            (Some(server), addr)
        }
    };

    loadgen::enroll_world(addr, &spec).map_err(|e| format!("enrol: {e}"))?;
    let before = loadgen::fetch_stats(addr).map_err(|e| format!("stats (before): {e}"))?;
    let tallies = loadgen::run_load(addr, &spec).map_err(|e| format!("load: {e}"))?;
    let after = loadgen::fetch_stats(addr).map_err(|e| format!("stats (after): {e}"))?;
    let report = loadgen::report_from_stats(tallies, &before, &after);
    print!("{}", report.to_json());

    if let Some(path) = metrics_out {
        let snapshot = echo_obs::snapshot();
        echo_obs::export::write_atomic(&path, snapshot.to_json().as_bytes())
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    if let Some(server) = server {
        server.shutdown();
    }

    let healthy = report.tallies.errors == 0 && report.p99_ns.is_some();
    if !healthy {
        eprintln!(
            "load_test: unhealthy run: {} errors, p99 {:?}",
            report.tallies.errors, report.p99_ns
        );
    }
    Ok(healthy)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("load_test: {e}");
            ExitCode::FAILURE
        }
    }
}
