//! Fig. 13 — F-measure versus user–array distance.

use echo_bench::{artefact_note, banner, quick_mode, run_or_exit};
use echo_eval::experiments::{fig13, protocol::ProtocolConfig};
use echo_eval::report;

fn main() {
    banner(
        "Fig. 13",
        "F-measure while the user stands 0.6–1.5 m from the array",
        "over 0.95 below 1 m in quiet; drops markedly beyond 1 m as echoes weaken",
    );
    let cfg = fig13::Config {
        users: if quick_mode() { 3 } else { 6 },
        spoofers: if quick_mode() { 2 } else { 3 },
        distances: if quick_mode() {
            vec![0.6, 1.0, 1.5]
        } else {
            vec![0.6, 0.8, 1.0, 1.2, 1.5]
        },
        protocol: ProtocolConfig {
            train_beeps: if quick_mode() { 8 } else { 12 },
            test_beeps: if quick_mode() { 3 } else { 6 },
            test_sessions: vec![0],
            ..ProtocolConfig::default()
        },
        ..fig13::Config::default()
    };
    let out = run_or_exit(fig13::run(&cfg), "distance sweep failed");

    println!("{:<10} {:<9} {:>9}", "distance", "noise", "F-measure");
    for p in &out.points {
        println!(
            "{:<10.2} {:<9} {:>9.3}",
            p.distance, p.noise, p.metrics.f_measure
        );
    }
    // Shape check: near vs far.
    for noise in [echo_sim::NoiseKind::Quiet, echo_sim::NoiseKind::Chatter] {
        let series = out.f_measure_series(noise);
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            println!(
                "\n{}: F at {:.1} m = {:.3}, F at {:.1} m = {:.3} → degrades with distance: {}",
                noise.label(),
                first.0,
                first.1,
                last.0,
                last.1,
                last.1 < first.1
            );
        }
    }
    match report::write_artefact("fig13_distance", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
