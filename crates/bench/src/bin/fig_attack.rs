//! Extension — adversarial attack evaluation: replay and twin attacks
//! against the enrolled system, with the anti-replay spatial screen in
//! force (not in the paper; DESIGN.md §14).
//!
//! Exit status is the CI spoof gate: `--asr-ceiling <rate>` makes the
//! run fail (exit 1) when the population replay attack-success-rate at
//! the deployed spread ceiling exceeds `<rate>`.

use echo_bench::{artefact_note, banner, flag_value, quick_mode, run_or_exit};
use echo_eval::experiments::fig_attack;
use echo_eval::report;

fn main() {
    banner(
        "Attack suite",
        "replay + twin attack-success-rate vs EER (extension)",
        "the paper evaluates zero-effort spoofers only",
    );
    let mut cfg = fig_attack::Config::default();
    if quick_mode() {
        cfg.users = 2;
        // Two probes per victim keep the within-subject fit estimable.
        cfg.probes = 2;
        cfg.population = 10_000;
        cfg.protocol.train_beeps = 8;
        cfg.protocol.test_beeps = 3;
        // The CI gate configuration asserts the collapse signature
        // under the conditions the screen is tuned for (free field,
        // free-field ceiling); the full run adds the shared room model
        // and reports how much margin reverberation costs.
        cfg.room = None;
        cfg.spatial = echoimage_core::config::SpatialCheckConfig {
            enabled: true,
            ..Default::default()
        };
    }
    let out = run_or_exit(fig_attack::run(&cfg), "attack evaluation failed");

    let a = &out.acoustic;
    println!(
        "acoustic tier: {} victims, {} genuine trains ({} rejected)",
        a.victims, a.genuine_trains, a.genuine_rejects
    );
    println!(
        "  replay: {}/{} accepted unscreened, {}/{} accepted screened  \
         (spread {:.3} genuine vs {:.3} replay, ceiling {:.3})",
        a.replay_accepts_unscreened,
        a.replay_attempts,
        a.replay_accepts_screened,
        a.replay_attempts,
        a.genuine_spread_mean,
        a.replay_spread_mean,
        out.spread_ceiling
    );
    println!(
        "  twin:   {}/{} accepted (radius matched to victim stature)",
        a.twin_accepts, a.twin_attempts
    );
    println!(
        "\n— population tier ({} subjects per side) —",
        cfg.population
    );
    for c in &out.curves {
        println!(
            "{:<8} channel {:<13} EER {:.4}  AUC {:.4}  ASR@op {:.4}  FRR@op {:.4}",
            c.kind.label(),
            c.channel,
            c.eer,
            c.auc,
            c.asr_at_operating_point,
            c.frr_at_operating_point
        );
    }
    println!(
        "replay combined ASR {:.4} (gate margin AND spread ceiling)",
        out.replay_combined_asr
    );
    println!(
        "\naudit pass: {} attempts — replay rejects {} ({} typed replay-signature), \
         twin rejects {} ({} typed)",
        out.audit.attempts,
        out.audit.replay_rejects,
        out.audit.replay_rejects_with_signature,
        out.audit.twin_rejects,
        out.audit.twin_rejects_typed
    );

    match report::write_artefact("fig_attack", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }

    let gate = flag_value("--asr-ceiling").and_then(|v| v.parse::<f64>().ok());
    echo_bench::finish_metrics();
    if let Some(ceiling) = gate {
        // A replay only succeeds when it clears BOTH the classifier
        // gate and the spatial screen; the combined rate is what the
        // deployment exposes, so that is what CI bounds.
        let replay_asr = out.replay_combined_asr;
        if replay_asr > ceiling {
            eprintln!("spoof gate: replay ASR {replay_asr:.4} exceeds ceiling {ceiling:.4}");
            std::process::exit(1);
        }
        println!("spoof gate: replay ASR {replay_asr:.4} within ceiling {ceiling:.4}");
    }
}
