//! Extension — authentication quality versus microphone gain/timing
//! mismatch (not in the paper; answers how much array calibration the
//! system needs).

use echo_bench::{artefact_note, banner, metrics_row, quick_mode, run_or_exit};
use echo_eval::experiments::robustness;
use echo_eval::report;

fn main() {
    banner(
        "Robustness",
        "microphone gain/timing mismatch sweep (extension)",
        "the paper assumes a calibrated ReSpeaker array",
    );
    let mut cfg = robustness::Config::default();
    if quick_mode() {
        cfg.users = 2;
        cfg.spoofers = 1;
        cfg.gain_errors_db = vec![0.0, 3.0];
        cfg.timing_errors = vec![0.0, 50e-6];
        cfg.protocol.train_beeps = 8;
        cfg.protocol.test_beeps = 3;
    }
    let out = run_or_exit(robustness::run(&cfg), "robustness sweep failed");

    println!("— gain-mismatch sweep (timing = 0) —");
    for p in &out.gain_sweep {
        println!(
            "{}",
            metrics_row(&format!("σ_gain = {:.1} dB", p.gain_error_db), &p.metrics)
        );
    }
    println!("\n— timing-mismatch sweep (gain = 0) —");
    for p in &out.timing_sweep {
        println!(
            "{}",
            metrics_row(&format!("σ_t = {:.0} µs", p.timing_error * 1e6), &p.metrics)
        );
    }
    match report::write_artefact("robustness_mic", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
