//! Extension — imaging-grid resolution sweep: how much resolution does
//! a 6-microphone array actually exploit?

use echo_bench::{artefact_note, banner, metrics_row, quick_mode, run_or_exit};
use echo_eval::experiments::ablation_grid;
use echo_eval::report;

fn main() {
    banner(
        "Ablations",
        "imaging-grid resolution over a fixed ±0.8 m plane",
        "the paper uses 180×180 cells of 1 cm; this build defaults to 32×32 of 5 cm",
    );
    let mut cfg = ablation_grid::Config::default();
    if quick_mode() {
        cfg.users = 2;
        cfg.spoofers = 1;
        cfg.grid_sizes = vec![8, 24];
        cfg.protocol.train_beeps = 8;
        cfg.protocol.test_beeps = 3;
    }
    let out = run_or_exit(ablation_grid::run(&cfg), "grid sweep failed");
    for p in &out.points {
        println!(
            "{}   ({:.1} cm cells, ~{:.1} ms/image)",
            metrics_row(&format!("{0}×{0}", p.grid_n), &p.metrics),
            p.grid_spacing * 100.0,
            p.ms_per_image
        );
    }
    match report::write_artefact("ablation_grid", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
