//! Scale and correctness bench for the template store.
//!
//! Two modes:
//!
//! * **Full** (default): builds a **1,000,000-user** shard, mmaps it,
//!   and measures top-16 candidate-lookup latency (asserting the
//!   sub-millisecond p99 the store was designed for), then runs a
//!   10,000-user parity suite proving the prefiltered decision path
//!   bit-identical to the exhaustive oracle on both the in-memory and
//!   the mmap backend.
//! * **`--quick`** (the CI smoke): a **100,000-user** store exercised
//!   end to end — shards written and reopened, a second shard
//!   re-enrolling one user published mid-run through a [`StoreHandle`]
//!   from another thread while the main thread keeps identifying, and
//!   every decision checked against the exhaustive oracle on the same
//!   loaded snapshot. Also pins newest-shard-wins semantics and
//!   mmap/heap reader agreement.
//!
//! Populations come from [`echo_bench::storegen`]: hash-generated
//! single-gate users whose margins decrease strictly with centroid
//! distance, so prefilter/oracle agreement is structurally guaranteed —
//! any disagreement is a real store bug. Exits nonzero on the first
//! failed check.

use echo_bench::{banner, quick_mode, run_or_exit, storegen};
use echoimage_core::store::{
    identify, IdentifyConfig, MemoryStore, ReaderMode, Shard, ShardStore, ShardWriter, StoreHandle,
    TemplateStore,
};
use echoimage_core::AuthDecision;
use std::sync::Arc;
use std::time::Instant;

fn check(ok: bool, what: &str) {
    if !ok {
        eprintln!("FAIL: {what}");
        std::process::exit(1);
    }
}

/// Writes users `0..n` (salt 0) as one shard under `dir`.
fn write_population_shard(dir: &std::path::Path, n: usize, name: &str) -> std::path::PathBuf {
    let mut writer = ShardWriter::new(&storegen::scaler());
    for t in storegen::population(n) {
        run_or_exit(writer.push(t), "push template");
    }
    let path = dir.join(name);
    run_or_exit(writer.write_to(&path), "write shard");
    path
}

/// Identification decisions for one probe train: prefiltered and
/// exhaustive, which every parity check compares.
fn both_paths(store: &dyn TemplateStore, train: &[Vec<f64>]) -> (AuthDecision, AuthDecision) {
    let fast = run_or_exit(
        identify(store, train, &IdentifyConfig::default()),
        "prefiltered identify",
    );
    let slow = run_or_exit(
        identify(
            store,
            train,
            &IdentifyConfig {
                exhaustive: true,
                ..IdentifyConfig::default()
            },
        ),
        "exhaustive identify",
    );
    (fast, slow)
}

/// Full mode: million-user lookup latency + 10k-user decision parity.
fn run_full(dir: &std::path::Path) {
    let n = 1_000_000usize;
    println!("building {n}-user shard (one-time cost, ~all of it the coarse index)...");
    let t0 = Instant::now();
    let path = write_population_shard(dir, n, "shard-000000.echoshard");
    let build_s = t0.elapsed().as_secs_f64();
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let t0 = Instant::now();
    let store = run_or_exit(ShardStore::open_dir(dir), "open shard dir");
    let open_ms = t0.elapsed().as_millis();
    check(store.user_count() == n, "user count after reopen");
    println!(
        "  shard {:.0} MB written in {build_s:.1} s, mmap-opened in {open_ms} ms",
        bytes as f64 / 1e6
    );

    let probes = 5_000u64;
    let mut lookup_ns: Vec<u64> = Vec::with_capacity(probes as usize);
    for i in 0..probes {
        let user = storegen::splitmix(i) % n as u64;
        let xq: Vec<f32> = storegen::probe(user, 31_000 + i)
            .iter()
            .map(|&v| v as f32)
            .collect();
        let t = Instant::now();
        let cands = store.candidates(&xq, 16);
        lookup_ns.push(t.elapsed().as_nanos() as u64);
        check(!cands.is_empty(), "candidate set empty at 1M users");
        check(
            cands[0].user_id == user,
            "probe owner not the nearest centroid at 1M users",
        );
    }
    lookup_ns.sort_unstable();
    let pct =
        |p: f64| lookup_ns[(((probes as f64) * p).ceil() as usize).clamp(1, probes as usize) - 1];
    let (p50, p99) = (pct(0.50), pct(0.99));
    println!(
        "  top-16 lookup over {n} users: p50 {:.1} µs   p99 {:.1} µs   ({probes} probes)",
        p50 as f64 / 1e3,
        p99 as f64 / 1e3
    );
    check(p99 < 1_000_000, "candidate lookup p99 ≥ 1 ms at 1M users");

    // Decision parity at 10k users: prefiltered vs exhaustive on the
    // mmap backend and the in-memory reference, all four bit-identical.
    let pn = 10_000usize;
    let mem = run_or_exit(
        MemoryStore::from_templates(&storegen::scaler(), storegen::population(pn)),
        "parity memory store",
    );
    let pdir = dir.join("parity");
    run_or_exit(
        std::fs::create_dir_all(&pdir).map_err(|e| e.to_string()),
        "parity dir",
    );
    write_population_shard(&pdir, pn, "shard-000000.echoshard");
    let mapped = run_or_exit(ShardStore::open_dir(&pdir), "open parity shard");
    let trains = 1_000u64;
    for i in 0..trains {
        let user = storegen::splitmix(0xFACE ^ i) % pn as u64;
        let train = storegen::probe_train(user, 77_000 + i * 8, 3);
        let (fast_mem, slow_mem) = both_paths(&mem, &train);
        let (fast_map, slow_map) = both_paths(&mapped, &train);
        check(fast_mem == slow_mem, "memory prefilter != memory oracle");
        check(fast_map == slow_map, "mmap prefilter != mmap oracle");
        check(fast_mem == fast_map, "memory != mmap decision");
        check(
            fast_mem
                == (AuthDecision::Accepted {
                    user_id: user as usize,
                }),
            "parity probe not identified as its owner",
        );
    }
    println!("  parity: {trains} probe trains × (prefilter|oracle) × (memory|mmap) all agree");
}

/// Quick mode: the 100k-user CI smoke with a mid-run snapshot reload.
fn run_quick(dir: &std::path::Path) {
    let n = 100_000usize;
    let reenrolled = 42u64;
    println!("building {n}-user shard for the smoke run...");
    let base_path = write_population_shard(dir, n, "shard-000000.echoshard");

    // The re-enrolment shard: user 42 moves to a salted centroid. Not
    // written to `dir` yet — the reload thread publishes it mid-run.
    let mut writer = ShardWriter::new(&storegen::scaler());
    run_or_exit(
        writer.push(storegen::template_salted(reenrolled, 1)),
        "push re-enrolment",
    );
    let delta_path = dir.join("shard-000001.echoshard");
    run_or_exit(writer.write_to(&delta_path), "write re-enrolment shard");

    // The initial snapshot is the base shard alone — the delta file
    // sits in the directory but is only picked up by the mid-run
    // `open_dir` reload below.
    let base_shard = run_or_exit(Shard::open(&base_path), "open base shard");
    let base = run_or_exit(ShardStore::from_shards(vec![base_shard]), "base store");
    check(base.user_count() == n, "user count after reopen");

    // mmap and heap readers agree margin-for-margin (bit-compare).
    let heap_shard = run_or_exit(
        Shard::open_with(&base_path, ReaderMode::Heap),
        "heap reader open",
    );
    let heap = run_or_exit(ShardStore::from_shards(vec![heap_shard]), "heap store");
    for i in 0..50u64 {
        let user = storegen::splitmix(0xBEEF ^ i) % n as u64;
        let x = storegen::probe(user, 51_000 + i);
        let a = base.gate_margin(user, &x);
        let b = heap.gate_margin(user, &x);
        check(
            a.map(f64::to_bits) == b.map(f64::to_bits),
            "mmap and heap readers disagree on a gate margin",
        );
    }

    // Before the swap: the re-enrolled user still answers at their
    // original centroid (only shard-000000 is published).
    let handle = Arc::new(StoreHandle::new(Arc::new(base)));
    let old_probe = storegen::probe_train(reenrolled, 61_000, 3);
    let snap = handle.load();
    let (fast, _) = both_paths(snap.as_ref(), &old_probe);
    check(
        fast == (AuthDecision::Accepted {
            user_id: reenrolled as usize,
        }),
        "pre-swap probe must hit the original template",
    );
    drop(snap);

    // Each iteration identifies one owner against a freshly loaded
    // snapshot and checks the prefiltered decision against the
    // exhaustive oracle on that same snapshot — valid on either side of
    // the swap.
    let parity_iter = |i: u64| {
        let user = storegen::splitmix(0xD1CE ^ i) % n as u64;
        if user == reenrolled {
            return;
        }
        let snap = handle.load();
        let train = storegen::probe_train(user, 71_000 + i * 4, 3);
        let (fast, slow) = both_paths(snap.as_ref(), &train);
        check(fast == slow, "prefilter != oracle during snapshot reload");
        check(
            fast == (AuthDecision::Accepted {
                user_id: user as usize,
            }),
            "probe not identified as its owner during reload",
        );
    };
    // A first batch strictly before the reload, then a batch racing a
    // publisher thread that reopens the directory — now including the
    // re-enrolment shard — and swaps it in mid-run, then a batch
    // strictly after.
    for i in 0..10 {
        parity_iter(i);
    }
    check(
        handle.epoch() == 0,
        "nobody published during the first batch",
    );
    let publisher = {
        let handle = Arc::clone(&handle);
        let dir = dir.to_path_buf();
        std::thread::spawn(move || {
            let reopened = run_or_exit(ShardStore::open_dir(&dir), "reload shard dir");
            check(reopened.shards().len() == 2, "reload must see both shards");
            check(
                reopened.user_count() == n,
                "re-enrolment must not change user count",
            );
            handle.publish(Arc::new(reopened));
        })
    };
    for i in 10..40 {
        parity_iter(i);
    }
    run_or_exit(
        publisher.join().map_err(|_| "publisher thread panicked"),
        "join publisher",
    );
    check(handle.epoch() == 1, "exactly one publish must have landed");
    for i in 40..50 {
        parity_iter(i);
    }

    // After the swap: newest shard wins — the old centroid no longer
    // names user 42, the salted one does.
    let snap = handle.load();
    check(
        snap.user_count() == n,
        "re-enrolment must not change user count",
    );
    let (fast, slow) = both_paths(snap.as_ref(), &old_probe);
    check(fast == slow, "prefilter != oracle after swap");
    check(
        fast != (AuthDecision::Accepted {
            user_id: reenrolled as usize,
        }),
        "old centroid still accepted after re-enrolment",
    );
    let new_probe: Vec<Vec<f64>> = (0..3u64)
        .map(|b| {
            storegen::probe(reenrolled, 81_000 + b)
                .iter()
                .map(|&v| v + 3.0)
                .collect()
        })
        .collect();
    let (fast, slow) = both_paths(snap.as_ref(), &new_probe);
    check(fast == slow, "prefilter != oracle on the re-enrolled user");
    check(
        fast == (AuthDecision::Accepted {
            user_id: reenrolled as usize,
        }),
        "salted centroid must name the re-enrolled user",
    );
    println!("  smoke: reload mid-run, oracle parity, newest-shard-wins, heap/mmap agree");
}

fn main() {
    banner(
        "store_bench",
        "template store at population scale",
        "candidate lookup stays sub-ms at 1M users; prefiltered \
         decisions are bit-identical to the exhaustive oracle",
    );
    let dir = std::env::temp_dir().join(format!("echo-store-bench-{}", std::process::id()));
    run_or_exit(
        std::fs::create_dir_all(&dir).map_err(|e| e.to_string()),
        "create tmp dir",
    );
    if quick_mode() {
        run_quick(&dir);
    } else {
        run_full(&dir);
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nstore_bench: all checks passed");
    echo_bench::finish_metrics();
}
