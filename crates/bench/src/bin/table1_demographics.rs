//! Table I — demographics of the simulated subject population.

use echo_bench::{artefact_note, banner};
use echo_eval::experiments::table1;
use echo_eval::report;

fn main() {
    banner(
        "Table I",
        "demographics of subjects in the experiment",
        "20 volunteers; users 1-5/6/7-15/16-19/20 as printed; 12 register, 8 spoof",
    );
    let out = table1::run(2023);
    println!("{:<8} {:<8} {:<7} Occupation", "User ID", "Gender", "Age");
    for row in &out.rows {
        println!(
            "{:<8} {:<8} {:<7} {}",
            row.user_id, row.gender, row.age, row.occupation
        );
    }
    println!(
        "\nregistered users: {}   spoofers: {}",
        out.registered, out.spoofers
    );
    match report::write_artefact("table1_demographics", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
