//! Fig. 5 — body-echo detection and distance-estimation feasibility.

use echo_bench::{artefact_note, banner, quick_mode, run_or_exit};
use echo_eval::experiments::fig05;
use echo_eval::report;

fn main() {
    banner(
        "Fig. 5",
        "body echo detection via matched-filter correlation peaks",
        "user at 0.6 m; τ₁ starts the chirp period; echo in the 10 ms echo \
         period; D_f = 0.68 m, D_p = 0.58 m (ground truth 0.6 m)",
    );
    let cfg = fig05::Config {
        beeps: if quick_mode() { 6 } else { 20 },
        ..fig05::Config::default()
    };
    let out = run_or_exit(fig05::run(&cfg), "distance feasibility run failed");

    println!("true horizontal distance : {:.3} m", out.true_distance);
    println!(
        "estimated slant D_f      : {:.3} m   (paper: 0.68 m)",
        out.slant_distance
    );
    println!(
        "estimated horizontal D_p : {:.3} m   (paper: 0.58 m)",
        out.horizontal_distance
    );
    println!("absolute error           : {:.3} m", out.error);
    println!(
        "direct peak τ₁ at {:.4} s; body echo at {:.4} s (Δ = {:.4} s)",
        out.direct_peak_time,
        out.echo_peak_time,
        out.echo_peak_time - out.direct_peak_time
    );
    println!("\ncorrelation-envelope peaks (time s, relative value):");
    for p in out.peaks.iter().take(8) {
        println!("  τ = {:.4} s   E/E_max = {:.2e}", p.time, p.relative_value);
    }
    match report::write_artefact("fig05_distance_feasibility", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
