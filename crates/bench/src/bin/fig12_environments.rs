//! Fig. 12 — robustness across environments and ambient noises.

use echo_bench::{artefact_note, banner, quick_mode, run_or_exit};
use echo_eval::experiments::{fig12, protocol::ProtocolConfig};
use echo_eval::report;

fn main() {
    banner(
        "Fig. 12",
        "recall/precision/accuracy across laboratory, conference hall and outdoor × quiet/music/chatter/traffic",
        "overall performance over 0.9 in every cell; quiet conditions best",
    );
    let cfg = fig12::Config {
        users: if quick_mode() { 4 } else { 8 },
        spoofers: if quick_mode() { 2 } else { 4 },
        protocol: ProtocolConfig {
            train_beeps: if quick_mode() { 8 } else { 36 },
            test_beeps: if quick_mode() { 3 } else { 6 },
            test_sessions: vec![0, 2],
            ..ProtocolConfig::default()
        },
        ..fig12::Config::default()
    };
    let out = run_or_exit(fig12::run(&cfg), "environments run failed");

    println!(
        "{:<18} {:<9} {:>7} {:>9} {:>9}",
        "environment", "noise", "recall", "precision", "accuracy"
    );
    for cell in &out.cells {
        println!(
            "{:<18} {:<9} {:>7.3} {:>9.3} {:>9.3}",
            cell.environment,
            cell.noise,
            cell.metrics.recall,
            cell.metrics.precision,
            cell.metrics.accuracy
        );
    }
    let worst = out
        .cells
        .iter()
        .map(|c| c.metrics.accuracy)
        .fold(f64::INFINITY, f64::min);
    println!("\nworst-cell accuracy: {worst:.3}   (paper: all cells > 0.9)");
    match report::write_artefact("fig12_environments", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
