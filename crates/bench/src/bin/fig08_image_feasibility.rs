//! Fig. 8 — acoustic images of two users: same-user images similar,
//! cross-user images distinct.

use echo_bench::{artefact_note, banner, run_or_exit};
use echo_eval::experiments::fig08;
use echo_eval::report;

fn main() {
    banner(
        "Fig. 8",
        "acoustic images of user A and user B",
        "images of one user very similar; images across users differ significantly",
    );
    let out = run_or_exit(
        fig08::run(&fig08::Config::default()),
        "image feasibility run failed",
    );
    println!(
        "same-user  image similarity : {:.4}",
        out.same_user_similarity
    );
    println!(
        "cross-user image similarity : {:.4}",
        out.cross_user_similarity
    );
    println!(
        "shape holds: same-user > cross-user → {}",
        out.same_user_similarity > out.cross_user_similarity
    );

    // ASCII rendering of the two acoustic images, as the paper's Fig. 8
    // shows heat maps.
    let ramp: &[u8] = b" .:-=+*#%@";
    for (label, img) in [("user A", &out.image_a), ("user B", &out.image_b)] {
        println!("\nacoustic image of {label} ({0}×{0}):", out.grid_n);
        for row in 0..out.grid_n {
            let line: String = (0..out.grid_n)
                .map(|col| {
                    let v = img[row * out.grid_n + col];
                    ramp[((v * 9.0) as usize).min(9)] as char
                })
                .collect();
            println!("  {line}");
        }
    }
    match report::write_artefact("fig08_image_feasibility", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
