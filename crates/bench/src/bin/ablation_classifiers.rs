//! Extension — classifier-stage ablations: SVM vs k-NN, PCA dimension
//! sweep, and pooled vs per-user spoofer gate.

use echo_bench::{artefact_note, banner, quick_mode, run_or_exit};
use echo_eval::experiments::ablation_classifiers;
use echo_eval::report;

fn main() {
    banner(
        "Ablations",
        "classifier stage: SVM vs k-NN, PCA dims, gate construction",
        "the paper picks SVM + a pooled SVDD without comparison",
    );
    let mut cfg = ablation_classifiers::Config::default();
    if quick_mode() {
        cfg.users = 3;
        cfg.spoofers = 2;
        cfg.visits = 2;
        cfg.beeps_per_visit = 4;
        cfg.test_beeps = 3;
        cfg.pca_dims = vec![16];
    }
    let out = run_or_exit(ablation_classifiers::run(&cfg), "ablation run failed");

    println!("attribution accuracy (genuine probes → correct user):");
    println!("  one-vs-one SVM     : {:.3}", out.svm_accuracy);
    println!("  5-NN baseline      : {:.3}", out.knn_accuracy);
    for (dim, acc) in &out.pca_accuracy {
        println!("  SVM on PCA-{dim:<4}    : {acc:.3}");
    }
    println!("\nspoofer gate (full cascade):");
    println!(
        "  per-user domains   : genuine accept {:.3}, spoofer reject {:.3}",
        out.per_user_gate.genuine_accept, out.per_user_gate.spoofer_reject
    );
    println!(
        "  pooled SVDD (paper): genuine accept {:.3}, spoofer reject {:.3}",
        out.pooled_gate.genuine_accept, out.pooled_gate.spoofer_reject
    );
    match report::write_artefact("ablation_classifiers", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
