//! Standing benchmark for the fast feature path.
//!
//! Times the two hot kernels this crate's evaluation sweeps re-pay
//! thousands of times per run:
//!
//! * **image → embedding** — the naive 6-deep convolution reference
//!   versus the im2col+GEMM forward pass (single image), and the batch
//!   path at several thread counts (asserted bit-identical),
//! * **matched filter** — the pre-plan three-FFT implementation versus
//!   the packed-real path and the cached-template
//!   [`MatchedFilterPlan`].
//!
//! A third section runs the full capture→features pipeline on a small
//! simulated train with the observability layer enabled and reports the
//! per-stage latency breakdown plus cache hit rates. A fourth runs the
//! `echo-serve` daemon in-process under a fixed load and records the
//! micro-batched end-to-end p99 (`serve.p99_ns`, also gated). A fifth
//! builds a 65k-user synthetic template shard and records the mmap
//! candidate-lookup p99 (`store.lookup_p99_ns`, also gated) — the
//! million-user version lives in `store_bench`.
//!
//! Writes `BENCH_features.json` at the repository root so successive
//! PRs accumulate a perf trajectory. `--quick` shrinks iteration counts
//! for CI smoke runs; `--out <path>` writes the JSON artefact to an
//! explicit path even under `--quick` (the bench-regression gate uses
//! this to collect a fresh sample without disturbing the baseline).

use echo_bench::{banner, flag_value, quick_mode, run_or_exit};
use echo_dsp::correlate::{matched_filter, CorrelationScratch, MatchedFilterPlan};
use echo_dsp::fft::{fft, ifft, next_pow2};
use echo_dsp::Complex;
use echo_ml::cnn::ConvScratch;
use echo_ml::{FeatureExtractor, GrayImage};
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::config::ImagingConfig;
use echoimage_core::features::ImageFeatures;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::{steering_cache, template_cache};
use std::time::Instant;

/// Best-of-`reps` mean nanoseconds per iteration of `f`.
fn time_ns(reps: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    best
}

/// The pre-plan matched filter: pad both signals, three full FFTs.
fn matched_filter_unplanned(signal: &[f64], template: &[f64]) -> Vec<f64> {
    let n = signal.len();
    let size = next_pow2(n + template.len() - 1);
    let mut a: Vec<Complex> = signal.iter().map(|&x| Complex::from_real(x)).collect();
    a.resize(size, Complex::ZERO);
    let mut b: Vec<Complex> = template.iter().map(|&x| Complex::from_real(x)).collect();
    b.resize(size, Complex::ZERO);
    fft(&mut a);
    fft(&mut b);
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x *= y.conj();
    }
    ifft(&mut a);
    a.truncate(n);
    a.into_iter().map(|v| v.re).collect()
}

fn bench_image(k: usize) -> GrayImage {
    GrayImage::from_fn(64, 64, move |x, y| ((x * 13 + y * 29 + k * 7) % 97) as f64)
}

/// Runs the full capture→features pipeline `iters` times with a cold
/// start and returns the observability snapshot: per-stage latency
/// histograms plus cache hit/miss counters. The first iteration pays
/// every cache miss; the rest measure the steady state the evaluation
/// sweeps actually run in.
fn pipeline_stage_snapshot(iters: usize) -> echo_obs::MetricsSnapshot {
    let scene = Scene::new(SceneConfig::laboratory_quiet(11));
    let body = BodyModel::from_seed(29);
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 3, 0);
    let pipeline = EchoImagePipeline::new(PipelineConfig {
        imaging: ImagingConfig {
            grid_n: 16,
            grid_spacing: 0.1,
            ..ImagingConfig::default()
        },
        threads: 1,
        ..PipelineConfig::default()
    });
    steering_cache::clear_cache();
    template_cache::clear_template_cache();
    echo_dsp::plan::clear_plan_cache();
    echo_obs::reset();
    for _ in 0..iters {
        run_or_exit(pipeline.features_from_train(&caps), "pipeline run failed");
    }
    echo_obs::snapshot()
}

/// Hit/miss/hit-rate for one cache, from counter values in a snapshot.
fn cache_row(snap: &echo_obs::MetricsSnapshot, cache: &str) -> (u64, u64, f64) {
    let hits = snap.counter(&format!("{cache}.hit")).unwrap_or(0);
    let misses = snap.counter(&format!("{cache}.miss")).unwrap_or(0);
    let total = hits + misses;
    let rate = if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    };
    (hits, misses, rate)
}

fn assert_bits_eq(label: &str, a: &[Vec<f64>], b: &[Vec<f64>]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.len(), y.len(), "{label}: width mismatch");
        for (p, q) in x.iter().zip(y.iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "{label}: bits diverged");
        }
    }
}

fn main() {
    banner(
        "feature_bench",
        "image→embedding and matched-filter hot paths",
        "standing perf gate: GEMM forward ≥ 4× naive; batch scales with \
         threads while staying bit-identical",
    );
    let simd_requested = std::env::var(echo_dsp::simd::SIMD_ENV).unwrap_or_else(|_| "auto".into());
    let simd_active = echo_dsp::simd::active().name();
    println!("SIMD dispatch: requested={simd_requested} active={simd_active}");
    let quick = quick_mode();
    let (reps, single_iters, batch_iters, mf_iters) = if quick {
        (2, 3, 1, 20)
    } else {
        (3, 20, 4, 200)
    };

    // ── image → embedding ────────────────────────────────────────────
    let fx = FeatureExtractor::paper_default();
    let image = bench_image(0);
    // Hold results in a sink so the optimiser cannot drop the work.
    let mut sink = 0.0f64;

    let naive_ns = time_ns(reps, single_iters, || {
        sink += fx.extract_reference(&image)[0];
    });
    let gemm_ns = time_ns(reps, single_iters, || {
        sink += fx.extract(&image)[0];
    });
    let mut scratch = ConvScratch::new();
    let gemm_scratch_ns = time_ns(reps, single_iters, || {
        sink += fx.extract_with_scratch(&image, &mut scratch)[0];
    });
    assert_bits_eq(
        "gemm vs naive",
        &[fx.extract(&image)],
        &[fx.extract_reference(&image)],
    );
    let single_speedup = naive_ns / gemm_ns;
    println!("single image → embedding (64×64 input):");
    println!("  naive reference : {:>12.0} ns", naive_ns);
    println!(
        "  im2col+GEMM     : {:>12.0} ns   ({single_speedup:.2}× vs naive)",
        gemm_ns
    );
    println!(
        "  + reused scratch: {:>12.0} ns   ({:.2}× vs naive)",
        gemm_scratch_ns,
        naive_ns / gemm_scratch_ns
    );

    // ── batch extraction across thread counts ────────────────────────
    let batch: Vec<GrayImage> = (0..16).map(bench_image).collect();
    let features = ImageFeatures::new();
    let reference = features.extract_batch_threaded(&batch, 1);
    let mut batch_rows = Vec::new();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nbatch of {} images → embeddings ({cores} core(s) available; \
         expect no scaling below 2):",
        batch.len()
    );
    for threads in [1usize, 4, 0] {
        let got = features.extract_batch_threaded(&batch, threads);
        assert_bits_eq("batch vs threads=1", &reference, &got);
        let ns = time_ns(reps, batch_iters, || {
            sink += features.extract_batch_threaded(&batch, threads)[0][0];
        });
        let label = if threads == 0 {
            "auto".into()
        } else {
            threads.to_string()
        };
        println!(
            "  threads={label:<5}: {:>12.0} ns/batch   ({:.2}× vs serial batch)",
            ns,
            batch_rows.first().map_or(1.0, |&(_, first)| first / ns)
        );
        batch_rows.push((label, ns));
    }

    // ── matched filter ───────────────────────────────────────────────
    let template: Vec<f64> = (0..96).map(|i| (i as f64 * 0.13).sin()).collect();
    let signal: Vec<f64> = (0..4_000)
        .map(|i| ((i * i) as f64 * 1.3e-4).sin())
        .collect();
    let mf_unplanned_ns = time_ns(reps, mf_iters, || {
        sink += matched_filter_unplanned(&signal, &template)[0];
    });
    let mf_packed_ns = time_ns(reps, mf_iters, || {
        sink += matched_filter(&signal, &template)[0];
    });
    let plan = MatchedFilterPlan::new(&template);
    let mut mf_scratch = CorrelationScratch::new();
    let mf_planned_ns = time_ns(reps, mf_iters, || {
        sink += plan.matched_filter_with(&signal, &mut mf_scratch)[0];
    });
    println!("\nmatched filter (4 000-sample capture, 96-sample chirp):");
    println!("  unplanned (pre-PR, 3 FFTs): {:>10.0} ns", mf_unplanned_ns);
    println!(
        "  packed-real (2 FFTs)      : {:>10.0} ns   ({:.2}× vs unplanned)",
        mf_packed_ns,
        mf_unplanned_ns / mf_packed_ns
    );
    println!(
        "  cached template + scratch : {:>10.0} ns   ({:.2}× vs unplanned)",
        mf_planned_ns,
        mf_unplanned_ns / mf_planned_ns
    );

    // ── end-to-end pipeline stage breakdown ──────────────────────────
    let stage_iters = if quick { 2 } else { 8 };
    let snap = pipeline_stage_snapshot(stage_iters);
    println!(
        "\npipeline stage breakdown ({stage_iters} cold-start train(s), \
         16×16 grid, 3 beeps):"
    );
    println!(
        "  {:<18} {:>6} {:>12} {:>12} {:>12}",
        "stage", "count", "mean µs", "min µs", "max µs"
    );
    let stages: Vec<&echo_obs::HistogramSnapshot> = snap
        .histograms
        .iter()
        .filter(|h| h.name.starts_with("stage.") && h.count > 0)
        .collect();
    for h in &stages {
        println!(
            "  {:<18} {:>6} {:>12.1} {:>12.1} {:>12.1}",
            h.name,
            h.count,
            h.mean_ns().unwrap_or(0.0) / 1e3,
            h.min_ns.unwrap_or(0) as f64 / 1e3,
            h.max_ns.unwrap_or(0) as f64 / 1e3,
        );
    }
    const CACHES: [&str; 3] = ["steering_cache", "template_cache", "fft_plan_cache"];
    println!("  cache hit rates:");
    let mut cache_json = Vec::new();
    for cache in CACHES {
        let (hits, misses, rate) = cache_row(&snap, cache);
        println!(
            "    {cache:<16} {hits:>5} hits {misses:>5} misses   ({:.1}%)",
            rate * 100.0
        );
        cache_json.push(format!(
            "    {{\"name\": \"{}\", \"hits\": {hits}, \"misses\": {misses}, \
             \"hit_rate\": {rate:.4}}}",
            echo_obs::escape_json(cache)
        ));
    }
    // The distance stage is a gated regression metric
    // (`stage.distance.mean_ns` in `cargo xtask bench-check`), so it
    // also goes out as a nested object the gate's dotted-path lookup
    // can resolve.
    let distance_mean_ns = stages
        .iter()
        .find(|h| h.name == "stage.distance")
        .and_then(|h| h.mean_ns())
        .unwrap_or_else(|| {
            eprintln!("WARNING: no stage.distance samples in the snapshot");
            0.0
        });
    let stage_json: Vec<String> = stages
        .iter()
        .map(|h| {
            format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"mean_ns\": {:.0}, \
                 \"min_ns\": {}, \"max_ns\": {}}}",
                echo_obs::escape_json(&h.name),
                h.count,
                h.mean_ns().unwrap_or(0.0),
                h.min_ns.unwrap_or(0),
                h.max_ns.unwrap_or(0)
            )
        })
        .collect();

    // ── anti-replay spatial check ────────────────────────────────────
    // The screen runs on every authentication attempt when enabled
    // (DESIGN.md §14), so its per-train cost is a gated regression
    // metric (`stage.spatial.mean_ns`). Timed over the images of a
    // 3-beep train at the deployed 32×32 grid.
    let spatial_cfg = echoimage_core::config::SpatialCheckConfig {
        enabled: true,
        ..Default::default()
    };
    let spatial_images = {
        let scene = Scene::new(SceneConfig::laboratory_quiet(11));
        let body = BodyModel::from_seed(29);
        let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 3, 0);
        let pipeline = EchoImagePipeline::new(PipelineConfig::default());
        let (images, _) = run_or_exit(pipeline.images_from_train(&caps), "imaging failed");
        images
    };
    let spatial_iters = if quick { 50 } else { 500 };
    let spatial_mean_ns = time_ns(reps, spatial_iters, || {
        sink += echoimage_core::spatial::train_spread(&spatial_cfg, &spatial_images).unwrap_or(0.0);
    });
    println!(
        "\nanti-replay spatial check (3-beep train, 32×32 images): {:.1} µs/train",
        spatial_mean_ns / 1e3
    );

    // ── serving path: micro-batched daemon e2e p99 ───────────────────
    // Deliberately the same load in quick and full mode: the committed
    // baseline and the CI smoke sample must measure the same thing for
    // `serve.p99_ns` to gate regressions rather than configuration.
    echo_obs::reset();
    let serve_spec = echo_serve::loadgen::LoadSpec {
        sessions: 200,
        qps: 400.0,
        tenants: 1,
        users_per_tenant: 1,
        beeps: 2,
        enroll_images: 20,
        image_side: 32,
    };
    let server = run_or_exit(
        echo_serve::server::ServerHandle::start(
            echo_serve::config::ServeConfig::default(),
            echo_serve::server::BindAddr::Tcp("127.0.0.1:0".into()),
        ),
        "serve bench: bind",
    );
    let serve_addr = run_or_exit(
        server.local_addr().ok_or("server has no TCP address"),
        "serve bench",
    );
    run_or_exit(
        echo_serve::loadgen::enroll_world(serve_addr, &serve_spec),
        "serve bench: enrol",
    );
    let serve_tallies = run_or_exit(
        echo_serve::loadgen::run_load(serve_addr, &serve_spec),
        "serve bench: load",
    );
    let serve_report = echo_serve::loadgen::report(serve_tallies, &echo_obs::snapshot());
    server.shutdown();
    let serve_p99_ns = serve_report.p99_ns.unwrap_or_else(|| {
        eprintln!("WARNING: no serve.e2e samples in the snapshot");
        0
    });
    println!(
        "\nserving path ({} sessions @ {:.0} QPS, {}-beep probes, default batch window):",
        serve_spec.sessions, serve_spec.qps, serve_spec.beeps
    );
    println!(
        "  achieved {:.0} QPS   p50 {:.2} ms   p99 {:.2} ms   mean batch {:.2}",
        serve_report.tallies.achieved_qps(),
        serve_report.p50_ns.unwrap_or(0) as f64 / 1e6,
        serve_p99_ns as f64 / 1e6,
        serve_report.mean_batch.unwrap_or(0.0),
    );

    // ── telemetry: Stats poll + Prometheus render ────────────────────
    // Timed over the windows the serve section just populated, so the
    // render walks realistic sketches rather than empty rings. The
    // gated number is the full cost a 1 Hz scraper or an `echo-top`
    // poll puts on the daemon's I/O thread: window snapshot → wire
    // report → JSON, plus the Prometheus text exposition.
    let stats_iters = if quick { 100 } else { 1_000 };
    let stats_render_ns = time_ns(reps, stats_iters, || {
        let report = echo_serve::stats::collect(None);
        let json = echo_serve::stats::report_to_json(&report);
        let snap = echo_obs::snapshot();
        let (global, tenants) = echo_obs::window::snapshot_windows();
        let mut text = echo_obs::export::prometheus_text(&snap);
        text.push_str(&echo_obs::export::prometheus_windows(&global, &tenants));
        sink += (json.len() + text.len()) as f64;
    });
    println!(
        "\ntelemetry stats poll (collect + JSON + Prometheus render): {:.1} µs",
        stats_render_ns / 1e3
    );

    // ── template store: candidate lookup at scale ────────────────────
    // Same population in quick and full mode, for the same reason as
    // the serve section: `store.lookup_p99_ns` gates regressions in the
    // prefilter and shard reader, not configuration drift.
    echo_obs::reset();
    let store_users = 65_536usize;
    let store_probes = 2_000usize;
    let store_dir = std::env::temp_dir().join(format!("echo-feature-bench-{}", std::process::id()));
    run_or_exit(
        std::fs::create_dir_all(&store_dir).map_err(|e| e.to_string()),
        "store bench: tmp dir",
    );
    let t0 = Instant::now();
    let mut writer = echoimage_core::store::ShardWriter::new(&echo_bench::storegen::scaler());
    for t in echo_bench::storegen::population(store_users) {
        run_or_exit(writer.push(t), "store bench: push template");
    }
    let shard_path = store_dir.join("shard-000000.echoshard");
    run_or_exit(writer.write_to(&shard_path), "store bench: write shard");
    let store_build_ms = t0.elapsed().as_millis();
    let shard_bytes = std::fs::metadata(&shard_path).map(|m| m.len()).unwrap_or(0);
    let store = run_or_exit(
        echoimage_core::store::ShardStore::open_dir(&store_dir),
        "store bench: open shard dir",
    );
    use echoimage_core::store::TemplateStore as _;
    // Exact order statistics over the sorted sample (nearest-rank).
    let pct = |v: &[u64], p: f64| v[(((v.len() as f64) * p).ceil() as usize).clamp(1, v.len()) - 1];
    // Each probe is timed `store_reps` times and keeps its fastest run,
    // and the percentiles are taken over those per-probe minima — like
    // the kernel sections' best-of-reps, so one scheduler preemption
    // can't masquerade as a tail regression. The structural tail (the
    // probes that land in big cells) is exactly what survives.
    let store_reps = 3usize;
    let mut cand_total = 0usize;
    let mut lookup_ns: Vec<u64> = vec![u64::MAX; store_probes];
    for _ in 0..store_reps {
        for i in 0..store_probes as u64 {
            let user = echo_bench::storegen::splitmix(i) % store_users as u64;
            let xq: Vec<f32> = echo_bench::storegen::probe(user, 9_000 + i)
                .iter()
                .map(|&v| v as f32)
                .collect();
            let t = Instant::now();
            let cands = store.candidates(&xq, 16);
            let ns = t.elapsed().as_nanos() as u64;
            lookup_ns[i as usize] = lookup_ns[i as usize].min(ns);
            cand_total += cands.len();
        }
    }
    lookup_ns.sort_unstable();
    let store_lookup_p50_ns = pct(&lookup_ns, 0.50);
    let store_lookup_p99_ns = pct(&lookup_ns, 0.99);
    sink += cand_total as f64;
    let _ = std::fs::remove_dir_all(&store_dir);
    println!(
        "\ntemplate store ({store_users} users, mmap shard, \
         {store_probes} top-16 lookups × {store_reps} reps):"
    );
    println!(
        "  shard {:.1} MB built in {store_build_ms} ms   lookup p50 {:.1} µs   p99 {:.1} µs",
        shard_bytes as f64 / 1e6,
        store_lookup_p50_ns as f64 / 1e3,
        store_lookup_p99_ns as f64 / 1e3,
    );

    // ── artefact ─────────────────────────────────────────────────────
    let batch_json: Vec<String> = batch_rows
        .iter()
        .map(|(label, ns)| format!("    {{\"threads\": \"{label}\", \"ns_per_batch\": {ns:.0}}}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"feature_bench\",\n  \"quick\": {quick},\n  \"cores\": {cores},\n  \
         \"simd\": {{\n    \"requested\": \"{}\",\n    \"active\": \"{}\"\n  }},\n  \
         \"single_image\": {{\n    \"naive_ns\": {naive_ns:.0},\n    \
         \"gemm_ns\": {gemm_ns:.0},\n    \"gemm_scratch_ns\": {gemm_scratch_ns:.0},\n    \
         \"speedup_vs_naive\": {single_speedup:.2}\n  }},\n  \
         \"batch_16_images\": [\n{}\n  ],\n  \
         \"matched_filter\": {{\n    \"unplanned_ns\": {mf_unplanned_ns:.0},\n    \
         \"packed_ns\": {mf_packed_ns:.0},\n    \"planned_ns\": {mf_planned_ns:.0},\n    \
         \"speedup_vs_unplanned\": {:.2}\n  }},\n  \
         \"stage\": {{\n    \"distance\": {{\"mean_ns\": {distance_mean_ns:.0}}},\n    \
         \"spatial\": {{\"mean_ns\": {spatial_mean_ns:.0}}}\n  }},\n  \
         \"serve\": {{\n    \"p99_ns\": {serve_p99_ns}\n  }},\n  \
         \"stats\": {{\n    \"render_ns\": {stats_render_ns:.0}\n  }},\n  \
         \"store\": {{\n    \"users\": {store_users},\n    \
         \"shard_bytes\": {shard_bytes},\n    \
         \"lookup_p50_ns\": {store_lookup_p50_ns},\n    \
         \"lookup_p99_ns\": {store_lookup_p99_ns}\n  }},\n  \
         \"stages\": [\n{}\n  ],\n  \
         \"caches\": [\n{}\n  ]\n}}\n",
        echo_obs::escape_json(&simd_requested),
        simd_active,
        batch_json.join(",\n"),
        mf_unplanned_ns / mf_planned_ns,
        stage_json.join(",\n"),
        cache_json.join(",\n"),
    );
    if let Some(out) = flag_value("--out").map(std::path::PathBuf::from) {
        // Explicit destination (the bench-regression gate): write the
        // sample wherever asked, quick or not, without touching the
        // committed baseline.
        if let Some(dir) = out.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nartefact: {}", out.display()),
            Err(e) => eprintln!("could not write {}: {e}", out.display()),
        }
    } else if quick {
        // Smoke runs have too few iterations to be worth recording;
        // keep the last full run's numbers in the artefact.
        println!("\n--quick: BENCH_features.json left untouched");
    } else {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let out = root.join("BENCH_features.json");
        match std::fs::write(&out, &json) {
            Ok(()) => println!("\nartefact: {}", out.display()),
            Err(e) => eprintln!("could not write {}: {e}", out.display()),
        }
    }

    // Defeat dead-code elimination of every timed body.
    if sink.is_nan() {
        println!("{sink}");
    }
    if single_speedup < 4.0 && !quick {
        eprintln!("WARNING: single-image speedup {single_speedup:.2}× below the 4× gate");
    }
    echo_bench::finish_metrics();
}
