//! Fig. 14 — impact of inverse-square data augmentation when training
//! data is scarce and collected at a single distance.

use echo_bench::{artefact_note, banner, quick_mode, run_or_exit};
use echo_eval::experiments::fig14;
use echo_eval::report;

fn main() {
    banner(
        "Fig. 14",
        "recall/precision/accuracy vs number of training beeps, with and without augmentation",
        "augmentation lifts all metrics, most when training images are scarce; \
         performance stabilises with enough training beeps",
    );
    let cfg = fig14::Config {
        users: if quick_mode() { 3 } else { 5 },
        spoofers: if quick_mode() { 2 } else { 3 },
        train_sizes: if quick_mode() {
            vec![4, 12]
        } else {
            vec![4, 8, 16, 24]
        },
        test_beeps: if quick_mode() { 2 } else { 4 },
        ..fig14::Config::default()
    };
    let out = run_or_exit(fig14::run(&cfg), "augmentation run failed");

    println!(
        "{:>11} | {:>7} {:>9} {:>9} | {:>7} {:>9} {:>9}",
        "train beeps", "recall", "precision", "accuracy", "recall", "precision", "accuracy"
    );
    println!(
        "{:>11} | {:^27} | {:^27}",
        "", "without augmentation", "with augmentation"
    );
    for p in &out.points {
        println!(
            "{:>11} | {:>7.3} {:>9.3} {:>9.3} | {:>7.3} {:>9.3} {:>9.3}",
            p.train_beeps,
            p.without.recall,
            p.without.precision,
            p.without.accuracy,
            p.with.recall,
            p.with.precision,
            p.with.accuracy
        );
    }
    if let (Some(first), Some(last)) = (out.points.first(), out.points.last()) {
        println!(
            "\nsmallest training set: augmentation lifts accuracy {:.3} → {:.3} (gain {})",
            first.without.accuracy,
            first.with.accuracy,
            first.with.accuracy > first.without.accuracy
        );
        println!(
            "largest training set: with-augmentation accuracy {:.3} (stabilised: {})",
            last.with.accuracy,
            last.with.accuracy >= first.with.accuracy
        );
    }
    match report::write_artefact("fig14_augmentation", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
