//! Extension — authentication quality versus injected channel faults
//! (not in the paper; answers how gracefully the health-screen +
//! mic-subset degraded path gives ground when microphones fail).

use echo_bench::{artefact_note, banner, quick_mode, run_or_exit};
use echo_eval::experiments::fault_sweep;
use echo_eval::report;
use echo_sim::FaultKind;

fn main() {
    banner(
        "Fault sweep",
        "channel-fault kind × severity × count sweep (extension)",
        "the paper assumes six healthy microphones",
    );
    let mut cfg = fault_sweep::Config::default();
    if quick_mode() {
        cfg.users = 2;
        cfg.spoofers = 1;
        cfg.kinds = vec![FaultKind::Dead, FaultKind::Clipping];
        cfg.severities = vec![1.0];
        cfg.protocol.train_beeps = 8;
        cfg.protocol.test_beeps = 3;
    }
    let out = run_or_exit(fault_sweep::run(&cfg), "fault sweep failed");

    println!(
        "clean baseline: gate EER {:.3}, AUC {:.3}\n",
        out.baseline_eer, out.baseline_auc
    );
    println!("— fault sweep (clean enrolment, faulted probes) —");
    for p in &out.points {
        println!(
            "{:<12} severity {:.2}  mics {}   EER {:.3}  AUC {:.3}  rejects {}  ({}g/{}i scores)",
            p.kind.label(),
            p.severity,
            p.faulted_mics,
            p.eer,
            p.auc,
            p.degraded_rejects,
            p.genuine_scores,
            p.impostor_scores
        );
    }
    println!(
        "\naudit pass: {} attempts, {} rejected — {} with reject reason, {} with injected mask",
        out.audit.attempts,
        out.audit.rejected,
        out.audit.rejected_with_reason,
        out.audit.rejected_with_injected_mask
    );
    match report::write_artefact("fault_sweep", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
