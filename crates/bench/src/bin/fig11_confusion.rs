//! Fig. 11 — overall performance: confusion matrix over 12 registered
//! users and 8 spoofers in a quiet laboratory at 0.7 m.

use echo_bench::{artefact_note, banner, metrics_row, quick_mode, run_or_exit};
use echo_eval::experiments::{fig11, protocol::ProtocolConfig};
use echo_eval::report;

fn main() {
    banner(
        "Fig. 11",
        "confusion matrix, 12 registered users + 8 spoofers",
        "over 0.98 accuracy identifying registered users; 0.97 accuracy in spoofer detection",
    );
    let cfg = fig11::Config {
        protocol: ProtocolConfig {
            train_beeps: if quick_mode() { 12 } else { 36 },
            test_beeps: if quick_mode() { 4 } else { 8 },
            ..ProtocolConfig::default()
        },
        ..fig11::Config::default()
    };
    let out = run_or_exit(fig11::run(&cfg), "overall performance run failed");

    println!("{}", out.confusion.to_table());
    println!(
        "user identification accuracy : {:.3}   (paper: >0.98)",
        out.user_identification
    );
    println!(
        "spoofer detection accuracy   : {:.3}   (paper: ~0.97)",
        out.spoofer_detection
    );
    println!("{}", metrics_row("aggregate", &out.metrics));
    match report::write_artefact("fig11_confusion", &out) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
