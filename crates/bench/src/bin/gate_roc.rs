//! Extension — ROC/EER sweep of the spoofer gate (not in the paper,
//! which reports threshold-at-zero rates only; standard biometric
//! practice).

use echo_bench::{artefact_note, banner, quick_mode, run_or_exit};
use echo_eval::experiments::protocol::{enroll, ProtocolConfig, TEST_BEEP_OFFSET};
use echo_eval::harness::{CaptureSpec, Harness};
use echo_eval::report;
use echo_eval::roc::roc_curve;
use echo_sim::Population;

fn main() {
    banner(
        "ROC",
        "spoofer-gate ROC / EER sweep (extension)",
        "not in the paper — complements Fig. 11's fixed-threshold rates",
    );
    let harness = Harness::new(2023);
    let population = Population::paper_table1(2023);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();
    let proto = ProtocolConfig {
        train_beeps: if quick_mode() { 8 } else { 24 },
        test_beeps: if quick_mode() { 3 } else { 6 },
        ..ProtocolConfig::default()
    };
    let spec = CaptureSpec::default_lab(0);
    let auth = run_or_exit(
        enroll(&harness, &registered, &spec, &proto),
        "enrolment failed",
    );

    let mut genuine = Vec::new();
    let mut impostor = Vec::new();
    for (list, out) in [(&registered, &mut genuine), (&spoofers, &mut impostor)] {
        for profile in list.iter() {
            let test_spec = CaptureSpec {
                session: 237,
                beeps: proto.test_beeps,
                beep_offset: TEST_BEEP_OFFSET + profile.id as u64 * 1_000,
                ..spec.clone()
            };
            if let Ok(feats) = harness.features_for_profile(profile, &test_spec) {
                out.extend(feats.iter().map(|f| auth.gate_decision(f)));
            }
        }
    }

    let roc = roc_curve(&genuine, &impostor);
    println!("genuine samples : {}", genuine.len());
    println!("impostor samples: {}", impostor.len());
    println!(
        "EER             : {:.3} at threshold {:+.4}",
        roc.eer, roc.eer_threshold
    );
    println!("AUC             : {:.3}", roc.auc);
    println!("\n{:>10} {:>7} {:>7}", "threshold", "FAR", "FRR");
    let step = (roc.points.len() / 12).max(1);
    for p in roc.points.iter().step_by(step) {
        println!("{:>10.4} {:>7.3} {:>7.3}", p.threshold, p.far, p.frr);
    }
    match report::write_artefact("gate_roc", &roc) {
        Ok(p) => artefact_note(&p),
        Err(e) => eprintln!("could not write artefact: {e}"),
    }
    echo_bench::finish_metrics();
}
