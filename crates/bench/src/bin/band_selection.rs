//! §V-A — why 2–3 kHz? A quantitative check of the paper's two
//! frequency-band constraints:
//!
//! 1. Grating lobes: with ~5 cm microphone spacing, spatial sampling
//!    requires d < λ/2, capping the probing band near 3.4 kHz — so the
//!    inaudible >20 kHz bands other systems use are unavailable.
//! 2. Ambient noise concentrates below 2 kHz, so probing above it keeps
//!    the band clean.

use echo_array::{Direction, MicArray};
use echo_beamform::pattern::BeamPattern;
use echo_bench::banner;
use echo_dsp::fft::{bin_frequency, magnitude_spectrum};
use echo_dsp::SPEED_OF_SOUND;
use echo_sim::noise::NoiseGenerator;
use echo_sim::NoiseKind;
use std::f64::consts::FRAC_PI_2;

fn main() {
    banner(
        "§V-A",
        "probing-band selection: grating lobes and noise spectra",
        "mic spacing 4–7 cm caps the band below ~3 kHz; ambient noise sits below 2 kHz",
    );
    let array = MicArray::respeaker_6();
    println!(
        "array: 6 microphones, min spacing {:.3} m → grating-lobe-free up to {:.0} Hz\n",
        array.min_spacing(),
        array.max_unambiguous_frequency(SPEED_OF_SOUND)
    );

    println!("worst off-look response (1.00 = as strong as the look direction):");
    println!(
        "{:>9} {:>12} {:>14} {:>8}",
        "freq", "worst lobe", "main lobe (°)", "grating?"
    );
    for f in [
        1_000.0, 2_000.0, 2_500.0, 3_000.0, 4_000.0, 6_000.0, 8_000.0, 12_000.0,
    ] {
        let p = BeamPattern::azimuth_sweep(
            &array,
            Direction::new(FRAC_PI_2, FRAC_PI_2),
            f,
            SPEED_OF_SOUND,
            1_440,
        );
        println!(
            "{:>7.0}Hz {:>12.3} {:>14.1} {:>8}",
            f,
            p.worst_sidelobe(0.6),
            p.main_lobe_width().to_degrees(),
            if p.has_grating_lobes(0.9) {
                "YES"
            } else {
                "no"
            }
        );
    }

    println!("\nambient-noise energy by band (fraction of total, 48 kHz):");
    println!(
        "{:>9} {:>9} {:>9} {:>9}",
        "noise", "<2 kHz", "2-3 kHz", ">3 kHz"
    );
    for kind in [NoiseKind::Music, NoiseKind::Chatter, NoiseKind::Traffic] {
        let gen = NoiseGenerator::nominal(kind, 48_000.0);
        let ch = gen.render(&array, 48_000, 7);
        let spec = magnitude_spectrum(&ch[0]);
        let n = ch[0].len();
        let mut bands = [0.0f64; 3];
        let mut total = 0.0;
        for (k, v) in spec[..n / 2].iter().enumerate() {
            let f = bin_frequency(k, n, 48_000.0);
            let e = v * v;
            total += e;
            if f < 2_000.0 {
                bands[0] += e;
            } else if f <= 3_000.0 {
                bands[1] += e;
            } else {
                bands[2] += e;
            }
        }
        println!(
            "{:>9} {:>9.3} {:>9.3} {:>9.3}",
            kind.label(),
            bands[0] / total,
            bands[1] / total,
            bands[2] / total
        );
    }
    println!("\n⇒ the 2–3 kHz beep sits above the noise floor and below the grating-lobe limit.");
    echo_bench::finish_metrics();
}
