//! Shared helpers for the figure-regeneration binaries.
//!
//! Each `src/bin/figNN_*.rs` binary reruns one experiment from the
//! paper's evaluation (§VI) on the simulated substrate, prints the same
//! rows/series the paper reports next to the paper's own numbers, and
//! writes a JSON artefact under `target/experiments/`.

use echo_eval::metrics::AuthMetrics;

/// Parses the common `--quick` flag (reduced counts for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a standard experiment header.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("════════════════════════════════════════════════════════════════");
    println!("EchoImage reproduction — {id}: {title}");
    println!("paper: {paper_claim}");
    println!("════════════════════════════════════════════════════════════════");
}

/// Formats one metrics row.
pub fn metrics_row(label: &str, m: &AuthMetrics) -> String {
    format!(
        "{label:<28} recall {:.3}  precision {:.3}  accuracy {:.3}  F {:.3}",
        m.recall, m.precision, m.accuracy, m.f_measure
    )
}

/// Reports where the JSON artefact landed.
pub fn artefact_note(path: &std::path::Path) {
    println!("\nartefact: {}", path.display());
}
