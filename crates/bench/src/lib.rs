//! Shared helpers for the figure-regeneration binaries.
//!
//! Each `src/bin/figNN_*.rs` binary reruns one experiment from the
//! paper's evaluation (§VI) on the simulated substrate, prints the same
//! rows/series the paper reports next to the paper's own numbers, and
//! writes a JSON artefact under `target/experiments/`.

use echo_eval::metrics::AuthMetrics;
use std::path::PathBuf;

/// Parses the common `--quick` flag (reduced counts for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The value following a `--flag` argument, if present.
pub fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Parses the common `--metrics-out <path>` flag: where to write the
/// observability snapshot when the run completes.
pub fn metrics_out() -> Option<PathBuf> {
    flag_value("--metrics-out").map(PathBuf::from)
}

/// Writes the process-wide metrics snapshot to `--metrics-out` (no-op
/// when the flag is absent). Every experiment binary calls this last,
/// so per-stage latency and cache hit-rate numbers for the whole run
/// land next to the experiment artefact.
pub fn finish_metrics() {
    let Some(path) = metrics_out() else { return };
    let json = echo_obs::snapshot().to_json();
    match std::fs::write(&path, json) {
        Ok(()) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("could not write metrics to {}: {e}", path.display()),
    }
}

/// Prints a standard experiment header.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("════════════════════════════════════════════════════════════════");
    println!("EchoImage reproduction — {id}: {title}");
    println!("paper: {paper_claim}");
    println!("════════════════════════════════════════════════════════════════");
}

/// Formats one metrics row.
pub fn metrics_row(label: &str, m: &AuthMetrics) -> String {
    format!(
        "{label:<28} recall {:.3}  precision {:.3}  accuracy {:.3}  F {:.3}",
        m.recall, m.precision, m.accuracy, m.f_measure
    )
}

/// Reports where the JSON artefact landed.
pub fn artefact_note(path: &std::path::Path) {
    println!("\nartefact: {}", path.display());
}
