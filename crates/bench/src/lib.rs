//! Shared helpers for the figure-regeneration binaries.
//!
//! Each `src/bin/figNN_*.rs` binary reruns one experiment from the
//! paper's evaluation (§VI) on the simulated substrate, prints the same
//! rows/series the paper reports next to the paper's own numbers, and
//! writes a JSON artefact under `target/experiments/`.

use echo_eval::metrics::AuthMetrics;
use std::path::PathBuf;

pub mod storegen;

/// Parses the common `--quick` flag (reduced counts for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The value following a `--flag` argument, if present.
pub fn flag_value(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

/// Parses the common `--metrics-out <path>` flag: where to write the
/// observability snapshot when the run completes.
pub fn metrics_out() -> Option<PathBuf> {
    flag_value("--metrics-out").map(PathBuf::from)
}

/// Parses the common `--trace-out <path>` flag: where to write the
/// JSONL trace (spans + audit records) when the run completes. The
/// flag's presence is also what switches span recording on.
pub fn trace_out() -> Option<PathBuf> {
    flag_value("--trace-out").map(PathBuf::from)
}

/// Writes the process-wide metrics snapshot to `--metrics-out` (no-op
/// when the flag is absent), then the trace JSONL to `--trace-out`
/// (likewise). Every experiment binary calls this last, so per-stage
/// latency, cache hit-rate numbers and the flight-recorder trace for
/// the whole run land next to the experiment artefact.
pub fn finish_metrics() {
    if let Some(path) = metrics_out() {
        let json = echo_obs::snapshot().to_json();
        match echo_obs::export::write_atomic(&path, json.as_bytes()) {
            Ok(()) => println!("metrics: {}", path.display()),
            Err(e) => eprintln!("could not write metrics to {}: {e}", path.display()),
        }
    }
    finish_traces();
}

/// Drains the trace ring and audit log into `--trace-out` as JSONL.
/// No-op without the flag. Convert to Perfetto-loadable Chrome trace
/// JSON with `cargo xtask trace-report <file> --chrome <out>`.
pub fn finish_traces() {
    let Some(path) = trace_out() else { return };
    let spans = echo_obs::take_spans();
    let audits = echo_obs::take_audits();
    let dropped = echo_obs::trace_events_dropped();
    if dropped > 0 {
        eprintln!("trace: ring overflowed, {dropped} span events dropped");
    }
    let jsonl = echo_obs::export::trace_jsonl(&spans, &audits);
    match echo_obs::export::write_atomic(&path, jsonl.as_bytes()) {
        Ok(()) => println!(
            "trace: {} ({} spans, {} audits)",
            path.display(),
            spans.len(),
            audits.len()
        ),
        Err(e) => eprintln!("could not write trace to {}: {e}", path.display()),
    }
}

/// Unwraps an experiment step's result. On error this does **not**
/// panic: it prints the error, drains `--metrics-out`/`--trace-out`
/// (a failed sweep's partial metrics are exactly the ones worth
/// keeping), and exits non-zero.
pub fn run_or_exit<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{what}: {e}");
            finish_metrics();
            std::process::exit(1);
        }
    }
}

/// Prints a standard experiment header, and arms the flight recorder
/// when the run asked for a trace: `--trace-out <path>` switches span
/// recording on, `--trace-sample <n>` keeps one trace in `n`
/// (deterministic on the trace serial; default keeps every trace).
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    if trace_out().is_some() {
        echo_obs::set_trace_enabled(true);
        if let Some(n) = flag_value("--trace-sample").and_then(|v| v.parse::<u64>().ok()) {
            echo_obs::set_trace_sampling(n);
        }
    }
    println!("════════════════════════════════════════════════════════════════");
    println!("EchoImage reproduction — {id}: {title}");
    println!("paper: {paper_claim}");
    println!("════════════════════════════════════════════════════════════════");
}

/// Formats one metrics row.
pub fn metrics_row(label: &str, m: &AuthMetrics) -> String {
    format!(
        "{label:<28} recall {:.3}  precision {:.3}  accuracy {:.3}  F {:.3}",
        m.recall, m.precision, m.accuracy, m.f_measure
    )
}

/// Reports where the JSON artefact landed.
pub fn artefact_note(path: &std::path::Path) {
    println!("\nartefact: {}", path.display());
}
