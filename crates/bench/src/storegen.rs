//! Deterministic synthetic template populations for the store benches.
//!
//! The template-store benches (`feature_bench`'s store section and
//! `store_bench`) need populations far beyond what SVDD training can
//! produce in bench time, so users here are hash-generated: each user
//! gets a centroid drawn from a splitmix64 stream and a single
//! analytically-constructed SVDD gate whose one support vector *is*
//! that centroid. The gate margin is then `exp(-γ·d²) − ρ` — strictly
//! decreasing in the probe's distance to the centroid — which buys two
//! properties the benches lean on:
//!
//! * **Separation**: uniform centroids in `[0, 100)^16` put the nearest
//!   impostor tens of units away even at a million users, so a probe
//!   jittered ±0.1 around its owner's centroid accepts exactly one
//!   user.
//! * **Structural parity**: the best margin is always the nearest
//!   centroid, and the prefilter ranks by centroid distance, so the
//!   prefiltered decision provably matches the exhaustive oracle —
//!   any disagreement the parity suite finds is a real index bug, not
//!   synthetic-data noise.
//!
//! Everything is a pure function of `(user, variant)`: no RNG state,
//! bit-identical across runs, threads and machines.

use echo_ml::StandardScaler;
use echoimage_core::store::{GateTemplate, UserTemplate};
use std::sync::Arc;

/// Feature dimensionality of every synthetic template.
pub const DIM: usize = 16;

/// Probe jitter half-range per coordinate (scaled units).
pub const JITTER: f64 = 0.1;

/// splitmix64: the finalizer used throughout the repo for seeded
/// synthetic data.
pub fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform float in `[0, 1)` from a hash word (top 53 bits).
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The user's exact (f64) centroid, uniform in `[0, 100)^DIM`.
pub fn centroid_f64(user: u64) -> Vec<f64> {
    (0..DIM as u64)
        .map(|d| unit(splitmix(user.wrapping_mul(0x0517_CC1B_7272_2A95) ^ d)) * 100.0)
        .collect()
}

/// The user's identification template: quantized centroid plus one
/// single-support-vector gate centred on it. `salt` perturbs the gate's
/// support vector and the centroid — two templates for the same user
/// with different salts model a re-enrolment (the newest-shard-wins
/// suites rely on salt 1 being distinguishable from salt 0).
pub fn template_salted(user: u64, salt: u64) -> Arc<UserTemplate> {
    let mut c = centroid_f64(user);
    if salt != 0 {
        // Shift the re-enrolled centroid far enough that probes against
        // the old one reject: 3 units per coordinate >> the ln2/γ
        // acceptance radius.
        for v in &mut c {
            *v += 3.0 * salt as f64;
        }
    }
    Arc::new(UserTemplate {
        user_id: user,
        centroid: c.iter().map(|&v| v as f32).collect(),
        gates: vec![GateTemplate {
            gamma: 0.5,
            rho: 0.5,
            threshold: 0.0,
            coefficients: vec![1.0],
            support: c,
        }],
    })
}

/// The user's first-enrolment template.
pub fn template(user: u64) -> Arc<UserTemplate> {
    template_salted(user, 0)
}

/// `n` first-enrolment templates for users `0..n`.
pub fn population(n: usize) -> Vec<Arc<UserTemplate>> {
    (0..n as u64).map(template).collect()
}

/// The identity scaler all synthetic templates are "scaled" by.
pub fn scaler() -> StandardScaler {
    StandardScaler::from_parts(vec![0.0; DIM], vec![1.0; DIM])
}

/// One probe feature vector for `user`: their exact centroid jittered
/// by ±[`JITTER`] per coordinate, deterministic in `(user, variant)`.
pub fn probe(user: u64, variant: u64) -> Vec<f64> {
    centroid_f64(user)
        .into_iter()
        .enumerate()
        .map(|(d, v)| {
            let h = splitmix(
                user.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ variant.rotate_left(17) ^ d as u64,
            );
            v + (unit(h) - 0.5) * 2.0 * JITTER
        })
        .collect()
}

/// A `beeps`-long probe train for `user` (variants `first..first+beeps`).
pub fn probe_train(user: u64, first_variant: u64, beeps: usize) -> Vec<Vec<f64>> {
    (0..beeps as u64)
        .map(|b| probe(user, first_variant + b))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use echoimage_core::store::{identify, IdentifyConfig, MemoryStore, TemplateStore};

    #[test]
    fn probes_accept_their_owner_and_nobody_else() {
        let store = MemoryStore::from_templates(&scaler(), population(512)).unwrap();
        for user in [0u64, 7, 511] {
            let train = probe_train(user, 40, 3);
            match identify(&store, &train, &IdentifyConfig::default()).unwrap() {
                echoimage_core::AuthDecision::Accepted { user_id } => {
                    assert_eq!(user_id as u64, user);
                }
                d => panic!("user {user} not identified: {d:?}"),
            }
        }
    }

    #[test]
    fn salted_template_moves_the_acceptance_region() {
        let t0 = template_salted(3, 0);
        let t1 = template_salted(3, 1);
        assert_ne!(t0.centroid, t1.centroid);
        // A probe at the original centroid accepts salt 0, rejects
        // salt 1.
        let x = centroid_f64(3);
        assert!(t0.margin(DIM, &x) >= 0.0);
        assert!(t1.margin(DIM, &x) < 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(centroid_f64(99), centroid_f64(99));
        assert_eq!(probe(4, 11), probe(4, 11));
        assert_ne!(probe(4, 11), probe(4, 12));
        let s = scaler();
        assert_eq!(s.dim(), DIM);
        let store = MemoryStore::from_templates(&s, population(64)).unwrap();
        assert_eq!(store.user_count(), 64);
    }
}
