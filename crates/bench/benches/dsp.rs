//! Criterion benches for the DSP substrate: the per-beep signal chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echo_dsp::chirp::LfmChirp;
use echo_dsp::correlate::matched_filter;
use echo_dsp::fft::{fft, ifft};
use echo_dsp::filter::SosFilter;
use echo_dsp::hilbert::analytic_signal;
use echo_dsp::Complex;
use std::hint::black_box;

fn test_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.37).sin() * ((i as f64) * 0.013).cos())
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    for &n in &[1_024usize, 4_096, 3_360 /* non-pow2 → Bluestein */] {
        let data: Vec<Complex> = test_signal(n).into_iter().map(Complex::from_real).collect();
        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut x = data.clone();
                fft(black_box(&mut x));
                x
            })
        });
        group.bench_with_input(BenchmarkId::new("round_trip", n), &n, |b, _| {
            b.iter(|| {
                let mut x = data.clone();
                fft(&mut x);
                ifft(&mut x);
                x
            })
        });
    }
    group.finish();
}

fn bench_matched_filter(c: &mut Criterion) {
    // One beep window (60 ms at 48 kHz) against the 96-sample chirp —
    // the paper's Eq. 9 at production size.
    let chirp = LfmChirp::new(2_000.0, 3_000.0, 0.002, 48_000.0).samples();
    let rx = test_signal(3_360);
    c.bench_function("matched_filter/beep_window", |b| {
        b.iter(|| matched_filter(black_box(&rx), black_box(&chirp)))
    });
}

fn bench_bandpass(c: &mut Criterion) {
    let bp = SosFilter::butterworth_bandpass(4, 2_000.0, 3_000.0, 48_000.0);
    let rx = test_signal(3_360);
    let mut group = c.benchmark_group("bandpass");
    group.bench_function("filter", |b| b.iter(|| bp.filter(black_box(&rx))));
    group.bench_function("filtfilt", |b| b.iter(|| bp.filtfilt(black_box(&rx))));
    group.bench_function("design", |b| {
        b.iter(|| SosFilter::butterworth_bandpass(4, 2_000.0, 3_000.0, 48_000.0))
    });
    group.finish();
}

fn bench_hilbert(c: &mut Criterion) {
    let rx = test_signal(3_360);
    c.bench_function("hilbert/analytic_signal", |b| {
        b.iter(|| analytic_signal(black_box(&rx)))
    });
}

fn bench_stft(c: &mut Criterion) {
    use echo_dsp::stft::{istft, stft, stft_complex};
    let rx = test_signal(9_600);
    c.bench_function("stft/magnitude_512_128", |b| {
        b.iter(|| stft(black_box(&rx), 512, 128, 48_000.0))
    });
    let frames = stft_complex(&rx, 512, 128);
    c.bench_function("stft/istft_round", |b| {
        b.iter(|| istft(black_box(&frames), 512, 128, rx.len()))
    });
}

fn bench_cfar_resample(c: &mut Criterion) {
    use echo_dsp::cfar::ca_cfar;
    use echo_dsp::resample::resample;
    let rx = test_signal(3_360);
    c.bench_function("cfar/beep_window", |b| {
        b.iter(|| ca_cfar(black_box(&rx), 4, 16, 3.0))
    });
    c.bench_function("resample/48k_to_16k_window", |b| {
        b.iter(|| resample(black_box(&rx), 48_000.0, 16_000.0, 8))
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_matched_filter,
    bench_bandpass,
    bench_hilbert,
    bench_stft,
    bench_cfar_resample
);
criterion_main!(benches);
