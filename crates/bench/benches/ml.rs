//! Criterion benches for the learning substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use echo_ml::{FeatureExtractor, GrayImage, Kernel, KnnClassifier, Pca, SvmMulticlass};
use std::hint::black_box;

fn image() -> GrayImage {
    GrayImage::from_fn(32, 32, |x, y| ((x * 13 + y * 7) % 19) as f64 * 0.1)
}

fn feature_set(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| {
                    let cls = (i % 4) as f64;
                    cls * 2.0 + (((i * 31 + d * 7) % 17) as f64 / 17.0 - 0.5)
                })
                .collect()
        })
        .collect();
    let ys: Vec<usize> = (0..n).map(|i| i % 4).collect();
    (xs, ys)
}

fn bench_cnn(c: &mut Criterion) {
    let fx = FeatureExtractor::paper_default();
    let img = image();
    c.bench_function("ml/cnn_extract_32x32", |b| {
        b.iter(|| fx.extract(black_box(&img)))
    });
}

fn bench_svm(c: &mut Criterion) {
    let (xs, ys) = feature_set(160, 64);
    let mut group = c.benchmark_group("ml/svm");
    group.sample_size(10);
    group.bench_function("train_4class_160x64", |b| {
        b.iter(|| SvmMulticlass::train(black_box(&xs), &ys, Kernel::rbf_median(&xs), 10.0))
    });
    let svm = SvmMulticlass::train(&xs, &ys, Kernel::rbf_median(&xs), 10.0);
    group.bench_function("predict", |b| b.iter(|| svm.predict(black_box(&xs[3]))));
    group.finish();
}

fn bench_oneclass(c: &mut Criterion) {
    use echo_ml::OneClassSvm;
    let (xs, _) = feature_set(160, 64);
    let mut group = c.benchmark_group("ml/oneclass");
    group.sample_size(10);
    group.bench_function("train_160x64", |b| {
        b.iter(|| OneClassSvm::train(black_box(&xs), Kernel::rbf_median(&xs), 0.05))
    });
    let oc = OneClassSvm::train(&xs, Kernel::rbf_median(&xs), 0.05);
    group.bench_function("decision", |b| b.iter(|| oc.decision(black_box(&xs[5]))));
    group.finish();
}

fn bench_pca_knn(c: &mut Criterion) {
    let (xs, ys) = feature_set(160, 64);
    let mut group = c.benchmark_group("ml/reduction");
    group.sample_size(10);
    group.bench_function("pca_fit_64d_to_16", |b| {
        b.iter(|| Pca::fit(black_box(&xs), 16))
    });
    let knn = KnnClassifier::fit(&xs, &ys, 5);
    group.bench_function("knn_predict_160", |b| {
        b.iter(|| knn.predict(black_box(&xs[7])))
    });
    group.finish();
}

criterion_group!(benches, bench_cnn, bench_svm, bench_oneclass, bench_pca_knn);
criterion_main!(benches);
