//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * MVDR vs delay-and-sum imaging (the paper's §V-C design),
//! * beamformed vs single-microphone matched-filter ranging (§V-B
//!   motivation),
//! * CNN features vs raw downsampled pixels (§V-D),
//! * envelope-averaging beep count L (Eq. 10).
//!
//! Criterion reports the runtime cost of each variant; the quality side
//! of these ablations is exercised by `examples/ablation_study.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echo_dsp::correlate::matched_filter;
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::config::{BeamformerKind, ImagingConfig, PipelineConfig};
use echoimage_core::features::ImageFeatures;
use echoimage_core::pipeline::EchoImagePipeline;
use std::hint::black_box;

fn fixtures() -> (Scene, BodyModel) {
    (
        Scene::new(SceneConfig::laboratory_quiet(42)),
        BodyModel::from_seed(7),
    )
}

fn bench_beamformer_kind(c: &mut Criterion) {
    let (scene, body) = fixtures();
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    let mut group = c.benchmark_group("ablation/imaging_beamformer");
    group.sample_size(20);
    for kind in [BeamformerKind::Mvdr, BeamformerKind::DelayAndSum] {
        let cfg = PipelineConfig {
            imaging: ImagingConfig {
                beamformer: kind,
                ..ImagingConfig::default()
            },
            ..PipelineConfig::default()
        };
        let pipeline = EchoImagePipeline::new(cfg);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, _| b.iter(|| pipeline.acoustic_image(black_box(&cap), 0.7).unwrap()),
        );
    }
    group.finish();
}

fn bench_ranging_variants(c: &mut Criterion) {
    let (scene, body) = fixtures();
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 4, 0);
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let mut group = c.benchmark_group("ablation/ranging");
    group.bench_function("beamformed_mvdr", |b| {
        b.iter(|| pipeline.estimate_distance(black_box(&caps)).unwrap())
    });
    // The naive alternative the paper argues against: matched-filter one
    // microphone directly.
    let chirp = pipeline.config().beep.chirp().samples();
    let filtered: Vec<_> = caps.iter().map(|c| pipeline.preprocess(c)).collect();
    group.bench_function("single_mic", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f64; filtered[0].len()];
            for cap in &filtered {
                let c = matched_filter(cap.channel(0), &chirp);
                for (a, v) in acc.iter_mut().zip(c.iter()) {
                    *a += v * v;
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_feature_variants(c: &mut Criterion) {
    let (scene, body) = fixtures();
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    let img = pipeline.acoustic_image(&cap, 0.7).unwrap();
    let fx = ImageFeatures::new();
    let mut group = c.benchmark_group("ablation/features");
    group.bench_function("frozen_cnn", |b| b.iter(|| fx.extract(black_box(&img))));
    group.bench_function("raw_pixels", |b| b.iter(|| fx.raw_pixels(black_box(&img))));
    group.finish();
}

fn bench_beep_count(c: &mut Criterion) {
    let (scene, body) = fixtures();
    let pipeline = EchoImagePipeline::new(PipelineConfig::default());
    let mut group = c.benchmark_group("ablation/ranging_beep_count");
    group.sample_size(10);
    for l in [1usize, 4, 10, 20] {
        let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, l, 0);
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, _| {
            b.iter(|| pipeline.estimate_distance(black_box(&caps)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_beamformer_kind,
    bench_ranging_variants,
    bench_feature_variants,
    bench_beep_count
);
criterion_main!(benches);
