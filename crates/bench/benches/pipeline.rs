//! Criterion benches for the end-to-end EchoImage pipeline stages.

use criterion::{criterion_group, criterion_main, Criterion};
use echo_sim::{BodyModel, Placement, Scene, SceneConfig};
use echoimage_core::auth::{AuthConfig, Authenticator};
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use std::hint::black_box;

fn fixtures() -> (Scene, BodyModel, EchoImagePipeline) {
    (
        Scene::new(SceneConfig::laboratory_quiet(42)),
        BodyModel::from_seed(7),
        EchoImagePipeline::new(PipelineConfig::default()),
    )
}

fn bench_scene_render(c: &mut Criterion) {
    let (scene, body, _) = fixtures();
    let placement = Placement::standing_front(0.7);
    c.bench_function("scene/capture_beep", |b| {
        b.iter(|| scene.capture_beep(black_box(&body), &placement, 0, 0))
    });
}

fn bench_preprocess(c: &mut Criterion) {
    let (scene, body, pipeline) = fixtures();
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    c.bench_function("pipeline/preprocess", |b| {
        b.iter(|| pipeline.preprocess(black_box(&cap)))
    });
}

fn bench_distance(c: &mut Criterion) {
    let (scene, body, pipeline) = fixtures();
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 4, 0);
    c.bench_function("pipeline/estimate_distance_L4", |b| {
        b.iter(|| pipeline.estimate_distance(black_box(&caps)).unwrap())
    });
}

fn bench_imaging(c: &mut Criterion) {
    let (scene, body, pipeline) = fixtures();
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    let mut group = c.benchmark_group("pipeline/acoustic_image");
    group.sample_size(20);
    group.bench_function("32x32", |b| {
        b.iter(|| pipeline.acoustic_image(black_box(&cap), 0.7).unwrap())
    });
    // The paper's full-scale 180×180 grid.
    let full = PipelineConfig {
        imaging: echoimage_core::config::ImagingConfig::paper_full(),
        ..PipelineConfig::default()
    };
    let full_pipeline = EchoImagePipeline::new(full);
    group.sample_size(10);
    group.bench_function("paper_180x180", |b| {
        b.iter(|| full_pipeline.acoustic_image(black_box(&cap), 0.7).unwrap())
    });
    group.finish();
}

fn bench_parallel_imaging(c: &mut Criterion) {
    let (scene, body, _) = fixtures();
    let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 4, 0);
    let mut group = c.benchmark_group("pipeline/images_from_train_L4");
    group.sample_size(10);
    // threads = 1 is the serial reference; threads = 0 lets the work
    // pool use every available core. Outputs are bit-identical — only
    // the wall clock should move.
    let serial = EchoImagePipeline::new(PipelineConfig::default().with_threads(1));
    group.bench_function("serial", |b| {
        b.iter(|| serial.images_from_train(black_box(&caps)).unwrap())
    });
    let parallel = EchoImagePipeline::new(PipelineConfig::default().with_threads(0));
    group.bench_function("parallel_auto", |b| {
        b.iter(|| parallel.images_from_train(black_box(&caps)).unwrap())
    });
    group.finish();
}

fn bench_steering_cache(c: &mut Criterion) {
    use echoimage_core::steering_cache;
    let (scene, body, pipeline) = fixtures();
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    let mut group = c.benchmark_group("pipeline/steering_cache");
    group.sample_size(10);
    // Cold: every image pays the full steering-field computation.
    group.bench_function("cold", |b| {
        b.iter(|| {
            steering_cache::clear_cache();
            pipeline.acoustic_image(black_box(&cap), 0.7).unwrap()
        })
    });
    // Warm: the field is served from the cache, as when imaging the
    // 2nd..Nth beep of a train.
    let _ = pipeline.acoustic_image(&cap, 0.7).unwrap();
    group.bench_function("warm", |b| {
        b.iter(|| pipeline.acoustic_image(black_box(&cap), 0.7).unwrap())
    });
    group.finish();
}

fn bench_features(c: &mut Criterion) {
    let (scene, body, pipeline) = fixtures();
    let cap = scene.capture_beep(&body, &Placement::standing_front(0.7), 0, 0);
    let img = pipeline.acoustic_image(&cap, 0.7).unwrap();
    c.bench_function("pipeline/cnn_features", |b| {
        b.iter(|| pipeline.features(black_box(&img)))
    });
}

fn bench_authentication(c: &mut Criterion) {
    let (scene, _, pipeline) = fixtures();
    // Enrol three users with 6 beeps each.
    let mut users = Vec::new();
    for seed in [1u64, 2, 3] {
        let body = BodyModel::from_seed(seed);
        let caps = scene.capture_train(&body, &Placement::standing_front(0.7), 0, 6, 0);
        let feats = pipeline.features_from_train(&caps).unwrap();
        users.push((seed as usize, feats));
    }
    let mut group = c.benchmark_group("auth");
    group.sample_size(10);
    group.bench_function("enroll_3_users", |b| {
        b.iter(|| Authenticator::enroll(black_box(&users), &AuthConfig::default()).unwrap())
    });
    let auth = Authenticator::enroll(&users, &AuthConfig::default()).unwrap();
    let probe = users[0].1[0].clone();
    group.bench_function("authenticate_one_sample", |b| {
        b.iter(|| auth.authenticate(black_box(&probe)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scene_render,
    bench_preprocess,
    bench_distance,
    bench_imaging,
    bench_parallel_imaging,
    bench_steering_cache,
    bench_features,
    bench_authentication
);
criterion_main!(benches);
