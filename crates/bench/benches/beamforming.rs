//! Criterion benches for the beamforming substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use echo_array::{Direction, MicArray};
use echo_beamform::{apply_weights, mvdr_weights, MvdrDesigner, SpatialCovariance};
use echo_dsp::Complex;
use std::hint::black_box;

fn snapshots(m: usize, n: usize) -> Vec<Vec<Complex>> {
    (0..m)
        .map(|ch| {
            (0..n)
                .map(|t| Complex::cis((t * (ch + 3)) as f64 * 0.01) * 0.3)
                .collect()
        })
        .collect()
}

fn bench_covariance(c: &mut Criterion) {
    let snaps = snapshots(6, 1_920);
    c.bench_function("covariance/estimate_6x1920", |b| {
        b.iter(|| SpatialCovariance::from_snapshots(black_box(&snaps), 1e-3))
    });
    let array = MicArray::respeaker_6();
    c.bench_function("covariance/isotropic_model", |b| {
        b.iter(|| SpatialCovariance::isotropic(black_box(&array), 2_500.0, 343.0, 0.05))
    });
}

fn bench_mvdr(c: &mut Criterion) {
    let array = MicArray::respeaker_6();
    let cov = SpatialCovariance::isotropic(&array, 2_500.0, 343.0, 0.05);
    let sv = array.steering_vector(Direction::front(), 2_500.0);
    c.bench_function("mvdr/weights", |b| {
        b.iter(|| mvdr_weights(black_box(&cov), black_box(&sv)).unwrap())
    });
    // The imaging loop's per-cell work: steering vector + weights.
    c.bench_function("mvdr/per_grid_cell", |b| {
        b.iter(|| {
            let dir = Direction::new(1.1, 1.4);
            let sv = array.steering_vector(dir, 2_500.0);
            mvdr_weights(&cov, &sv).unwrap()
        })
    });
    // The same weight design with the covariance inverse precomputed —
    // the per-cell cost inside the imaging sweep after the designer
    // refactor. Compare against mvdr/weights (invert per call).
    let designer = MvdrDesigner::new(&cov).unwrap();
    c.bench_function("mvdr/weights_designer_reuse", |b| {
        b.iter(|| designer.weights(black_box(&sv)).unwrap())
    });
}

fn bench_apply(c: &mut Criterion) {
    let array = MicArray::respeaker_6();
    let cov = SpatialCovariance::isotropic(&array, 2_500.0, 343.0, 0.05);
    let sv = array.steering_vector(Direction::front(), 2_500.0);
    let w = mvdr_weights(&cov, &sv).unwrap();
    let snaps = snapshots(6, 3_360);
    c.bench_function("beamform/apply_weights_full_window", |b| {
        b.iter(|| apply_weights(black_box(&snaps), black_box(&w)))
    });
}

fn bench_eigen_music(c: &mut Criterion) {
    use echo_beamform::eigen::eigh;
    use echo_beamform::music::music_spectrum;
    use echo_beamform::CMatrix;

    // 6×6 Hermitian eigendecomposition (the per-estimate cost of MUSIC).
    let array = MicArray::respeaker_6();
    let cov = SpatialCovariance::isotropic(&array, 2_500.0, 343.0, 0.05);
    c.bench_function("eigen/eigh_6x6", |b| {
        b.iter(|| eigh(black_box(cov.matrix())))
    });
    let _ = CMatrix::identity(2);

    let snaps = snapshots(6, 256);
    c.bench_function("music/spectrum_720pts", |b| {
        b.iter(|| music_spectrum(&array, black_box(&snaps), 1, 2_500.0, 343.0, 1.57, 720))
    });
}

fn bench_subband(c: &mut Criterion) {
    use echo_array::Direction;
    use echo_beamform::subband::SubbandBeamformer;
    let array = MicArray::respeaker_6();
    let bf = SubbandBeamformer::isotropic_mvdr(
        &array,
        Direction::front(),
        2_000.0,
        3_000.0,
        48_000.0,
        256,
        64,
        343.0,
        0.05,
    )
    .unwrap();
    let channels: Vec<Vec<f64>> = (0..6)
        .map(|m| {
            (0..3_360)
                .map(|t| ((t * (m + 2)) as f64 * 0.01).sin())
                .collect()
        })
        .collect();
    c.bench_function("subband/design_2_3khz", |b| {
        b.iter(|| {
            SubbandBeamformer::isotropic_mvdr(
                &array,
                Direction::front(),
                2_000.0,
                3_000.0,
                48_000.0,
                256,
                64,
                343.0,
                0.05,
            )
            .unwrap()
        })
    });
    c.bench_function("subband/process_beep_window", |b| {
        b.iter(|| bf.process(black_box(&channels)))
    });
}

criterion_group!(
    benches,
    bench_covariance,
    bench_mvdr,
    bench_apply,
    bench_eigen_music,
    bench_subband
);
criterion_main!(benches);
