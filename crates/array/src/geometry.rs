//! Array geometry: 3-D vectors, microphone positions, standard layouts.

/// A 3-D point/vector in metres.
///
/// The coordinate convention follows the paper's Fig. 1/Fig. 6: the array
/// centre sits at the origin in the x–o–z plane; the user stands along +y;
/// +z points up.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vec3 {
    /// x component (metres).
    pub x: f64,
    /// y component (metres) — toward the user.
    pub y: f64,
    /// z component (metres) — up.
    pub z: f64,
}

impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Distance to another point.
    #[inline]
    pub fn distance_to(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "cannot normalise the zero vector");
        self / n
    }

    /// Component-wise scaling.
    #[inline]
    pub fn scale(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl std::ops::Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl std::ops::Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl std::ops::Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        self.scale(k)
    }
}

impl std::ops::Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, k: f64) -> Vec3 {
        Vec3::new(self.x / k, self.y / k, self.z / k)
    }
}

impl std::ops::Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A microphone array: the position vectors `P = {p_1, …, p_M}` of
/// paper Eq. 3–4.
///
/// # Example
///
/// ```
/// use echo_array::MicArray;
///
/// let arr = MicArray::circular(6, 0.05);
/// assert_eq!(arr.len(), 6);
/// // Adjacent microphones of a 6-element circle sit one radius apart.
/// assert!((arr.min_spacing() - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MicArray {
    positions: Vec<Vec3>,
}

impl MicArray {
    /// Builds an array from explicit microphone positions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two microphones are given.
    pub fn from_positions(positions: Vec<Vec3>) -> Self {
        assert!(
            positions.len() >= 2,
            "an array needs at least two microphones"
        );
        MicArray { positions }
    }

    /// A uniform circular array of `m` microphones with the given radius,
    /// lying in the x–y plane and centred on the origin. Mic 0 sits on the
    /// +x axis.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `radius <= 0`.
    pub fn circular(m: usize, radius: f64) -> Self {
        assert!(m >= 2, "an array needs at least two microphones");
        assert!(radius > 0.0, "radius must be positive");
        let positions = (0..m)
            .map(|i| {
                let phi = 2.0 * std::f64::consts::PI * i as f64 / m as f64;
                Vec3::new(radius * phi.cos(), radius * phi.sin(), 0.0)
            })
            .collect();
        MicArray { positions }
    }

    /// The paper's prototype geometry: a ReSpeaker-like circular array of
    /// six microphones with ~5 cm adjacent spacing (§VI-A). For a regular
    /// hexagon the adjacent chord equals the radius, so radius = 5 cm.
    pub fn respeaker_6() -> Self {
        Self::circular(6, 0.05)
    }

    /// A uniform rectangular array of `nx × ny` microphones in the x–y
    /// plane, centred on the origin (smart displays and sound bars use
    /// this layout).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two microphones result or a spacing is not
    /// positive.
    pub fn rectangular(nx: usize, ny: usize, dx: f64, dy: f64) -> Self {
        assert!(nx * ny >= 2, "an array needs at least two microphones");
        assert!(dx > 0.0 && dy > 0.0, "spacing must be positive");
        let ox = (nx - 1) as f64 / 2.0;
        let oy = (ny - 1) as f64 / 2.0;
        let positions = (0..ny)
            .flat_map(|j| {
                (0..nx).map(move |i| Vec3::new((i as f64 - ox) * dx, (j as f64 - oy) * dy, 0.0))
            })
            .collect();
        MicArray { positions }
    }

    /// A uniform linear array of `m` microphones spaced `spacing` metres
    /// along the x axis, centred on the origin.
    ///
    /// # Panics
    ///
    /// Panics if `m < 2` or `spacing <= 0`.
    pub fn linear(m: usize, spacing: f64) -> Self {
        assert!(m >= 2, "an array needs at least two microphones");
        assert!(spacing > 0.0, "spacing must be positive");
        let offset = (m - 1) as f64 / 2.0;
        let positions = (0..m)
            .map(|i| Vec3::new((i as f64 - offset) * spacing, 0.0, 0.0))
            .collect();
        MicArray { positions }
    }

    /// The sub-array holding only the listed microphones — used by
    /// degraded-mode beamforming to image with the channels that survive
    /// health screening. Keeping the original indices strictly
    /// increasing preserves the channel↔position pairing of the parent
    /// capture, and the subset's [`MicArray::geometry_fingerprint`]
    /// differs from the full array's, so cached steering fields never
    /// mix the two geometries.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two indices are given, they are not strictly
    /// increasing, or one is out of range.
    pub fn subset(&self, indices: &[usize]) -> MicArray {
        assert!(
            indices.len() >= 2,
            "an array needs at least two microphones"
        );
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "microphone indices must be strictly increasing"
        );
        assert!(
            indices.iter().all(|&i| i < self.positions.len()),
            "microphone index out of range"
        );
        MicArray {
            positions: indices.iter().map(|&i| self.positions[i]).collect(),
        }
    }

    /// Number of microphones `M`.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Always `false`: construction requires at least two microphones.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Position of microphone `m` (paper Eq. 3).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn position(&self, m: usize) -> Vec3 {
        self.positions[m]
    }

    /// All microphone positions (paper Eq. 4).
    pub fn positions(&self) -> &[Vec3] {
        &self.positions
    }

    /// Geometric centre of the microphones.
    pub fn centroid(&self) -> Vec3 {
        let sum = self.positions.iter().fold(Vec3::ZERO, |acc, &p| acc + p);
        sum / self.positions.len() as f64
    }

    /// Largest inter-microphone distance (the aperture).
    pub fn aperture(&self) -> f64 {
        let mut best = 0.0f64;
        for i in 0..self.positions.len() {
            for j in i + 1..self.positions.len() {
                best = best.max(self.positions[i].distance_to(self.positions[j]));
            }
        }
        best
    }

    /// Smallest inter-microphone distance — the `d` of the grating-lobe
    /// condition `d < λ/2` (paper §V-A).
    pub fn min_spacing(&self) -> f64 {
        let mut best = f64::INFINITY;
        for i in 0..self.positions.len() {
            for j in i + 1..self.positions.len() {
                best = best.min(self.positions[i].distance_to(self.positions[j]));
            }
        }
        best
    }

    /// Highest frequency (Hz) free of grating lobes: `c / (2·min_spacing)`,
    /// from the paper's spatial-sampling condition `d < λ/2` (§V-A).
    pub fn max_unambiguous_frequency(&self, speed_of_sound: f64) -> f64 {
        speed_of_sound / (2.0 * self.min_spacing())
    }

    /// A stable 64-bit fingerprint of the exact geometry (FNV-1a over
    /// the microphone coordinates' bit patterns). Two arrays share a
    /// fingerprint iff their positions are bit-identical, which makes it
    /// usable as a cache key for geometry-derived quantities such as
    /// steering fields.
    pub fn geometry_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bits: u64| {
            for b in bits.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        mix(self.positions.len() as u64);
        for p in &self.positions {
            mix(p.x.to_bits());
            mix(p.y.to_bits());
            mix(p.z.to_bits());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_dsp::SPEED_OF_SOUND;

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -1.0, 0.5);
        assert_eq!(a + b, Vec3::new(5.0, 1.0, 3.5));
        assert_eq!(a - b, Vec3::new(-3.0, 3.0, 2.5));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 3.5);
    }

    #[test]
    fn vec3_norm_and_distance() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.distance_to(Vec3::ZERO), 5.0);
        let u = a.normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero vector")]
    fn normalizing_zero_panics() {
        let _ = Vec3::ZERO.normalized();
    }

    #[test]
    fn circular_array_geometry() {
        let arr = MicArray::circular(6, 0.05);
        assert_eq!(arr.len(), 6);
        // All mics on the circle.
        for p in arr.positions() {
            assert!((p.norm() - 0.05).abs() < 1e-12);
            assert_eq!(p.z, 0.0);
        }
        // Centroid at origin.
        assert!(arr.centroid().norm() < 1e-12);
        // Hexagon: adjacent spacing equals radius, aperture equals diameter.
        assert!((arr.min_spacing() - 0.05).abs() < 1e-12);
        assert!((arr.aperture() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn respeaker_matches_paper_spec() {
        let arr = MicArray::respeaker_6();
        assert_eq!(arr.len(), 6);
        assert!(
            (arr.min_spacing() - 0.05).abs() < 1e-12,
            "≈5 cm adjacent spacing"
        );
    }

    #[test]
    fn grating_lobe_limit_allows_the_probing_band() {
        // Paper §V-A: with 4–7 cm spacing the beep must stay below ~3 kHz.
        let arr = MicArray::respeaker_6();
        let fmax = arr.max_unambiguous_frequency(SPEED_OF_SOUND);
        assert!(
            fmax > 3_000.0,
            "probing band must be unambiguous, fmax = {fmax}"
        );
        assert!(
            fmax < 4_000.0,
            "5 cm spacing caps fmax near 3.4 kHz, got {fmax}"
        );
    }

    #[test]
    fn linear_array_is_centred_and_uniform() {
        let arr = MicArray::linear(4, 0.04);
        assert_eq!(arr.len(), 4);
        assert!(arr.centroid().norm() < 1e-12);
        assert!((arr.min_spacing() - 0.04).abs() < 1e-12);
        assert!((arr.aperture() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn rectangular_array_geometry() {
        let arr = MicArray::rectangular(3, 2, 0.04, 0.06);
        assert_eq!(arr.len(), 6);
        assert!(arr.centroid().norm() < 1e-12);
        assert!((arr.min_spacing() - 0.04).abs() < 1e-12);
        // Diagonal of the 2×1-cell bounding box: √((2·0.04)² + 0.06²).
        let diag = (0.08f64 * 0.08 + 0.06 * 0.06).sqrt();
        assert!((arr.aperture() - diag).abs() < 1e-12);
        assert!(arr.positions().iter().all(|p| p.z == 0.0));
    }

    #[test]
    fn subset_preserves_positions_and_changes_fingerprint() {
        let arr = MicArray::respeaker_6();
        let sub = arr.subset(&[0, 2, 3, 5]);
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.position(1), arr.position(2));
        assert_ne!(
            sub.geometry_fingerprint(),
            arr.geometry_fingerprint(),
            "sub-array must key caches separately"
        );
        // A full-mask subset is the identical geometry.
        let full = arr.subset(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(full.geometry_fingerprint(), arr.geometry_fingerprint());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_subset_rejected() {
        let _ = MicArray::respeaker_6().subset(&[3, 1]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_mic_subset_rejected() {
        let _ = MicArray::respeaker_6().subset(&[2]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn degenerate_rectangular_rejected() {
        let _ = MicArray::rectangular(1, 1, 0.04, 0.04);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_mic_rejected() {
        let _ = MicArray::circular(1, 0.05);
    }

    #[test]
    #[should_panic(expected = "radius")]
    fn non_positive_radius_rejected() {
        let _ = MicArray::circular(6, 0.0);
    }
}
