//! Far-field propagation delays and steering vectors (paper Eq. 1, 6–8).

use crate::direction::Direction;
use crate::geometry::MicArray;
use echo_dsp::{Complex, SPEED_OF_SOUND};

impl MicArray {
    /// Time of arrival at microphone `m` relative to the array origin for
    /// a far-field plane wave from direction `dir`, in seconds.
    ///
    /// Negative values mean the wavefront reaches that microphone *before*
    /// the origin. This is the paper's Eq. 6 with the sign convention that
    /// the received signal is `x_m(t) = s(t − τ_m)`.
    pub fn tdoa(&self, m: usize, dir: Direction, speed_of_sound: f64) -> f64 {
        let u = dir.unit_toward_source();
        -u.dot(self.position(m)) / speed_of_sound
    }

    /// All per-microphone arrival offsets for a look direction, seconds.
    pub fn tdoas(&self, dir: Direction, speed_of_sound: f64) -> Vec<f64> {
        (0..self.len())
            .map(|m| self.tdoa(m, dir, speed_of_sound))
            .collect()
    }

    /// Narrowband steering vector at centre frequency `f0` Hz (the `p_s`
    /// of paper Eq. 8): `a_m(Ω) = e^{−j ω₀ τ_m(Ω)}`.
    ///
    /// With this convention a unit plane wave from `dir` produces the
    /// snapshot `x = s(t)·a`, so a distortionless beamformer satisfies
    /// `wᴴ a = 1`.
    pub fn steering_vector(&self, dir: Direction, f0: f64) -> Vec<Complex> {
        self.steering_vector_with(dir, f0, SPEED_OF_SOUND)
    }

    /// [`MicArray::steering_vector`] with an explicit speed of sound.
    pub fn steering_vector_with(&self, dir: Direction, f0: f64, c: f64) -> Vec<Complex> {
        let w0 = 2.0 * std::f64::consts::PI * f0;
        (0..self.len())
            .map(|m| Complex::cis(-w0 * self.tdoa(m, dir, c)))
            .collect()
    }

    /// Far-field validity check (paper Eq. 1): a source at distance `l`
    /// metres may be treated as far-field when `l ≥ 2 d²/λ`, with `d` the
    /// aperture and `λ` the wavelength at `frequency`.
    pub fn is_far_field(&self, l: f64, frequency: f64, speed_of_sound: f64) -> bool {
        let lambda = speed_of_sound / frequency;
        l >= 2.0 * self.aperture() * self.aperture() / lambda
    }

    /// The smallest distance at which Eq. 1 holds for `frequency`.
    pub fn far_field_distance(&self, frequency: f64, speed_of_sound: f64) -> f64 {
        let lambda = speed_of_sound / frequency;
        2.0 * self.aperture() * self.aperture() / lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Vec3;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn tdoa_is_zero_for_broadside_mic_at_origin() {
        // A mic exactly at the origin would have zero delay; our arrays
        // don't include one, but any mic orthogonal to the look direction
        // does. Front direction = +y; circular-array mic 0 is on +x.
        let arr = MicArray::respeaker_6();
        let tau = arr.tdoa(0, Direction::front(), SPEED_OF_SOUND);
        assert!(tau.abs() < 1e-15);
    }

    #[test]
    fn closer_mic_receives_earlier() {
        // Look along +x: mic 0 (on +x) is nearest the source → negative τ.
        let arr = MicArray::respeaker_6();
        let dir = Direction::new(0.0, FRAC_PI_2);
        let tau0 = arr.tdoa(0, dir, SPEED_OF_SOUND);
        assert!(tau0 < 0.0);
        assert!((tau0 + 0.05 / SPEED_OF_SOUND).abs() < 1e-12);
        // Mic 3 sits diametrically opposite → positive, same magnitude.
        let tau3 = arr.tdoa(3, dir, SPEED_OF_SOUND);
        assert!((tau3 - 0.05 / SPEED_OF_SOUND).abs() < 1e-12);
    }

    #[test]
    fn tdoa_matches_eq6_inner_product() {
        let arr = MicArray::circular(4, 0.07);
        let dir = Direction::new(0.9, 1.3);
        let v = dir.propagation_vector();
        for m in 0..arr.len() {
            // Eq. 6 literally: τ_m = −vᵀ p_m / c. Our tdoa uses the
            // opposite sign convention (x_m(t) = s(t − τ_m)), so the two
            // values are negatives of each other.
            let eq6 = -v.dot(arr.position(m)) / SPEED_OF_SOUND;
            let got = arr.tdoa(m, dir, SPEED_OF_SOUND);
            assert!((got + eq6).abs() < 1e-15, "mic {m}");
        }
    }

    #[test]
    fn steering_vector_is_unit_modulus() {
        let arr = MicArray::respeaker_6();
        let sv = arr.steering_vector(Direction::new(1.0, 1.0), 2_500.0);
        for w in sv {
            assert!((w.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn steering_vector_aligns_simulated_plane_wave() {
        // Build narrowband snapshots x_m = e^{−jω0 τ_m}; then a^H x = M.
        let arr = MicArray::respeaker_6();
        let dir = Direction::new(0.8, 1.2);
        let f0 = 2_500.0;
        let a = arr.steering_vector(dir, f0);
        let w0 = 2.0 * std::f64::consts::PI * f0;
        let x: Vec<Complex> = (0..arr.len())
            .map(|m| Complex::cis(-w0 * arr.tdoa(m, dir, SPEED_OF_SOUND)))
            .collect();
        let aligned: Complex = a.iter().zip(x.iter()).map(|(am, xm)| am.conj() * *xm).sum();
        assert!((aligned.re - arr.len() as f64).abs() < 1e-9);
        assert!(aligned.im.abs() < 1e-9);
    }

    #[test]
    fn mismatched_direction_does_not_fully_align() {
        let arr = MicArray::respeaker_6();
        let f0 = 2_500.0;
        let a = arr.steering_vector(Direction::new(0.3, FRAC_PI_2), f0);
        let w0 = 2.0 * std::f64::consts::PI * f0;
        let dir = Direction::new(2.4, FRAC_PI_2);
        let x: Vec<Complex> = (0..arr.len())
            .map(|m| Complex::cis(-w0 * arr.tdoa(m, dir, SPEED_OF_SOUND)))
            .collect();
        let aligned: Complex = a.iter().zip(x.iter()).map(|(am, xm)| am.conj() * *xm).sum();
        assert!(
            aligned.abs() < arr.len() as f64 * 0.9,
            "|sum| = {}",
            aligned.abs()
        );
    }

    #[test]
    fn far_field_example_from_paper() {
        // §III-A: 3000 Hz (λ ≈ 0.11 m), array size 0.1 m → far field from
        // ≈ 0.18 m.
        let arr =
            MicArray::from_positions(vec![Vec3::new(-0.05, 0.0, 0.0), Vec3::new(0.05, 0.0, 0.0)]);
        let d = arr.far_field_distance(3_000.0, SPEED_OF_SOUND);
        assert!((d - 0.175).abs() < 0.01, "got {d}");
        assert!(arr.is_far_field(0.6, 3_000.0, SPEED_OF_SOUND));
        assert!(!arr.is_far_field(0.1, 3_000.0, SPEED_OF_SOUND));
    }
}
