//! Incident directions: azimuth/elevation pairs and the paper's grid-angle
//! formulas (Eq. 11–12).

use crate::geometry::Vec3;

/// An incident direction `Ω = {θ, φ}` (paper Fig. 1).
///
/// * `azimuth` θ — angle in the x–y plane from the +x axis, radians.
/// * `elevation` φ — polar angle from the +z axis, radians (π/2 is the
///   horizontal plane).
///
/// The unit vector pointing *toward* the source is
/// `u = [sin φ cos θ, sin φ sin θ, cos φ]`; the paper's propagation vector
/// (Eq. 5) is `v = −u`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Direction {
    azimuth: f64,
    elevation: f64,
}

impl Direction {
    /// Creates a direction from azimuth θ and elevation φ in radians.
    ///
    /// # Panics
    ///
    /// Panics if either angle is non-finite.
    pub fn new(azimuth: f64, elevation: f64) -> Self {
        assert!(
            azimuth.is_finite() && elevation.is_finite(),
            "angles must be finite"
        );
        Direction { azimuth, elevation }
    }

    /// Straight ahead of the array: θ = π/2 (along +y), φ = π/2
    /// (horizontal) — where the paper assumes the user stands.
    pub fn front() -> Self {
        Direction::new(std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_2)
    }

    /// Azimuth θ in radians.
    pub fn azimuth(&self) -> f64 {
        self.azimuth
    }

    /// Elevation (polar angle) φ in radians.
    pub fn elevation(&self) -> f64 {
        self.elevation
    }

    /// Unit vector from the array origin toward the source.
    pub fn unit_toward_source(&self) -> Vec3 {
        let (st, ct) = (self.azimuth.sin(), self.azimuth.cos());
        let (sp, cp) = (self.elevation.sin(), self.elevation.cos());
        Vec3::new(sp * ct, sp * st, cp)
    }

    /// The paper's sound-propagation vector `v(Ω)` (Eq. 5): the direction
    /// the plane wave travels, i.e. from the source toward the array.
    pub fn propagation_vector(&self) -> Vec3 {
        -self.unit_toward_source()
    }

    /// Direction from the origin toward an arbitrary point.
    ///
    /// For a point `{x_k, D_p, z_k}` on the virtual imaging plane this
    /// reproduces the paper's Eq. 11–12:
    ///
    /// * `θ_k = arccos(x_k / √(x_k² + D_p²))`
    /// * `φ_k = arccos(z_k / √(x_k² + D_p² + z_k²))`
    ///
    /// # Panics
    ///
    /// Panics if `point` is the origin.
    pub fn toward_point(point: Vec3) -> Self {
        let r = point.norm();
        assert!(r > 0.0, "direction to the origin is undefined");
        let rho = (point.x * point.x + point.y * point.y).sqrt();
        // atan2 generalises the paper's arccos form (which assumes y > 0)
        // to the full azimuth range.
        let azimuth = if rho == 0.0 {
            0.0
        } else {
            point.y.atan2(point.x)
        };
        let elevation = (point.z / r).clamp(-1.0, 1.0).acos();
        Direction::new(azimuth, elevation)
    }
}

impl Default for Direction {
    fn default() -> Self {
        Direction::front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, FRAC_PI_3};

    #[test]
    fn front_points_along_plus_y() {
        let u = Direction::front().unit_toward_source();
        assert!((u.x).abs() < 1e-12);
        assert!((u.y - 1.0).abs() < 1e-12);
        assert!((u.z).abs() < 1e-12);
    }

    #[test]
    fn propagation_vector_is_negated_source_direction() {
        let d = Direction::new(0.7, 1.1);
        let u = d.unit_toward_source();
        let v = d.propagation_vector();
        assert!((u + v).norm() < 1e-12);
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eq5_components_match_paper() {
        // v(Ω) = −[sinφ cosθ, sinφ sinθ, cosφ].
        let theta = 0.4;
        let phi = 1.2;
        let v = Direction::new(theta, phi).propagation_vector();
        assert!((v.x + phi.sin() * theta.cos()).abs() < 1e-12);
        assert!((v.y + phi.sin() * theta.sin()).abs() < 1e-12);
        assert!((v.z + phi.cos()).abs() < 1e-12);
    }

    #[test]
    fn toward_point_reproduces_eq_11_12() {
        // A grid point {x_k, D_p, z_k} on the imaging plane.
        let (x, dp, z) = (0.3, 0.7, -0.2);
        let d = Direction::toward_point(Vec3::new(x, dp, z));
        let theta_paper = (x / (x * x + dp * dp).sqrt()).acos();
        let phi_paper = (z / (x * x + dp * dp + z * z).sqrt()).acos();
        assert!((d.azimuth() - theta_paper).abs() < 1e-12);
        assert!((d.elevation() - phi_paper).abs() < 1e-12);
    }

    #[test]
    fn toward_point_round_trips_direction() {
        let d = Direction::new(1.9, 0.8);
        let p = d.unit_toward_source() * 2.5;
        let d2 = Direction::toward_point(p);
        assert!((d.azimuth() - d2.azimuth()).abs() < 1e-12);
        assert!((d.elevation() - d2.elevation()).abs() < 1e-12);
    }

    #[test]
    fn plane_centre_is_straight_ahead() {
        let d = Direction::toward_point(Vec3::new(0.0, 0.7, 0.0));
        assert!((d.azimuth() - FRAC_PI_2).abs() < 1e-12);
        assert!((d.elevation() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn upper_body_steering_angles_are_representable() {
        // §V-B steers θ = π/2, φ ∈ [π/3, 2π/3].
        let d = Direction::new(FRAC_PI_2, FRAC_PI_3);
        let u = d.unit_toward_source();
        assert!(u.z > 0.0, "φ = π/3 looks upward");
        assert!(u.y > 0.0, "still toward the user");
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn toward_origin_panics() {
        let _ = Direction::toward_point(Vec3::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_angles_rejected() {
        let _ = Direction::new(f64::NAN, 0.0);
    }
}
