//! Microphone-array substrate for the EchoImage reproduction.
//!
//! Implements the paper's §III background: array geometry (Eq. 3–4), the
//! far-field plane-wave propagation model (Eq. 1, 5), time differences of
//! arrival (Eq. 6), wavenumber/phase shifts (Eq. 7) and narrowband
//! steering vectors used by the MVDR beamformer (Eq. 8).
//!
//! # Example
//!
//! Model the paper's prototype — a ReSpeaker-like 6-microphone circular
//! array — and steer it at a user standing in front:
//!
//! ```
//! use echo_array::{Direction, MicArray};
//!
//! let array = MicArray::respeaker_6();
//! assert_eq!(array.len(), 6);
//!
//! // Paper §V-B: steer to the upper body, θ = π/2, φ = π/3.
//! let look = Direction::new(std::f64::consts::FRAC_PI_2, std::f64::consts::FRAC_PI_3);
//! let sv = array.steering_vector(look, 2_500.0);
//! assert_eq!(sv.len(), 6);
//! // Steering phasors are unit-modulus.
//! for w in &sv {
//!     assert!((w.abs() - 1.0).abs() < 1e-12);
//! }
//! ```

pub mod direction;
pub mod geometry;
pub mod steering;

pub use direction::Direction;
pub use geometry::{MicArray, Vec3};
