//! Experiment artefact writing.
//!
//! Every figure binary dumps its structured results as JSON under
//! `target/experiments/` so EXPERIMENTS.md can cite exact numbers and
//! reruns can be diffed.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Default artefact directory, relative to the workspace root.
pub const ARTEFACT_DIR: &str = "target/experiments";

/// Serialises `value` as pretty JSON to `<dir>/<name>.json`, creating
/// the directory if needed, and returns the written path.
///
/// The write is atomic and durable (temp file + fsync + rename), so a
/// crash mid-run can never leave a torn artefact that a later
/// EXPERIMENTS.md regeneration would silently cite.
///
/// # Errors
///
/// Returns any I/O or serialisation error.
pub fn write_json<T: Serialize>(dir: &Path, name: &str, value: &T) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    echo_obs::export::write_atomic(&path, json.as_bytes())?;
    Ok(path)
}

/// Writes to the default artefact directory.
///
/// # Errors
///
/// See [`write_json`].
pub fn write_artefact<T: Serialize>(name: &str, value: &T) -> io::Result<PathBuf> {
    write_json(Path::new(ARTEFACT_DIR), name, value)
}

/// Formats a `0.xyz` rate with three decimals, the paper's style.
pub fn rate(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_rereads_json() {
        let dir = std::env::temp_dir().join("echoimage-report-test");
        let path = write_json(&dir, "sample", &vec![1, 2, 3]).unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let back: Vec<i32> = serde_json::from_str(&text).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rate_formats_three_decimals() {
        assert_eq!(rate(0.98765), "0.988");
        assert_eq!(rate(1.0), "1.000");
    }
}
