//! Authentication metrics (paper §VI-A-2).
//!
//! The paper reports recall, precision, accuracy and F-measure over
//! authentication decisions. We track decisions in a confusion matrix
//! whose classes are the registered user ids plus a distinguished
//! spoofer class ([`SPOOFER`]): the true label of a sample is either a
//! user id or spoofer, and the decision is either `Accepted{user}` or
//! `Rejected` (mapped to the spoofer class).

use echoimage_core::AuthDecision;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Pseudo-class id for "spoofer / rejected".
pub const SPOOFER: usize = usize::MAX;

/// A confusion matrix over user ids plus the spoofer class.
///
/// # Example
///
/// ```
/// use echo_eval::metrics::{ConfusionMatrix, SPOOFER};
/// use echoimage_core::AuthDecision;
///
/// let mut cm = ConfusionMatrix::new(&[1, 2]);
/// cm.record(1, AuthDecision::Accepted { user_id: 1 });
/// cm.record(2, AuthDecision::Accepted { user_id: 1 });
/// cm.record(SPOOFER, AuthDecision::Rejected);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.metrics().accuracy - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Registered user ids, sorted; the spoofer class is implicit.
    classes: Vec<usize>,
    /// `counts[true_idx][pred_idx]`; the last row/column is the spoofer
    /// class.
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for the given registered user ids.
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty or contains [`SPOOFER`].
    pub fn new(users: &[usize]) -> Self {
        assert!(!users.is_empty(), "need at least one registered user");
        assert!(
            !users.contains(&SPOOFER),
            "SPOOFER is reserved for the rejected class"
        );
        let mut classes = users.to_vec();
        classes.sort_unstable();
        classes.dedup();
        let n = classes.len() + 1;
        ConfusionMatrix {
            classes,
            counts: vec![vec![0; n]; n],
        }
    }

    fn index_of(&self, class: usize) -> usize {
        if class == SPOOFER {
            self.classes.len()
        } else {
            self.classes
                .iter()
                .position(|&c| c == class)
                .expect("unknown user id recorded in confusion matrix")
        }
    }

    /// Records one decision for a sample whose true class is `truth`
    /// (a user id or [`SPOOFER`]).
    ///
    /// # Panics
    ///
    /// Panics if `truth` or an accepted user id is unknown.
    pub fn record(&mut self, truth: usize, decision: AuthDecision) {
        let t = self.index_of(truth);
        let p = match decision {
            AuthDecision::Accepted { user_id } => self.index_of(user_id),
            AuthDecision::Rejected => self.classes.len(),
        };
        self.counts[t][p] += 1;
    }

    /// Registered user ids.
    pub fn users(&self) -> &[usize] {
        &self.classes
    }

    /// Count of samples with true class `truth` predicted as `pred`.
    pub fn count(&self, truth: usize, pred: usize) -> usize {
        self.counts[self.index_of(truth)][self.index_of(pred)]
    }

    /// Total recorded samples.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|r| r.iter().sum::<usize>()).sum()
    }

    /// Row-normalised rates: `rate(truth, pred)` in `[0, 1]`.
    pub fn rate(&self, truth: usize, pred: usize) -> f64 {
        let t = self.index_of(truth);
        let row: usize = self.counts[t].iter().sum();
        if row == 0 {
            0.0
        } else {
            self.counts[t][self.index_of(pred)] as f64 / row as f64
        }
    }

    /// Fraction of spoofer samples correctly rejected.
    pub fn spoofer_detection_rate(&self) -> f64 {
        self.rate(SPOOFER, SPOOFER)
    }

    /// Mean over registered users of the rate at which their samples
    /// are attributed to themselves.
    pub fn mean_user_recall(&self) -> f64 {
        let users = &self.classes;
        let sum: f64 = users.iter().map(|&u| self.rate(u, u)).sum();
        sum / users.len() as f64
    }

    /// Aggregate authentication metrics (macro-averaged over users).
    pub fn metrics(&self) -> AuthMetrics {
        let n = self.classes.len() + 1;
        let mut correct = 0usize;
        for i in 0..n {
            correct += self.counts[i][i];
        }
        let total = self.total().max(1);

        // Macro precision/recall over registered users (the spoofer class
        // enters as negatives, matching the paper's tp/fp/fn definitions).
        let mut recalls = Vec::new();
        let mut precisions = Vec::new();
        for (i, _) in self.classes.iter().enumerate() {
            let tp = self.counts[i][i];
            let fn_: usize = self.counts[i].iter().sum::<usize>() - tp;
            let fp: usize = (0..n).filter(|&t| t != i).map(|t| self.counts[t][i]).sum();
            if tp + fn_ > 0 {
                recalls.push(tp as f64 / (tp + fn_) as f64);
            }
            if tp + fp > 0 {
                precisions.push(tp as f64 / (tp + fp) as f64);
            }
        }
        let recall = mean(&recalls);
        let precision = mean(&precisions);
        let f_measure = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        AuthMetrics {
            recall,
            precision,
            accuracy: correct as f64 / total as f64,
            f_measure,
        }
    }

    /// Renders the row-normalised matrix as text (users then spoofer).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let label = |i: usize| -> String {
            if i == self.classes.len() {
                "spoof".to_string()
            } else {
                format!("u{:02}", self.classes[i])
            }
        };
        out.push_str("true\\pred");
        for j in 0..=self.classes.len() {
            out.push_str(&format!(" {:>6}", label(j)));
        }
        out.push('\n');
        for i in 0..=self.classes.len() {
            let row: usize = self.counts[i].iter().sum();
            out.push_str(&format!("{:>9}", label(i)));
            for j in 0..=self.classes.len() {
                let r = if row == 0 {
                    0.0
                } else {
                    self.counts[i][j] as f64 / row as f64
                };
                out.push_str(&format!(" {:>6.3}", r));
            }
            out.push('\n');
        }
        out
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Aggregate authentication quality metrics (paper §VI-A-2, Eq. 16).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuthMetrics {
    /// Macro-averaged recall over registered users.
    pub recall: f64,
    /// Macro-averaged precision over registered users.
    pub precision: f64,
    /// Overall decision accuracy (users attributed correctly + spoofers
    /// rejected, over all samples).
    pub accuracy: f64,
    /// Harmonic mean of precision and recall (Eq. 16).
    pub f_measure: f64,
}

/// Collects per-condition metrics into an ordered map for table output.
pub fn metrics_table(rows: &[(String, AuthMetrics)]) -> BTreeMap<String, AuthMetrics> {
    rows.iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classification_scores_one() {
        let mut cm = ConfusionMatrix::new(&[1, 2, 3]);
        for u in [1, 2, 3] {
            for _ in 0..10 {
                cm.record(u, AuthDecision::Accepted { user_id: u });
            }
        }
        for _ in 0..10 {
            cm.record(SPOOFER, AuthDecision::Rejected);
        }
        let m = cm.metrics();
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f_measure, 1.0);
        assert_eq!(cm.spoofer_detection_rate(), 1.0);
        assert_eq!(cm.mean_user_recall(), 1.0);
    }

    #[test]
    fn misattribution_reduces_recall_and_precision() {
        let mut cm = ConfusionMatrix::new(&[1, 2]);
        // User 1: 8 correct, 2 attributed to user 2.
        for _ in 0..8 {
            cm.record(1, AuthDecision::Accepted { user_id: 1 });
        }
        for _ in 0..2 {
            cm.record(1, AuthDecision::Accepted { user_id: 2 });
        }
        // User 2: all correct.
        for _ in 0..10 {
            cm.record(2, AuthDecision::Accepted { user_id: 2 });
        }
        let m = cm.metrics();
        assert!((m.recall - (0.8 + 1.0) / 2.0).abs() < 1e-12);
        // Precision for user 2 = 10/12, for user 1 = 1.0.
        assert!((m.precision - (1.0 + 10.0 / 12.0) / 2.0).abs() < 1e-12);
        assert!((m.accuracy - 18.0 / 20.0).abs() < 1e-12);
        assert!(m.f_measure > 0.0 && m.f_measure < 1.0);
    }

    #[test]
    fn rejected_user_counts_as_false_negative() {
        let mut cm = ConfusionMatrix::new(&[1]);
        cm.record(1, AuthDecision::Rejected);
        cm.record(1, AuthDecision::Accepted { user_id: 1 });
        let m = cm.metrics();
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert_eq!(cm.count(1, SPOOFER), 1);
    }

    #[test]
    fn accepted_spoofer_hurts_precision_not_recall() {
        let mut cm = ConfusionMatrix::new(&[1]);
        for _ in 0..9 {
            cm.record(1, AuthDecision::Accepted { user_id: 1 });
        }
        cm.record(SPOOFER, AuthDecision::Accepted { user_id: 1 });
        let m = cm.metrics();
        assert_eq!(m.recall, 1.0);
        assert!((m.precision - 0.9).abs() < 1e-12);
        assert_eq!(cm.spoofer_detection_rate(), 0.0);
    }

    #[test]
    fn f_measure_is_harmonic_mean() {
        let mut cm = ConfusionMatrix::new(&[1]);
        for _ in 0..6 {
            cm.record(1, AuthDecision::Accepted { user_id: 1 });
        }
        for _ in 0..4 {
            cm.record(1, AuthDecision::Rejected);
        }
        let m = cm.metrics();
        let expect = 2.0 * m.precision * m.recall / (m.precision + m.recall);
        assert!((m.f_measure - expect).abs() < 1e-12);
    }

    #[test]
    fn rates_normalise_rows() {
        let mut cm = ConfusionMatrix::new(&[1, 2]);
        cm.record(1, AuthDecision::Accepted { user_id: 1 });
        cm.record(1, AuthDecision::Accepted { user_id: 2 });
        assert!((cm.rate(1, 1) - 0.5).abs() < 1e-12);
        assert_eq!(cm.rate(2, 2), 0.0, "empty row rates are zero");
    }

    #[test]
    fn table_rendering_includes_all_classes() {
        let mut cm = ConfusionMatrix::new(&[3, 7]);
        cm.record(3, AuthDecision::Accepted { user_id: 7 });
        let t = cm.to_table();
        assert!(t.contains("u03"));
        assert!(t.contains("u07"));
        assert!(t.contains("spoof"));
    }

    #[test]
    #[should_panic(expected = "unknown user")]
    fn unknown_user_panics() {
        let mut cm = ConfusionMatrix::new(&[1]);
        cm.record(9, AuthDecision::Rejected);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn spoofer_id_cannot_be_registered() {
        let _ = ConfusionMatrix::new(&[SPOOFER]);
    }
}
