//! Evaluation harness for the EchoImage reproduction.
//!
//! Regenerates every table and figure of the paper's §VI evaluation on
//! the simulated substrate:
//!
//! * [`metrics`] — recall / precision / accuracy / F-measure (Eq. 16)
//!   and confusion matrices over registered users + a spoofer class,
//! * [`harness`] — turns a simulated subject into feature vectors by
//!   running the full capture → distance → image → feature pipeline,
//! * [`experiments`] — one runner per table/figure:
//!   [`experiments::table1`], [`experiments::fig05`],
//!   [`experiments::fig08`], [`experiments::fig11`],
//!   [`experiments::fig12`], [`experiments::fig13`],
//!   [`experiments::fig14`],
//! * [`report`] — JSON artefact writing for EXPERIMENTS.md.
//!
//! Scale note: the paper uses 200 training + 300 test chirps per user;
//! the defaults here use fewer beeps per user so the whole suite runs on
//! a single CPU core in minutes. Every count is configurable through the
//! experiment config structs, and the experiment *protocols* (sessions,
//! environments, distances, spoofer splits) match the paper exactly.

pub mod experiments;
pub mod harness;
pub mod metrics;
pub mod report;
pub mod roc;

pub use harness::{CaptureSpec, Harness, HarnessConfig};
pub use metrics::{AuthMetrics, ConfusionMatrix, SPOOFER};
