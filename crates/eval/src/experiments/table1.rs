//! Table I — demographics of the experiment subjects.
//!
//! The population generator reproduces the paper's subject table
//! exactly; this runner renders it.

use echo_sim::Population;
use serde::{Deserialize, Serialize};

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// User id range, e.g. `"1-5"`.
    pub user_id: String,
    /// Gender label.
    pub gender: String,
    /// Age bracket label.
    pub age: String,
    /// Occupation label.
    pub occupation: String,
}

/// The rendered table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Rows in paper order.
    pub rows: Vec<Row>,
    /// Subjects registered with the system.
    pub registered: usize,
    /// Subjects acting as spoofers.
    pub spoofers: usize,
}

/// Builds Table I from the paper population.
pub fn run(seed: u64) -> Output {
    let pop = Population::paper_table1(seed);
    let rows = pop
        .demographics_rows()
        .into_iter()
        .map(|(user_id, gender, age, occupation)| Row {
            user_id,
            gender,
            age,
            occupation,
        })
        .collect();
    Output {
        rows,
        registered: pop.registered().count(),
        spoofers: pop.spoofers().count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper() {
        let t = run(1);
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.registered, 12);
        assert_eq!(t.spoofers, 8);
        assert_eq!(t.rows[0].user_id, "1-5");
        assert_eq!(t.rows[0].occupation, "Undergraduate Student");
        assert_eq!(t.rows[4].age, "30-40");
    }
}
