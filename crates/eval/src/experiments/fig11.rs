//! Fig. 11 — overall performance: confusion matrix for 12 registered
//! users and 8 spoofers in a quiet laboratory at 0.7 m.
//!
//! Paper result: over 0.98 accuracy identifying registered users and
//! 0.97 accuracy detecting spoofers.

use crate::experiments::protocol::{enroll, evaluate, ProtocolConfig};
use crate::harness::{CaptureSpec, Harness};
use crate::metrics::{AuthMetrics, ConfusionMatrix};
use echo_sim::Population;
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Configuration for the overall-performance experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Seed for the simulated population and scenes.
    pub seed: u64,
    /// Enrol/test counts and classifier hyper-parameters.
    pub protocol: ProtocolConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 2023,
            protocol: ProtocolConfig::default(),
        }
    }
}

/// Results of the overall-performance experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Full confusion matrix (12 users + spoofer class).
    pub confusion: ConfusionMatrix,
    /// Aggregate metrics.
    pub metrics: AuthMetrics,
    /// Mean rate at which registered users are attributed to themselves
    /// (the paper's "accuracy in identifying the registered users").
    pub user_identification: f64,
    /// Rate at which spoofer samples are rejected (the paper's
    /// "accuracy in spoofer detection").
    pub spoofer_detection: f64,
}

/// Runs the experiment: Table I population, 12 registered + 8 spoofers,
/// quiet laboratory, 0.7 m, train session 1, test sessions 1 and 3.
///
/// # Errors
///
/// Propagates enrolment-time pipeline failures.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let harness = Harness::new(config.seed);
    let population = Population::paper_table1(config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();
    let spec = CaptureSpec::default_lab(0);

    let auth = enroll(&harness, &registered, &spec, &config.protocol)?;
    let confusion = evaluate(
        &harness,
        &auth,
        &registered,
        &spoofers,
        &spec,
        &config.protocol,
    );
    let metrics = confusion.metrics();
    Ok(Output {
        user_identification: confusion.mean_user_recall(),
        spoofer_detection: confusion.spoofer_detection_rate(),
        metrics,
        confusion,
    })
}
