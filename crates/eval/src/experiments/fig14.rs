//! Fig. 14 — impact of data augmentation (paper §VI-E).
//!
//! Training images are collected at a fixed 0.7 m only; test images come
//! from 0.6–1.5 m. With augmentation, every training image is also
//! re-projected to a sweep of target distances via the inverse-square
//! model (§V-F) before enrolment. Paper result: augmentation lifts
//! recall/precision/accuracy substantially when training data is scarce,
//! and performance saturates once enough training beeps are available.

use crate::harness::{CaptureSpec, Harness};
use crate::metrics::{AuthMetrics, ConfusionMatrix, SPOOFER};
use echo_ml::GrayImage;
use echo_sim::{EnvironmentKind, NoiseKind, Population, UserProfile};
use echoimage_core::augment::augment_sweep;
use echoimage_core::auth::{AuthConfig, Authenticator};
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Configuration for the augmentation experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Registered users.
    pub users: usize,
    /// Spoofers.
    pub spoofers: usize,
    /// Training distance, metres (paper: 0.7).
    pub train_distance: f64,
    /// Training-set sizes swept (beeps per user).
    pub train_sizes: Vec<usize>,
    /// Distances the augmentation synthesises (and the tests probe).
    pub target_distances: Vec<f64>,
    /// Test beeps per user per distance.
    pub test_beeps: usize,
    /// Classifier hyper-parameters.
    pub auth: AuthConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 14,
            users: 5,
            spoofers: 3,
            train_distance: 0.7,
            train_sizes: vec![4, 8, 16, 24],
            target_distances: vec![0.6, 0.9, 1.2, 1.5],
            test_beeps: 4,
            auth: AuthConfig::default(),
        }
    }
}

/// Metrics for one training-set size, with and without augmentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Training beeps per user.
    pub train_beeps: usize,
    /// Metrics without augmentation.
    pub without: AuthMetrics,
    /// Metrics with augmentation.
    pub with: AuthMetrics,
}

/// Results of the augmentation experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// One point per training-set size, ascending.
    pub points: Vec<Point>,
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates pipeline failures during training-data collection.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let harness = Harness::new(config.seed);
    let population =
        Population::generate(config.users + config.spoofers, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();
    let max_train = config.train_sizes.iter().copied().max().unwrap_or(0);

    // Collect the full training pool once per user; smaller training
    // sets are prefixes (the paper varies "number of training beeps").
    // Each beep yields a group of images: the estimated plane plus the
    // pipeline's standard ±3 cm plane-diversity copies — part of the
    // baseline enrolment recipe (both arms get it); the §V-F
    // inverse-square synthesis is what the `with` arm adds on top.
    struct TrainPool {
        id: usize,
        /// One group of images per training beep.
        beep_groups: Vec<Vec<GrayImage>>,
        estimated_distance: f64,
    }
    const PLANE_OFFSETS: [f64; 2] = [-0.03, 0.03];
    let mut pools = Vec::new();
    for profile in &registered {
        // The pool spans several visits (the paper's Session 1 covers
        // days 0–2), collected in batches of 8 beeps.
        let mut beep_groups: Vec<Vec<GrayImage>> = Vec::new();
        let mut est_sum = 0.0;
        let mut batches = 0u32;
        let mut remaining = max_train;
        while remaining > 0 {
            let beeps = remaining.min(8);
            let spec = CaptureSpec {
                environment: EnvironmentKind::Laboratory,
                noise: NoiseKind::Quiet,
                distance: config.train_distance,
                session: batches,
                beeps,
                beep_offset: batches as u64 * 1_000,
                mic_gain_error_db: 0.0,
                mic_timing_error: 0.0,
                faults: echo_sim::FaultPlan::none(),
                room: None,
            };
            let (images, est) =
                harness.images_multi_plane(&profile.body(), &spec, &PLANE_OFFSETS)?;
            let per_beep = 1 + PLANE_OFFSETS.len();
            for group in images.chunks(per_beep) {
                beep_groups.push(group.to_vec());
            }
            est_sum += est.horizontal_distance;
            batches += 1;
            remaining -= beeps;
        }
        pools.push(TrainPool {
            id: profile.id as usize,
            beep_groups,
            estimated_distance: est_sum / batches.max(1) as f64,
        });
    }

    // Collect test features once: every subject probes from every target
    // distance, in sessions disjoint from training.
    struct TestSet {
        truth: usize,
        features: Vec<Vec<f64>>,
    }
    let mut tests = Vec::new();
    let mut collect_tests = |profiles: &[&UserProfile],
                             truth_of: &dyn Fn(&UserProfile) -> usize| {
        for profile in profiles {
            let mut features = Vec::new();
            for &d in &config.target_distances {
                let spec = CaptureSpec {
                    environment: EnvironmentKind::Laboratory,
                    noise: NoiseKind::Quiet,
                    distance: d,
                    // A fresh visit of paper-session 3 (visit id 237).
                    session: 237,
                    beeps: config.test_beeps,
                    beep_offset: 40_000 + profile.id as u64 * 101 + (d * 977.0) as u64,
                    mic_gain_error_db: 0.0,
                    mic_timing_error: 0.0,
                    faults: echo_sim::FaultPlan::none(),
                    room: None,
                };
                if let Ok(f) = harness.features_for(&profile.body(), &spec) {
                    features.extend(f);
                }
            }
            tests.push(TestSet {
                truth: truth_of(profile),
                features,
            });
        }
    };
    collect_tests(&registered, &|p| p.id as usize);
    collect_tests(&spoofers, &|_| SPOOFER);

    let ids: Vec<usize> = registered.iter().map(|p| p.id as usize).collect();
    let imaging = &harness.pipeline().config().imaging;

    let mut points = Vec::new();
    for &n in &config.train_sizes {
        // Each user's enrolment is organised in groups (modes): the
        // real 0.7 m cloud, plus — in the `with` arm — one synthesised
        // cloud per target distance (§V-F).
        let mut plain: Vec<(usize, Vec<Vec<Vec<f64>>>)> = Vec::new();
        let mut augmented: Vec<(usize, Vec<Vec<Vec<f64>>>)> = Vec::new();
        for pool in &pools {
            let groups = &pool.beep_groups[..n.min(pool.beep_groups.len())];
            let subset: Vec<GrayImage> = groups.iter().flatten().cloned().collect();
            let base = harness.features_of_images(&subset);
            plain.push((pool.id, vec![base.clone()]));

            let mut modes = vec![base];
            for &d in &config.target_distances {
                let mut mode = Vec::new();
                for img in &subset {
                    let synth = augment_sweep(img, imaging, pool.estimated_distance, &[d])?;
                    mode.extend(harness.features_of_images(&synth));
                }
                modes.push(mode);
            }
            augmented.push((pool.id, modes));
        }

        let arm = |train: &[(usize, Vec<Vec<Vec<f64>>>)]| -> Result<AuthMetrics, EchoImageError> {
            let auth = Authenticator::enroll_with_groups(train, &config.auth)?;
            let mut cm = ConfusionMatrix::new(&ids);
            for t in &tests {
                for f in &t.features {
                    cm.record(t.truth, auth.authenticate(f));
                }
            }
            Ok(cm.metrics())
        };
        points.push(Point {
            train_beeps: n,
            without: arm(&plain)?,
            with: arm(&augmented)?,
        });
    }
    Ok(Output { points })
}
