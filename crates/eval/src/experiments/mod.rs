//! One runner per table/figure of the paper's evaluation (§VI).
//!
//! Each module exposes a `Config` (sized by default for a single CPU
//! core; raise the counts to approach the paper's scale), a serialisable
//! `Result` struct, and a `run` function. The `echo-bench` crate wraps
//! these in binaries that print the paper-style rows and dump JSON
//! artefacts.

pub mod ablation_classifiers;
pub mod ablation_grid;
pub mod fault_sweep;
pub mod fig05;
pub mod fig08;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig_attack;
pub mod protocol;
pub mod robustness;
pub mod table1;
