//! Fig. 8 — acoustic-image feasibility study (paper §V-C).
//!
//! Two users stand 0.7 m from the array; two beeps each are imaged. The
//! paper observes that one user's images are very similar while two
//! users' images differ significantly. Similarity here is the cosine of
//! mean-centred pixels (the raw cosine is dominated by the common
//! "standing person" blob).

use crate::harness::{CaptureSpec, Harness};
use echo_ml::GrayImage;
use echo_sim::Population;
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Configuration for the imaging feasibility study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// User distance, metres (paper: 0.7).
    pub distance: f64,
    /// Beeps per user (paper: 2).
    pub beeps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 8,
            distance: 0.7,
            beeps: 2,
        }
    }
}

/// Results of the imaging feasibility study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Mean same-user image similarity (user A beep 1 vs beep 2, same
    /// for user B).
    pub same_user_similarity: f64,
    /// Mean cross-user image similarity.
    pub cross_user_similarity: f64,
    /// Image side length (grid cells).
    pub grid_n: usize,
    /// User A's first acoustic image, min–max normalised, row-major.
    pub image_a: Vec<f64>,
    /// User B's first acoustic image, min–max normalised, row-major.
    pub image_b: Vec<f64>,
}

/// Runs the study.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let harness = Harness::new(config.seed);
    let pop = Population::paper_table1(config.seed);
    let spec_a = CaptureSpec {
        distance: config.distance,
        beeps: config.beeps,
        ..CaptureSpec::default_lab(config.beeps)
    };
    let spec_b = CaptureSpec {
        beep_offset: 7_777,
        ..spec_a.clone()
    };
    let (images_a, _) = harness.images_for(&pop.profiles()[0].body(), &spec_a)?;
    let (images_b, _) = harness.images_for(&pop.profiles()[1].body(), &spec_b)?;

    let same_a = centred_cosine(&images_a[0], &images_a[1]);
    let same_b = centred_cosine(&images_b[0], &images_b[1]);
    let mut cross = 0.0;
    for a in &images_a {
        for b in &images_b {
            cross += centred_cosine(a, b);
        }
    }
    cross /= (images_a.len() * images_b.len()) as f64;

    let norm = |img: &GrayImage| {
        let mut i = img.clone();
        i.normalize();
        i.pixels().to_vec()
    };
    Ok(Output {
        same_user_similarity: (same_a + same_b) / 2.0,
        cross_user_similarity: cross,
        grid_n: images_a[0].width(),
        image_a: norm(&images_a[0]),
        image_b: norm(&images_b[0]),
    })
}

/// Cosine similarity of mean-centred pixel vectors.
pub fn centred_cosine(a: &GrayImage, b: &GrayImage) -> f64 {
    let centred = |i: &GrayImage| -> Vec<f64> {
        let m = i.mean();
        i.pixels().iter().map(|p| p - m).collect()
    };
    echo_dsp::stats::cosine_similarity(&centred(a), &centred(b))
}
