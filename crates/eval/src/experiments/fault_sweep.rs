//! Extension — authentication quality under channel faults.
//!
//! The paper's array is assumed healthy; deployed smart speakers lose
//! microphones to dust, drop-offs and driver bugs. This experiment
//! enrols every user on a *clean* device, then sweeps probe-time channel
//! faults over fault kind × severity × number of faulted microphones and
//! reports the spoofer-gate EER of each point against the clean
//! baseline — quantifying how gracefully the health-screen + mic-subset
//! degraded path gives ground.
//!
//! Probes whose capture is rejected outright (too few healthy
//! microphones, or a pipeline failure on the surviving subset) carry no
//! gate score; they are tallied per point as `degraded_rejects`. For a
//! genuine user that is a failed login, for a spoofer a win — both are
//! visible in the count, and the ROC is computed over the scoring
//! probes only.

use crate::experiments::protocol::{enroll, ProtocolConfig, TEST_BEEP_OFFSET};
use crate::harness::{CaptureSpec, Harness};
use crate::roc::roc_curve;
use echo_sim::{FaultKind, FaultPlan, UserProfile};
use echoimage_core::{Authenticator, EchoImageError};
use serde::{Deserialize, Serialize};

/// Configuration for the fault sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Registered users.
    pub users: usize,
    /// Spoofers.
    pub spoofers: usize,
    /// Fault kinds swept.
    pub kinds: Vec<FaultKind>,
    /// Severities swept, each in `[0, 1]`.
    pub severities: Vec<f64>,
    /// How many microphones carry the fault at each point.
    pub faulted_mic_counts: Vec<usize>,
    /// Enrol/test counts.
    pub protocol: ProtocolConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 83,
            users: 3,
            spoofers: 2,
            kinds: FaultKind::ALL.to_vec(),
            severities: vec![0.5, 1.0],
            faulted_mic_counts: vec![1, 2],
            protocol: ProtocolConfig {
                train_beeps: 18,
                test_beeps: 6,
                test_sessions: vec![0],
                ..ProtocolConfig::default()
            },
        }
    }
}

/// One sweep point: a fault condition and the gate quality under it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Fault kind injected into the probes.
    pub kind: FaultKind,
    /// Severity in `[0, 1]`.
    pub severity: f64,
    /// Number of microphones faulted.
    pub faulted_mics: usize,
    /// Spoofer-gate equal error rate over the scoring probes (1.0 when
    /// either score population is empty — the gate never got to run).
    pub eer: f64,
    /// Area under the gate's ROC (0.5 when a population is empty).
    pub auc: f64,
    /// Probe trains rejected before scoring (degraded capture or
    /// pipeline failure on the surviving subset).
    pub degraded_rejects: usize,
    /// Genuine gate scores collected.
    pub genuine_scores: usize,
    /// Impostor gate scores collected.
    pub impostor_scores: usize,
}

/// Results of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Gate EER with no faults injected (same probes, empty plan).
    pub baseline_eer: f64,
    /// Gate AUC with no faults injected.
    pub baseline_auc: f64,
    /// One point per (kind, severity, faulted-mic count).
    pub points: Vec<Point>,
    /// Audit-log summary from the dedicated audit pass.
    pub audit: AuditSummary,
}

/// Summary of the per-decision audit records from the audit pass: one
/// full `authenticate_train` per registered user through a dead-mic-0
/// device, plus one probe with *every* microphone dead (a guaranteed
/// degraded-capture rejection). The pass asserts the flight-recorder
/// contract — every rejected attempt carries a non-empty reject reason
/// and a degraded-channel mask covering the injected fault.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Audit records drained after the pass (one per attempt).
    pub attempts: usize,
    /// Attempts whose verdict was a rejection (vote or degraded error).
    pub rejected: usize,
    /// Rejections carrying a non-empty reject reason.
    pub rejected_with_reason: usize,
    /// Rejections whose degraded mask contains every injected-fault bit.
    pub rejected_with_injected_mask: usize,
}

/// Gate scores of every probe under `plan`: `(genuine, impostor,
/// rejects)`.
fn probe_scores(
    harness: &Harness,
    auth: &Authenticator,
    registered: &[&UserProfile],
    spoofers: &[&UserProfile],
    cfg: &ProtocolConfig,
    plan: &FaultPlan,
) -> (Vec<f64>, Vec<f64>, usize) {
    let mut jobs: Vec<(UserProfile, CaptureSpec)> = Vec::new();
    let mut is_genuine: Vec<bool> = Vec::new();
    for &session in &cfg.test_sessions {
        let test_spec = |offset_salt: u64| CaptureSpec {
            session: session * 100 + 37,
            beeps: cfg.test_beeps,
            beep_offset: TEST_BEEP_OFFSET + offset_salt * 1_000,
            faults: plan.clone(),
            ..CaptureSpec::default_lab(0)
        };
        for profile in registered {
            jobs.push((**profile, test_spec(profile.id as u64)));
            is_genuine.push(true);
        }
        for profile in spoofers {
            jobs.push((**profile, test_spec(profile.id as u64)));
            is_genuine.push(false);
        }
    }
    let mut genuine = Vec::new();
    let mut impostor = Vec::new();
    let mut rejects = 0usize;
    for (result, genuine_probe) in harness
        .features_for_batch(&jobs)
        .into_iter()
        .zip(is_genuine)
    {
        match result {
            Ok(feats) => {
                let scores = feats.iter().map(|f| auth.gate_decision(f));
                if genuine_probe {
                    genuine.extend(scores);
                } else {
                    impostor.extend(scores);
                }
            }
            Err(_) => rejects += 1,
        }
    }
    (genuine, impostor, rejects)
}

/// Runs the audit pass and checks the flight-recorder contract.
///
/// Every registered user authenticates once through a device whose
/// microphone 0 is dead (the degraded mic-subset route), then the first
/// user probes once with *every* microphone dead — a guaranteed
/// [`EchoImageError::DegradedCapture`] rejection. The audit ring is
/// drained afterwards and each rejected attempt is asserted to carry a
/// non-empty reject reason and a degraded-channel mask that covers the
/// bits the fault plan actually damaged.
///
/// # Panics
///
/// Panics when an audit record violates the contract — that is a bug in
/// the recorder, not an experimental outcome.
fn audit_pass(
    harness: &Harness,
    auth: &Authenticator,
    registered: &[&UserProfile],
    cfg: &ProtocolConfig,
) -> AuditSummary {
    use echo_sim::Placement;

    // Discard whatever earlier phases recorded so the drain below holds
    // exactly this pass's attempts, in order.
    let _ = echo_obs::take_audits();

    let spec = CaptureSpec {
        session: 777,
        beeps: cfg.test_beeps.max(1),
        beep_offset: TEST_BEEP_OFFSET + 90_000,
        ..CaptureSpec::default_lab(0)
    };
    let scene = harness.scene(&spec);
    let capture = |profile: &UserProfile| {
        scene.capture_train(
            &profile.body(),
            &Placement::standing_front(spec.distance),
            spec.session,
            spec.beeps,
            spec.beep_offset,
        )
    };

    // Per attempt: the channel mask the fault plan injected.
    let mut injected: Vec<u64> = Vec::new();
    let dead0 = FaultPlan::uniform(FaultKind::Dead, 1.0, &[0], 0x0AD1);
    for profile in registered {
        let _ = auth.authenticate_train_claimed(
            harness.pipeline(),
            &dead0.apply_train(&capture(profile)),
            profile.id as u64,
        );
        injected.push(1);
    }
    if let Some(profile) = registered.first() {
        let captures = capture(profile);
        let channels = captures.first().map_or(0, |c| c.num_channels());
        let all: Vec<usize> = (0..channels).collect();
        let dead_all = FaultPlan::uniform(FaultKind::Dead, 1.0, &all, 0x0AD2);
        let _ = auth.authenticate_train_claimed(
            harness.pipeline(),
            &dead_all.apply_train(&captures),
            profile.id as u64,
        );
        injected.push((1u64 << channels.min(63)) - 1);
    }

    let audits = echo_obs::take_audits();
    assert_eq!(
        audits.len(),
        injected.len(),
        "one audit record per authentication attempt"
    );
    let mut summary = AuditSummary {
        attempts: audits.len(),
        rejected: 0,
        rejected_with_reason: 0,
        rejected_with_injected_mask: 0,
    };
    for (audit, &mask) in audits.iter().zip(&injected) {
        if audit.verdict != echo_obs::AuthVerdict::Rejected {
            continue;
        }
        summary.rejected += 1;
        assert!(
            !audit.reject_reason.is_empty(),
            "rejected attempt (trace {}) has an empty reject reason",
            audit.trace
        );
        summary.rejected_with_reason += 1;
        assert_eq!(
            audit.degraded_mask & mask,
            mask,
            "rejected attempt (trace {}) does not carry the injected channel mask",
            audit.trace
        );
        summary.rejected_with_injected_mask += 1;
    }
    summary
}

/// `(eer, auc)` of a score split, with the documented conventions for
/// empty populations.
fn eer_auc(genuine: &[f64], impostor: &[f64]) -> (f64, f64) {
    if genuine.is_empty() || impostor.is_empty() {
        (1.0, 0.5)
    } else {
        let roc = roc_curve(genuine, impostor);
        (roc.eer, roc.auc)
    }
}

/// Runs the sweep: clean enrolment once, then one probe pass per
/// (kind, severity, count) plus the clean baseline.
///
/// # Errors
///
/// Propagates enrolment-time pipeline failures; probe-time failures are
/// counted per point, not raised.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let population =
        echo_sim::Population::generate(config.users + config.spoofers, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();

    let harness = Harness::new(config.seed);
    let clean_spec = CaptureSpec::default_lab(0);
    let auth = enroll(&harness, &registered, &clean_spec, &config.protocol)?;

    let (g0, i0, _) = probe_scores(
        &harness,
        &auth,
        &registered,
        &spoofers,
        &config.protocol,
        &FaultPlan::none(),
    );
    let (baseline_eer, baseline_auc) = eer_auc(&g0, &i0);

    let mut points = Vec::new();
    for &kind in &config.kinds {
        for &severity in &config.severities {
            for &count in &config.faulted_mic_counts {
                let mics: Vec<usize> = (0..count).collect();
                let plan = FaultPlan::uniform(kind, severity, &mics, config.seed ^ 0x5EED);
                let (genuine, impostor, rejects) = probe_scores(
                    &harness,
                    &auth,
                    &registered,
                    &spoofers,
                    &config.protocol,
                    &plan,
                );
                let (eer, auc) = eer_auc(&genuine, &impostor);
                points.push(Point {
                    kind,
                    severity,
                    faulted_mics: count,
                    eer,
                    auc,
                    degraded_rejects: rejects,
                    genuine_scores: genuine.len(),
                    impostor_scores: impostor.len(),
                });
            }
        }
    }
    let audit = audit_pass(&harness, &auth, &registered, &config.protocol);
    Ok(Output {
        baseline_eer,
        baseline_auc,
        points,
        audit,
    })
}
