//! The shared enrol/authenticate protocol (paper §VI-A).
//!
//! The paper takes 200 chirps from Session 1 as the training set and
//! tests on the remaining chirps of Sessions 1 and 3. The protocol here
//! is identical, with configurable counts: enrolment features come from
//! session 0 with beep indices `0..train_beeps`, test features come from
//! the configured sessions at a disjoint beep offset.

use crate::harness::{CaptureSpec, Harness};
use crate::metrics::{ConfusionMatrix, SPOOFER};
use echo_sim::UserProfile;
use echoimage_core::auth::{AuthConfig, Authenticator};
use echoimage_core::par::parallel_map_indexed;
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Beep-index offset separating test draws from training draws.
pub const TEST_BEEP_OFFSET: u64 = 100_000;

/// Counts and hyper-parameters of one enrol/test run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    /// Beeps per user used for enrolment (paper: 200).
    pub train_beeps: usize,
    /// Beeps per enrolment batch: enrolment is split into independent
    /// capture batches, each with its own distance estimate and noise,
    /// so the enrolled feature cloud spans the same batch-to-batch
    /// variation authentication will see.
    pub enroll_batch: usize,
    /// Relative distance offsets for enrolment-time augmentation (the
    /// paper's §V-F inverse-square synthesis applied around the estimated
    /// enrolment distance). Empty disables augmentation.
    pub augment_offsets: Vec<f64>,
    /// Relative plane offsets for enrolment-time plane diversity: the
    /// same captures are re-imaged at slightly shifted plane distances so
    /// the classifier sees the feature variation the test-time distance
    /// estimator's jitter will produce. Empty disables.
    pub plane_offsets: Vec<f64>,
    /// Test beeps per user per session (paper: 300 across sessions).
    pub test_beeps: usize,
    /// Sessions tested (paper: Sessions 1 and 3 → `[0, 2]`).
    pub test_sessions: Vec<u32>,
    /// Classifier hyper-parameters.
    pub auth: AuthConfig,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            train_beeps: 24,
            enroll_batch: 6,
            augment_offsets: vec![-0.05, 0.05],
            plane_offsets: vec![-0.03, 0.03],
            test_beeps: 8,
            test_sessions: vec![0, 2],
            auth: AuthConfig::default(),
        }
    }
}

/// Enrols the registered users under `spec` (session/beep fields are
/// overridden by the protocol).
///
/// # Errors
///
/// Propagates pipeline failures during enrolment — enrolment happens
/// under controlled conditions, so a failure there is a genuine error
/// rather than an authentication outcome.
pub fn enroll(
    harness: &Harness,
    registered: &[&UserProfile],
    spec: &CaptureSpec,
    cfg: &ProtocolConfig,
) -> Result<Authenticator, EchoImageError> {
    use echo_sim::Placement;
    use echoimage_core::enrollment::{
        enrollment_features_degraded_traced, enrollment_features_traced, EnrollmentConfig,
    };

    let batch = cfg.enroll_batch.max(1);
    let recipe = EnrollmentConfig {
        plane_offsets: cfg.plane_offsets.clone(),
        augment_offsets: cfg.augment_offsets.clone(),
    };
    // Subjects enrol independently: fan them out over the harness's
    // worker threads. Each worker images serially (worker_pipeline pins
    // one thread), and results merge in subject order, so the enrolled
    // model is bit-identical to the serial loop.
    let root = echo_obs::root_span("eval.enroll");
    let ctx = root.ctx();
    echo_obs::counter!("eval.jobs").add(registered.len() as u64);
    let worker = harness.worker_pipeline();
    let per_user = parallel_map_indexed(registered, harness.threads(), |i, profile| {
        let mut uspan = ctx.child_at("enroll.user", i as u64);
        uspan.attr_u64("user", profile.id as u64);
        let body = profile.body();
        // Each enrolment batch is a separate *visit*: the paper's
        // Session 1 spans days 0–2, so its 200 training chirps already
        // contain day-to-day posture/clothing drift. Visit ids under 50
        // are reserved for enrolment.
        let mut visits = Vec::new();
        let mut remaining = cfg.train_beeps;
        let mut batch_idx = 0u64;
        while remaining > 0 {
            let beeps = remaining.min(batch);
            let train_spec = CaptureSpec {
                session: batch_idx as u32,
                beeps,
                beep_offset: batch_idx * 1_000,
                ..spec.clone()
            };
            let scene = harness.scene(&train_spec);
            let captures = scene.capture_train_traced(
                uspan.ctx(),
                &body,
                &Placement::standing_front(train_spec.distance),
                train_spec.session,
                beeps,
                train_spec.beep_offset,
            );
            visits.push(if train_spec.faults.is_empty() {
                captures
            } else {
                train_spec.faults.apply_train_traced(uspan.ctx(), &captures)
            });
            remaining -= beeps;
            batch_idx += 1;
        }
        // A faulted device enrols through the health screen, excising
        // its bad microphones just as authentication will.
        let feats = if spec.faults.is_empty() {
            enrollment_features_traced(uspan.ctx(), &worker, &visits, &recipe)?
        } else {
            enrollment_features_degraded_traced(uspan.ctx(), &worker, &visits, &recipe)?.0
        };
        Ok((profile.id as usize, feats))
    });
    let failures = per_user.iter().filter(|r| r.is_err()).count();
    echo_obs::counter!("eval.job_failures").add(failures as u64);
    let users = per_user
        .into_iter()
        .collect::<Result<Vec<_>, EchoImageError>>()?;
    Authenticator::enroll(&users, &cfg.auth)
}

/// Runs the test phase: every registered user and spoofer is probed
/// `test_beeps` times per test session; failed captures (no echo found,
/// etc.) count as rejections.
pub fn evaluate(
    harness: &Harness,
    auth: &Authenticator,
    registered: &[&UserProfile],
    spoofers: &[&UserProfile],
    spec: &CaptureSpec,
    cfg: &ProtocolConfig,
) -> ConfusionMatrix {
    let ids: Vec<usize> = registered.iter().map(|p| p.id as usize).collect();
    let mut cm = ConfusionMatrix::new(&ids);
    // Build the full subject×session job list up front and fan it out
    // as one batch; recording happens afterwards in job order, so the
    // confusion matrix is identical to the serial nested loops.
    let mut jobs: Vec<(UserProfile, CaptureSpec)> = Vec::new();
    let mut truths: Vec<usize> = Vec::new();
    for &session in &cfg.test_sessions {
        // Tests happen on a fresh visit of the given paper-session:
        // visit id = session·100 + 37 never collides with the enrolment
        // visits (< 50).
        let test_spec = |offset_salt: u64| CaptureSpec {
            session: session * 100 + 37,
            beeps: cfg.test_beeps,
            beep_offset: TEST_BEEP_OFFSET + offset_salt * 1_000,
            ..spec.clone()
        };
        for profile in registered {
            jobs.push((**profile, test_spec(profile.id as u64)));
            truths.push(profile.id as usize);
        }
        for profile in spoofers {
            jobs.push((**profile, test_spec(profile.id as u64)));
            truths.push(SPOOFER);
        }
    }
    let feature_sets = harness.features_for_batch(&jobs);
    for ((result, truth), (_, job_spec)) in feature_sets.into_iter().zip(truths).zip(&jobs) {
        match result {
            Ok(feats) => {
                for f in &feats {
                    cm.record(truth, auth.authenticate(f));
                }
            }
            Err(_) => {
                // An unusable capture cannot authenticate anyone: it
                // counts as a rejection for every attempted beep.
                for _ in 0..job_spec.beeps {
                    cm.record(truth, echoimage_core::AuthDecision::Rejected);
                }
            }
        }
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;
    use echo_sim::Population;
    use echoimage_core::config::{ImagingConfig, PipelineConfig};

    /// A deliberately tiny end-to-end run: 3 registered users, 2
    /// spoofers, small grid. This is the reproduction's core claim in
    /// miniature — the full-scale version is Fig. 11.
    #[test]
    fn miniature_authentication_run_beats_chance() -> Result<(), EchoImageError> {
        let cfg = PipelineConfig {
            imaging: ImagingConfig {
                grid_n: 24,
                grid_spacing: 0.0667,
                ..ImagingConfig::default()
            },
            ..PipelineConfig::default()
        };
        // Seed chosen to give the gate a representative margin: the
        // miniature regime (12 train beeps, 24×24 grid) is noisy, and a
        // few seeds draw a spoofer inside a genuine user's domain.
        let harness = Harness::with_config(cfg, 17);
        let pop = Population::generate(5, 3, 17);
        let registered: Vec<_> = pop.registered().collect();
        let spoofers: Vec<_> = pop.spoofers().collect();
        let spec = CaptureSpec::default_lab(0);
        let proto = ProtocolConfig {
            train_beeps: 12,
            test_beeps: 4,
            test_sessions: vec![0],
            ..ProtocolConfig::default()
        };
        // A failed enrolment is a typed pipeline error, not a panic.
        let auth = enroll(&harness, &registered, &spec, &proto)?;
        let cm = evaluate(&harness, &auth, &registered, &spoofers, &spec, &proto);
        assert_eq!(cm.total(), (3 + 2) * 4);
        let m = cm.metrics();
        // Chance would be ~1/3 recall; require clearly better.
        assert!(m.recall > 0.6, "recall {} cm:\n{}", m.recall, cm.to_table());
        assert!(
            cm.spoofer_detection_rate() > 0.5,
            "spoofer detection {} cm:\n{}",
            cm.spoofer_detection_rate(),
            cm.to_table()
        );
        Ok(())
    }
}
