//! Fig. 12 — robustness to experimental environments (paper §VI-C).
//!
//! Eight users at 0.7 m, three environments (laboratory, conference
//! hall, outdoor), four noise conditions (quiet, music, chatter,
//! traffic). Training data is collected quietly in each environment;
//! testing runs under each noise condition. Paper result: recall,
//! precision and accuracy over 0.9 everywhere, best in quiet.

use crate::experiments::protocol::{enroll, evaluate, ProtocolConfig};
use crate::harness::{CaptureSpec, Harness};
use crate::metrics::AuthMetrics;
use echo_sim::{EnvironmentKind, NoiseKind, Population};
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Configuration for the environments experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Registered users (paper: 8).
    pub users: usize,
    /// Spoofers probing the system.
    pub spoofers: usize,
    /// Enrol/test counts.
    pub protocol: ProtocolConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 12,
            users: 8,
            spoofers: 4,
            protocol: ProtocolConfig {
                train_beeps: 24,
                test_beeps: 6,
                test_sessions: vec![0, 2],
                ..ProtocolConfig::default()
            },
        }
    }
}

/// Metrics for one environment × noise cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Environment label.
    pub environment: String,
    /// Noise label.
    pub noise: String,
    /// Aggregate metrics for the cell.
    pub metrics: AuthMetrics,
}

/// Results of the environments experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// One cell per environment × noise condition, in paper order.
    pub cells: Vec<Cell>,
}

impl Output {
    /// Looks up a cell.
    pub fn cell(&self, env: EnvironmentKind, noise: NoiseKind) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.environment == env.label() && c.noise == noise.label())
    }
}

/// Runs the experiment.
///
/// # Errors
///
/// Propagates enrolment-time pipeline failures.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let population =
        Population::generate(config.users + config.spoofers, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();

    let mut cells = Vec::new();
    for env in EnvironmentKind::all() {
        // One enrolment per environment, collected quietly (§VI-A-1:
        // "we first keep each place quiet to conduct data collection for
        // training").
        let harness = Harness::new(config.seed ^ (env as u64 + 1) << 8);
        let train_spec = CaptureSpec {
            environment: env,
            noise: NoiseKind::Quiet,
            ..CaptureSpec::default_lab(0)
        };
        let auth = enroll(&harness, &registered, &train_spec, &config.protocol)?;

        for noise in NoiseKind::all() {
            let test_spec = CaptureSpec {
                environment: env,
                noise,
                ..CaptureSpec::default_lab(0)
            };
            let cm = evaluate(
                &harness,
                &auth,
                &registered,
                &spoofers,
                &test_spec,
                &config.protocol,
            );
            cells.push(Cell {
                environment: env.label().to_string(),
                noise: noise.label().to_string(),
                metrics: cm.metrics(),
            });
        }
    }
    Ok(Output { cells })
}
