//! Extension — robustness to microphone-array imperfections.
//!
//! The paper assumes a calibrated array; real devices carry per-element
//! gain and timing mismatches. This experiment sweeps both and measures
//! authentication quality, answering "how well-matched must the
//! microphones be for acoustic-image authentication to survive?"

use crate::experiments::protocol::{enroll, evaluate, ProtocolConfig};
use crate::harness::{CaptureSpec, Harness};
use crate::metrics::AuthMetrics;
use serde::{Deserialize, Serialize};

/// Configuration for the imperfection sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Registered users.
    pub users: usize,
    /// Spoofers.
    pub spoofers: usize,
    /// Gain-mismatch standard deviations swept, dB.
    pub gain_errors_db: Vec<f64>,
    /// Timing-mismatch standard deviations swept, seconds.
    pub timing_errors: Vec<f64>,
    /// Enrol/test counts.
    pub protocol: ProtocolConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 77,
            users: 4,
            spoofers: 2,
            gain_errors_db: vec![0.0, 1.0, 3.0, 6.0],
            timing_errors: vec![0.0, 20e-6, 50e-6],
            protocol: ProtocolConfig {
                train_beeps: 18,
                test_beeps: 6,
                test_sessions: vec![0],
                ..ProtocolConfig::default()
            },
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Gain mismatch std, dB.
    pub gain_error_db: f64,
    /// Timing mismatch std, seconds.
    pub timing_error: f64,
    /// Authentication metrics under this imperfection level.
    pub metrics: AuthMetrics,
}

/// Results of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Gain sweep (timing fixed at 0).
    pub gain_sweep: Vec<Point>,
    /// Timing sweep (gain fixed at 0).
    pub timing_sweep: Vec<Point>,
}

/// Runs the sweep. The same (imperfect) device is used for enrolment
/// and authentication, as it would be in deployment.
///
/// # Errors
///
/// Propagates enrolment-time pipeline failures.
pub fn run(config: &Config) -> Result<Output, echoimage_core::EchoImageError> {
    let population =
        echo_sim::Population::generate(config.users + config.spoofers, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();

    let run_point = |gain: f64, timing: f64| -> Result<Point, echoimage_core::EchoImageError> {
        let harness = Harness::new(config.seed);
        let spec = CaptureSpec {
            mic_gain_error_db: gain,
            mic_timing_error: timing,
            ..CaptureSpec::default_lab(0)
        };
        let auth = enroll(&harness, &registered, &spec, &config.protocol)?;
        let cm = evaluate(
            &harness,
            &auth,
            &registered,
            &spoofers,
            &spec,
            &config.protocol,
        );
        Ok(Point {
            gain_error_db: gain,
            timing_error: timing,
            metrics: cm.metrics(),
        })
    };

    let mut gain_sweep = Vec::new();
    for &g in &config.gain_errors_db {
        gain_sweep.push(run_point(g, 0.0)?);
    }
    let mut timing_sweep = Vec::new();
    for &t in &config.timing_errors {
        timing_sweep.push(run_point(0.0, t)?);
    }
    Ok(Output {
        gain_sweep,
        timing_sweep,
    })
}
