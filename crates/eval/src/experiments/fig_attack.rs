//! Extension — adversarial attack evaluation (DESIGN.md §14).
//!
//! The paper evaluates EchoImage against *zero-effort* spoofers: other
//! people presenting their own bodies. This experiment evaluates two
//! deliberate attacks from the threat model:
//!
//! * **Replay** — the attacker records a victim's probe session and
//!   re-emits it from a loudspeaker ([`echo_sim::ReplaySpoof`]). A
//!   single speaker cannot reproduce six distinct microphone channels,
//!   so the re-emission collapses the array's angular structure: the
//!   acoustic image flattens and the imaged features shift. Both
//!   decision channels see this — the classifier (features move off the
//!   enrolled cloud) and the anti-replay spatial screen (image spread
//!   rises) — and the experiment reports each channel separately plus
//!   the combined screened deployment, because their failure modes are
//!   independent: the classifier margin is per-user tight but assumes
//!   an intact enrolment model, while the screen is model-free.
//! * **Twin** — an accomplice whose stature matches the victim within
//!   `radius` population standard deviations ([`echo_sim::TwinSpoof`]).
//!   The screen cannot help (a twin is a real scatterer cloud); the
//!   classifier margin is the only defence, so the interesting output
//!   is how the EER degrades as the twin gets closer.
//!
//! Both tiers share one image-source room model with the clean
//! captures, so wall multipath is identical on both sides of every
//! comparison and can never be the separating artefact. Reverberation
//! is also the experiment's most interesting stressor: wall ghosts
//! flatten genuine images too, so the replay margin narrows as
//! absorption drops — the population curves quantify the cost, and the
//! default configuration uses a ceiling calibrated for its room.
//!
//! Two tiers keep a 10k-subject population affordable:
//!
//! 1. **Acoustic tier** — a few victims run end-to-end through the real
//!    pipeline (capture → image → screen → features → vote), measuring
//!    genuine/attack distributions of the two decision channels: the
//!    spoofer-gate margin and the image-spread statistic.
//! 2. **Population tier** — Gaussian models calibrated on the acoustic
//!    tier (within- and between-subject) are sampled for ≥ 10 000
//!    synthetic subjects, and each channel's threshold sweep yields the
//!    attack-success-rate vs EER trade-off at population scale.
//!
//! An audit pass asserts the flight-recorder contract for attacks:
//! every screened replay rejection carries
//! [`RejectKind::ReplaySignature`] and the measured spread; twin
//! rejections carry the classifier's typed reasons.
//!
//! [`RejectKind::ReplaySignature`]: echo_obs::RejectKind::ReplaySignature

use crate::experiments::protocol::{enroll, ProtocolConfig, TEST_BEEP_OFFSET};
use crate::harness::{CaptureSpec, Harness};
use crate::roc::{roc_curve, RocPoint};
use echo_sim::{Placement, Population, RoomModel, SpoofAttack, SpoofKind, SpoofPlan};
use echoimage_core::config::SpatialCheckConfig;
use echoimage_core::pipeline::{EchoImagePipeline, PipelineConfig};
use echoimage_core::spatial::train_spread;
use echoimage_core::{AuthDecision, EchoImageError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the attack evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Victims run through the acoustic tier.
    pub users: usize,
    /// Attack probes per victim per attack kind (and genuine probe
    /// trains per victim).
    pub probes: usize,
    /// Twin similarity: population standard deviations between the
    /// accomplice's stature and the victim's.
    pub twin_radius: f64,
    /// Image-source room shared by every capture (clean and attack).
    /// `None` evaluates in free field.
    pub room: Option<RoomModel>,
    /// Synthetic subjects in the population tier (≥ 10 000 for the
    /// headline artefact).
    pub population: usize,
    /// Anti-replay screen settings used at probe time.
    pub spatial: SpatialCheckConfig,
    /// Enrol/test counts.
    pub protocol: ProtocolConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 211,
            users: 3,
            probes: 2,
            twin_radius: 0.35,
            room: Some(RoomModel::small_room()),
            population: 12_000,
            spatial: SpatialCheckConfig {
                enabled: true,
                // Deployment-calibrated for the shared small_room: wall
                // ghosts flatten *genuine* images too (≈0.84 vs ≈0.73
                // free-field), so the free-field default ceiling would
                // mis-reject live users in reverb. The replay margin
                // narrows but survives (replay ≈0.90); the population
                // curves quantify exactly how much of it reverberation
                // costs.
                max_coherence: 0.86,
            },
            protocol: ProtocolConfig {
                train_beeps: 12,
                test_beeps: 4,
                test_sessions: vec![0],
                ..ProtocolConfig::default()
            },
        }
    }
}

/// Raw counts from the end-to-end acoustic tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcousticTier {
    /// Victims probed.
    pub victims: usize,
    /// Genuine probe trains authenticated with the screen on.
    pub genuine_trains: usize,
    /// Genuine trains the screened pipeline rejected (vote or screen).
    pub genuine_rejects: usize,
    /// Replay attempts per configuration.
    pub replay_attempts: usize,
    /// Replay attempts accepted with the spatial screen **disabled** —
    /// the classifier channel alone.
    pub replay_accepts_unscreened: usize,
    /// Replay attempts accepted with the screen enabled.
    pub replay_accepts_screened: usize,
    /// Twin attempts (screen enabled; it does not apply to real bodies).
    pub twin_attempts: usize,
    /// Twin attempts accepted.
    pub twin_accepts: usize,
    /// Mean normalized image spread of genuine trains.
    pub genuine_spread_mean: f64,
    /// Mean normalized image spread of replay trains.
    pub replay_spread_mean: f64,
}

/// A fitted score channel: within-subject and between-subject moments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Channel {
    /// Grand mean of the measured samples.
    pub mean: f64,
    /// Within-subject standard deviation.
    pub sd: f64,
    /// Between-subject standard deviation (of per-victim means).
    pub between_sd: f64,
}

/// One attack family's population-scale trade-off curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackCurve {
    /// Attack family.
    pub kind: SpoofKind,
    /// Decision channel the sweep runs over (`"gate_margin"` for twin,
    /// `"image_spread"` for replay; spread scores are negated so higher
    /// is always more genuine).
    pub channel: String,
    /// Synthetic subjects sampled per side.
    pub population: usize,
    /// Equal error rate of genuine-vs-attack on this channel.
    pub eer: f64,
    /// Area under the ROC.
    pub auc: f64,
    /// The deployed operating threshold on this channel.
    pub operating_threshold: f64,
    /// Attack success rate at the operating threshold.
    pub asr_at_operating_point: f64,
    /// Genuine false-reject rate at the operating threshold.
    pub frr_at_operating_point: f64,
    /// Down-sampled sweep points (threshold → FAR/FRR; FAR is the ASR).
    pub points: Vec<RocPoint>,
}

/// Flight-recorder contract counts from the audit pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditSummary {
    /// Audit records drained (one per screened/unscreened attempt).
    pub attempts: usize,
    /// Screened replay attempts rejected.
    pub replay_rejects: usize,
    /// ...carrying `RejectKind::ReplaySignature` plus the measured
    /// spread above the ceiling.
    pub replay_rejects_with_signature: usize,
    /// Twin attempts rejected.
    pub twin_rejects: usize,
    /// ...carrying a typed classifier reason (spoofer gate / no
    /// majority) and a non-empty reject reason.
    pub twin_rejects_typed: usize,
}

/// Results of the attack evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// End-to-end acoustic-tier counts.
    pub acoustic: AcousticTier,
    /// Calibrated channels: genuine/twin gate margins, genuine/replay
    /// image spreads.
    pub calibration: Vec<(String, Channel)>,
    /// Population-scale curves: replay against each decision channel
    /// (classifier margin, image spread) and twin against the
    /// classifier.
    pub curves: Vec<AttackCurve>,
    /// Population replay success rate against the *screened*
    /// deployment: the fraction of subjects whose replay passes both
    /// the gate margin and the spread ceiling. This is the number the
    /// CI spoof gate bounds.
    pub replay_combined_asr: f64,
    /// Audit contract counts.
    pub audit: AuditSummary,
    /// The screen's spread ceiling in force.
    pub spread_ceiling: f64,
}

/// What each screened authentication in the acoustic tier was, in call
/// order — used to pair drained audit records with their attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Attempt {
    Genuine,
    ReplayScreened,
    ReplayUnscreened,
    Twin,
}

/// Standard-normal draw (Box–Muller; the vendored `rand` has no normal
/// distribution).
fn randn(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn sd_about(xs: &[f64], mu: f64) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    (xs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Fits a channel from per-victim sample groups: within-subject sd is
/// pooled over each victim's deviations from their own mean, and the
/// between-subject sd is the spread of victim means with the sampling
/// noise of those means (within²/n per victim) subtracted out — the
/// one-way ANOVA decomposition. Adding both back in [`sample_population`]
/// reproduces the total variance without double-counting either part.
fn fit_channel(per_victim: &[Vec<f64>]) -> Channel {
    let groups: Vec<&Vec<f64>> = per_victim.iter().filter(|v| !v.is_empty()).collect();
    let all: Vec<f64> = groups.iter().flat_map(|v| v.iter()).copied().collect();
    let grand = mean(&all);
    let victim_means: Vec<f64> = groups.iter().map(|v| mean(v)).collect();
    let pooled_dof = all.len().saturating_sub(groups.len());
    let means_sd = sd_about(&victim_means, mean(&victim_means));
    let within = if pooled_dof > 0 {
        let ss: f64 = groups
            .iter()
            .zip(&victim_means)
            .flat_map(|(v, &m)| v.iter().map(move |x| (x - m).powi(2)))
            .sum();
        (ss / pooled_dof as f64).sqrt().max(1e-6)
    } else {
        // One sample per victim: within-subject variation is
        // unobservable; assume it is comparable to the between-subject
        // spread rather than zero.
        (0.5 * means_sd).max(1e-6)
    };
    let between = if victim_means.len() >= 2 {
        let n_mean = all.len() as f64 / groups.len() as f64;
        (means_sd.powi(2) - within.powi(2) / n_mean)
            .max((0.1 * within).powi(2))
            .sqrt()
    } else {
        0.5 * within
    };
    Channel {
        mean: grand,
        sd: within,
        between_sd: between,
    }
}

/// Samples `n` subjects from a channel: each subject gets a personal
/// mean offset (between-subject), then one within-subject draw. The
/// per-subject RNG makes the draw order-independent and deterministic.
fn sample_population(channel: &Channel, n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let mut rng =
                ChaCha8Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            channel.mean + channel.between_sd * randn(&mut rng) + channel.sd * randn(&mut rng)
        })
        .collect()
}

/// Builds one attack family's curve from sampled populations. `scores`
/// are oriented so higher = more genuine; `operating_threshold` is the
/// deployed accept line on that oriented axis.
fn build_curve(
    kind: SpoofKind,
    channel: &str,
    genuine: &[f64],
    attack: &[f64],
    operating_threshold: f64,
) -> AttackCurve {
    let roc = roc_curve(genuine, attack);
    let asr =
        attack.iter().filter(|&&s| s >= operating_threshold).count() as f64 / attack.len() as f64;
    let frr =
        genuine.iter().filter(|&&s| s < operating_threshold).count() as f64 / genuine.len() as f64;
    // Down-sample the sweep for the artefact; keep both endpoints.
    let step = (roc.points.len() / 64).max(1);
    let mut points: Vec<RocPoint> = roc.points.iter().copied().step_by(step).collect();
    if let (Some(&last_kept), Some(&last)) = (points.last(), roc.points.last()) {
        if last_kept != last {
            points.push(last);
        }
    }
    AttackCurve {
        kind,
        channel: channel.to_string(),
        population: genuine.len(),
        eer: roc.eer,
        auc: roc.auc,
        operating_threshold,
        asr_at_operating_point: asr,
        frr_at_operating_point: frr,
        points,
    }
}

/// Runs the attack evaluation: enrolment, acoustic tier, calibration,
/// population tier, audit pass.
///
/// # Errors
///
/// Propagates enrolment-time and probe-time pipeline failures — the
/// acoustic tier runs under clean conditions, so a capture that cannot
/// be imaged is a harness bug, not an attack outcome.
///
/// # Panics
///
/// Panics when an audit record violates the flight-recorder contract
/// (a rejection without its typed reason/metadata) — that is a bug in
/// the recorder, not an experimental outcome.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let population = Population::generate(config.users, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();

    let pipeline_cfg = PipelineConfig {
        spatial: config.spatial.clone(),
        ..PipelineConfig::default()
    };
    let harness = Harness::with_config(pipeline_cfg, config.seed);
    let spec = CaptureSpec {
        room: config.room.clone(),
        ..CaptureSpec::default_lab(0)
    };
    let auth = enroll(&harness, &registered, &spec, &config.protocol)?;

    // The classifier-only comparison pipeline: identical except the
    // screen is off.
    let mut unscreened_cfg = harness.pipeline().config().clone();
    unscreened_cfg.spatial.enabled = false;
    let unscreened = EchoImagePipeline::new(unscreened_cfg);

    let scene = harness.scene(&spec);
    let placement = Placement::standing_front(spec.distance);
    let beeps = config.protocol.test_beeps.max(1);

    // Acoustic-tier accumulators, grouped per victim for the
    // between-subject fit.
    let mut genuine_scores: Vec<Vec<f64>> = Vec::new();
    let mut replay_scores: Vec<Vec<f64>> = Vec::new();
    let mut twin_scores: Vec<Vec<f64>> = Vec::new();
    let mut genuine_spreads: Vec<Vec<f64>> = Vec::new();
    let mut replay_spreads: Vec<Vec<f64>> = Vec::new();
    let mut acoustic = AcousticTier {
        victims: registered.len(),
        genuine_trains: 0,
        genuine_rejects: 0,
        replay_attempts: 0,
        replay_accepts_unscreened: 0,
        replay_accepts_screened: 0,
        twin_attempts: 0,
        twin_accepts: 0,
        genuine_spread_mean: 0.0,
        replay_spread_mean: 0.0,
    };

    // Drop whatever enrolment recorded; the drain below must hold
    // exactly the acoustic tier's attempts, in call order.
    let _ = echo_obs::take_audits();
    let mut attempts: Vec<Attempt> = Vec::new();
    let accepted = |d: &Result<AuthDecision, EchoImageError>| matches!(d, Ok(a) if a.is_accepted());

    for (vi, profile) in registered.iter().enumerate() {
        let body = profile.body();
        let id = profile.id as u64;
        let salt = (vi as u64 + 1) * 10_000;
        let mut vg_scores = Vec::new();
        let mut vr_scores = Vec::new();
        let mut vt_scores = Vec::new();
        let mut vg_spreads = Vec::new();
        let mut vr_spreads = Vec::new();
        for p in 0..config.probes {
            let offset = TEST_BEEP_OFFSET + salt + p as u64 * 100;
            // Genuine probe.
            let caps = scene.capture_train(&body, &placement, 200 + p as u32, beeps, offset);
            let (images, _) = harness.pipeline().images_from_train(&caps)?;
            if let Some(s) = train_spread(&config.spatial, &images) {
                vg_spreads.push(s);
            }
            for f in harness.pipeline().features_batch(&images) {
                vg_scores.push(auth.gate_decision(&f));
            }
            acoustic.genuine_trains += 1;
            let d = auth.authenticate_train_claimed(harness.pipeline(), &caps, id);
            attempts.push(Attempt::Genuine);
            if !accepted(&d) {
                acoustic.genuine_rejects += 1;
            }

            // Replay: steal a fresh session, re-emit it from a
            // loudspeaker at the victim's usual spot.
            let recording =
                scene.capture_train(&body, &placement, 300 + p as u32, beeps, offset + 13);
            let plan = SpoofPlan::replay_of(
                &recording,
                spec.distance,
                config.seed ^ (id << 8) ^ p as u64,
            );
            let attack = plan.capture_train(&scene, &placement, 400 + p as u32, beeps, offset + 29);
            let (images, _) = harness.pipeline().images_from_train(&attack)?;
            if let Some(s) = train_spread(&config.spatial, &images) {
                vr_spreads.push(s);
            }
            for f in harness.pipeline().features_batch(&images) {
                vr_scores.push(auth.gate_decision(&f));
            }
            acoustic.replay_attempts += 1;
            let d = auth.authenticate_train_claimed(harness.pipeline(), &attack, id);
            attempts.push(Attempt::ReplayScreened);
            if accepted(&d) {
                acoustic.replay_accepts_screened += 1;
            }
            let d = auth.authenticate_train_claimed(&unscreened, &attack, id);
            attempts.push(Attempt::ReplayUnscreened);
            if accepted(&d) {
                acoustic.replay_accepts_unscreened += 1;
            }

            // Twin: an accomplice matched to the victim's stature.
            let mut plan = SpoofPlan::twin_of(
                profile.body_seed,
                config.twin_radius,
                config.seed ^ (id << 16) ^ (p as u64) << 4,
            );
            if let SpoofAttack::Twin { twin } = &mut plan.attack {
                twin.target_gender = Some(profile.gender);
            }
            let attack = plan.capture_train(&scene, &placement, 500 + p as u32, beeps, offset + 43);
            let (images, _) = harness.pipeline().images_from_train(&attack)?;
            for f in harness.pipeline().features_batch(&images) {
                vt_scores.push(auth.gate_decision(&f));
            }
            acoustic.twin_attempts += 1;
            let d = auth.authenticate_train_claimed(harness.pipeline(), &attack, id);
            attempts.push(Attempt::Twin);
            if accepted(&d) {
                acoustic.twin_accepts += 1;
            }
        }
        genuine_scores.push(vg_scores);
        replay_scores.push(vr_scores);
        twin_scores.push(vt_scores);
        genuine_spreads.push(vg_spreads);
        replay_spreads.push(vr_spreads);
    }

    let audit = audit_pass(&attempts, config.spatial.max_coherence);

    // Calibration.
    let g_gate = fit_channel(&genuine_scores);
    let r_gate = fit_channel(&replay_scores);
    let t_gate = fit_channel(&twin_scores);
    let g_spread = fit_channel(&genuine_spreads);
    let r_spread = fit_channel(&replay_spreads);
    acoustic.genuine_spread_mean = g_spread.mean;
    acoustic.replay_spread_mean = r_spread.mean;

    // Population tier: one sampled cohort per channel side.
    let n = config.population;
    let pop_genuine_gate = sample_population(&g_gate, n, config.seed ^ 0xF16A_0001);
    let pop_replay_gate = sample_population(&r_gate, n, config.seed ^ 0xF16A_0005);
    let pop_twin_gate = sample_population(&t_gate, n, config.seed ^ 0xF16A_0002);
    let neg = |xs: Vec<f64>| xs.into_iter().map(|x| -x).collect::<Vec<f64>>();
    // Spread is negated so higher = more genuine on both channels.
    let pop_genuine_spread = neg(sample_population(&g_spread, n, config.seed ^ 0xF16A_0003));
    let pop_replay_spread = neg(sample_population(&r_spread, n, config.seed ^ 0xF16A_0004));

    // The screened deployment accepts a replay only when it beats both
    // channels; subject i's draws are paired across channels.
    let ceiling = config.spatial.max_coherence;
    let replay_combined_asr = pop_replay_gate
        .iter()
        .zip(&pop_replay_spread)
        .filter(|&(&margin, &neg_spread)| margin >= 0.0 && neg_spread >= -ceiling)
        .count() as f64
        / n as f64;

    let curves = vec![
        build_curve(
            SpoofKind::Replay,
            "gate_margin",
            &pop_genuine_gate,
            &pop_replay_gate,
            0.0,
        ),
        build_curve(
            SpoofKind::Replay,
            "image_spread",
            &pop_genuine_spread,
            &pop_replay_spread,
            -ceiling,
        ),
        build_curve(
            SpoofKind::Twin,
            "gate_margin",
            &pop_genuine_gate,
            &pop_twin_gate,
            0.0,
        ),
    ];

    Ok(Output {
        acoustic,
        calibration: vec![
            ("genuine_gate_margin".into(), g_gate),
            ("replay_gate_margin".into(), r_gate),
            ("twin_gate_margin".into(), t_gate),
            ("genuine_image_spread".into(), g_spread),
            ("replay_image_spread".into(), r_spread),
        ],
        curves,
        replay_combined_asr,
        audit,
        spread_ceiling: ceiling,
    })
}

/// Drains the audit ring and checks the attack flight-recorder
/// contract against the recorded attempt order.
fn audit_pass(attempts: &[Attempt], ceiling: f64) -> AuditSummary {
    use echo_obs::{AuthVerdict, RejectKind};

    let audits = echo_obs::take_audits();
    assert_eq!(
        audits.len(),
        attempts.len(),
        "one audit record per acoustic-tier attempt"
    );
    let mut summary = AuditSummary {
        attempts: audits.len(),
        replay_rejects: 0,
        replay_rejects_with_signature: 0,
        twin_rejects: 0,
        twin_rejects_typed: 0,
    };
    for (audit, &attempt) in audits.iter().zip(attempts) {
        let rejected = audit.verdict == AuthVerdict::Rejected;
        match attempt {
            Attempt::ReplayScreened if rejected => {
                summary.replay_rejects += 1;
                assert!(
                    !audit.reject_reason.is_empty(),
                    "replay rejection (trace {}) has an empty reject reason",
                    audit.trace
                );
                if audit.reject_kind == RejectKind::ReplaySignature {
                    let spread = audit
                        .spatial_coherence
                        .expect("replay-signature rejection must carry the measured spread");
                    assert!(
                        spread > ceiling,
                        "replay-signature rejection (trace {}) carries spread {spread} \
                         not above the ceiling {ceiling}",
                        audit.trace
                    );
                    summary.replay_rejects_with_signature += 1;
                }
            }
            Attempt::Twin if rejected => {
                summary.twin_rejects += 1;
                assert!(
                    !audit.reject_reason.is_empty(),
                    "twin rejection (trace {}) has an empty reject reason",
                    audit.trace
                );
                if matches!(
                    audit.reject_kind,
                    RejectKind::SpooferGate | RejectKind::NoMajority
                ) {
                    summary.twin_rejects_typed += 1;
                }
            }
            _ => {}
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately tiny end-to-end run; the full-scale version is
    /// the `fig_attack` binary.
    #[test]
    fn miniature_attack_run_separates_replay() {
        let mut cfg = Config {
            users: 2,
            probes: 1,
            population: 2_000,
            // Free field with the free-field ceiling: the condition the
            // CI spoof gate runs, where the collapse signature is
            // cleanly separated. The reverberant variant is exercised
            // by the full `fig_attack` binary.
            room: None,
            spatial: SpatialCheckConfig {
                enabled: true,
                ..SpatialCheckConfig::default()
            },
            ..Config::default()
        };
        cfg.protocol.train_beeps = 8;
        cfg.protocol.test_beeps = 3;
        let out = run(&cfg).expect("attack evaluation");
        assert_eq!(out.acoustic.replay_attempts, 2);
        assert_eq!(out.acoustic.twin_attempts, 2);
        // The replay signature must be visible: replayed images flatten.
        assert!(
            out.acoustic.replay_spread_mean > out.acoustic.genuine_spread_mean,
            "replay spread {} should exceed genuine {}",
            out.acoustic.replay_spread_mean,
            out.acoustic.genuine_spread_mean
        );
        // Screened replays are rejected with the typed signature.
        assert_eq!(out.acoustic.replay_accepts_screened, 0);
        assert_eq!(out.audit.replay_rejects, 2);
        assert_eq!(out.audit.replay_rejects_with_signature, 2);
        // Population curves cover both channels for replay plus the
        // twin classifier channel, at the configured size.
        assert_eq!(out.curves.len(), 3);
        for curve in &out.curves {
            assert_eq!(curve.population, 2_000);
            assert!(curve.eer >= 0.0 && curve.eer <= 1.0);
            assert!(!curve.points.is_empty());
        }
        assert_eq!(out.curves[0].kind, SpoofKind::Replay);
        assert_eq!(out.curves[1].channel, "image_spread");
        assert_eq!(out.curves[2].kind, SpoofKind::Twin);
        // The screened deployment stops population-scale replay.
        assert!(
            out.replay_combined_asr < 0.05,
            "population replay ASR {} against the screened deployment",
            out.replay_combined_asr
        );
    }
}
