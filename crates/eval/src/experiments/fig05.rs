//! Fig. 5 — distance-estimation feasibility study (paper §V-B).
//!
//! One volunteer stands 0.6 m in front of the array in an empty quiet
//! room; 20 beeps are collected, the accumulated correlation envelope is
//! computed, and the chirp/echo periods are read off its peaks. The
//! paper reports `D_f = 0.68 m` and `D_p = 0.58 m` against a 0.6 m
//! ground truth.

use crate::harness::{CaptureSpec, Harness};
use echo_sim::{EnvironmentKind, Placement};
use echo_sim::{NoiseKind, Population};
use echoimage_core::distance::estimate_distance;
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Configuration for the feasibility study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Ground-truth user distance, metres (paper: 0.6).
    pub distance: f64,
    /// Number of beeps (paper: 20).
    pub beeps: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 5,
            distance: 0.6,
            beeps: 20,
        }
    }
}

/// A detected envelope peak, relative to the envelope maximum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvelopePeak {
    /// Time in seconds from the start of the capture.
    pub time: f64,
    /// Envelope value relative to the maximum.
    pub relative_value: f64,
}

/// Results of the feasibility study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Ground-truth horizontal distance, metres.
    pub true_distance: f64,
    /// Estimated slant distance `D_f`, metres (paper: 0.68).
    pub slant_distance: f64,
    /// Estimated horizontal distance `D_p`, metres (paper: 0.58).
    pub horizontal_distance: f64,
    /// Absolute estimation error, metres.
    pub error: f64,
    /// Time of the direct-path peak τ₁, seconds.
    pub direct_peak_time: f64,
    /// Time of the detected body-echo peak, seconds.
    pub echo_peak_time: f64,
    /// All detected peaks of the accumulated envelope.
    pub peaks: Vec<EnvelopePeak>,
    /// The accumulated envelope `E(t)` (Eq. 10), decimated for plotting.
    pub envelope: Vec<f64>,
    /// Decimation factor applied to the envelope.
    pub envelope_decimation: usize,
}

/// Runs the feasibility study.
///
/// # Errors
///
/// Propagates distance-estimation failures.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let harness = Harness::new(config.seed);
    let spec = CaptureSpec {
        environment: EnvironmentKind::Laboratory,
        noise: NoiseKind::Quiet,
        distance: config.distance,
        session: 0,
        beeps: config.beeps,
        beep_offset: 0,
        mic_gain_error_db: 0.0,
        mic_timing_error: 0.0,
        faults: echo_sim::FaultPlan::none(),
        room: None,
    };
    let scene = harness.scene(&spec);
    let volunteer = Population::paper_table1(config.seed).profiles()[0].body();
    let captures = scene.capture_train(
        &volunteer,
        &Placement::standing_front(config.distance),
        0,
        config.beeps,
        0,
    );
    let pipeline = harness.pipeline();
    let filtered: Vec<_> = captures.iter().map(|c| pipeline.preprocess(c)).collect();
    let est = estimate_distance(&filtered, pipeline.array(), pipeline.config())?;

    let fs = captures[0].sample_rate();
    let max = est
        .envelope
        .iter()
        .cloned()
        .fold(f64::MIN_POSITIVE, f64::max);
    let peaks = est
        .peaks
        .iter()
        .map(|p| EnvelopePeak {
            time: p.index as f64 / fs,
            relative_value: p.value / max,
        })
        .collect();
    let decim = 8;
    let envelope: Vec<f64> = est
        .envelope
        .iter()
        .step_by(decim)
        .map(|v| v / max)
        .collect();

    Ok(Output {
        true_distance: config.distance,
        slant_distance: est.slant_distance,
        horizontal_distance: est.horizontal_distance,
        error: (est.horizontal_distance - config.distance).abs(),
        direct_peak_time: est.direct_peak as f64 / fs,
        echo_peak_time: est.echo_peak as f64 / fs,
        peaks,
        envelope,
        envelope_decimation: decim,
    })
}
