//! Extension — imaging-grid resolution ablation.
//!
//! The paper images on a 180×180 grid of 1 cm cells; this reproduction
//! defaults to 32×32 of 5 cm. This experiment sweeps the grid size over
//! a fixed physical extent and measures authentication quality and
//! per-image construction cost, quantifying how much resolution the
//! 6-microphone array actually exploits.

use crate::experiments::protocol::{enroll, evaluate, ProtocolConfig};
use crate::harness::{CaptureSpec, Harness};
use crate::metrics::AuthMetrics;
use echoimage_core::config::{ImagingConfig, PipelineConfig};
use serde::{Deserialize, Serialize};

/// Configuration for the grid sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Registered users.
    pub users: usize,
    /// Spoofers.
    pub spoofers: usize,
    /// Grid sizes swept (cells per side over a fixed ±0.8 m extent).
    pub grid_sizes: Vec<usize>,
    /// Enrol/test counts.
    pub protocol: ProtocolConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 41,
            users: 4,
            spoofers: 2,
            grid_sizes: vec![8, 16, 32, 48],
            protocol: ProtocolConfig {
                train_beeps: 18,
                test_beeps: 6,
                test_sessions: vec![0],
                ..ProtocolConfig::default()
            },
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Cells per side.
    pub grid_n: usize,
    /// Cell edge, metres.
    pub grid_spacing: f64,
    /// Authentication metrics at this resolution.
    pub metrics: AuthMetrics,
    /// Mean wall-clock per constructed image, milliseconds.
    pub ms_per_image: f64,
}

/// Results of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Points ordered by grid size.
    pub points: Vec<Point>,
}

/// Runs the sweep.
///
/// # Errors
///
/// Propagates enrolment-time pipeline failures.
pub fn run(config: &Config) -> Result<Output, echoimage_core::EchoImageError> {
    let population =
        echo_sim::Population::generate(config.users + config.spoofers, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();
    let extent = 1.6; // metres, fixed physical plane

    let mut points = Vec::new();
    for &grid_n in &config.grid_sizes {
        let pipe_cfg = PipelineConfig {
            imaging: ImagingConfig {
                grid_n,
                grid_spacing: extent / grid_n as f64,
                ..ImagingConfig::default()
            },
            ..PipelineConfig::default()
        };
        let harness = Harness::with_config(pipe_cfg, config.seed);
        let spec = CaptureSpec::default_lab(0);

        let started = std::time::Instant::now();
        let auth = enroll(&harness, &registered, &spec, &config.protocol)?;
        let cm = evaluate(
            &harness,
            &auth,
            &registered,
            &spoofers,
            &spec,
            &config.protocol,
        );
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        // Rough per-image cost: images constructed during enrol + test.
        let plane_factor = 1 + config.protocol.plane_offsets.len();
        let enrol_images = config.users * config.protocol.train_beeps * plane_factor;
        let test_images = (config.users + config.spoofers)
            * config.protocol.test_beeps
            * config.protocol.test_sessions.len();
        let ms_per_image = elapsed / (enrol_images + test_images).max(1) as f64;

        points.push(Point {
            grid_n,
            grid_spacing: extent / grid_n as f64,
            metrics: cm.metrics(),
            ms_per_image,
        });
    }
    Ok(Output { points })
}
