//! Fig. 13 — impact of the user–array distance (paper §VI-D).
//!
//! The distance varies from 0.6 m to 1.5 m in the laboratory; the paper
//! reports F-measure above 0.95 below 1 m (quiet) with a marked drop
//! beyond 1 m as the echoes weaken.

use crate::experiments::protocol::{enroll, evaluate, ProtocolConfig};
use crate::harness::{CaptureSpec, Harness};
use crate::metrics::AuthMetrics;
use echo_sim::{EnvironmentKind, NoiseKind, Population};
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Configuration for the distance sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Registered users.
    pub users: usize,
    /// Spoofers.
    pub spoofers: usize,
    /// Distances swept, metres (paper: 0.6–1.5).
    pub distances: Vec<f64>,
    /// Noise conditions compared (paper plots quiet and noisy curves).
    pub noises: Vec<NoiseKind>,
    /// Enrol/test counts.
    pub protocol: ProtocolConfig,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 13,
            users: 6,
            spoofers: 3,
            distances: vec![0.6, 0.8, 1.0, 1.2, 1.5],
            noises: vec![NoiseKind::Quiet, NoiseKind::Chatter],
            protocol: ProtocolConfig {
                train_beeps: 12,
                test_beeps: 6,
                test_sessions: vec![0],
                ..ProtocolConfig::default()
            },
        }
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// User–array distance, metres.
    pub distance: f64,
    /// Noise label.
    pub noise: String,
    /// Aggregate metrics (the paper plots `metrics.f_measure`).
    pub metrics: AuthMetrics,
}

/// Results of the distance sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Points ordered by noise, then distance.
    pub points: Vec<Point>,
}

impl Output {
    /// The F-measure series for one noise condition, ordered by distance.
    pub fn f_measure_series(&self, noise: NoiseKind) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter(|p| p.noise == noise.label())
            .map(|p| (p.distance, p.metrics.f_measure))
            .collect()
    }
}

/// Runs the sweep: for each (noise, distance) the users enrol and are
/// tested at that distance in the laboratory.
///
/// # Errors
///
/// Propagates enrolment-time pipeline failures.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let population =
        Population::generate(config.users + config.spoofers, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();

    let mut points = Vec::new();
    for &noise in &config.noises {
        for &distance in &config.distances {
            let harness = Harness::new(config.seed ^ (distance * 1_000.0) as u64);
            let spec = CaptureSpec {
                environment: EnvironmentKind::Laboratory,
                noise,
                distance,
                session: 0,
                beeps: 0,
                beep_offset: 0,
                mic_gain_error_db: 0.0,
                mic_timing_error: 0.0,
                faults: echo_sim::FaultPlan::none(),
                room: None,
            };
            let auth = enroll(&harness, &registered, &spec, &config.protocol)?;
            let cm = evaluate(
                &harness,
                &auth,
                &registered,
                &spoofers,
                &spec,
                &config.protocol,
            );
            points.push(Point {
                distance,
                noise: noise.label().to_string(),
                metrics: cm.metrics(),
            });
        }
    }
    Ok(Output { points })
}
