//! Extension — classifier-stage ablations.
//!
//! The paper picks SVM over alternatives without comparison; this
//! experiment quantifies the choice on the simulated substrate:
//!
//! * attribution accuracy of the n-class SVM vs a k-NN baseline,
//! * CNN features vs raw downsampled pixels,
//! * effect of PCA dimensionality reduction ahead of the classifier,
//! * pooled vs per-user spoofer gate ([`echoimage_core::auth::GateMode`]).

use crate::harness::{CaptureSpec, Harness};
use echo_ml::{Kernel, KnnClassifier, Pca, SvmMulticlass};
use echo_sim::{Placement, Population};
use echoimage_core::auth::{AuthConfig, Authenticator, GateMode};
use echoimage_core::enrollment::{enrollment_features, EnrollmentConfig};
use echoimage_core::EchoImageError;
use serde::{Deserialize, Serialize};

/// Configuration for the classifier ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Config {
    /// Scene/population seed.
    pub seed: u64,
    /// Registered users.
    pub users: usize,
    /// Spoofers (gate ablation only).
    pub spoofers: usize,
    /// Enrolment beeps per user per visit.
    pub beeps_per_visit: usize,
    /// Enrolment visits.
    pub visits: u32,
    /// Test beeps per user.
    pub test_beeps: usize,
    /// PCA dimensions swept.
    pub pca_dims: Vec<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seed: 31,
            users: 5,
            spoofers: 3,
            beeps_per_visit: 6,
            visits: 3,
            test_beeps: 6,
            pca_dims: vec![8, 32, 128],
        }
    }
}

/// Results of the ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Output {
    /// Attribution accuracy of the one-vs-one SVM on CNN features.
    pub svm_accuracy: f64,
    /// Attribution accuracy of 5-NN on the same features.
    pub knn_accuracy: f64,
    /// Attribution accuracy per PCA dimensionality (dim, accuracy).
    pub pca_accuracy: Vec<(usize, f64)>,
    /// Full-cascade metrics with the per-user gate.
    pub per_user_gate: GateResult,
    /// Full-cascade metrics with the paper's pooled gate.
    pub pooled_gate: GateResult,
}

/// Gate-ablation cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateResult {
    /// Fraction of genuine probes accepted as themselves.
    pub genuine_accept: f64,
    /// Fraction of spoofer probes rejected.
    pub spoofer_reject: f64,
}

/// Runs the ablations.
///
/// # Errors
///
/// Propagates pipeline failures during data collection.
pub fn run(config: &Config) -> Result<Output, EchoImageError> {
    let harness = Harness::new(config.seed);
    let population =
        Population::generate(config.users + config.spoofers, config.users, config.seed);
    let registered: Vec<_> = population.registered().collect();
    let spoofers: Vec<_> = population.spoofers().collect();

    // Enrolment features per user (production recipe).
    let mut train: Vec<(usize, Vec<Vec<f64>>)> = Vec::new();
    for profile in &registered {
        let body = profile.body();
        let visits: Vec<_> = (0..config.visits)
            .map(|v| {
                let spec = CaptureSpec {
                    session: v,
                    beeps: config.beeps_per_visit,
                    beep_offset: v as u64 * 1_000,
                    ..CaptureSpec::default_lab(0)
                };
                let scene = harness.scene(&spec);
                scene.capture_train(
                    &body,
                    &Placement::standing_front(spec.distance),
                    spec.session,
                    spec.beeps,
                    spec.beep_offset,
                )
            })
            .collect();
        let feats = enrollment_features(harness.pipeline(), &visits, &EnrollmentConfig::default())?;
        train.push((profile.id as usize, feats));
    }

    // Test features (fresh visit).
    let mut genuine_tests: Vec<(usize, Vec<Vec<f64>>)> = Vec::new();
    for profile in &registered {
        let spec = CaptureSpec {
            session: 77,
            beeps: config.test_beeps,
            beep_offset: 50_000 + profile.id as u64 * 1_000,
            ..CaptureSpec::default_lab(0)
        };
        genuine_tests.push((
            profile.id as usize,
            harness.features_for(&profile.body(), &spec)?,
        ));
    }
    let mut spoof_tests: Vec<Vec<Vec<f64>>> = Vec::new();
    for profile in &spoofers {
        let spec = CaptureSpec {
            session: 77,
            beeps: config.test_beeps,
            beep_offset: 60_000 + profile.id as u64 * 1_000,
            ..CaptureSpec::default_lab(0)
        };
        spoof_tests.push(harness.features_for(&profile.body(), &spec)?);
    }

    // Flat training matrices for the bare classifiers.
    let mut xs: Vec<Vec<f64>> = Vec::new();
    let mut ys: Vec<usize> = Vec::new();
    for (id, fs) in &train {
        for f in fs {
            xs.push(f.clone());
            ys.push(*id);
        }
    }

    let attribution_accuracy = |predict: &dyn Fn(&[f64]) -> usize| -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (id, fs) in &genuine_tests {
            for f in fs {
                total += 1;
                if predict(f) == *id {
                    correct += 1;
                }
            }
        }
        correct as f64 / total.max(1) as f64
    };

    let svm = SvmMulticlass::train(&xs, &ys, Kernel::rbf_median(&xs), 10.0);
    let svm_accuracy = attribution_accuracy(&|f| svm.predict(f));

    let knn = KnnClassifier::fit(&xs, &ys, 5);
    let knn_accuracy = attribution_accuracy(&|f| knn.predict(f));

    let mut pca_accuracy = Vec::new();
    for &dim in &config.pca_dims {
        let dim = dim.min(xs[0].len());
        let pca = Pca::fit(&xs, dim);
        let txs = pca.transform_batch(&xs);
        let svm_p = SvmMulticlass::train(&txs, &ys, Kernel::rbf_median(&txs), 10.0);
        let acc = attribution_accuracy(&|f| svm_p.predict(&pca.transform(f)));
        pca_accuracy.push((dim, acc));
    }

    // Gate-mode ablation on the full cascade.
    let gate_result = |mode: GateMode| -> Result<GateResult, EchoImageError> {
        let auth = Authenticator::enroll(
            &train,
            &AuthConfig {
                gate: mode,
                ..AuthConfig::default()
            },
        )?;
        let mut gen_ok = 0usize;
        let mut gen_total = 0usize;
        for (id, fs) in &genuine_tests {
            for f in fs {
                gen_total += 1;
                if auth.authenticate(f).user_id() == Some(*id) {
                    gen_ok += 1;
                }
            }
        }
        let mut spoof_rej = 0usize;
        let mut spoof_total = 0usize;
        for fs in &spoof_tests {
            for f in fs {
                spoof_total += 1;
                if !auth.authenticate(f).is_accepted() {
                    spoof_rej += 1;
                }
            }
        }
        Ok(GateResult {
            genuine_accept: gen_ok as f64 / gen_total.max(1) as f64,
            spoofer_reject: spoof_rej as f64 / spoof_total.max(1) as f64,
        })
    };

    Ok(Output {
        svm_accuracy,
        knn_accuracy,
        pca_accuracy,
        per_user_gate: gate_result(GateMode::PerUser)?,
        pooled_gate: gate_result(GateMode::Pooled)?,
    })
}
